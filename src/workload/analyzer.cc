#include "workload/analyzer.h"

#include <unordered_map>
#include <unordered_set>

namespace swala::workload {

ThresholdAnalysis analyze_threshold(const Trace& trace, double threshold) {
  ThresholdAnalysis out;
  out.threshold_seconds = threshold;

  double total_service = 0.0;
  std::unordered_map<std::string, std::size_t> occurrences;
  for (const auto& r : trace) {
    total_service += r.service_seconds;
    if (!r.is_cgi || r.service_seconds < threshold) continue;
    ++out.long_requests;
    const auto [it, fresh] = occurrences.try_emplace(r.target, 0);
    if (!fresh || it->second > 0) {
      // A repeat of a previous long request: a would-be cache hit.
      ++out.total_repeats;
      out.time_saved_seconds += r.service_seconds;
    }
    ++it->second;
  }
  for (const auto& [target, count] : occurrences) {
    if (count > 1) ++out.unique_repeated;
  }
  out.saved_percent =
      total_service > 0 ? 100.0 * out.time_saved_seconds / total_service : 0.0;
  return out;
}

std::vector<ThresholdAnalysis> analyze_thresholds(
    const Trace& trace, const std::vector<double>& thresholds) {
  std::vector<ThresholdAnalysis> out;
  out.reserve(thresholds.size());
  for (const double t : thresholds) out.push_back(analyze_threshold(trace, t));
  return out;
}

std::size_t hit_upper_bound(const Trace& trace) {
  std::size_t cacheable = 0;
  std::unordered_set<std::string> distinct;
  for (const auto& r : trace) {
    if (!r.is_cgi) continue;
    ++cacheable;
    distinct.insert(r.target);
  }
  return cacheable - distinct.size();
}

}  // namespace swala::workload
