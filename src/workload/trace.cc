#include "workload/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/strings.h"

namespace swala::workload {

std::string trace_to_string(const Trace& trace) {
  std::ostringstream out;
  out.precision(9);
  for (const auto& r : trace) {
    out << r.arrival_seconds << ' ' << r.target << ' '
        << (r.is_cgi ? "cgi" : "file") << ' ' << r.service_seconds << ' '
        << r.response_bytes << '\n';
  }
  return out.str();
}

Result<Trace> trace_from_string(std::string_view text) {
  Trace trace;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;

    const auto fields = split_trimmed(line, ' ');
    if (fields.size() != 5) {
      return Status(StatusCode::kInvalidArgument,
                    "trace line " + std::to_string(line_no) +
                        ": expected 5 fields");
    }
    TraceRecord r;
    std::uint64_t bytes = 0;
    if (!parse_double(fields[0], &r.arrival_seconds) ||
        !parse_double(fields[3], &r.service_seconds) ||
        !parse_u64(fields[4], &bytes)) {
      return Status(StatusCode::kInvalidArgument,
                    "trace line " + std::to_string(line_no) + ": bad number");
    }
    r.target = fields[1];
    if (fields[2] == "cgi") {
      r.is_cgi = true;
    } else if (fields[2] == "file") {
      r.is_cgi = false;
    } else {
      return Status(StatusCode::kInvalidArgument,
                    "trace line " + std::to_string(line_no) +
                        ": kind must be cgi|file");
    }
    r.response_bytes = bytes;
    trace.push_back(std::move(r));
  }
  return trace;
}

Status save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) return Status(StatusCode::kIoError, "cannot write " + path);
  out << trace_to_string(trace);
  return out.good() ? Status::ok()
                    : Status(StatusCode::kIoError, "short write to " + path);
}

Result<Trace> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status(StatusCode::kNotFound, "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return trace_from_string(buf.str());
}

TraceSummary summarize(const Trace& trace) {
  TraceSummary s;
  std::unordered_set<std::string> uniq, uniq_cgi;
  double file_service = 0.0;
  std::size_t file_count = 0;
  for (const auto& r : trace) {
    ++s.total_requests;
    s.total_service_seconds += r.service_seconds;
    s.max_service = std::max(s.max_service, r.service_seconds);
    uniq.insert(r.target);
    if (r.is_cgi) {
      ++s.cgi_requests;
      s.cgi_service_seconds += r.service_seconds;
      uniq_cgi.insert(r.target);
    } else {
      file_service += r.service_seconds;
      ++file_count;
    }
  }
  s.unique_targets = uniq.size();
  s.unique_cgi_targets = uniq_cgi.size();
  s.mean_file_service = file_count ? file_service / file_count : 0.0;
  s.mean_cgi_service =
      s.cgi_requests ? s.cgi_service_seconds / s.cgi_requests : 0.0;
  return s;
}

}  // namespace swala::workload
