#include "workload/webstone.h"

#include <fstream>
#include <sys/stat.h>
#include <thread>

#include "cgi/scripted.h"
#include "common/clock.h"
#include "http/client.h"

namespace swala::workload {

const std::vector<WebStoneFile>& webstone_mix() {
  static const std::vector<WebStoneFile> mix = {
      {"f500.html", 500, 0.35},
      {"f5k.html", 5 * 1024, 0.50},
      {"f50k.html", 50 * 1024, 0.14},
      {"f500k.html", 500 * 1024, 0.009},
      {"f1m.html", 1024 * 1024, 0.001},
  };
  return mix;
}

Result<std::vector<std::string>> make_webstone_docroot(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);
  std::vector<std::string> paths;
  for (const auto& file : webstone_mix()) {
    const std::string path = dir + "/" + file.name;
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status(StatusCode::kIoError, "cannot write " + path);
    out << cgi::deterministic_body(file.bytes, file.bytes);
    if (!out.good()) return Status(StatusCode::kIoError, "short write " + path);
    paths.push_back("/" + file.name);
  }
  return paths;
}

std::string sample_webstone_target(Rng& rng) {
  const double u = rng.next_double();
  double cum = 0.0;
  for (const auto& file : webstone_mix()) {
    cum += file.probability;
    if (u < cum) return "/" + file.name;
  }
  return "/" + webstone_mix().back().name;
}

LoadResult run_load(const net::InetAddress& server, const LoadOptions& options,
                    const std::function<std::string(Rng&, std::size_t)>& make_target) {
  std::vector<LatencyHistogram> histograms(options.clients);
  std::vector<std::uint64_t> errors(options.clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(options.clients);

  const RealClock& clock = *RealClock::instance();
  const TimeNs wall_start = clock.now();

  for (std::size_t c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(options.seed * 7919 + c);
      http::HttpClient client(server, options.timeout_ms);
      for (std::size_t i = 0; i < options.requests_per_client; ++i) {
        http::Request req;
        req.method = http::Method::kGet;
        req.target = make_target(rng, i);
        req.version = http::Version::kHttp11;
        req.headers.set("Host", server.to_string());
        if (!options.keep_alive) req.headers.set("Connection", "close");

        const TimeNs start = clock.now();
        auto resp = client.send(req);
        const double elapsed = to_seconds(clock.now() - start);
        if (resp && resp.value().status < 500) {
          histograms[c].add(elapsed);
        } else {
          ++errors[c];
        }
        if (!options.keep_alive) client.disconnect();
      }
    });
  }
  for (auto& t : threads) t.join();

  LoadResult result;
  result.wall_seconds = to_seconds(clock.now() - wall_start);
  for (std::size_t c = 0; c < options.clients; ++c) {
    result.latency.merge(histograms[c]);
    result.errors += errors[c];
  }
  return result;
}

LoadResult run_webstone_load(const net::InetAddress& server,
                             const LoadOptions& options) {
  return run_load(server, options, [](Rng& rng, std::size_t) {
    return sample_webstone_target(rng);
  });
}

}  // namespace swala::workload
