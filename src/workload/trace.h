// Request traces: the common currency between the workload generators, the
// log analyzer (Table 1), the simulator (Figure 4, Tables 5-6) and the
// real-substrate replayers.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace swala::workload {

/// One logged/generated request.
struct TraceRecord {
  double arrival_seconds = 0.0;   ///< offset from trace start
  std::string target;             ///< origin-form target ("/cgi-bin/q?x=1")
  bool is_cgi = false;
  double service_seconds = 0.0;   ///< cost of executing it (re-execution cost)
  std::uint64_t response_bytes = 0;
};

using Trace = std::vector<TraceRecord>;

/// Text format, one record per line:
///   <arrival> <target> <cgi|file> <service_seconds> <bytes>
Status save_trace(const std::string& path, const Trace& trace);
Result<Trace> load_trace(const std::string& path);

/// Serialization to/from a string (used by tests).
std::string trace_to_string(const Trace& trace);
Result<Trace> trace_from_string(std::string_view text);

/// Summary numbers used by several experiments.
struct TraceSummary {
  std::size_t total_requests = 0;
  std::size_t cgi_requests = 0;
  std::size_t unique_targets = 0;
  std::size_t unique_cgi_targets = 0;
  double total_service_seconds = 0.0;
  double cgi_service_seconds = 0.0;
  double mean_file_service = 0.0;
  double mean_cgi_service = 0.0;
  double max_service = 0.0;
};

TraceSummary summarize(const Trace& trace);

}  // namespace swala::workload
