#include "workload/clf.h"

#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace swala::workload {

Result<std::time_t> parse_clf_date(std::string_view text) {
  // "10/Oct/1997:13:55:36 -0700"
  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  char buf[64];
  if (text.size() >= sizeof(buf)) {
    return Status(StatusCode::kInvalidArgument, "date too long");
  }
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';

  std::tm tm{};
  char mon[4] = {0};
  int tz_hours = 0, tz_minutes = 0;
  char tz_sign = '+';
  const int fields =
      std::sscanf(buf, "%d/%3s/%d:%d:%d:%d %c%2d%2d", &tm.tm_mday, mon,
                  &tm.tm_year, &tm.tm_hour, &tm.tm_min, &tm.tm_sec, &tz_sign,
                  &tz_hours, &tz_minutes);
  if (fields < 6) {
    return Status(StatusCode::kInvalidArgument, "malformed CLF date");
  }
  tm.tm_year -= 1900;
  tm.tm_mon = -1;
  for (int i = 0; i < 12; ++i) {
    if (std::strcmp(mon, kMonths[i]) == 0) {
      tm.tm_mon = i;
      break;
    }
  }
  if (tm.tm_mon < 0) {
    return Status(StatusCode::kInvalidArgument, "bad CLF month");
  }
  std::time_t t = timegm(&tm);
  if (fields == 9) {
    const int offset = tz_hours * 3600 + tz_minutes * 60;
    t += (tz_sign == '-' ? offset : -offset);  // normalize to UTC
  }
  return t;
}

bool parse_clf_line(std::string_view line, ClfRecord* out) {
  *out = ClfRecord{};
  line = trim(line);
  if (line.empty()) return false;

  // host ident authuser
  const std::size_t host_end = line.find(' ');
  if (host_end == std::string_view::npos) return false;
  out->host = std::string(line.substr(0, host_end));

  // [date]
  const std::size_t date_open = line.find('[');
  const std::size_t date_close = line.find(']');
  if (date_open == std::string_view::npos ||
      date_close == std::string_view::npos || date_close < date_open) {
    return false;
  }
  auto date = parse_clf_date(line.substr(date_open + 1, date_close - date_open - 1));
  if (!date) return false;
  out->timestamp = date.value();

  // "request"
  const std::size_t quote1 = line.find('"', date_close);
  if (quote1 == std::string_view::npos) return false;
  const std::size_t quote2 = line.find('"', quote1 + 1);
  if (quote2 == std::string_view::npos) return false;
  const auto request =
      split_trimmed(line.substr(quote1 + 1, quote2 - quote1 - 1), ' ');
  if (request.size() < 2) return false;  // "GET /x" without version is legal CLF
  out->method = request[0];
  out->target = request[1];

  // status bytes ("-" means zero bytes)
  const auto rest = split_trimmed(line.substr(quote2 + 1), ' ');
  if (rest.size() < 2) return false;
  std::uint64_t status = 0;
  if (!parse_u64(rest[0], &status) || status < 100 || status > 599) return false;
  out->status = static_cast<int>(status);
  if (rest[1] == "-") {
    out->bytes = 0;
  } else if (!parse_u64(rest[1], &out->bytes)) {
    return false;
  }
  return true;
}

Result<Trace> load_clf_trace(const std::string& path,
                             const ClfOptions& options) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status(StatusCode::kNotFound, "cannot open CLF log: " + path);
  }
  Trace trace;
  char line[4096];
  std::time_t first_ts = 0;
  bool have_first = false;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ClfRecord record;
    if (!parse_clf_line(line, &record)) continue;
    if (options.only_successes && (record.status < 200 || record.status >= 300)) {
      continue;
    }
    if (!have_first) {
      first_ts = record.timestamp;
      have_first = true;
    }
    TraceRecord r;
    r.arrival_seconds = static_cast<double>(record.timestamp - first_ts);
    r.target = record.target;
    // Classify on the decoded path only (query excluded from the glob).
    const std::size_t q = record.target.find('?');
    const std::string path_only = record.target.substr(0, q);
    r.is_cgi = glob_match(options.cgi_pattern, path_only);
    r.service_seconds = r.is_cgi ? options.cgi_service_seconds
                                 : options.file_service_seconds;
    r.response_bytes = record.bytes;
    trace.push_back(std::move(r));
  }
  std::fclose(file);
  return trace;
}

}  // namespace swala::workload
