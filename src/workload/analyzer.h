// Access-log analysis (§3, Table 1): for each caching threshold, how many
// long-running CGI requests repeat, how many cache entries would exploit all
// repetition, and how much service time caching would save.
#pragma once

#include <vector>

#include "workload/trace.h"

namespace swala::workload {

/// One row of Table 1.
struct ThresholdAnalysis {
  double threshold_seconds = 0.0;
  std::size_t long_requests = 0;    ///< CGI requests with service >= threshold
  std::size_t total_repeats = 0;    ///< requests that repeat a previous one
  std::size_t unique_repeated = 0;  ///< cache entries needed for all repetition
  double time_saved_seconds = 0.0;  ///< service time the repeats would save
  double saved_percent = 0.0;       ///< of the whole trace's service time
};

/// Computes one Table-1 row.
ThresholdAnalysis analyze_threshold(const Trace& trace, double threshold);

/// Computes the full table for the given thresholds (paper: 0.5, 1, 2, 4).
std::vector<ThresholdAnalysis> analyze_thresholds(
    const Trace& trace, const std::vector<double>& thresholds);

/// Theoretical hit upper bound for a trace replayed against an infinite
/// cache: total cacheable requests minus distinct cacheable targets
/// (§5.3's "upper bound on hits").
std::size_t hit_upper_bound(const Trace& trace);

}  // namespace swala::workload
