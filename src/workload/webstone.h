// WebStone-like load generation (§5.1). WebStone is the 1990s SGI benchmark
// the paper uses; we reproduce its closed-loop client model and its standard
// file mix: 500 B 35 %, 5 KB 50 %, 50 KB 14 %, 500 KB 0.9 %, 1 MB 0.1 %.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "net/socket.h"

namespace swala::workload {

/// The standard WebStone file set.
struct WebStoneFile {
  std::string name;
  std::size_t bytes;
  double probability;
};

/// The published mix.
const std::vector<WebStoneFile>& webstone_mix();

/// Writes the mix's files under `dir` (created if needed). Returns the
/// paths relative to the docroot ("/f500.html", ...).
Result<std::vector<std::string>> make_webstone_docroot(const std::string& dir);

/// Samples a target path according to the mix probabilities.
std::string sample_webstone_target(Rng& rng);

/// Closed-loop HTTP load driver: `clients` threads, each sending
/// `requests_per_client` back-to-back requests produced by `make_target`
/// and recording per-request latency.
struct LoadResult {
  LatencyHistogram latency;
  std::uint64_t errors = 0;
  double wall_seconds = 0.0;

  double throughput_rps() const {
    return wall_seconds > 0 ? static_cast<double>(latency.count()) / wall_seconds
                            : 0.0;
  }
};

struct LoadOptions {
  std::size_t clients = 8;
  std::size_t requests_per_client = 100;
  bool keep_alive = true;
  int timeout_ms = 60000;
  std::uint64_t seed = 1;
};

/// `make_target(rng, i)` produces the target for a client's i-th request.
LoadResult run_load(const net::InetAddress& server, const LoadOptions& options,
                    const std::function<std::string(Rng&, std::size_t)>& make_target);

/// Convenience wrapper using the WebStone mix.
LoadResult run_webstone_load(const net::InetAddress& server,
                             const LoadOptions& options);

}  // namespace swala::workload
