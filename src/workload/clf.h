// Common Log Format import. The paper's §3 study started from a standard
// web server access log (the ADL's); this loader turns any NCSA
// Common-Log-Format file into a workload::Trace so the same analysis and
// replay runs on real-world logs:
//
//   host ident authuser [10/Oct/1997:13:55:36 -0700] "GET /x HTTP/1.0" 200 2326
//
// CLF has no service times, so they are estimated the way the paper's
// authors did it in reverse: requests matching the CGI pattern get the
// CGI default, everything else the file default (both configurable; tune
// them from your server's measured means or use a Swala access log, which
// records real service times).
#pragma once

#include <ctime>
#include <string>

#include "common/status.h"
#include "workload/trace.h"

namespace swala::workload {

struct ClfOptions {
  /// Paths matching this glob are treated as dynamic requests.
  std::string cgi_pattern = "/cgi-bin/*";
  double cgi_service_seconds = 1.6;   ///< the ADL's measured mean
  double file_service_seconds = 0.03;
  /// Skip entries with non-2xx status (failed requests are not cacheable).
  bool only_successes = false;
};

/// Parses one CLF line. Returns false on malformed input.
struct ClfRecord {
  std::string host;
  std::time_t timestamp = 0;
  std::string method;
  std::string target;
  int status = 0;
  std::uint64_t bytes = 0;
};

bool parse_clf_line(std::string_view line, ClfRecord* out);

/// Loads a CLF file as a trace; malformed lines are skipped.
Result<Trace> load_clf_trace(const std::string& path,
                             const ClfOptions& options = {});

/// Parses a CLF timestamp "10/Oct/1997:13:55:36 -0700" to UNIX time.
Result<std::time_t> parse_clf_date(std::string_view text);

}  // namespace swala::workload
