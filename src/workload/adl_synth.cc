#include "workload/adl_synth.h"

#include <algorithm>
#include <cmath>

namespace swala::workload {
namespace {

std::string cgi_target(std::size_t query_id) {
  // Shaped like the ADL's spatial-query CGIs.
  return "/cgi-bin/adl/query?session=browse&qid=" + std::to_string(query_id);
}

std::string cold_cgi_target(std::size_t query_id) {
  return "/cgi-bin/adl/search?scope=full&qid=" + std::to_string(query_id);
}

std::string file_target(std::size_t file_id) {
  return "/collection/tile" + std::to_string(file_id) + ".gif";
}

}  // namespace

Trace synthesize_adl_trace(const AdlOptions& options) {
  Rng rng(options.seed);

  // Pre-draw a fixed service time per distinct CGI query: re-executions of
  // the same query cost the same, which is what makes caching worthwhile.
  const auto clamp_cost = [&](double cost) {
    return std::clamp(cost, options.cgi_min_seconds, options.cgi_max_seconds);
  };
  std::vector<double> hot_cost(options.hot_queries);
  for (auto& cost : hot_cost) {
    cost = clamp_cost(
        rng.lognormal(options.hot_lognormal_mu, options.hot_lognormal_sigma));
  }
  std::vector<double> cold_cost(options.cold_queries);
  for (auto& cost : cold_cost) {
    cost = clamp_cost(rng.lognormal(options.cold_lognormal_mu,
                                    options.cold_lognormal_sigma));
  }

  // Per-file sizes/costs for the static side.
  std::vector<double> file_cost(options.unique_files);
  std::vector<std::uint64_t> file_bytes(options.unique_files);
  for (std::size_t i = 0; i < options.unique_files; ++i) {
    file_cost[i] = rng.exponential(options.file_mean_seconds);
    file_bytes[i] =
        static_cast<std::uint64_t>(rng.bounded_pareto(1.2, 512, 1 << 20));
  }

  const ZipfDistribution hot_pop(options.hot_queries, options.hot_zipf_theta);
  const ZipfDistribution cold_pop(options.cold_queries, options.cold_zipf_theta);
  const ZipfDistribution file_pop(options.unique_files, options.file_zipf_theta);

  Trace trace;
  trace.reserve(options.total_requests);
  double now = 0.0;
  for (std::size_t i = 0; i < options.total_requests; ++i) {
    now += rng.exponential(options.mean_interarrival_seconds);
    TraceRecord r;
    r.arrival_seconds = now;
    if (rng.bernoulli(options.cgi_fraction)) {
      r.is_cgi = true;
      if (rng.bernoulli(options.hot_fraction)) {
        const std::size_t qid = hot_pop.sample(rng) - 1;
        r.target = cgi_target(qid);
        r.service_seconds = hot_cost[qid];
      } else {
        const std::size_t qid = cold_pop.sample(rng) - 1;
        r.target = cold_cgi_target(qid);
        r.service_seconds = cold_cost[qid];
      }
      r.response_bytes = 4096 + (i % 64) * 256;  // HTML result pages
    } else {
      const std::size_t fid = file_pop.sample(rng) - 1;
      r.target = file_target(fid);
      r.is_cgi = false;
      r.service_seconds = file_cost[fid];
      r.response_bytes = file_bytes[fid];
    }
    trace.push_back(std::move(r));
  }
  return trace;
}

Trace synthesize_request_mix(const MixOptions& options) {
  Rng rng(options.seed);
  const std::size_t total = options.total;
  const std::size_t unique = std::min(options.unique, options.total);

  // Build the reference string with an LRU-stack model: `stack` holds every
  // target seen so far, most recently used last. A repeat re-references
  // either a recent entry (geometric stack distance) or any older one.
  std::vector<std::size_t> stack;
  stack.reserve(unique);
  std::size_t next_unique = 0;
  const double geo_p =
      1.0 / std::max(1.0, options.mean_stack_distance);

  Trace trace;
  trace.reserve(total);
  double now = 0.0;
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t remaining_slots = total - i;
    const std::size_t remaining_new = unique - next_unique;
    bool is_new;
    if (stack.empty() || remaining_new == remaining_slots) {
      is_new = true;
    } else if (remaining_new == 0) {
      is_new = false;
    } else {
      is_new = rng.bernoulli(static_cast<double>(remaining_new) /
                             static_cast<double>(remaining_slots));
    }

    std::size_t target_id;
    if (is_new) {
      target_id = next_unique++;
      stack.push_back(target_id);
    } else {
      std::size_t depth;  // 0 = most recently used
      if (rng.bernoulli(options.local_repeat_fraction)) {
        // Geometric stack distance beyond the minimum (temporal locality).
        double u;
        do {
          u = rng.next_double();
        } while (u <= 0.0);
        depth = options.min_stack_distance +
                static_cast<std::size_t>(std::log(u) / std::log(1.0 - geo_p));
      } else {
        // Long-range repeat: uniform over everything seen.
        depth = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(stack.size()) - 1));
      }
      depth = std::min(depth, stack.size() - 1);
      const std::size_t index = stack.size() - 1 - depth;
      target_id = stack[static_cast<std::size_t>(index)];
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(index));
      stack.push_back(target_id);  // becomes most recently used
    }

    TraceRecord r;
    now += rng.exponential(0.01);
    r.arrival_seconds = now;
    r.target = cgi_target(target_id);
    r.is_cgi = true;
    r.service_seconds = options.service_seconds;
    r.response_bytes = 2048;
    trace.push_back(std::move(r));
  }
  return trace;
}

Trace synthesize_request_mix(std::size_t total, std::size_t unique,
                             double service_seconds, std::uint64_t seed) {
  MixOptions options;
  options.total = total;
  options.unique = unique;
  options.service_seconds = service_seconds;
  options.seed = seed;
  return synthesize_request_mix(options);
}

}  // namespace swala::workload
