// Synthetic Alexandria Digital Library workload.
//
// The paper's Table 1 and the multi-node experiments are driven by the real
// ADL access log (69,990 requests, Sep-Oct 1997), which is not available.
// This synthesizer generates traces calibrated to every statistic the paper
// publishes about that log (§3):
//   * 69,337 analyzable requests, 41.3 % CGI
//   * mean file fetch 0.03 s; mean CGI 1.6 s; longest request ≈ 110 s
//   * CGI execution = 97 % of total service time (≈ 46,156 s total)
//   * strong repetition among CGI requests: caching everything above a 1 s
//     threshold yields ≈ 189 hot entries, ≈ 2,899 hits and ≈ 29 % of the
//     total service time saved
//
// CGI targets are drawn Zipf-style from a finite population of distinct
// queries whose per-query service times follow a truncated lognormal;
// repetition therefore concentrates on hot queries the way digital-library
// browsing does.
#pragma once

#include "common/random.h"
#include "workload/trace.h"

namespace swala::workload {

struct AdlOptions {
  std::size_t total_requests = 69337;
  double cgi_fraction = 0.413;

  /// The CGI stream is a hot/cold mixture, which is what produces the
  /// paper's Table-1 signature (a small number of hot entries — 189 at the
  /// 1 s threshold — capturing ~29 % of all service time):
  ///  * hot draws (popular map views) come Zipf-skewed from a small pool of
  ///    expensive queries,
  ///  * cold draws come near-uniformly from a huge pool of one-off queries.
  double hot_fraction = 0.12;
  std::size_t hot_queries = 200;
  double hot_zipf_theta = 0.9;
  double hot_lognormal_mu = 0.784;   ///< mean ≈ 4.5 s
  double hot_lognormal_sigma = 1.2;
  std::size_t cold_queries = 1000000;
  double cold_zipf_theta = 0.0;
  double cold_lognormal_mu = -0.66;  ///< mean ≈ 1.2 s
  double cold_lognormal_sigma = 1.3;
  double cgi_max_seconds = 110.0;
  double cgi_min_seconds = 0.01;

  /// File-fetch cost (mean ≈ 0.03 s) and population.
  double file_mean_seconds = 0.03;
  std::size_t unique_files = 3000;
  double file_zipf_theta = 0.8;

  /// Mean request inter-arrival (exponential); only matters for replay.
  double mean_interarrival_seconds = 0.05;

  std::uint64_t seed = 19980728;  // HPDC'98
};

/// Generates one synthetic ADL-like trace.
Trace synthesize_adl_trace(const AdlOptions& options);

/// Parameters for the §5.2/§5.3 workload: exactly `total` cacheable CGI
/// requests over `unique` distinct targets, "with the same number of
/// repeats and the same amount of temporal locality as the original log".
/// Temporal locality is modelled with an LRU stack-distance mixture: most
/// repeats re-reference something seen recently (geometric stack distance),
/// the rest re-reference uniformly far back. The defaults are calibrated so
/// a 20-entry LRU cache catches ≈29 % of the repeats (the paper's Table-6
/// single-node point) while a 160-entry cache catches ≈74 % (its 8-node
/// cooperative point).
struct MixOptions {
  std::size_t total = 1600;
  std::size_t unique = 1122;
  double service_seconds = 1.0;
  /// Repeats never re-reference anything closer than this (a user takes a
  /// few interactions before re-visiting a view); this is what keeps false
  /// misses rare in the paper despite concurrent clients.
  std::size_t min_stack_distance = 12;
  double mean_stack_distance = 18.0;   ///< geometric component's mean (beyond min)
  double local_repeat_fraction = 0.75; ///< rest re-reference uniformly
  std::uint64_t seed = 5399;
};

Trace synthesize_request_mix(const MixOptions& options);

/// Convenience overload (paper's 1600/1122 point with custom counts).
Trace synthesize_request_mix(std::size_t total, std::size_t unique,
                             double service_seconds, std::uint64_t seed);

}  // namespace swala::workload
