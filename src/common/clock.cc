#include "common/clock.h"

#include <chrono>

namespace swala {

TimeNs RealClock::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock* RealClock::instance() {
  static RealClock clock;
  return &clock;
}

}  // namespace swala
