// INI-style configuration parser used for swala.conf. Supports sections,
// `key = value` pairs, `#`/`;` comments, and repeated keys (later wins for
// scalar getters; `get_all` exposes every occurrence for rule lists).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace swala {

/// Parsed configuration: an ordered multimap of (section, key) -> values.
class Config {
 public:
  /// Parses configuration text. Lines: `[section]`, `key = value`, comments.
  static Result<Config> parse(std::string_view text);

  /// Loads and parses a file.
  static Result<Config> load(const std::string& path);

  /// Scalar getters; `section` may be "" for the top-level section.
  /// Repeated keys resolve to the last occurrence.
  std::string get_string(std::string_view section, std::string_view key,
                         std::string_view fallback = "") const;
  std::int64_t get_int(std::string_view section, std::string_view key,
                       std::int64_t fallback = 0) const;
  double get_double(std::string_view section, std::string_view key,
                    double fallback = 0.0) const;
  bool get_bool(std::string_view section, std::string_view key,
                bool fallback = false) const;

  /// All values for a repeated key, in file order.
  std::vector<std::string> get_all(std::string_view section,
                                   std::string_view key) const;

  bool has(std::string_view section, std::string_view key) const;

  /// All section names, in first-appearance order.
  std::vector<std::string> sections() const { return section_order_; }

  /// All (key, value) pairs in a section, in file order.
  std::vector<std::pair<std::string, std::string>> entries(
      std::string_view section) const;

  /// Programmatic setter (appends an occurrence), used by tests and builders.
  void set(std::string_view section, std::string_view key,
           std::string_view value);

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  // section name -> ordered entries
  std::map<std::string, std::vector<Entry>, std::less<>> sections_;
  std::vector<std::string> section_order_;

  const std::string* find_last(std::string_view section,
                               std::string_view key) const;
};

}  // namespace swala
