#include "common/config.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace swala {

Result<Config> Config::parse(std::string_view text) {
  Config cfg;
  std::string current_section;
  cfg.section_order_.push_back("");
  cfg.sections_[""];

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    line = trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;

    // Strip inline comments: a ';' or '#' preceded by whitespace starts a
    // comment. A marker glued to the value (e.g. a glob "*#*") is kept.
    for (std::size_t i = 1; i < line.size(); ++i) {
      if ((line[i] == ';' || line[i] == '#') &&
          (line[i - 1] == ' ' || line[i - 1] == '\t')) {
        line = trim(line.substr(0, i));
        break;
      }
    }

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return Status(StatusCode::kInvalidArgument,
                      "config line " + std::to_string(line_no) +
                          ": malformed section header");
      }
      current_section = std::string(trim(line.substr(1, line.size() - 2)));
      if (cfg.sections_.find(current_section) == cfg.sections_.end()) {
        cfg.section_order_.push_back(current_section);
      }
      cfg.sections_[current_section];
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status(StatusCode::kInvalidArgument,
                    "config line " + std::to_string(line_no) +
                        ": expected key = value");
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "config line " + std::to_string(line_no) + ": empty key");
    }
    cfg.sections_[current_section].push_back({key, value});
  }
  return cfg;
}

Result<Config> Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kNotFound, "cannot open config file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

const std::string* Config::find_last(std::string_view section,
                                     std::string_view key) const {
  const auto it = sections_.find(section);
  if (it == sections_.end()) return nullptr;
  const std::string* found = nullptr;
  for (const auto& entry : it->second) {
    if (entry.key == key) found = &entry.value;
  }
  return found;
}

std::string Config::get_string(std::string_view section, std::string_view key,
                               std::string_view fallback) const {
  const std::string* v = find_last(section, key);
  return v ? *v : std::string(fallback);
}

std::int64_t Config::get_int(std::string_view section, std::string_view key,
                             std::int64_t fallback) const {
  const std::string* v = find_last(section, key);
  if (!v) return fallback;
  std::uint64_t out = 0;
  std::string_view s = trim(*v);
  bool neg = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  if (!parse_u64(s, &out)) return fallback;
  const auto magnitude = static_cast<std::int64_t>(out);
  return neg ? -magnitude : magnitude;
}

double Config::get_double(std::string_view section, std::string_view key,
                          double fallback) const {
  const std::string* v = find_last(section, key);
  if (!v) return fallback;
  double out = 0.0;
  return parse_double(*v, &out) ? out : fallback;
}

bool Config::get_bool(std::string_view section, std::string_view key,
                      bool fallback) const {
  const std::string* v = find_last(section, key);
  if (!v) return fallback;
  const std::string lower = to_lower(trim(*v));
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") return true;
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") return false;
  return fallback;
}

std::vector<std::string> Config::get_all(std::string_view section,
                                         std::string_view key) const {
  std::vector<std::string> out;
  const auto it = sections_.find(section);
  if (it == sections_.end()) return out;
  for (const auto& entry : it->second) {
    if (entry.key == key) out.push_back(entry.value);
  }
  return out;
}

bool Config::has(std::string_view section, std::string_view key) const {
  return find_last(section, key) != nullptr;
}

std::vector<std::pair<std::string, std::string>> Config::entries(
    std::string_view section) const {
  std::vector<std::pair<std::string, std::string>> out;
  const auto it = sections_.find(section);
  if (it == sections_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& entry : it->second) out.emplace_back(entry.key, entry.value);
  return out;
}

void Config::set(std::string_view section, std::string_view key,
                 std::string_view value) {
  const std::string sec(section);
  if (sections_.find(sec) == sections_.end()) section_order_.push_back(sec);
  sections_[sec].push_back({std::string(key), std::string(value)});
}

}  // namespace swala
