// String helpers shared across the codebase: trimming, splitting,
// case-insensitive comparison, and the shell-style glob matcher used by the
// cacheability rule engine.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace swala {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits and trims each field, dropping empties ("a, b ,,c" -> {a,b,c}).
std::vector<std::string> split_trimmed(std::string_view s, char delim);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Shell-style glob with `*` (any run, including '/') and `?` (single char).
/// Iterative two-pointer algorithm: O(len(text) * len(pattern)) worst case,
/// no recursion.
bool glob_match(std::string_view pattern, std::string_view text);

/// Parses a non-negative integer; returns false on any malformed input.
bool parse_u64(std::string_view s, std::uint64_t* out);

/// Parses a double; returns false on malformed input.
bool parse_double(std::string_view s, double* out);

/// Renders bytes with binary units ("1.5 KiB") for reports.
std::string format_bytes(std::uint64_t bytes);

}  // namespace swala
