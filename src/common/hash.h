// Small non-cryptographic hashing helpers (FNV-1a) used for cache keys and
// deterministic request fingerprints, plus the seeded consistent-hash ring
// that backs partitioned directory ownership (cluster.directory_mode).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace swala {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(std::string_view data);

/// Continue an FNV-1a hash (for hashing several fields into one digest).
std::uint64_t fnv1a64_continue(std::uint64_t state, std::string_view data);

/// Cheap 64-bit integer mix (splitmix64 finalizer); good avalanche.
std::uint64_t mix64(std::uint64_t x);

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) over a
/// byte string. Used by the durable cache-file format to detect torn writes
/// and silent corruption; table-driven software implementation, no SSE4.2
/// dependency.
std::uint32_t crc32c(std::string_view data);

/// Continue a CRC-32C (for checksumming several buffers as one stream).
/// `state` is the value returned by a previous call (or 0 to start).
std::uint32_t crc32c_continue(std::uint32_t state, std::string_view data);

/// Consistent-hash ring with virtual nodes and seeded placement.
///
/// Each member contributes `vnodes` points on a 64-bit ring; a key is owned
/// by the member whose point first follows the key's hash (wrapping). Point
/// positions depend only on (seed, member id, replica index), so every node
/// that builds a ring from the same seed and membership computes identical
/// ownership without coordination, regardless of insertion order. Removing
/// a member deletes only its points: keys it owned redistribute among the
/// survivors, and no key moves between two surviving members.
///
/// Members are plain uint32 ids (the cluster layer's NodeId); the ring is
/// not thread-safe — callers that mutate membership concurrently with
/// owner_of must synchronize externally.
class HashRing {
 public:
  /// Returned by owner_of on an empty ring.
  static constexpr std::uint32_t kNoOwner = ~static_cast<std::uint32_t>(0);

  explicit HashRing(std::uint64_t seed = kDefaultSeed,
                    std::size_t vnodes = kDefaultVnodes);

  /// Adds `node`'s virtual points (idempotent; bumps version() when the
  /// membership actually changes).
  void add_node(std::uint32_t node);

  /// Removes `node`'s virtual points (idempotent; bumps version() when the
  /// membership actually changes).
  void remove_node(std::uint32_t node);

  bool contains(std::uint32_t node) const;

  /// The member owning `key`, or kNoOwner when the ring is empty.
  std::uint32_t owner_of(std::string_view key) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_points() const { return points_.size(); }
  std::uint64_t seed() const { return seed_; }
  std::size_t vnodes() const { return vnodes_; }

  /// Monotonic transition counter: incremented once per effective
  /// add_node/remove_node. Two rings built from the same seed and the same
  /// membership *sequence* report the same version, so the cluster layer
  /// can compare ring states across nodes without hashing the point set.
  std::uint64_t version() const { return version_; }

  /// Current members, sorted ascending.
  const std::vector<std::uint32_t>& members() const { return nodes_; }

  static constexpr std::uint64_t kDefaultSeed = 0x52494E47ULL;  // "RING"
  static constexpr std::size_t kDefaultVnodes = 64;

 private:
  std::uint64_t point_for(std::uint32_t node, std::uint32_t replica) const;

  std::uint64_t seed_;
  std::size_t vnodes_;
  /// Sorted by (point, node); the pair ordering breaks the (vanishingly
  /// rare) point collision deterministically.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
  std::vector<std::uint32_t> nodes_;  // sorted member ids
  std::uint64_t version_ = 0;         // effective membership transitions
};

}  // namespace swala
