// Small non-cryptographic hashing helpers (FNV-1a) used for cache keys and
// deterministic request fingerprints.
#pragma once

#include <cstdint>
#include <string_view>

namespace swala {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(std::string_view data);

/// Continue an FNV-1a hash (for hashing several fields into one digest).
std::uint64_t fnv1a64_continue(std::uint64_t state, std::string_view data);

/// Cheap 64-bit integer mix (splitmix64 finalizer); good avalanche.
std::uint64_t mix64(std::uint64_t x);

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) over a
/// byte string. Used by the durable cache-file format to detect torn writes
/// and silent corruption; table-driven software implementation, no SSE4.2
/// dependency.
std::uint32_t crc32c(std::string_view data);

/// Continue a CRC-32C (for checksumming several buffers as one stream).
/// `state` is the value returned by a previous call (or 0 to start).
std::uint32_t crc32c_continue(std::uint32_t state, std::string_view data);

}  // namespace swala
