// Small non-cryptographic hashing helpers (FNV-1a) used for cache keys and
// deterministic request fingerprints.
#pragma once

#include <cstdint>
#include <string_view>

namespace swala {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(std::string_view data);

/// Continue an FNV-1a hash (for hashing several fields into one digest).
std::uint64_t fnv1a64_continue(std::uint64_t state, std::string_view data);

/// Cheap 64-bit integer mix (splitmix64 finalizer); good avalanche.
std::uint64_t mix64(std::uint64_t x);

}  // namespace swala
