#include "common/hash.h"

#include <algorithm>

namespace swala {

std::uint64_t fnv1a64(std::string_view data) {
  return fnv1a64_continue(kFnvOffsetBasis, data);
}

std::uint64_t fnv1a64_continue(std::uint64_t state, std::string_view data) {
  for (unsigned char c : data) {
    state ^= c;
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

struct Crc32cTable {
  std::uint32_t entries[256];

  Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& crc_table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

std::uint32_t crc32c_continue(std::uint32_t state, std::string_view data) {
  const auto& table = crc_table().entries;
  std::uint32_t crc = ~state;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(std::string_view data) {
  return crc32c_continue(0, data);
}

HashRing::HashRing(std::uint64_t seed, std::size_t vnodes)
    : seed_(seed), vnodes_(vnodes == 0 ? 1 : vnodes) {}

std::uint64_t HashRing::point_for(std::uint32_t node,
                                  std::uint32_t replica) const {
  // Depends only on (seed, node, replica): every ring built from the same
  // seed places a member's points identically, whatever the join order.
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(node) << 32) | replica;
  return mix64(seed_ ^ mix64(packed));
}

void HashRing::add_node(std::uint32_t node) {
  const auto pos = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (pos != nodes_.end() && *pos == node) return;
  nodes_.insert(pos, node);
  points_.reserve(points_.size() + vnodes_);
  for (std::uint32_t r = 0; r < vnodes_; ++r) {
    points_.emplace_back(point_for(node, r), node);
  }
  std::sort(points_.begin(), points_.end());
  ++version_;
}

void HashRing::remove_node(std::uint32_t node) {
  const auto pos = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (pos == nodes_.end() || *pos != node) return;
  nodes_.erase(pos);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [node](const auto& p) {
                                 return p.second == node;
                               }),
                points_.end());
  ++version_;
}

bool HashRing::contains(std::uint32_t node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

std::uint32_t HashRing::owner_of(std::string_view key) const {
  if (points_.empty()) return kNoOwner;
  const std::uint64_t h = mix64(fnv1a64(key));
  // First point strictly after the key's hash, wrapping to the start.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](std::uint64_t value, const auto& p) { return value < p.first; });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

}  // namespace swala
