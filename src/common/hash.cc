#include "common/hash.h"

namespace swala {

std::uint64_t fnv1a64(std::string_view data) {
  return fnv1a64_continue(kFnvOffsetBasis, data);
}

std::uint64_t fnv1a64_continue(std::uint64_t state, std::string_view data) {
  for (unsigned char c : data) {
    state ^= c;
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

struct Crc32cTable {
  std::uint32_t entries[256];

  Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& crc_table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

std::uint32_t crc32c_continue(std::uint32_t state, std::string_view data) {
  const auto& table = crc_table().entries;
  std::uint32_t crc = ~state;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(std::string_view data) {
  return crc32c_continue(0, data);
}

}  // namespace swala
