#include "common/hash.h"

namespace swala {

std::uint64_t fnv1a64(std::string_view data) {
  return fnv1a64_continue(kFnvOffsetBasis, data);
}

std::uint64_t fnv1a64_continue(std::uint64_t state, std::string_view data) {
  for (unsigned char c : data) {
    state ^= c;
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace swala
