// Per-request deadline: a fixed point on a monotone Clock that every
// blocking step of a request budgets against. Threaded from the moment the
// first request byte arrives (server/context.cc) through cache lookup,
// remote fetch, the CGI concurrency gate and fork/exec, so a request can
// never outlive its configured budget no matter which stage is slow.
#pragma once

#include <algorithm>
#include <limits>

#include "common/clock.h"

namespace swala {

class Deadline {
 public:
  /// Default: unlimited (never expires). Keeps call sites that predate
  /// deadline propagation — and tests that want no budget — working.
  Deadline() = default;

  /// Expires `ms` milliseconds after `clock`'s current time. A non-positive
  /// budget yields an unlimited deadline (0 is the config idiom for
  /// "disabled", not "already expired").
  static Deadline after_ms(const Clock* clock, int ms) {
    Deadline d;
    if (clock != nullptr && ms > 0) {
      d.clock_ = clock;
      d.at_ = clock->now() + from_millis(ms);
    }
    return d;
  }

  bool unlimited() const { return clock_ == nullptr; }

  bool expired() const {
    return clock_ != nullptr && clock_->now() >= at_;
  }

  /// Remaining budget, clamped at zero. Unlimited deadlines report a huge
  /// value so `remaining_ms() > x` comparisons behave naturally.
  TimeNs remaining() const {
    if (clock_ == nullptr) return std::numeric_limits<TimeNs>::max();
    return std::max<TimeNs>(0, at_ - clock_->now());
  }

  int remaining_ms() const {
    const TimeNs ns = remaining();
    constexpr TimeNs kMaxMs = std::numeric_limits<int>::max();
    const TimeNs ms = ns / 1'000'000;
    return static_cast<int>(std::min(ms, kMaxMs));
  }

  double remaining_seconds() const { return to_seconds(remaining()); }

  /// Socket-timeout helper: the smaller of `cap_ms` and the remaining
  /// budget, never below 1 ms (0 means "no timeout" to setsockopt, which
  /// would invert the meaning for an already-expired deadline).
  int budget_ms(int cap_ms) const {
    if (unlimited()) return cap_ms;
    const int rem = remaining_ms();
    const int capped = cap_ms > 0 ? std::min(cap_ms, rem) : rem;
    return std::max(1, capped);
  }

 private:
  const Clock* clock_ = nullptr;  ///< null = unlimited
  TimeNs at_ = 0;
};

}  // namespace swala
