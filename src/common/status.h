// Lightweight error-handling primitives used across all Swala libraries.
//
// Most fallible operations return `Result<T>` (a value or a `Status`).
// `Status` itself is returned by operations with no interesting value.
// Exceptions are reserved for programming errors and constructor failures.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace swala {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTimeout,
  kIoError,
  kClosed,
  kUnavailable,
  kInternal,
  kPermissionDenied,
  kResourceExhausted,
  kCorrupt,  ///< stored data failed integrity verification (bad magic/CRC)
  kWouldBlock,  ///< non-blocking I/O has no data/space right now (EAGAIN)
};

/// Human-readable name of a `StatusCode` ("ok", "not_found", ...).
const char* status_code_name(StatusCode code);

/// Outcome of an operation: a code plus an optional diagnostic message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "code: message" rendering for logs.
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type `T` or a `Status` explaining why it is absent.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}               // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {}        // NOLINT(google-explicit-constructor)
  Result(StatusCode code, std::string message)
      : state_(Status(code, std::move(message))) {}

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return is_ok(); }

  /// Precondition: `is_ok()`.
  T& value() & { return std::get<T>(state_); }
  const T& value() const& { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(state_) : std::move(fallback);
  }

  /// Precondition: `!is_ok()`.
  [[nodiscard]] const Status& status() const { return std::get<Status>(state_); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace swala
