#include "common/status.h"

namespace swala {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kClosed: return "closed";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kPermissionDenied: return "permission_denied";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kCorrupt: return "corrupt";
    case StatusCode::kWouldBlock: return "would_block";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace swala
