#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace swala {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_trimmed(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (const auto& field : split(s, delim)) {
    auto t = trim(field);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), *out);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double* out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ >= 11.
  const auto res = std::from_chars(s.data(), s.data() + s.size(), *out);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

}  // namespace swala
