// Online statistics used by the benchmark harnesses and the simulator:
// Welford mean/variance, a log-bucketed latency histogram with percentile
// queries, and simple monotonic counters.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace swala {

/// Streaming mean / variance / min / max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Latency histogram with geometric buckets spanning [1 ns, ~1000 s] when
/// fed seconds. Percentile queries interpolate inside a bucket; relative
/// error is bounded by the bucket ratio (~5 %).
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records a non-negative sample (seconds).
  void add(double seconds);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return total_; }
  double percentile(double p) const;  ///< p in [0, 100]
  double mean() const { return stats_.mean(); }
  double max() const { return stats_.max(); }
  double min() const { return stats_.min(); }

  /// "mean=... p50=... p95=... p99=... max=..." for report lines.
  std::string summary() const;

 private:
  static constexpr int kBuckets = 512;
  static int bucket_for(double seconds);
  static double bucket_lower(int index);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
  OnlineStats stats_;
};

/// Fixed-width table printer for the experiment harnesses: aligns columns,
/// prints a header row and separator the way the paper's tables read.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders the table to a string (used by benches; keeps output testable).
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt_double(double v, int precision);

}  // namespace swala
