#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace swala {

void OnlineStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

namespace {
// Geometric buckets: bucket i covers [kMinValue * r^i, kMinValue * r^(i+1)).
constexpr double kMinValue = 1e-9;
constexpr double kMaxValue = 1e3;
}  // namespace

LatencyHistogram::LatencyHistogram() = default;

int LatencyHistogram::bucket_for(double seconds) {
  if (seconds <= kMinValue) return 0;
  if (seconds >= kMaxValue) return kBuckets - 1;
  // log-uniform mapping of [kMinValue, kMaxValue] onto [0, kBuckets).
  const double frac =
      std::log(seconds / kMinValue) / std::log(kMaxValue / kMinValue);
  int idx = static_cast<int>(frac * (kBuckets - 1));
  return std::clamp(idx, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_lower(int index) {
  const double frac = static_cast<double>(index) / (kBuckets - 1);
  return kMinValue * std::pow(kMaxValue / kMinValue, frac);
}

void LatencyHistogram::add(double seconds) {
  seconds = std::max(seconds, 0.0);
  ++buckets_[static_cast<std::size_t>(bucket_for(seconds))];
  ++total_;
  stats_.add(seconds);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  stats_.merge(other.stats_);
}

double LatencyHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      // Midpoint of the bucket in log space.
      return std::sqrt(bucket_lower(i) * bucket_lower(std::min(i + 1, kBuckets - 1)));
    }
  }
  return stats_.max();
}

std::string LatencyHistogram::summary() const {
  std::ostringstream out;
  out << "n=" << total_ << " mean=" << fmt_double(mean(), 6)
      << " p50=" << fmt_double(percentile(50), 6)
      << " p95=" << fmt_double(percentile(95), 6)
      << " p99=" << fmt_double(percentile(99), 6)
      << " max=" << fmt_double(max(), 6);
  return out.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace swala
