// Fixed-size worker pool. The Swala request threads, the WebStone client
// drivers and the cluster daemons all run on explicit pools so thread counts
// are controlled by configuration, never ad hoc.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace swala {

class ThreadPool {
 public:
  /// Starts `threads` workers immediately.
  explicit ThreadPool(std::size_t threads, std::size_t queue_capacity = 4096);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks if the queue is full. Returns false after
  /// shutdown has begun.
  bool submit(std::function<void()> task);

  /// Enqueues a task and exposes its completion/result as a future.
  template <typename F>
  auto submit_with_result(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Stops accepting work, drains the queue, joins workers. Idempotent.
  void shutdown();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace swala
