// Deterministic random number generation and the distributions the workload
// generators need: uniform, exponential, lognormal, bounded Pareto and Zipf.
//
// All randomness in Swala flows through `Rng` seeded explicitly, so every
// experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace swala {

/// xoshiro256** PRNG. Small, fast, and identical across platforms (unlike
/// std::mt19937_64 + std::*_distribution, whose outputs are unspecified).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Lognormal with parameters of the underlying normal (mu, sigma).
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double alpha, double lo, double hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Zipf distribution over ranks {1..n} with exponent `theta` (theta >= 0;
/// theta = 0 is uniform). Uses a precomputed CDF with binary search: exact,
/// O(n) memory, O(log n) sampling — fine for the ≤10^6 populations we use.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double theta);

  /// Rank in [1, n]; rank 1 is the most popular.
  std::size_t sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double theta_;
  double norm_;
};

}  // namespace swala
