// Minimal thread-safe leveled logger.
//
//   SWALA_LOG(Info) << "node " << id << " joined";
//
// The global level defaults to Warn so tests and benches stay quiet; servers
// raise it from configuration.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace swala {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

/// Process-wide minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

/// One log statement: accumulates a line, emits it to stderr on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

bool log_enabled(LogLevel level);

}  // namespace detail
}  // namespace swala

#define SWALA_LOG(severity)                                            \
  if (!::swala::detail::log_enabled(::swala::LogLevel::k##severity)) { \
  } else                                                               \
    ::swala::detail::LogLine(::swala::LogLevel::k##severity, __FILE__, __LINE__)
