#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/hash.h"

namespace swala {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 per the xoshiro authors' advice.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = mix64(x);
  }
  // Avoid the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to kill modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::bernoulli(double p) {
  return next_double() < p;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_[i - 1] = sum;
  }
  norm_ = sum;
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  if (rank == 0 || rank > cdf_.size()) return 0.0;
  return (1.0 / std::pow(static_cast<double>(rank), theta_)) / norm_;
}

}  // namespace swala
