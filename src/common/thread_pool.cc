#include "common/thread_pool.h"

namespace swala {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queue_(queue_capacity) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  return queue_.push(std::move(task));
}

void ThreadPool::shutdown() {
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    (*task)();
  }
}

}  // namespace swala
