// Time abstraction shared by the real server and the discrete-event
// simulator. All Swala components that need "now" take a `Clock*`, so the
// same cache/directory code runs against wall-clock time in the server and
// against virtual time in the simulator and in unit tests.
#pragma once

#include <atomic>
#include <cstdint>

namespace swala {

/// Nanoseconds since an arbitrary epoch (steady, monotone).
using TimeNs = std::int64_t;

constexpr TimeNs kNanosPerSecond = 1'000'000'000;

constexpr double to_seconds(TimeNs t) {
  return static_cast<double>(t) / kNanosPerSecond;
}

constexpr TimeNs from_seconds(double s) {
  return static_cast<TimeNs>(s * kNanosPerSecond);
}

constexpr TimeNs from_millis(double ms) {
  return static_cast<TimeNs>(ms * 1e6);
}

/// Monotone time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time; must never decrease between calls.
  virtual TimeNs now() const = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  TimeNs now() const override;

  /// Shared process-wide instance.
  static RealClock* instance();
};

/// Manually advanced clock for tests and the simulator.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeNs start = 0) : now_(start) {}

  TimeNs now() const override { return now_.load(std::memory_order_relaxed); }

  void advance(TimeNs delta) { now_.fetch_add(delta, std::memory_order_relaxed); }
  void set(TimeNs t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<TimeNs> now_;
};

}  // namespace swala
