// Bounded blocking MPMC queue used between acceptor and request threads and
// inside the cluster messaging layer. Close semantics: after `close()`,
// producers fail fast and consumers drain remaining items then see kClosed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace swala {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Blocks up to `timeout` while empty; nullopt on timeout or once closed
  /// and drained. Lets a consumer linger briefly for more work (batching)
  /// without committing to a full blocking pop.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace swala
