#include "http/client.h"

#include "common/logging.h"
#include "common/strings.h"
#include "http/parser.h"

namespace swala::http {

Result<Response> HttpClient::get(const std::string& target) {
  Request req;
  req.method = Method::kGet;
  req.target = target;
  req.version = Version::kHttp11;
  req.headers.set("Host", server_.to_string());
  return send(req);
}

Result<Response> HttpClient::send(const Request& req) {
  if (stream_.valid()) {
    auto resp = roundtrip(req);
    if (resp) return resp;
    // The pooled connection may have been closed by the server; retry once
    // on a fresh connection.
    stream_.close();
  }
  auto conn = net::TcpStream::connect(server_, timeout_ms_);
  if (!conn) return conn.status();
  stream_ = std::move(conn.value());
  (void)stream_.set_no_delay(true);
  (void)stream_.set_recv_timeout(timeout_ms_);
  (void)stream_.set_send_timeout(timeout_ms_);
  return roundtrip(req);
}

Result<Response> HttpClient::roundtrip(const Request& req) {
  if (auto st = stream_.write_all(serialize_request(req)); !st.is_ok()) {
    return st;
  }

  // Read the head, then the Content-Length body (or until close).
  std::string data;
  char buf[16 * 1024];
  std::size_t head_end = std::string::npos;
  std::size_t body_start = 0;
  std::optional<std::uint64_t> content_length;
  bool bodiless = false;

  for (;;) {
    if (head_end == std::string::npos) {
      const std::size_t rn = data.find("\r\n\r\n");
      if (rn != std::string::npos) {
        head_end = rn;
        body_start = rn + 4;
        Response head_only;
        if (!parse_response_head(data, &head_only)) {
          return Status(StatusCode::kInternal, "unparsable response head");
        }
        // HEAD responses and bodiless status codes carry Content-Length
        // describing the *would-be* body; no bytes follow (RFC 9110 §6.4.1).
        bodiless = req.method == Method::kHead || head_only.status == 204 ||
                   head_only.status == 304 ||
                   (head_only.status >= 100 && head_only.status < 200);
        content_length =
            bodiless ? std::optional<std::uint64_t>{0}
                     : head_only.headers.content_length();
      }
    }
    if (head_end != std::string::npos && content_length &&
        data.size() - body_start >= *content_length) {
      break;  // full body received
    }
    auto n = stream_.read_some(buf, sizeof(buf));
    if (!n) {
      if (n.status().code() == StatusCode::kTimeout) return n.status();
      return n.status();
    }
    if (n.value() == 0) {
      if (head_end == std::string::npos) {
        return Status(StatusCode::kClosed, "connection closed before response");
      }
      // A declared Content-Length makes the body length explicit: EOF before
      // the full body is a truncated response, not a success. Only a
      // response without Content-Length is legitimately EOF-delimited.
      if (content_length && data.size() - body_start < *content_length) {
        return Status(StatusCode::kClosed,
                      "truncated response body: got " +
                          std::to_string(data.size() - body_start) + " of " +
                          std::to_string(*content_length) + " bytes");
      }
      break;
    }
    data.append(buf, n.value());
  }

  Response resp;
  if (bodiless) {
    if (!parse_response_head(data, &resp)) {
      return Status(StatusCode::kInternal, "unparsable response");
    }
  } else if (!parse_response(data, &resp)) {
    return Status(StatusCode::kInternal, "unparsable response");
  }

  // Respect the server's connection policy.
  const auto conn_hdr = resp.headers.get("Connection");
  const bool server_keeps =
      resp.version == Version::kHttp11
          ? !(conn_hdr && iequals(*conn_hdr, "close"))
          : (conn_hdr && iequals(*conn_hdr, "keep-alive"));
  if (!server_keeps || !content_length) stream_.close();
  return resp;
}

}  // namespace swala::http
