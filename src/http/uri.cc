#include "http/uri.h"

#include "common/strings.h"

namespace swala::http {
namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool is_unreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' || c == '~';
}

}  // namespace

bool percent_decode(std::string_view in, std::string* out, bool plus_as_space) {
  out->clear();
  out->reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size() + 0 && i + 2 >= in.size()) return false;
      if (i + 2 >= in.size()) return false;
      const int hi = hex_value(in[i + 1]);
      const int lo = hex_value(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (plus_as_space && c == '+') {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

std::string percent_encode(std::string_view in) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(in.size());
  for (unsigned char c : in) {
    if (is_unreserved(static_cast<char>(c)) || c == '/') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xF]);
    }
  }
  return out;
}

std::string remove_dot_segments(std::string_view path) {
  std::vector<std::string_view> kept;
  std::size_t start = 0;
  const bool trailing_slash = !path.empty() && path.back() == '/';
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      const std::string_view seg = path.substr(start, i - start);
      start = i + 1;
      if (seg.empty() || seg == ".") continue;
      if (seg == "..") {
        if (!kept.empty()) kept.pop_back();
        continue;
      }
      kept.push_back(seg);
    }
  }
  std::string out = "/";
  for (std::size_t i = 0; i < kept.size(); ++i) {
    out.append(kept[i]);
    if (i + 1 < kept.size()) out.push_back('/');
  }
  if (trailing_slash && kept.size() > 0 && out.back() != '/') out.push_back('/');
  return out;
}

bool parse_uri(std::string_view target, Uri* out) {
  if (target.empty() || target.front() != '/') return false;
  const std::size_t q = target.find('?');
  std::string_view raw_path = target.substr(0, q);
  out->raw_query =
      q == std::string_view::npos ? "" : std::string(target.substr(q + 1));

  std::string decoded;
  if (!percent_decode(raw_path, &decoded)) return false;
  // Reject embedded NULs that could truncate filesystem paths.
  if (decoded.find('\0') != std::string::npos) return false;
  out->path = remove_dot_segments(decoded);
  return true;
}

std::vector<std::pair<std::string, std::string>> Uri::query_params() const {
  std::vector<std::pair<std::string, std::string>> out;
  if (raw_query.empty()) return out;
  for (const auto& pair : split(raw_query, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    std::string key, value;
    if (eq == std::string::npos) {
      if (!percent_decode(pair, &key, /*plus_as_space=*/true)) continue;
    } else {
      if (!percent_decode(std::string_view(pair).substr(0, eq), &key, true)) continue;
      if (!percent_decode(std::string_view(pair).substr(eq + 1), &value, true)) continue;
    }
    out.emplace_back(std::move(key), std::move(value));
  }
  return out;
}

std::string Uri::canonical() const {
  if (raw_query.empty()) return path;
  return path + "?" + raw_query;
}

}  // namespace swala::http
