#include "http/date.h"

#include <array>
#include <cstdio>
#include <cstring>

namespace swala::http {
namespace {

constexpr std::array<const char*, 7> kDays = {"Sun", "Mon", "Tue", "Wed",
                                              "Thu", "Fri", "Sat"};
constexpr std::array<const char*, 12> kMonths = {"Jan", "Feb", "Mar", "Apr",
                                                 "May", "Jun", "Jul", "Aug",
                                                 "Sep", "Oct", "Nov", "Dec"};

}  // namespace

std::string format_http_date(std::time_t t) {
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s, %02d %s %04d %02d:%02d:%02d GMT",
                kDays[static_cast<std::size_t>(tm.tm_wday)], tm.tm_mday,
                kMonths[static_cast<std::size_t>(tm.tm_mon)],
                tm.tm_year + 1900, tm.tm_hour, tm.tm_min, tm.tm_sec);
  return buf;
}

std::string current_http_date() { return format_http_date(std::time(nullptr)); }

std::optional<std::time_t> parse_http_date(std::string_view s) {
  // "Sun, 06 Nov 1994 08:49:37 GMT"
  char mon[4] = {0};
  std::tm tm{};
  char buf[64];
  if (s.size() >= sizeof(buf)) return std::nullopt;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  const char* comma = std::strchr(buf, ',');
  if (!comma) return std::nullopt;
  if (std::sscanf(comma + 1, " %d %3s %d %d:%d:%d", &tm.tm_mday, mon,
                  &tm.tm_year, &tm.tm_hour, &tm.tm_min, &tm.tm_sec) != 6) {
    return std::nullopt;
  }
  tm.tm_year -= 1900;
  tm.tm_mon = -1;
  for (int i = 0; i < 12; ++i) {
    if (std::strcmp(mon, kMonths[static_cast<std::size_t>(i)]) == 0) {
      tm.tm_mon = i;
      break;
    }
  }
  if (tm.tm_mon < 0) return std::nullopt;
  return timegm(&tm);
}

}  // namespace swala::http
