#include "http/message.h"

#include "common/strings.h"

namespace swala::http {

const char* method_name(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
    case Method::kOptions: return "OPTIONS";
    case Method::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

Method method_from(std::string_view name) {
  if (name == "GET") return Method::kGet;
  if (name == "HEAD") return Method::kHead;
  if (name == "POST") return Method::kPost;
  if (name == "PUT") return Method::kPut;
  if (name == "DELETE") return Method::kDelete;
  if (name == "OPTIONS") return Method::kOptions;
  return Method::kUnknown;
}

const char* version_name(Version v) {
  return v == Version::kHttp11 ? "HTTP/1.1" : "HTTP/1.0";
}

bool Request::keep_alive() const {
  const auto conn = headers.get("Connection");
  if (version == Version::kHttp11) {
    return !(conn && iequals(*conn, "close"));
  }
  return conn && iequals(*conn, "keep-alive");
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

Response Response::make(int status, std::string body,
                        std::string_view content_type) {
  Response resp;
  resp.status = status;
  resp.body = std::move(body);
  resp.headers.set("Content-Type", content_type);
  resp.headers.set("Content-Length", std::to_string(resp.body.size()));
  return resp;
}

Response Response::error(int status, std::string_view detail) {
  std::string body;
  body.reserve(128 + detail.size());
  body += "<html><head><title>";
  body += std::to_string(status);
  body += " ";
  body += reason_phrase(status);
  body += "</title></head><body><h1>";
  body += std::to_string(status);
  body += " ";
  body += reason_phrase(status);
  body += "</h1>";
  if (!detail.empty()) {
    body += "<p>";
    body += detail;
    body += "</p>";
  }
  body += "</body></html>\n";
  Response resp = make(status, std::move(body));
  // Error responses always close: the connection state after a failed
  // request is suspect (partial body, parse error, overload), and the
  // header tells well-behaved clients not to pipeline more requests into
  // it. handle_connection honours this when deciding keep-alive.
  resp.headers.set("Connection", "close");
  return resp;
}

std::string Response::serialize_head() const {
  std::string out;
  std::size_t header_bytes = 0;
  for (const auto& f : headers.fields()) {
    header_bytes += f.name.size() + f.value.size() + 4;
  }
  out.reserve(48 + header_bytes);
  out += version_name(version);
  out += " ";
  out += std::to_string(status);
  out += " ";
  out += reason_phrase(status);
  out += "\r\n";
  for (const auto& f : headers.fields()) {
    out += f.name;
    out += ": ";
    out += f.value;
    out += "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string Response::serialize() const {
  std::string out = serialize_head();
  out += body;
  return out;
}

std::string serialize_request(const Request& req) {
  std::string out;
  std::size_t header_bytes = 0;
  for (const auto& f : req.headers.fields()) {
    header_bytes += f.name.size() + f.value.size() + 4;
  }
  out.reserve(48 + req.target.size() + header_bytes + req.body.size());
  out += method_name(req.method);
  out += " ";
  out += req.target.empty() ? req.uri.canonical() : req.target;
  out += " ";
  out += version_name(req.version);
  out += "\r\n";
  for (const auto& f : req.headers.fields()) {
    out += f.name;
    out += ": ";
    out += f.value;
    out += "\r\n";
  }
  out += "\r\n";
  out += req.body;
  return out;
}

}  // namespace swala::http
