#include "http/headers.h"

#include "common/strings.h"

namespace swala::http {

void HeaderMap::add(std::string_view name, std::string_view value) {
  fields_.push_back({std::string(name), std::string(value)});
}

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (iequals(f.name, name)) return std::string_view(f.value);
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& f : fields_) {
    if (iequals(f.name, name)) out.emplace_back(f.value);
  }
  return out;
}

std::size_t HeaderMap::remove(std::string_view name) {
  const std::size_t before = fields_.size();
  std::erase_if(fields_, [&](const Field& f) { return iequals(f.name, name); });
  return before - fields_.size();
}

std::optional<std::uint64_t> HeaderMap::content_length() const {
  const auto v = get("Content-Length");
  if (!v) return std::nullopt;
  std::uint64_t len = 0;
  if (!parse_u64(*v, &len)) return std::nullopt;
  return len;
}

}  // namespace swala::http
