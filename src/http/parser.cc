#include "http/parser.h"

#include <algorithm>

#include "common/strings.h"

namespace swala::http {

RequestParser::RequestParser(ParserLimits limits) : limits_(limits) {
  // Typical request heads fit in one read slice; reserving up front avoids
  // append-growth reallocations on the first request of every connection
  // (reset() keeps the capacity for the rest of the keep-alive session).
  buffer_.reserve(4 * 1024);
}

void RequestParser::reset() {
  // Keep unconsumed (pipelined) bytes.
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  phase_ = Phase::kRequestLine;
  request_ = Request{};
  body_expected_ = 0;
  chunk_remaining_ = 0;
  chunk_in_data_ = false;
  chunk_in_trailers_ = false;
  error_status_ = 0;
  header_bytes_ = 0;
}

ParseState RequestParser::fail(int status) {
  phase_ = Phase::kError;
  error_status_ = status;
  return ParseState::kError;
}

ParseState RequestParser::feed(std::string_view data) {
  buffer_.append(data);
  return parse_buffer();
}

ParseState RequestParser::parse_buffer() {
  while (phase_ == Phase::kRequestLine || phase_ == Phase::kHeaders) {
    const std::size_t eol = buffer_.find('\n', consumed_);
    if (eol == std::string::npos) {
      const std::size_t pending = buffer_.size() - consumed_;
      if (phase_ == Phase::kRequestLine && pending > limits_.max_request_line) {
        return fail(414);
      }
      if (phase_ == Phase::kHeaders &&
          header_bytes_ + pending > limits_.max_header_bytes) {
        return fail(431);
      }
      return ParseState::kNeedMore;
    }
    std::string_view line(buffer_.data() + consumed_, eol - consumed_);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    consumed_ = eol + 1;

    if (phase_ == Phase::kRequestLine) {
      if (line.empty()) continue;  // tolerate leading blank lines (RFC 9112)
      if (line.size() > limits_.max_request_line) return fail(414);
      if (!parse_request_line(line)) return fail(error_status_ ? error_status_ : 400);
      phase_ = Phase::kHeaders;
    } else {
      header_bytes_ += line.size() + 2;
      if (header_bytes_ > limits_.max_header_bytes) return fail(431);
      if (line.empty()) {
        // End of headers; determine body framing.
        const auto te = request_.headers.get("Transfer-Encoding");
        if (te) {
          // Transfer-Encoding together with Content-Length is the classic
          // request-smuggling vector; reject outright (RFC 9112 §6.1).
          if (request_.headers.contains("Content-Length")) return fail(400);
          if (!iequals(*te, "chunked")) return fail(501);
          phase_ = Phase::kChunkedBody;
          break;
        }
        // Conflicting repeated Content-Length headers are also smuggling
        // bait: every occurrence must agree.
        const auto all_lengths = request_.headers.get_all("Content-Length");
        for (const auto& v : all_lengths) {
          if (v != all_lengths.front()) return fail(400);
        }
        const auto len = request_.headers.content_length();
        if (request_.headers.contains("Content-Length") && !len) return fail(400);
        body_expected_ = len.value_or(0);
        if (body_expected_ > limits_.max_body_bytes) return fail(413);
        phase_ = Phase::kBody;
        break;
      }
      if (!parse_header_line(line)) return fail(400);
    }
  }

  if (phase_ == Phase::kBody) {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < body_expected_) return ParseState::kNeedMore;
    request_.body.assign(buffer_, consumed_, body_expected_);
    consumed_ += body_expected_;
    phase_ = Phase::kDone;
  }

  if (phase_ == Phase::kChunkedBody) {
    const ParseState state = parse_chunked();
    if (state != ParseState::kDone) return state;
    phase_ = Phase::kDone;
  }

  return phase_ == Phase::kDone ? ParseState::kDone : ParseState::kError;
}

ParseState RequestParser::parse_chunked() {
  // chunk = size-hex [;ext] CRLF data CRLF ... ; 0 CRLF [trailers] CRLF
  for (;;) {
    if (!chunk_in_data_) {
      const std::size_t eol = buffer_.find('\n', consumed_);
      if (eol == std::string::npos) return ParseState::kNeedMore;
      std::string_view line(buffer_.data() + consumed_, eol - consumed_);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

      if (chunk_in_trailers_) {
        consumed_ = eol + 1;
        if (line.empty()) return ParseState::kDone;  // end of trailers
        continue;  // trailer fields are ignored
      }

      // Parse the chunk-size line (extensions after ';' ignored).
      const std::size_t semi = line.find(';');
      const std::string_view size_hex = trim(line.substr(0, semi));
      if (size_hex.empty() || size_hex.size() > 16) {
        fail(400);
        return ParseState::kError;
      }
      std::uint64_t size = 0;
      for (const char c : size_hex) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          fail(400);
          return ParseState::kError;
        }
        size = size * 16 + static_cast<std::uint64_t>(digit);
      }
      consumed_ = eol + 1;
      if (request_.body.size() + size > limits_.max_body_bytes) {
        fail(413);
        return ParseState::kError;
      }
      if (size == 0) {
        chunk_in_trailers_ = true;
        continue;
      }
      chunk_remaining_ = size;
      chunk_in_data_ = true;
    }

    // Consume chunk data plus its trailing CRLF (or bare LF).
    const std::size_t available = buffer_.size() - consumed_;
    const std::size_t take =
        std::min<std::size_t>(chunk_remaining_, available);
    request_.body.append(buffer_, consumed_, take);
    consumed_ += take;
    chunk_remaining_ -= take;
    if (chunk_remaining_ > 0) return ParseState::kNeedMore;

    // Skip the CRLF after the data.
    if (consumed_ >= buffer_.size()) return ParseState::kNeedMore;
    if (buffer_[consumed_] == '\r') {
      if (consumed_ + 1 >= buffer_.size()) return ParseState::kNeedMore;
      if (buffer_[consumed_ + 1] != '\n') {
        fail(400);
        return ParseState::kError;
      }
      consumed_ += 2;
    } else if (buffer_[consumed_] == '\n') {
      consumed_ += 1;
    } else {
      fail(400);
      return ParseState::kError;
    }
    chunk_in_data_ = false;
  }
}

bool RequestParser::parse_request_line(std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    error_status_ = 400;
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = trim(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);

  request_.method = method_from(method);
  if (request_.method == Method::kUnknown) {
    error_status_ = 501;
    return false;
  }
  if (version == "HTTP/1.0") {
    request_.version = Version::kHttp10;
  } else if (version == "HTTP/1.1") {
    request_.version = Version::kHttp11;
  } else {
    error_status_ = 400;
    return false;
  }
  if (target.empty()) {
    error_status_ = 400;
    return false;
  }
  request_.target = std::string(target);
  if (!parse_uri(target, &request_.uri)) {
    error_status_ = 400;
    return false;
  }
  return true;
}

bool RequestParser::parse_header_line(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view name = trim(line.substr(0, colon));
  const std::string_view value = trim(line.substr(colon + 1));
  if (name.empty()) return false;
  // Field names must not contain whitespace (request smuggling defence).
  for (char c : name) {
    if (c == ' ' || c == '\t') return false;
  }
  request_.headers.add(name, value);
  return true;
}

namespace {

/// Shared head parsing; sets *body_start to the byte after the separator.
/// Returns false when no separator exists or the head is malformed.
bool parse_head_common(std::string_view data, Response* out,
                       std::size_t* body_start_out) {
  *out = Response{};
  const std::size_t head_end_rn = data.find("\r\n\r\n");
  const std::size_t head_end_n = data.find("\n\n");
  std::size_t head_end;
  std::size_t body_start;
  if (head_end_rn != std::string_view::npos &&
      (head_end_n == std::string_view::npos || head_end_rn < head_end_n)) {
    head_end = head_end_rn;
    body_start = head_end_rn + 4;
  } else if (head_end_n != std::string_view::npos) {
    head_end = head_end_n;
    body_start = head_end_n + 2;
  } else {
    return false;
  }

  const std::string_view head = data.substr(0, head_end);
  std::size_t pos = 0;
  bool first = true;
  while (pos <= head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (first) {
      first = false;
      // e.g. "HTTP/1.0 200 OK"
      if (!starts_with(line, "HTTP/1.")) return false;
      out->version = starts_with(line, "HTTP/1.1") ? Version::kHttp11
                                                   : Version::kHttp10;
      const std::size_t sp = line.find(' ');
      if (sp == std::string_view::npos || sp + 4 > line.size()) return false;
      std::uint64_t code = 0;
      if (!parse_u64(line.substr(sp + 1, 3), &code)) return false;
      out->status = static_cast<int>(code);
    } else if (!line.empty()) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) return false;
      out->headers.add(trim(line.substr(0, colon)), trim(line.substr(colon + 1)));
    }
  }
  *body_start_out = body_start;
  return true;
}

}  // namespace

bool parse_response_head(std::string_view data, Response* out) {
  std::size_t body_start = 0;
  return parse_head_common(data, out, &body_start);
}

bool parse_response(std::string_view data, Response* out) {
  std::size_t body_start = 0;
  if (!parse_head_common(data, out, &body_start)) return false;
  const auto len = out->headers.content_length();
  if (len) {
    if (data.size() - body_start < *len) return false;
    out->body = std::string(data.substr(body_start, *len));
  } else {
    out->body = std::string(data.substr(body_start));
  }
  return true;
}

}  // namespace swala::http
