// Incremental HTTP/1.x parser. Bytes are fed as they arrive from the socket;
// the parser buffers until a full head (+ Content-Length body) is available.
// Limits defend against malformed or hostile clients.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "http/message.h"

namespace swala::http {

/// Parser resource limits.
struct ParserLimits {
  std::size_t max_request_line = 8 * 1024;
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
};

/// Result of feeding bytes to a parser.
enum class ParseState {
  kNeedMore,  ///< incomplete; feed more bytes
  kDone,      ///< one full message parsed; `message()` is valid
  kError,     ///< malformed input; `error_status()` holds the HTTP error code
};

/// Incremental request parser. After kDone, call `reset()` (pipelined bytes
/// beyond the first message are retained and re-consumed).
class RequestParser {
 public:
  explicit RequestParser(ParserLimits limits = {});

  /// Consumes a chunk of bytes from the connection.
  ParseState feed(std::string_view data);

  /// Re-examines buffered bytes (used after reset when pipelining).
  ParseState pump() { return feed({}); }

  /// Valid after kDone.
  Request& request() { return request_; }

  /// HTTP status code describing the parse failure (400, 413, 431, 505...).
  int error_status() const { return error_status_; }

  /// Prepares for the next message on the same connection.
  void reset();

  /// True once any byte of the next message has arrived but the message is
  /// not yet complete. The server arms the per-request deadline at this
  /// point (slow-loris defence: total header/body dribble time is bounded)
  /// while a connection idling *between* requests only pays the idle
  /// timeout.
  bool mid_request() const {
    return phase_ != Phase::kRequestLine || consumed_ < buffer_.size();
  }

 private:
  enum class Phase { kRequestLine, kHeaders, kBody, kChunkedBody, kDone, kError };

  ParseState parse_buffer();
  ParseState parse_chunked();
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  ParseState fail(int status);

  ParserLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< bytes of buffer_ already parsed
  Phase phase_ = Phase::kRequestLine;
  Request request_;
  std::size_t body_expected_ = 0;
  std::uint64_t chunk_remaining_ = 0;
  bool chunk_in_data_ = false;
  bool chunk_in_trailers_ = false;
  int error_status_ = 0;
  std::size_t header_bytes_ = 0;
};

/// Parses a complete response (head + body) from a byte stream that has been
/// fully read (Content-Length or connection-close delimited). Used by the
/// HTTP client and tests.
bool parse_response(std::string_view data, Response* out);

/// Parses just the response head (status line + headers). `data` must
/// contain the blank-line separator; any bytes after it are ignored.
/// The HTTP client uses this to learn Content-Length before the body has
/// arrived.
bool parse_response_head(std::string_view data, Response* out);

}  // namespace swala::http
