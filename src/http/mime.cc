#include "http/mime.h"

#include "common/strings.h"

namespace swala::http {

std::string_view mime_type_for_path(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) return "application/octet-stream";
  const std::string ext = to_lower(path.substr(dot + 1));
  if (ext == "html" || ext == "htm") return "text/html";
  if (ext == "txt" || ext == "log") return "text/plain";
  if (ext == "css") return "text/css";
  if (ext == "js") return "application/javascript";
  if (ext == "json") return "application/json";
  if (ext == "xml") return "application/xml";
  if (ext == "gif") return "image/gif";
  if (ext == "jpg" || ext == "jpeg") return "image/jpeg";
  if (ext == "png") return "image/png";
  if (ext == "svg") return "image/svg+xml";
  if (ext == "pdf") return "application/pdf";
  if (ext == "ps") return "application/postscript";
  if (ext == "tar") return "application/x-tar";
  if (ext == "gz") return "application/gzip";
  if (ext == "mp3") return "audio/mpeg";
  if (ext == "mpg" || ext == "mpeg") return "video/mpeg";
  if (ext == "tif" || ext == "tiff") return "image/tiff";
  return "application/octet-stream";
}

}  // namespace swala::http
