// Blocking HTTP client used by the load generators, the examples and the
// integration tests. Supports per-request connections and keep-alive reuse.
#pragma once

#include <string>

#include "common/status.h"
#include "http/message.h"
#include "net/socket.h"

namespace swala::http {

/// One logical client; reuses its connection when the server allows it.
class HttpClient {
 public:
  explicit HttpClient(net::InetAddress server, int timeout_ms = 30000)
      : server_(std::move(server)), timeout_ms_(timeout_ms) {}

  /// Sends `req` and reads the full response. Reconnects as needed.
  Result<Response> send(const Request& req);

  /// Convenience GET on a target path ("/cgi-bin/x?y=1").
  Result<Response> get(const std::string& target);

  /// Drops the cached connection (next send reconnects).
  void disconnect() { stream_.close(); }

  const net::InetAddress& server() const { return server_; }

 private:
  Result<Response> roundtrip(const Request& req);

  net::InetAddress server_;
  int timeout_ms_;
  net::TcpStream stream_;
};

}  // namespace swala::http
