// Case-insensitive HTTP header map preserving insertion order.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace swala::http {

/// Ordered multimap with case-insensitive keys (RFC 9110 field semantics).
class HeaderMap {
 public:
  /// Appends a field (does not coalesce duplicates).
  void add(std::string_view name, std::string_view value);

  /// Replaces all occurrences of `name` with a single field.
  void set(std::string_view name, std::string_view value);

  /// First value of `name`, if present.
  std::optional<std::string_view> get(std::string_view name) const;

  /// All values of `name`, in order.
  std::vector<std::string_view> get_all(std::string_view name) const;

  bool contains(std::string_view name) const { return get(name).has_value(); }

  /// Removes all occurrences; returns how many were removed.
  std::size_t remove(std::string_view name);

  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  struct Field {
    std::string name;
    std::string value;
  };
  const std::vector<Field>& fields() const { return fields_; }

  /// Content-Length parsed as an integer, if present and well-formed.
  std::optional<std::uint64_t> content_length() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace swala::http
