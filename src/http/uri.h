// Request-target parsing: percent-encoding, path/query split, query-string
// decoding. The canonicalized form feeds the cache key, so two spellings of
// the same CGI invocation hit the same entry.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swala::http {

/// A parsed origin-form request target.
struct Uri {
  std::string path;       ///< percent-decoded, always starts with '/'
  std::string raw_query;  ///< undecoded query string (no leading '?')

  /// Decoded key=value pairs from the query, in order.
  std::vector<std::pair<std::string, std::string>> query_params() const;

  /// Canonical spelling used for cache keys: decoded, dot-segment-free path
  /// plus the raw query (CGI argument order is significant, so the query is
  /// not re-sorted).
  std::string canonical() const;
};

/// Parses an origin-form target ("/a/b?x=1"). Returns false on a target that
/// is empty, non-rooted, or contains an invalid percent escape in the path.
bool parse_uri(std::string_view target, Uri* out);

/// Percent-decodes; `plus_as_space` applies application/x-www-form-urlencoded
/// semantics. Returns false on a truncated/invalid escape.
bool percent_decode(std::string_view in, std::string* out,
                    bool plus_as_space = false);

/// Percent-encodes everything outside the unreserved set.
std::string percent_encode(std::string_view in);

/// Removes "." and ".." segments; ".." never escapes the root (defends
/// against path traversal when mapping to the docroot).
std::string remove_dot_segments(std::string_view path);

}  // namespace swala::http
