// File-extension → Content-Type mapping for static file serving.
#pragma once

#include <string_view>

namespace swala::http {

/// Content type for a path based on its extension; defaults to
/// application/octet-stream.
std::string_view mime_type_for_path(std::string_view path);

}  // namespace swala::http
