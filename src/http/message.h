// HTTP request/response value types and serialization.
#pragma once

#include <string>
#include <string_view>

#include "http/headers.h"
#include "http/uri.h"

namespace swala::http {

enum class Method { kGet, kHead, kPost, kPut, kDelete, kOptions, kUnknown };

const char* method_name(Method m);
Method method_from(std::string_view name);

/// HTTP protocol version; Swala speaks 1.0 and 1.1 like the 1998 server era.
enum class Version { kHttp10, kHttp11 };

const char* version_name(Version v);

/// A parsed inbound request.
struct Request {
  Method method = Method::kGet;
  std::string target;  ///< raw request-target as received
  Uri uri;             ///< parsed form
  Version version = Version::kHttp10;
  HeaderMap headers;
  std::string body;

  /// True when the connection should be reused after this exchange.
  bool keep_alive() const;
};

/// An outbound response.
struct Response {
  int status = 200;
  Version version = Version::kHttp10;
  HeaderMap headers;
  std::string body;

  /// Builds a response with Content-Length/Content-Type set.
  static Response make(int status, std::string body,
                       std::string_view content_type = "text/html");

  /// Canned error page.
  static Response error(int status, std::string_view detail = "");

  /// Full wire form: status line, headers, blank line, body.
  std::string serialize() const;

  /// Wire form of the head only (status line, headers, blank line) — the
  /// body is written separately (vectored write), never concatenated.
  std::string serialize_head() const;
};

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
std::string_view reason_phrase(int status);

/// Serializes just a request head + body (used by the HTTP client).
std::string serialize_request(const Request& req);

}  // namespace swala::http
