// IMF-fixdate formatting ("Sun, 06 Nov 1994 08:49:37 GMT") for the Date
// header, plus a parser used by cache-freshness tests.
#pragma once

#include <ctime>
#include <optional>
#include <string>
#include <string_view>

namespace swala::http {

/// Formats a UNIX timestamp as an IMF-fixdate.
std::string format_http_date(std::time_t t);

/// Current time as an IMF-fixdate.
std::string current_http_date();

/// Parses an IMF-fixdate back to a UNIX timestamp.
std::optional<std::time_t> parse_http_date(std::string_view s);

}  // namespace swala::http
