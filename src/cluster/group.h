// NodeGroup: the distributed half of the cacher module. Implements the
// paper's three daemon threads per node (§4.1):
//   1. info receiver  — accepts peer connections on the info port and applies
//                       INSERT/ERASE broadcasts to the local directory
//   2. data server    — listens on the data port and starts a thread per
//                       incoming FETCH request to return cached contents
//   3. purger         — wakes every `purge_interval` and deletes expired
//                       entries (broadcasting the deletions)
// plus per-peer sender threads that drain an outbound queue, making the
// broadcast genuinely asynchronous (no global locks; §4.2).
//
// Failure handling (beyond the paper, which assumed a healthy cluster):
// every peer link carries a circuit breaker. Send/fetch failures move a peer
// Healthy → Suspect → Dead after `failure_threshold` consecutive failures;
// a dead peer's directory table is quarantined via the manager, broadcasts
// to it are dropped instead of retried, and remote fetches fast-fail so
// request threads fall back to local CGI execution. While dead, the purger
// enqueues a HELLO probe every `probe_interval_ms`; the first successful
// exchange (or an inbound re-HELLO from the restarted peer) closes the
// breaker, clears the stale table and triggers a SYNC_REQ resync.
//
// All outgoing messages flow through a Transport, whose optional
// FaultInjector deterministically drops / delays / truncates / black-holes
// traffic for the failure tests.
//
// NodeGroup implements core::CooperationBus, so a CacheManager wired to it
// becomes a cooperative cache.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/framing.h"
#include "cluster/transport.h"
#include "common/queue.h"
#include "common/random.h"
#include "core/manager.h"
#include "net/socket.h"

namespace swala::cluster {

/// One provisioned member slot. The paper uses a fixed cluster; since PR10
/// the *capacity* (the slot list) is fixed at config time while the active
/// set within it is dynamic — kJoin activates a slot, kDecommission
/// deactivates one (see join_cluster / announce_decommission).
struct MemberAddress {
  core::NodeId id = core::kInvalidNode;
  net::InetAddress info_addr;  ///< receives directory broadcasts
  net::InetAddress data_addr;  ///< serves cache fetches
};

/// Circuit-breaker state of one peer as seen from this node.
enum class PeerState {
  kHealthy,  ///< breaker closed; traffic flows normally
  kSuspect,  ///< recent failure(s); still trying, not yet written off
  kDead,     ///< breaker open; broadcasts dropped, fetches fast-fail
};

const char* peer_state_name(PeerState state);

struct GroupOptions {
  double purge_interval_seconds = 2.0;  ///< "wakes up every few seconds"
  int fetch_timeout_ms = 10000;         ///< read deadline on FETCH_REQ
  int connect_timeout_ms = 5000;
  std::size_t outbound_queue_capacity = 65536;
  /// Idle data connections kept per peer for reuse (0 disables pooling and
  /// opens a connection per fetch, as the original Swala did).
  std::size_t fetch_pool_size = 4;
  /// Per-exchange ceiling for directory probes (partitioned-mode owner
  /// lookups and query-mode kQuery probes). Deliberately much tighter than
  /// fetch_timeout_ms: a probe is an optimization, and a slow answer must
  /// not delay the local-execution fallback.
  int query_timeout_ms = 300;

  // ---- broadcast batching ----
  /// Most queued directory updates (INSERT/ERASE/INVALIDATE) a sender loop
  /// packs into one kBatch frame. 1 disables batching: every update goes in
  /// its own frame, wire-identical to older builds. Kept off by default so
  /// per-type fault-injection rules and frame-level tests see the unbatched
  /// protocol unless a deployment opts in (node config defaults it on).
  std::size_t batch_max_messages = 1;
  /// Approximate payload ceiling for one batch frame.
  std::size_t batch_max_bytes = 256 * 1024;
  /// How long a sender lingers for more updates once it holds the first one
  /// and the queue runs dry. Bounds the latency batching can add.
  int batch_linger_ms = 2;

  // ---- failure handling ----
  /// Send attempts per queued broadcast before counting a failure.
  int broadcast_retry_limit = 3;
  int backoff_base_ms = 10;   ///< delay before the first retry (doubles)
  int backoff_max_ms = 200;   ///< backoff ceiling
  std::uint64_t backoff_seed = 0xB0FF5EEDu;  ///< jitter rng seed
  /// Consecutive failures that flip a peer's breaker to kDead.
  int failure_threshold = 3;
  /// How often the purger probes a dead peer with a HELLO.
  int probe_interval_ms = 250;
  /// Anti-entropy cadence: every this many milliseconds the purger sends
  /// each live peer a kDigest (high-water invalidation epochs + directory
  /// digest). A receiver that detects an epoch gap pulls the missed
  /// invalidations (kInvSync); a digest mismatch on two consecutive rounds
  /// triggers a directory resync. 0 disables anti-entropy (legacy
  /// fire-and-forget behaviour; node config defaults it on at 1000 ms).
  int anti_entropy_interval_ms = 0;
  /// Optional deterministic fault hook applied to every outgoing message
  /// (not owned; tests and the simulator share the same injector type).
  FaultInjector* fault_injector = nullptr;

  // ---- dynamic membership (PR10) ----
  /// Per-peer ceiling on one kJoin/kJoinAck exchange.
  int join_timeout_ms = 3000;
  /// Largest entry body shipped in one decommission handoff frame; larger
  /// entries are dropped (a lost cache entry costs one re-execution).
  std::size_t handoff_batch_bytes = 256 * 1024;
  /// Member ids active at start (this node's initial view). Empty = every
  /// configured slot. A node started outside the active set joins via
  /// join_cluster(); peers list it here-absent until its kJoin/HELLO.
  std::vector<core::NodeId> initial_active;
};

/// Counters for the overhead experiments (Tables 3 and 4).
struct GroupStats {
  std::uint64_t broadcasts_sent = 0;
  /// Frames actually written to peer info sockets by the sender loops
  /// (greetings included). With batching this is what amortization shrinks:
  /// many queued updates ride in one frame.
  std::uint64_t frames_sent = 0;
  /// Updates that rode inside a kBatch frame (counts inner messages).
  std::uint64_t batched_broadcasts = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t fetches_served = 0;
  std::uint64_t fetch_misses_served = 0;  ///< peers' false hits seen from here
  std::uint64_t remote_fetches = 0;
  std::uint64_t send_failures = 0;
  // ---- failure handling ----
  std::uint64_t send_retries = 0;      ///< backoff-gated resend attempts
  std::uint64_t peer_failures = 0;     ///< breaker failure recordings
  std::uint64_t messages_dropped = 0;  ///< discarded while a peer was dead
  std::uint64_t probes_sent = 0;       ///< HELLO probes to dead peers
  std::uint64_t resyncs_requested = 0; ///< SYNC_REQs sent on recovery
  std::uint64_t resyncs_served = 0;    ///< peers' SYNC_REQs answered
  // ---- cooperation modes ----
  std::uint64_t owner_updates_sent = 0; ///< unicast kOwnerUpdate frames
  std::uint64_t queries_sent = 0;       ///< kQuery probes issued
  std::uint64_t query_hits = 0;         ///< probes answered "found"
  std::uint64_t queries_served = 0;     ///< peers' kQuery probes answered
  // ---- anti-entropy consistency repair ----
  std::uint64_t anti_entropy_rounds = 0;  ///< digest rounds initiated
  std::uint64_t digests_sent = 0;         ///< kDigest frames enqueued
  std::uint64_t digest_repairs = 0;       ///< directory resyncs a mismatch forced
  std::uint64_t inv_syncs_pulled = 0;     ///< kInvSync pulls issued on a gap
  std::uint64_t inv_syncs_served = 0;     ///< peers' kInvSync pulls answered
  // ---- dynamic membership ----
  std::uint64_t joins_sent = 0;           ///< kJoin requests issued
  std::uint64_t joins_served = 0;         ///< peers' kJoin requests admitted
  std::uint64_t decommissions_observed = 0;  ///< kDecommission frames applied
  std::uint64_t handoff_frames_sent = 0;  ///< kInsert handoff frames enqueued
  std::uint64_t handoffs_adopted = 0;     ///< handed-off entries adopted here
};

/// Snapshot of one peer's health (exposed via /swala-status).
struct PeerHealth {
  core::NodeId id = core::kInvalidNode;
  PeerState state = PeerState::kHealthy;
  bool active = true;  ///< member slot currently in the active set
  std::uint64_t consecutive_failures = 0;
  std::uint64_t total_failures = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t probes_sent = 0;
  std::size_t outbound_backlog = 0;
};

class NodeGroup final : public core::CooperationBus {
 public:
  /// `members` describes every node including this one (matched by `self`).
  NodeGroup(core::NodeId self, std::vector<MemberAddress> members,
            GroupOptions options = {});
  ~NodeGroup() override;

  NodeGroup(const NodeGroup&) = delete;
  NodeGroup& operator=(const NodeGroup&) = delete;

  /// Wires the manager the daemons deliver updates to. The manager itself
  /// needs `this` as its bus, hence the two-phase setup: start() → attach().
  /// Release store: the daemons (already running) acquire-load the pointer,
  /// so everything constructed before attach() is visible to them.
  void attach(core::CacheManager* manager) {
    manager_.store(manager, std::memory_order_release);
  }

  /// Replaces the member address list. Needed when the group was created
  /// with ephemeral (port 0) addresses: after start() has bound the real
  /// ports, the resolved list is distributed to every group.
  /// Precondition: no cache traffic has flowed yet (call right after
  /// start(), before attach()).
  void set_members(std::vector<MemberAddress> members);

  /// Binds the info/data listeners and starts the daemon threads.
  Status start();

  /// Stops all daemons and closes all connections. Idempotent.
  void stop();

  // ---- core::CooperationBus ----
  void broadcast_insert(const core::EntryMeta& meta) override;
  void broadcast_erase(core::NodeId owner, const std::string& key,
                       std::uint64_t version) override;
  Result<core::CachedResult> fetch_remote(core::NodeId owner,
                                          const std::string& key) override;
  /// Budget-capped fetch: every socket timeout (connect, send, recv) is
  /// min(configured, budget_ms), so the fetch cannot outlive the request
  /// deadline that issued it. budget_ms <= 0 = configured timeouts.
  Result<core::CachedResult> fetch_remote(core::NodeId owner,
                                          const std::string& key,
                                          int budget_ms) override;
  void broadcast_invalidate(const std::string& pattern) override;
  void broadcast_invalidate(const std::string& pattern,
                            std::uint64_t epoch) override;
  // Partitioned mode: unicast directory updates ride the info channel (and
  // batch like broadcasts); owner lookups ride the data channel.
  void send_owner_insert(core::NodeId ring_owner,
                         const core::EntryMeta& meta) override;
  void send_owner_erase(core::NodeId ring_owner, core::NodeId cache_node,
                        const std::string& key,
                        std::uint64_t version) override;
  Result<core::EntryMeta> lookup_at_owner(core::NodeId ring_owner,
                                          const std::string& key,
                                          int budget_ms) override;
  // Query mode: a bounded sequential probe of the healthy peers (ICP uses
  // UDP multicast; over TCP the pooled data connections make a short
  // request/response round cheap). Total time never exceeds `budget_ms`
  // (<=0 = fetch_timeout_ms); each peer gets at most query_timeout_ms.
  Result<core::EntryMeta> query_peers(const std::string& key,
                                      int budget_ms) override;
  /// Decommission handoff: ships one cached entry (meta + body) to its
  /// successor as a kInsert frame flagged handoff, so the receiver adopts
  /// the entry into its own store instead of recording a directory entry.
  void send_handoff(core::NodeId successor, const core::EntryMeta& meta,
                    const std::string& body) override;

  // ---- dynamic membership (PR10) ----

  /// Two-phase join into a running cluster. Sends kJoin over the data
  /// channel to active peers in slot order until one admits us, adopts the
  /// returned membership (epoch + active set), then HELLOs every active
  /// peer so each of them activates our slot too. Requires attach() first.
  Status join_cluster();

  /// Broadcasts kDecommission to every active peer. The caller sequences
  /// the full graceful leave: manager->begin_decommission() →
  /// manager->handoff_state() → announce_decommission() → drain.
  void announce_decommission();

  /// Flips one member slot's active flag in this node's view (the protocol
  /// paths call this internally; tests and chaos use it directly). Inactive
  /// slots are skipped by broadcasts, probes, anti-entropy and queries —
  /// without the dead-peer quarantine a breaker trip would cause.
  void set_member_active(core::NodeId id, bool active);
  bool member_active(core::NodeId id) const;

  GroupStats stats() const;

  /// Health snapshot of every peer (excludes self).
  std::vector<PeerHealth> peer_health() const;

  /// Breaker state of one peer (kHealthy for self/unknown ids).
  PeerState peer_state(core::NodeId id) const;

  /// Listener ports after start() (useful when binding port 0).
  std::uint16_t info_port() const { return info_listener_.local_port(); }
  std::uint16_t data_port() const { return data_listener_.local_port(); }

  core::NodeId self() const { return self_; }
  std::size_t group_size() const { return members_.size(); }

  /// Messages enqueued to peers but not yet handed to their sender sockets.
  /// Tests poll this to quiesce deterministically before invariant checks.
  std::size_t outbound_backlog() const;

 private:
  struct PeerLink {
    MemberAddress address;
    std::unique_ptr<BoundedQueue<Message>> outbound;
    std::thread sender;
    /// Member slot currently in the active set (this node's view). An
    /// inactive slot is not dead — its breaker state is untouched — it is
    /// simply not a member: no broadcasts, probes, digests or queries.
    std::atomic<bool> active{true};

    // ---- circuit breaker ----
    mutable std::mutex health_mutex;
    PeerState state = PeerState::kHealthy;          // guarded by health_mutex
    int consecutive_failures = 0;                   // guarded by health_mutex
    std::chrono::steady_clock::time_point next_probe{};  // guarded
    std::atomic<std::uint64_t> total_failures{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> probes{0};

    // ---- anti-entropy digest tracking (guarded by health_mutex) ----
    /// Last mismatching digest pair (peer-advertised, locally computed).
    /// A repair fires only after two consecutive rounds mismatch with the
    /// SAME pair on both sides: if either side's digest moved between
    /// rounds, updates were still in flight and the apparent drift may be
    /// converging on its own — no resync yet.
    std::uint64_t last_peer_digest = 0;
    std::uint64_t last_local_digest = 0;
    bool mismatch_pending = false;
  };

  void info_accept_loop();
  void info_read_loop(net::TcpStream stream);
  /// Applies one (non-batch) info-channel message to the local state.
  void apply_info_message(const Message& msg);
  /// Pulls additional batchable messages from `link`'s queue into `run`
  /// until size/byte/linger limits; a non-batchable pull lands in `carry`.
  void collect_batch(PeerLink* link, std::vector<Message>* run,
                     std::optional<Message>* carry);
  void data_accept_loop();
  void serve_data_request(net::TcpStream stream);
  void purge_loop();
  void sender_loop(PeerLink* link);
  void enqueue_broadcast(const Message& msg);
  /// Unicast onto one peer's outbound queue (no-op for self/unknown ids).
  void enqueue_to(core::NodeId id, const Message& msg);

  /// One request/response round on the data channel: pooled connection,
  /// breaker fast-fail, one stale-pool retry, success/failure recording.
  /// Shared by fetch_remote, lookup_at_owner and query_peers. Timeouts are
  /// explicit because the three callers budget differently.
  Result<Message> data_exchange(core::NodeId peer_id, const Message& request,
                                MsgType expected, int io_timeout_ms,
                                int connect_timeout_ms);

  PeerLink* find_link(core::NodeId id) const;
  PeerState state_of(PeerLink* link) const;
  int backoff_delay_ms(int attempt);

  /// Breaker bookkeeping. `record_failure` opens the breaker (and
  /// quarantines the peer's table) after `failure_threshold` consecutive
  /// failures; `record_success` closes it and, when the peer was dead,
  /// clears the stale table, requests a resync and re-announces our own
  /// entries so both directions converge after a rejoin.
  void record_failure(PeerLink* link);
  void record_success(PeerLink* link);

  /// Enqueues HELLO probes to dead peers whose probe deadline has passed.
  void probe_dead_peers();

  /// Re-announces every locally cached entry to one peer (resync).
  void push_state_to(PeerLink* link);

  /// A HELLO carrying this node's invalidation high-water epochs (plain
  /// HELLO before a manager is attached).
  Message make_hello() const;

  /// One anti-entropy round: enqueue a tailored kDigest to every live peer.
  void anti_entropy_round();

  /// Reacts to a peer-advertised epoch vector: when we are behind, pulls
  /// the missed invalidations over the data channel (kInvSync) and applies
  /// them. Called outside any health_mutex.
  void maybe_pull_inv_sync(core::NodeId peer, const core::EpochVector& high);

  /// Digest comparison for one kDigest frame; two consecutive mismatches
  /// with the same expected value trigger a directory resync with `peer`.
  void check_digest(core::NodeId peer, bool has_digest, std::uint64_t digest);

  core::NodeId self_;
  std::vector<MemberAddress> members_;
  GroupOptions options_;
  Transport transport_;
  /// Written once by attach() while the daemon threads are already running
  /// and polling it; atomic so that publication is race-free.
  std::atomic<core::CacheManager*> manager_{nullptr};

  net::TcpListener info_listener_;
  net::TcpListener data_listener_;

  std::atomic<bool> running_{false};
  std::thread info_accept_thread_;
  std::thread data_accept_thread_;
  std::thread purge_thread_;
  std::vector<std::unique_ptr<PeerLink>> peers_;  // excludes self

  std::mutex reader_mutex_;
  std::vector<std::thread> reader_threads_;
  std::vector<std::thread> data_threads_;

  // Pooled idle data connections, keyed by peer node id.
  std::mutex pool_mutex_;
  std::unordered_map<core::NodeId, std::vector<net::TcpStream>> fetch_pool_;

  std::mutex backoff_mutex_;
  Rng backoff_rng_;  // guarded by backoff_mutex_

  mutable std::atomic<std::uint64_t> broadcasts_sent_{0}, frames_sent_{0},
      batched_broadcasts_{0}, updates_received_{0},
      fetches_served_{0}, fetch_misses_served_{0}, remote_fetches_{0},
      send_failures_{0}, send_retries_{0}, peer_failures_{0},
      messages_dropped_{0}, probes_sent_{0}, resyncs_requested_{0},
      resyncs_served_{0}, owner_updates_sent_{0}, queries_sent_{0},
      query_hits_{0}, queries_served_{0}, anti_entropy_rounds_{0},
      digests_sent_{0}, digest_repairs_{0}, inv_syncs_pulled_{0},
      inv_syncs_served_{0}, joins_sent_{0}, joins_served_{0},
      decommissions_observed_{0}, handoff_frames_sent_{0},
      handoffs_adopted_{0};
  /// Rotating start offset for query_peers sweeps (seeded from backoff_seed
  /// so probe order is deterministic per node yet differs across nodes).
  std::atomic<std::uint64_t> query_rotation_{0};
  /// Next anti-entropy round deadline (purge-loop thread only).
  std::chrono::steady_clock::time_point next_anti_entropy_{};
};

/// Builds loopback member addresses with ephemeral ports for `n` in-process
/// nodes (test/bench helper). Real ports are assigned when each group's
/// start() binds; LocalCluster redistributes them via set_members().
std::vector<MemberAddress> loopback_members(std::size_t n);

}  // namespace swala::cluster
