// Inter-node wire protocol. Two channels per node, as in the paper (§4.1):
//   * info channel — peers stream INSERT/ERASE directory updates
//     (asynchronous broadcast, weak consistency)
//   * data channel — request/response FETCH of cached content
//
// Framing: u32 little-endian payload length, then the payload:
//   u8 type | u32 sender | type-specific fields
// Strings are u32 length + bytes. All integers little-endian.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/entry.h"
#include "core/inv_log.h"

namespace swala::cluster {

enum class MsgType : std::uint8_t {
  kHello = 1,       ///< first message on an info connection: sender id
  kInsert = 2,      ///< directory update: sender cached an entry
  kErase = 3,       ///< directory update: sender dropped an entry
  kFetchReq = 4,    ///< data request: give me this entry
  kFetchResp = 5,   ///< data response
  kInvalidate = 6,  ///< application-driven invalidation of a key glob
  kSyncReq = 7,     ///< "re-announce your cached entries to me" (rejoin)
  kBatch = 8,       ///< several info-channel updates packed into one frame
  kOwnerUpdate = 9, ///< partitioned mode: unicast insert/erase to ring owner
  kQuery = 10,      ///< query mode: "do you know who caches this key?"
  kQueryHit = 11,   ///< answer to kQuery (meta when found)
  kDigest = 12,     ///< anti-entropy round: epoch vector + directory digest
  kInvSync = 13,    ///< "send me the invalidations after these floors"
  kInvSyncResp = 14,///< answer to kInvSync: missed invalidation records
  kJoin = 15,       ///< data request: "admit me to the cluster"
  kJoinAck = 16,    ///< answer to kJoin: membership epoch + active members
  kDecommission = 17,///< info broadcast: sender is leaving gracefully
};

/// kOwnerUpdate sub-operation (wire byte; anything else is rejected).
enum class OwnerOp : std::uint8_t { kInsert = 1, kErase = 2 };

/// A decoded protocol message (tagged union kept flat for simplicity).
struct Message {
  MsgType type = MsgType::kHello;
  core::NodeId sender = core::kInvalidNode;

  core::EntryMeta meta;   // kInsert/kOwnerUpdate-insert (full), kFetchResp /
                          // kQueryHit (subset); owner = caching node for
                          // kOwnerUpdate-erase
  std::string key;        // kErase, kFetchReq, kQuery, kOwnerUpdate-erase;
                          // the glob for kInvalidate
  std::uint64_t version = 0;  // kErase, kOwnerUpdate-erase
  bool found = false;     // kFetchResp, kQueryHit
  std::string data;       // kFetchResp body
  OwnerOp owner_op = OwnerOp::kInsert;  // kOwnerUpdate
  std::vector<Message> batch;  // kBatch: inner messages, applied in order

  // Anti-entropy fields (PR8).
  std::uint64_t epoch = 0;     // kInvalidate: origin epoch (0 = unepoched)
  core::EpochVector epochs;    // kHello (optional tail), kDigest: high-water
                               // vector; kInvSync: requester floors
  bool has_digest = false;     // kDigest: directory digest present
  std::uint64_t digest = 0;    // kDigest: xor digest of directory versions
  std::vector<core::InvalidationRecord> inv_entries;  // kInvSyncResp
  bool truncated = false;      // kInvSyncResp: log evicted needed records

  // Dynamic membership fields (PR10).
  std::uint64_t membership_epoch = 0;  // kHello (optional tail, 0 = absent),
                                       // kJoinAck, kDecommission
  std::vector<core::NodeId> members;   // kJoinAck: active member ids
  bool handoff = false;  // kInsert: optional body tail present (state
                         // handoff; the receiver adopts the entry)

  static Message hello(core::NodeId sender);
  static Message insert(core::NodeId sender, const core::EntryMeta& meta);
  static Message erase(core::NodeId sender, std::string key,
                       std::uint64_t version);
  static Message fetch_req(core::NodeId sender, std::string key);
  static Message fetch_resp_found(core::NodeId sender,
                                  const core::EntryMeta& meta,
                                  std::string data);
  static Message fetch_resp_miss(core::NodeId sender);
  /// `epoch` 0 keeps the legacy frame byte-identical (unepoched).
  static Message invalidate(core::NodeId sender, std::string pattern,
                            std::uint64_t epoch = 0);
  static Message sync_req(core::NodeId sender);
  /// HELLO carrying the sender's high-water epoch vector (empty vector
  /// encodes as a legacy plain HELLO).
  static Message hello_with_epochs(core::NodeId sender,
                                   core::EpochVector epochs);
  /// Anti-entropy round: high-water epochs + optional directory digest.
  static Message make_digest(core::NodeId sender, core::EpochVector epochs,
                             bool has_digest, std::uint64_t digest);
  /// Pull request: "send every logged invalidation above these floors".
  static Message inv_sync(core::NodeId sender, core::EpochVector floors);
  static Message inv_sync_resp(core::NodeId sender,
                               std::vector<core::InvalidationRecord> entries,
                               bool truncated);
  /// Partitioned mode: tell the ring owner that `meta.owner` now caches it.
  static Message owner_insert(core::NodeId sender, const core::EntryMeta& meta);
  /// Partitioned mode: tell the ring owner that `cache_node` dropped `key`.
  static Message owner_erase(core::NodeId sender, core::NodeId cache_node,
                             std::string key, std::uint64_t version);
  static Message query(core::NodeId sender, std::string key);
  static Message query_hit(core::NodeId sender, const core::EntryMeta& meta);
  static Message query_miss(core::NodeId sender);
  /// Packs `messages` into one frame. Nesting is not allowed: decoding
  /// rejects a batch inside a batch.
  static Message make_batch(core::NodeId sender, std::vector<Message> messages);

  // ---- dynamic membership (PR10) ----
  /// HELLO carrying both the invalidation epoch vector and the sender's
  /// membership epoch. `membership_epoch` 0 falls back to the PR8 frame
  /// (and an empty vector on top of that to the legacy plain HELLO).
  static Message hello_membership(core::NodeId sender,
                                  core::EpochVector epochs,
                                  std::uint64_t membership_epoch);
  /// Data-channel request: "admit me to the cluster" (answered by kJoinAck).
  static Message join(core::NodeId sender);
  /// Admission answer: the responder's membership epoch + active member ids.
  static Message join_ack(core::NodeId sender, std::uint64_t membership_epoch,
                          std::vector<core::NodeId> members);
  /// Info broadcast: the sender has drained and is leaving; peers must
  /// deactivate it without quarantining (its state is already handed off).
  static Message decommission(core::NodeId sender,
                              std::uint64_t membership_epoch);
  /// kInsert with the entry body attached (state handoff): the receiver
  /// adopts the entry into its own store instead of recording a pointer.
  static Message insert_handoff(core::NodeId sender,
                                const core::EntryMeta& meta, std::string body);
};

/// Maximum accepted frame (defends the daemons against garbage).
constexpr std::uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// Serializes a message into its framed wire form.
std::string encode_message(const Message& msg);

/// Decodes one frame payload (excluding the length prefix).
Result<Message> decode_message(std::string_view payload);

}  // namespace swala::cluster
