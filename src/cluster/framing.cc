#include "cluster/framing.h"

namespace swala::cluster {

Status write_message(net::TcpStream& stream, const Message& msg) {
  return stream.write_all(encode_message(msg));
}

Result<Message> read_message(net::TcpStream& stream) {
  char header[4];
  // Distinguish clean EOF (no bytes at all) from a truncated frame.
  auto first = stream.read_some(header, sizeof(header));
  if (!first) return first.status();
  if (first.value() == 0) {
    return Status(StatusCode::kClosed, "peer closed");
  }
  std::size_t got = first.value();
  while (got < sizeof(header)) {
    auto n = stream.read_some(header + got, sizeof(header) - got);
    if (!n) return n.status();
    if (n.value() == 0) {
      return Status(StatusCode::kClosed, "peer closed mid-frame");
    }
    got += n.value();
  }

  const auto* p = reinterpret_cast<const unsigned char*>(header);
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len > kMaxFrameBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "oversized frame: " + std::to_string(len));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    if (auto st = stream.read_exact(payload.data(), len); !st.is_ok()) {
      return st;
    }
  }
  return decode_message(payload);
}

}  // namespace swala::cluster
