// Frame-level I/O over a TcpStream: length-prefixed message read/write.
#pragma once

#include "cluster/message.h"
#include "net/socket.h"

namespace swala::cluster {

/// Writes one framed message.
Status write_message(net::TcpStream& stream, const Message& msg);

/// Reads one framed message (blocking; honours the stream's recv timeout).
/// kClosed on orderly EOF at a frame boundary.
Result<Message> read_message(net::TcpStream& stream);

}  // namespace swala::cluster
