#include "cluster/message.h"

#include <cstring>

namespace swala::cluster {
namespace {

// ---- primitive writers ----

void put_u8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void put_u32(std::string* out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

void put_u64(std::string* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFF));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_double(std::string* out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::string* out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

// ---- primitive readers ----

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    const auto* p = reinterpret_cast<const unsigned char*>(data_.data() + pos_);
    *v = static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t* v) {
    std::uint32_t lo = 0, hi = 0;
    if (!u32(&lo) || !u32(&hi)) return false;
    *v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }

  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool str(std::string* v) {
    std::uint32_t len = 0;
    if (!u32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

void put_meta(std::string* out, const core::EntryMeta& meta) {
  put_string(out, meta.key);
  put_u32(out, meta.owner);
  put_u64(out, meta.size_bytes);
  put_double(out, meta.cost_seconds);
  put_u64(out, static_cast<std::uint64_t>(meta.insert_time));
  put_u64(out, static_cast<std::uint64_t>(meta.expire_time));
  put_u64(out, static_cast<std::uint64_t>(meta.last_access));
  put_u64(out, meta.access_count);
  put_string(out, meta.content_type);
  put_u32(out, static_cast<std::uint32_t>(meta.http_status));
  put_u64(out, meta.version);
}

bool read_meta(Reader* r, core::EntryMeta* meta) {
  std::uint64_t tmp = 0;
  std::uint32_t status = 0;
  if (!r->str(&meta->key)) return false;
  if (!r->u32(&meta->owner)) return false;
  if (!r->u64(&meta->size_bytes)) return false;
  if (!r->f64(&meta->cost_seconds)) return false;
  if (!r->u64(&tmp)) return false;
  meta->insert_time = static_cast<TimeNs>(tmp);
  if (!r->u64(&tmp)) return false;
  meta->expire_time = static_cast<TimeNs>(tmp);
  if (!r->u64(&tmp)) return false;
  meta->last_access = static_cast<TimeNs>(tmp);
  if (!r->u64(&meta->access_count)) return false;
  if (!r->str(&meta->content_type)) return false;
  if (!r->u32(&status)) return false;
  meta->http_status = static_cast<int>(status);
  if (!r->u64(&meta->version)) return false;
  return true;
}

void put_epochs(std::string* out, const core::EpochVector& epochs) {
  put_u32(out, static_cast<std::uint32_t>(epochs.size()));
  for (const auto& [origin, epoch] : epochs) {
    put_u32(out, origin);
    put_u64(out, epoch);
  }
}

bool read_epochs(Reader* r, std::string_view payload,
                 core::EpochVector* epochs) {
  std::uint32_t count = 0;
  if (!r->u32(&count)) return false;
  // Each pair costs 12 bytes on the wire; a lying count cannot exceed what
  // the payload could physically hold.
  if (count > payload.size() / 12) return false;
  epochs->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t origin = 0;
    std::uint64_t epoch = 0;
    if (!r->u32(&origin) || !r->u64(&epoch)) return false;
    epochs->emplace_back(origin, epoch);
  }
  return true;
}

}  // namespace

Message Message::hello(core::NodeId sender) {
  Message m;
  m.type = MsgType::kHello;
  m.sender = sender;
  return m;
}

Message Message::insert(core::NodeId sender, const core::EntryMeta& meta) {
  Message m;
  m.type = MsgType::kInsert;
  m.sender = sender;
  m.meta = meta;
  return m;
}

Message Message::erase(core::NodeId sender, std::string key,
                       std::uint64_t version) {
  Message m;
  m.type = MsgType::kErase;
  m.sender = sender;
  m.key = std::move(key);
  m.version = version;
  return m;
}

Message Message::fetch_req(core::NodeId sender, std::string key) {
  Message m;
  m.type = MsgType::kFetchReq;
  m.sender = sender;
  m.key = std::move(key);
  return m;
}

Message Message::fetch_resp_found(core::NodeId sender,
                                  const core::EntryMeta& meta,
                                  std::string data) {
  Message m;
  m.type = MsgType::kFetchResp;
  m.sender = sender;
  m.found = true;
  m.meta = meta;
  m.data = std::move(data);
  return m;
}

Message Message::fetch_resp_miss(core::NodeId sender) {
  Message m;
  m.type = MsgType::kFetchResp;
  m.sender = sender;
  m.found = false;
  return m;
}

Message Message::invalidate(core::NodeId sender, std::string pattern,
                            std::uint64_t epoch) {
  Message m;
  m.type = MsgType::kInvalidate;
  m.sender = sender;
  m.key = std::move(pattern);
  m.epoch = epoch;
  return m;
}

Message Message::sync_req(core::NodeId sender) {
  Message m;
  m.type = MsgType::kSyncReq;
  m.sender = sender;
  return m;
}

Message Message::hello_with_epochs(core::NodeId sender,
                                   core::EpochVector epochs) {
  Message m;
  m.type = MsgType::kHello;
  m.sender = sender;
  m.epochs = std::move(epochs);
  return m;
}

Message Message::make_digest(core::NodeId sender, core::EpochVector epochs,
                             bool has_digest, std::uint64_t digest) {
  Message m;
  m.type = MsgType::kDigest;
  m.sender = sender;
  m.epochs = std::move(epochs);
  m.has_digest = has_digest;
  m.digest = digest;
  return m;
}

Message Message::inv_sync(core::NodeId sender, core::EpochVector floors) {
  Message m;
  m.type = MsgType::kInvSync;
  m.sender = sender;
  m.epochs = std::move(floors);
  return m;
}

Message Message::inv_sync_resp(core::NodeId sender,
                               std::vector<core::InvalidationRecord> entries,
                               bool truncated) {
  Message m;
  m.type = MsgType::kInvSyncResp;
  m.sender = sender;
  m.inv_entries = std::move(entries);
  m.truncated = truncated;
  return m;
}

Message Message::owner_insert(core::NodeId sender,
                              const core::EntryMeta& meta) {
  Message m;
  m.type = MsgType::kOwnerUpdate;
  m.sender = sender;
  m.owner_op = OwnerOp::kInsert;
  m.meta = meta;
  return m;
}

Message Message::owner_erase(core::NodeId sender, core::NodeId cache_node,
                             std::string key, std::uint64_t version) {
  Message m;
  m.type = MsgType::kOwnerUpdate;
  m.sender = sender;
  m.owner_op = OwnerOp::kErase;
  m.meta.owner = cache_node;
  m.key = std::move(key);
  m.version = version;
  return m;
}

Message Message::query(core::NodeId sender, std::string key) {
  Message m;
  m.type = MsgType::kQuery;
  m.sender = sender;
  m.key = std::move(key);
  return m;
}

Message Message::query_hit(core::NodeId sender, const core::EntryMeta& meta) {
  Message m;
  m.type = MsgType::kQueryHit;
  m.sender = sender;
  m.found = true;
  m.meta = meta;
  return m;
}

Message Message::query_miss(core::NodeId sender) {
  Message m;
  m.type = MsgType::kQueryHit;
  m.sender = sender;
  m.found = false;
  return m;
}

Message Message::make_batch(core::NodeId sender,
                            std::vector<Message> messages) {
  Message m;
  m.type = MsgType::kBatch;
  m.sender = sender;
  m.batch = std::move(messages);
  return m;
}

Message Message::hello_membership(core::NodeId sender,
                                  core::EpochVector epochs,
                                  std::uint64_t membership_epoch) {
  Message m;
  m.type = MsgType::kHello;
  m.sender = sender;
  m.epochs = std::move(epochs);
  m.membership_epoch = membership_epoch;
  return m;
}

Message Message::join(core::NodeId sender) {
  Message m;
  m.type = MsgType::kJoin;
  m.sender = sender;
  return m;
}

Message Message::join_ack(core::NodeId sender, std::uint64_t membership_epoch,
                          std::vector<core::NodeId> members) {
  Message m;
  m.type = MsgType::kJoinAck;
  m.sender = sender;
  m.membership_epoch = membership_epoch;
  m.members = std::move(members);
  return m;
}

Message Message::decommission(core::NodeId sender,
                              std::uint64_t membership_epoch) {
  Message m;
  m.type = MsgType::kDecommission;
  m.sender = sender;
  m.membership_epoch = membership_epoch;
  return m;
}

Message Message::insert_handoff(core::NodeId sender,
                                const core::EntryMeta& meta,
                                std::string body) {
  Message m;
  m.type = MsgType::kInsert;
  m.sender = sender;
  m.meta = meta;
  m.handoff = true;
  m.data = std::move(body);
  return m;
}

std::string encode_message(const Message& msg) {
  std::string payload;
  put_u8(&payload, static_cast<std::uint8_t>(msg.type));
  put_u32(&payload, msg.sender);
  switch (msg.type) {
    case MsgType::kHello:
      // Optional tails, in order: epoch vector (PR8), then membership epoch
      // (PR10). An empty vector with membership epoch 0 keeps the legacy
      // zero-payload HELLO byte-identical; a nonzero membership epoch
      // forces the vector tail (possibly a zero count) so the decoder can
      // delimit the two.
      if (!msg.epochs.empty() || msg.membership_epoch != 0) {
        put_epochs(&payload, msg.epochs);
      }
      if (msg.membership_epoch != 0) put_u64(&payload, msg.membership_epoch);
      break;
    case MsgType::kSyncReq:
      break;
    case MsgType::kInsert:
      put_meta(&payload, msg.meta);
      // Optional handoff tail: flags byte + entry body. Plain directory
      // updates stay byte-identical to every prior build.
      if (msg.handoff) {
        put_u8(&payload, 1);
        put_string(&payload, msg.data);
      }
      break;
    case MsgType::kErase:
      put_string(&payload, msg.key);
      put_u64(&payload, msg.version);
      break;
    case MsgType::kFetchReq:
      put_string(&payload, msg.key);
      break;
    case MsgType::kInvalidate:
      put_string(&payload, msg.key);
      // Optional epoch tail; epoch 0 keeps the legacy frame byte-identical.
      if (msg.epoch != 0) put_u64(&payload, msg.epoch);
      break;
    case MsgType::kFetchResp:
      put_u8(&payload, msg.found ? 1 : 0);
      if (msg.found) {
        put_meta(&payload, msg.meta);
        put_string(&payload, msg.data);
      }
      break;
    case MsgType::kOwnerUpdate:
      put_u8(&payload, static_cast<std::uint8_t>(msg.owner_op));
      if (msg.owner_op == OwnerOp::kInsert) {
        put_meta(&payload, msg.meta);
      } else {
        put_u32(&payload, msg.meta.owner);  // the caching node
        put_string(&payload, msg.key);
        put_u64(&payload, msg.version);
      }
      break;
    case MsgType::kQuery:
      put_string(&payload, msg.key);
      break;
    case MsgType::kQueryHit:
      put_u8(&payload, msg.found ? 1 : 0);
      if (msg.found) put_meta(&payload, msg.meta);
      break;
    case MsgType::kBatch:
      // Each inner message keeps its full framed form (u32 length + payload)
      // so the decoder can delimit them with the ordinary string reader.
      put_u32(&payload, static_cast<std::uint32_t>(msg.batch.size()));
      for (const Message& inner : msg.batch) payload += encode_message(inner);
      break;
    case MsgType::kDigest:
      put_epochs(&payload, msg.epochs);
      put_u8(&payload, msg.has_digest ? 1 : 0);
      if (msg.has_digest) put_u64(&payload, msg.digest);
      break;
    case MsgType::kInvSync:
      put_epochs(&payload, msg.epochs);
      break;
    case MsgType::kInvSyncResp:
      put_u8(&payload, msg.truncated ? 1 : 0);
      put_u32(&payload, static_cast<std::uint32_t>(msg.inv_entries.size()));
      for (const auto& rec : msg.inv_entries) {
        put_u32(&payload, rec.origin);
        put_u64(&payload, rec.epoch);
        put_string(&payload, rec.pattern);
      }
      break;
    case MsgType::kJoin:
      break;
    case MsgType::kJoinAck:
      put_u64(&payload, msg.membership_epoch);
      put_u32(&payload, static_cast<std::uint32_t>(msg.members.size()));
      for (const core::NodeId id : msg.members) put_u32(&payload, id);
      break;
    case MsgType::kDecommission:
      put_u64(&payload, msg.membership_epoch);
      break;
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  put_u32(&frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

Result<Message> decode_message(std::string_view payload) {
  Reader r(payload);
  std::uint8_t type = 0;
  Message msg;
  if (!r.u8(&type) || !r.u32(&msg.sender)) {
    return Status(StatusCode::kInvalidArgument, "truncated message header");
  }
  msg.type = static_cast<MsgType>(type);
  bool ok = true;
  switch (msg.type) {
    case MsgType::kHello:
      // Optional tails: epoch vector, then membership epoch (both absent on
      // legacy frames).
      if (!r.done()) ok = read_epochs(&r, payload, &msg.epochs);
      if (ok && !r.done()) ok = r.u64(&msg.membership_epoch);
      break;
    case MsgType::kSyncReq:
      break;
    case MsgType::kInsert:
      ok = read_meta(&r, &msg.meta);
      // Optional handoff tail: flags byte + body (absent on plain updates).
      if (ok && !r.done()) {
        std::uint8_t flags = 0;
        ok = r.u8(&flags) && flags == 1 && r.str(&msg.data);
        msg.handoff = ok;
      }
      break;
    case MsgType::kErase:
      ok = r.str(&msg.key) && r.u64(&msg.version);
      break;
    case MsgType::kFetchReq:
      ok = r.str(&msg.key);
      break;
    case MsgType::kInvalidate:
      ok = r.str(&msg.key);
      // Optional epoch tail (absent on legacy frames; absent means 0).
      if (ok && !r.done()) ok = r.u64(&msg.epoch);
      break;
    case MsgType::kFetchResp: {
      std::uint8_t found = 0;
      ok = r.u8(&found);
      msg.found = found != 0;
      if (ok && msg.found) ok = read_meta(&r, &msg.meta) && r.str(&msg.data);
      break;
    }
    case MsgType::kOwnerUpdate: {
      std::uint8_t op = 0;
      ok = r.u8(&op);
      if (ok && op == static_cast<std::uint8_t>(OwnerOp::kInsert)) {
        msg.owner_op = OwnerOp::kInsert;
        ok = read_meta(&r, &msg.meta);
      } else if (ok && op == static_cast<std::uint8_t>(OwnerOp::kErase)) {
        msg.owner_op = OwnerOp::kErase;
        ok = r.u32(&msg.meta.owner) && r.str(&msg.key) && r.u64(&msg.version);
      } else {
        ok = false;  // unknown owner-update op
      }
      break;
    }
    case MsgType::kQuery:
      ok = r.str(&msg.key);
      break;
    case MsgType::kQueryHit: {
      std::uint8_t found = 0;
      ok = r.u8(&found);
      msg.found = found != 0;
      if (ok && msg.found) ok = read_meta(&r, &msg.meta);
      break;
    }
    case MsgType::kBatch: {
      std::uint32_t count = 0;
      ok = r.u32(&count);
      // A lying count cannot exceed what the payload could physically hold:
      // every inner message costs at least its 4-byte length prefix plus a
      // 5-byte header.
      if (ok && count > payload.size() / 9) ok = false;
      for (std::uint32_t i = 0; ok && i < count; ++i) {
        std::string inner;
        if (!r.str(&inner)) {
          ok = false;
          break;
        }
        auto decoded = decode_message(inner);
        if (!decoded || decoded.value().type == MsgType::kBatch) {
          ok = false;  // malformed inner, or an (unsupported) nested batch
          break;
        }
        msg.batch.push_back(std::move(decoded.value()));
      }
      break;
    }
    case MsgType::kDigest: {
      std::uint8_t has = 0;
      ok = read_epochs(&r, payload, &msg.epochs) && r.u8(&has);
      msg.has_digest = has != 0;
      if (ok && msg.has_digest) ok = r.u64(&msg.digest);
      break;
    }
    case MsgType::kInvSync:
      ok = read_epochs(&r, payload, &msg.epochs);
      break;
    case MsgType::kInvSyncResp: {
      std::uint8_t trunc = 0;
      std::uint32_t count = 0;
      ok = r.u8(&trunc) && r.u32(&count);
      msg.truncated = trunc != 0;
      // Each record costs at least 16 bytes (u32 origin + u64 epoch + u32
      // pattern length); a lying count cannot exceed that bound.
      if (ok && count > payload.size() / 16) ok = false;
      for (std::uint32_t i = 0; ok && i < count; ++i) {
        core::InvalidationRecord rec;
        ok = r.u32(&rec.origin) && r.u64(&rec.epoch) && r.str(&rec.pattern);
        if (ok) msg.inv_entries.push_back(std::move(rec));
      }
      break;
    }
    case MsgType::kJoin:
      break;
    case MsgType::kJoinAck: {
      std::uint32_t count = 0;
      ok = r.u64(&msg.membership_epoch) && r.u32(&count);
      // Each member id costs 4 bytes on the wire; a lying count cannot
      // exceed what the payload could physically hold.
      if (ok && count > payload.size() / 4) ok = false;
      for (std::uint32_t i = 0; ok && i < count; ++i) {
        core::NodeId id = 0;
        ok = r.u32(&id);
        if (ok) msg.members.push_back(id);
      }
      break;
    }
    case MsgType::kDecommission:
      ok = r.u64(&msg.membership_epoch);
      break;
    default:
      return Status(StatusCode::kInvalidArgument,
                    "unknown message type " + std::to_string(type));
  }
  if (!ok || !r.done()) {
    return Status(StatusCode::kInvalidArgument, "malformed message payload");
  }
  return msg;
}

}  // namespace swala::cluster
