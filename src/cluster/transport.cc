#include "cluster/transport.h"

#include <chrono>
#include <thread>

namespace swala::cluster {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBlackhole:
      return "blackhole";
    case FaultKind::kDuplicate:
      return "duplicate";
  }
  return "?";
}

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::add_rule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(ActiveRule{rule});
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
}

FaultDecision FaultInjector::decide(core::NodeId peer, MsgType type) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& active : rules_) {
    const FaultRule& r = active.rule;
    if (r.peer != core::kInvalidNode && r.peer != peer) continue;
    if (r.type.has_value() && *r.type != type) continue;
    active.matched++;
    if (active.matched <= r.skip) return {};
    if (r.count != 0 && active.fired >= r.count) return {};
    if (r.probability < 1.0 && !rng_.bernoulli(r.probability)) return {};
    active.fired++;
    faults_injected_++;
    return {r.kind, r.delay_ms};
  }
  return {};
}

std::uint64_t FaultInjector::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_injected_;
}

Status Transport::send(net::TcpStream& stream, core::NodeId peer,
                       const Message& msg) {
  FaultDecision fault;
  if (faults_ != nullptr) fault = faults_->decide(peer, msg.type);
  switch (fault.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDrop:
    case FaultKind::kBlackhole:
      // The message vanishes; the sender believes it was delivered. The
      // receiver-side symptom is a lost update or a read timeout.
      return Status::ok();
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
      break;
    case FaultKind::kTruncate: {
      const std::string frame = encode_message(msg);
      const std::size_t torn = frame.size() > 1 ? frame.size() / 2 : 1;
      (void)stream.write_all(std::string_view(frame).substr(0, torn));
      return Status(StatusCode::kIoError, "fault injection: truncated frame");
    }
    case FaultKind::kDuplicate: {
      // Replay/retransmit: write the frame once here, then fall through to
      // the normal write for the second copy. Duplicating a request or
      // response frame would desync the request/response framing on pooled
      // data connections, so only one-way info-channel traffic doubles.
      if (msg.type != MsgType::kFetchReq && msg.type != MsgType::kFetchResp &&
          msg.type != MsgType::kQuery && msg.type != MsgType::kQueryHit &&
          msg.type != MsgType::kInvSync && msg.type != MsgType::kInvSyncResp) {
        if (auto st = write_message(stream, msg); !st.is_ok()) return st;
      }
      break;
    }
  }
  return write_message(stream, msg);
}

Result<Message> Transport::recv(net::TcpStream& stream, core::NodeId peer) {
  (void)peer;
  return read_message(stream);
}

}  // namespace swala::cluster
