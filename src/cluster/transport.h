// Transport: framed message I/O between cluster nodes, with an optional
// deterministic fault-injection hook. Every send the cluster layer performs
// (broadcast, fetch request, fetch response, hello, sync) flows through one
// Transport, so a single FaultInjector can drop, delay, truncate or
// black-hole traffic per peer / message type / sequence position — which is
// what makes peer-failure behaviour testable without kill + sleep.
//
// The same FaultInjector plugs into the simulator's in-memory bus
// (sim/cluster_sim.h), so identical fault scenarios run under virtual time.
#pragma once

#include <mutex>
#include <optional>
#include <vector>

#include "cluster/framing.h"
#include "common/random.h"

namespace swala::cluster {

/// What happens to a matched message.
enum class FaultKind {
  kNone,       ///< deliver normally
  kDrop,       ///< silently discard; the sender believes the send succeeded
  kDelay,      ///< deliver after `delay_ms` (slow peer / congested link)
  kTruncate,   ///< write a partial frame, then fail the send (torn write)
  kBlackhole,  ///< discard like kDrop; the simulator models it as a hang
               ///< until the caller's deadline instead of a silent loss
  kDuplicate,  ///< deliver the frame twice (retransmit/replay); receivers
               ///< must treat the copy as a no-op (version/epoch guards)
};

const char* fault_kind_name(FaultKind kind);

/// One injection rule. Rules are matched in insertion order; the first rule
/// whose peer/type filters match a message decides its fate. `skip` lets
/// that many matching messages pass before the rule starts firing, and
/// `count` bounds how many times it fires (0 = forever), which is how tests
/// target "the 3rd broadcast to node 2" deterministically.
struct FaultRule {
  core::NodeId peer = core::kInvalidNode;  ///< kInvalidNode = any peer
  std::optional<MsgType> type;             ///< nullopt = any message type
  FaultKind kind = FaultKind::kDrop;
  int delay_ms = 0;                        ///< kDelay only
  std::uint64_t skip = 0;                  ///< matches to let pass first
  std::uint64_t count = 0;                 ///< firings allowed; 0 = forever
  double probability = 1.0;                ///< seeded coin after skip/count
};

/// Outcome of consulting the injector for one message.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  int delay_ms = 0;
};

/// Deterministic, thread-safe fault oracle. All randomness (the optional
/// per-rule probability) comes from one seeded Rng, so a scenario replays
/// bit-for-bit given the same seed and message order.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5EEDFA11u);

  void add_rule(FaultRule rule);
  void clear();

  /// Decides the fate of one outgoing message to `peer`.
  FaultDecision decide(core::NodeId peer, MsgType type);

  /// Total faults fired so far (tests assert the scenario actually ran).
  std::uint64_t faults_injected() const;

 private:
  struct ActiveRule {
    FaultRule rule;
    std::uint64_t matched = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  Rng rng_;                         // guarded by mutex_
  std::vector<ActiveRule> rules_;   // guarded by mutex_
  std::uint64_t faults_injected_ = 0;
};

/// Framed send/recv over a TcpStream with faults applied on the send side.
/// Injecting at the sender is sufficient for every failure mode: a dropped
/// FETCH_REQ or FETCH_RESP surfaces at the other end as a read timeout, a
/// truncated frame as a mid-frame EOF, a dropped broadcast as a lost
/// directory update.
class Transport {
 public:
  explicit Transport(FaultInjector* faults = nullptr) : faults_(faults) {}

  /// Sends one framed message to `peer`. A kDrop/kBlackhole fault returns OK
  /// without writing; kTruncate writes a torn frame and fails the send.
  Status send(net::TcpStream& stream, core::NodeId peer, const Message& msg);

  /// Reads one framed message (faults are send-side only; this is a thin
  /// wrapper kept for symmetry and future receive-side hooks).
  Result<Message> recv(net::TcpStream& stream, core::NodeId peer);

  FaultInjector* injector() const { return faults_; }

 private:
  FaultInjector* faults_;  ///< not owned; null = fault-free transport
};

}  // namespace swala::cluster
