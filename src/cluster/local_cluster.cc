#include "cluster/local_cluster.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace swala::cluster {

LocalCluster::LocalCluster(
    std::size_t n,
    std::function<core::ManagerOptions(core::NodeId)> make_options,
    const Clock* clock, GroupOptions group_options)
    : LocalCluster(n, std::move(make_options), clock,
                   [group_options](core::NodeId) { return group_options; }) {}

LocalCluster::LocalCluster(
    std::size_t n,
    std::function<core::ManagerOptions(core::NodeId)> make_options,
    const Clock* clock,
    std::function<GroupOptions(core::NodeId)> make_group_options) {
  auto members = loopback_members(n);

  // Phase 1: create and start all groups (binds ephemeral ports).
  for (std::size_t i = 0; i < n; ++i) {
    auto group = std::make_unique<NodeGroup>(
        static_cast<core::NodeId>(i), members,
        make_group_options(static_cast<core::NodeId>(i)));
    if (auto st = group->start(); !st.is_ok()) {
      throw std::runtime_error("LocalCluster: " + st.to_string());
    }
    groups_.push_back(std::move(group));
  }

  // Phase 2: collect the real ports and redistribute.
  for (std::size_t i = 0; i < n; ++i) {
    members[i].info_addr.port = groups_[i]->info_port();
    members[i].data_addr.port = groups_[i]->data_port();
  }
  for (auto& group : groups_) group->set_members(members);
  members_ = members;

  // Phase 3: build managers wired to their groups.
  for (std::size_t i = 0; i < n; ++i) {
    auto manager = std::make_unique<core::CacheManager>(
        static_cast<core::NodeId>(i), n, make_options(static_cast<core::NodeId>(i)),
        clock, groups_[i].get());
    groups_[i]->attach(manager.get());
    managers_.push_back(std::move(manager));
  }
}

LocalCluster::~LocalCluster() { stop(); }

bool LocalCluster::quiesce(double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  const auto backlog = [this] {
    std::size_t total = 0;
    for (const auto& group : groups_) total += group->outbound_backlog();
    return total;
  };
  while (std::chrono::steady_clock::now() < deadline) {
    if (backlog() != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    // Queues drained; give popped-but-unapplied messages time to land, then
    // require the backlog to still be empty (a purge tick or peer reaction
    // may have enqueued more).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (backlog() == 0) return true;
  }
  return backlog() == 0;
}

core::ClusterConsistencyReport LocalCluster::check_cluster_consistency()
    const {
  std::vector<const core::CacheManager*> managers;
  managers.reserve(managers_.size());
  for (const auto& manager : managers_) managers.push_back(manager.get());
  return core::check_cluster_consistency(managers);
}

void LocalCluster::stop() {
  for (auto& group : groups_) group->stop();
}

}  // namespace swala::cluster
