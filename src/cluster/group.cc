#include "cluster/group.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace swala::cluster {

const char* peer_state_name(PeerState state) {
  switch (state) {
    case PeerState::kHealthy: return "healthy";
    case PeerState::kSuspect: return "suspect";
    case PeerState::kDead: return "dead";
  }
  return "?";
}

std::vector<MemberAddress> loopback_members(std::size_t n) {
  std::vector<MemberAddress> members(n);
  for (std::size_t i = 0; i < n; ++i) {
    members[i].id = static_cast<core::NodeId>(i);
    members[i].info_addr = {"127.0.0.1", 0};
    members[i].data_addr = {"127.0.0.1", 0};
  }
  return members;
}

NodeGroup::NodeGroup(core::NodeId self, std::vector<MemberAddress> members,
                     GroupOptions options)
    : self_(self),
      members_(std::move(members)),
      options_(options),
      transport_(options.fault_injector),
      backoff_rng_(options.backoff_seed) {
  query_rotation_.store(options.backoff_seed, std::memory_order_relaxed);
}

NodeGroup::~NodeGroup() { stop(); }

Status NodeGroup::start() {
  if (running_.exchange(true)) return Status::ok();

  const MemberAddress* me = nullptr;
  for (const auto& m : members_) {
    if (m.id == self_) me = &m;
  }
  if (me == nullptr) {
    running_ = false;
    return Status(StatusCode::kInvalidArgument, "self not in member list");
  }

  auto info = net::TcpListener::listen(me->info_addr);
  if (!info) {
    running_ = false;
    return info.status();
  }
  info_listener_ = std::move(info.value());

  auto data = net::TcpListener::listen(me->data_addr);
  if (!data) {
    running_ = false;
    return data.status();
  }
  data_listener_ = std::move(data.value());

  // One outbound queue + sender thread per peer: the broadcast is
  // asynchronous and never blocks a request thread on a slow peer.
  for (const auto& m : members_) {
    if (m.id == self_) continue;
    auto link = std::make_unique<PeerLink>();
    link->address = m;
    if (!options_.initial_active.empty()) {
      link->active.store(std::find(options_.initial_active.begin(),
                                   options_.initial_active.end(),
                                   m.id) != options_.initial_active.end(),
                         std::memory_order_release);
    }
    link->outbound =
        std::make_unique<BoundedQueue<Message>>(options_.outbound_queue_capacity);
    PeerLink* raw = link.get();
    link->sender = std::thread([this, raw] { sender_loop(raw); });
    peers_.push_back(std::move(link));
  }

  info_accept_thread_ = std::thread([this] { info_accept_loop(); });
  data_accept_thread_ = std::thread([this] { data_accept_loop(); });
  purge_thread_ = std::thread([this] { purge_loop(); });
  return Status::ok();
}

void NodeGroup::set_members(std::vector<MemberAddress> members) {
  members_ = std::move(members);
  for (auto& peer : peers_) {
    for (const auto& m : members_) {
      if (m.id == peer->address.id) peer->address = m;
    }
  }
}

void NodeGroup::stop() {
  if (!running_.exchange(false)) return;
  info_listener_.close();
  data_listener_.close();
  for (auto& peer : peers_) peer->outbound->close();
  for (auto& peer : peers_) {
    if (peer->sender.joinable()) peer->sender.join();
  }
  if (info_accept_thread_.joinable()) info_accept_thread_.join();
  if (data_accept_thread_.joinable()) data_accept_thread_.join();
  if (purge_thread_.joinable()) purge_thread_.join();
  {
    std::lock_guard<std::mutex> lock(reader_mutex_);
    for (auto& t : reader_threads_) {
      if (t.joinable()) t.join();
    }
    for (auto& t : data_threads_) {
      if (t.joinable()) t.join();
    }
    reader_threads_.clear();
    data_threads_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    fetch_pool_.clear();
  }
  peers_.clear();
}

// ---- circuit breaker ----

NodeGroup::PeerLink* NodeGroup::find_link(core::NodeId id) const {
  for (const auto& peer : peers_) {
    if (peer->address.id == id) return peer.get();
  }
  return nullptr;
}

PeerState NodeGroup::state_of(PeerLink* link) const {
  std::lock_guard<std::mutex> lock(link->health_mutex);
  return link->state;
}

void NodeGroup::record_failure(PeerLink* link) {
  peer_failures_.fetch_add(1, std::memory_order_relaxed);
  link->total_failures.fetch_add(1, std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  const auto probe_gap = std::chrono::milliseconds(options_.probe_interval_ms);
  std::lock_guard<std::mutex> lock(link->health_mutex);
  ++link->consecutive_failures;
  if (link->state == PeerState::kDead) {
    // Failed probe: stay dead, push the next probe out.
    link->next_probe = now + probe_gap;
    return;
  }
  if (link->consecutive_failures >= options_.failure_threshold) {
    link->state = PeerState::kDead;
    link->next_probe = now + probe_gap;
    SWALA_LOG(Warn) << "node " << self_ << ": peer " << link->address.id
                    << " marked dead after " << link->consecutive_failures
                    << " consecutive failures";
    // Quarantine inside the transition so a racing recovery cannot leave
    // the directory visible for a peer we just wrote off.
    core::CacheManager* manager = manager_.load(std::memory_order_acquire);
    if (manager != nullptr) manager->on_peer_dead(link->address.id);
  } else {
    link->state = PeerState::kSuspect;
  }
}

void NodeGroup::record_success(PeerLink* link) {
  std::lock_guard<std::mutex> lock(link->health_mutex);
  const bool recovered = link->state == PeerState::kDead;
  link->state = PeerState::kHealthy;
  link->consecutive_failures = 0;
  if (!recovered) return;
  SWALA_LOG(Info) << "node " << self_ << ": peer " << link->address.id
                  << " recovered; requesting resync";
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  if (manager != nullptr) manager->on_peer_recovered(link->address.id);
  // Converge both directions: ask the peer to re-announce its entries to
  // us, and re-announce ours to it (it may have restarted with a blank
  // view of this node's table).
  resyncs_requested_.fetch_add(1, std::memory_order_relaxed);
  link->outbound->try_push(Message::sync_req(self_));
  push_state_to(link);
}

void NodeGroup::push_state_to(PeerLink* link) {
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  if (manager == nullptr) return;
  const auto mode = manager->directory_mode();
  if (mode == core::DirectoryMode::kQuery) return;  // no remote state to sync
  for (const auto& meta : manager->store().resident_metas()) {
    if (mode == core::DirectoryMode::kReplicated) {
      link->outbound->try_push(Message::insert(self_, meta));
    } else if (manager->ring_owner_of(meta.key) == link->address.id) {
      // Partitioned: a rejoining owner lost its partition; re-announce only
      // the entries it owns (every survivor does this, so the owner's view
      // of the whole partition converges).
      link->outbound->try_push(Message::owner_insert(self_, meta));
    }
  }
}

void NodeGroup::probe_dead_peers() {
  const auto now = std::chrono::steady_clock::now();
  for (auto& peer : peers_) {
    if (!peer->active.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(peer->health_mutex);
    if (peer->state != PeerState::kDead || now < peer->next_probe) continue;
    peer->next_probe = now + std::chrono::milliseconds(options_.probe_interval_ms);
    peer->probes.fetch_add(1, std::memory_order_relaxed);
    probes_sent_.fetch_add(1, std::memory_order_relaxed);
    peer->outbound->try_push(make_hello());
  }
}

Message NodeGroup::make_hello() const {
  // The epoch vector rides every greeting/probe, so the first exchange
  // after a rejoin already exposes any invalidation gap. Before attach()
  // there is no log yet: plain HELLO.
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  if (manager == nullptr) return Message::hello(self_);
  // The membership epoch rides along too, so divergent views surface on the
  // first exchange (status pages and tests compare them; the kJoin protocol
  // itself converges via kJoinAck).
  return Message::hello_membership(self_, manager->inv_high_vector(),
                                   manager->membership_epoch());
}

void NodeGroup::anti_entropy_round() {
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  if (manager == nullptr) return;
  // A node outside the membership (pre-join stand-alone) or on its way out
  // (decommissioning, drain-only) does not gossip: its digests would read
  // as permanent drift to peers that already cleared its table.
  if (!manager->is_member(self_) || manager->decommissioning()) return;
  anti_entropy_rounds_.fetch_add(1, std::memory_order_relaxed);
  const auto high = manager->inv_high_vector();
  // Query mode keeps no remote directory state to compare, so its digest
  // is omitted; the epoch vector still repairs lost invalidations.
  const bool has_digest =
      manager->directory_mode() != core::DirectoryMode::kQuery;
  for (auto& peer : peers_) {
    if (!peer->active.load(std::memory_order_acquire)) continue;
    if (state_of(peer.get()) == PeerState::kDead) continue;  // probes handle it
    std::size_t entries = 0;
    const std::uint64_t digest =
        has_digest ? manager->digest_for_peer(peer->address.id, &entries) : 0;
    if (peer->outbound->try_push(
            Message::make_digest(self_, high, has_digest, digest))) {
      digests_sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void NodeGroup::maybe_pull_inv_sync(core::NodeId peer,
                                    const core::EpochVector& high) {
  if (high.empty()) return;
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  if (manager == nullptr || !manager->inv_behind(high)) return;
  inv_syncs_pulled_.fetch_add(1, std::memory_order_relaxed);
  // Budget like a directory probe: the pull is an optimization pass and
  // must not stall the info reader behind a slow peer.
  const int io_timeout_ms = options_.query_timeout_ms;
  const int connect_timeout_ms =
      std::min(options_.connect_timeout_ms, io_timeout_ms);
  auto resp = data_exchange(peer,
                            Message::inv_sync(self_, manager->inv_floor_vector()),
                            MsgType::kInvSyncResp, io_timeout_ms,
                            connect_timeout_ms);
  if (!resp) return;  // next round retries; the gap persists until repaired
  manager->apply_inv_sync(resp.value().inv_entries, resp.value().truncated);
}

void NodeGroup::check_digest(core::NodeId peer, bool has_digest,
                             std::uint64_t digest) {
  if (!has_digest) return;
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  PeerLink* link = find_link(peer);
  if (manager == nullptr || link == nullptr) return;
  std::size_t entries = 0;
  const std::uint64_t local = manager->digest_of_peer_table(peer, &entries);
  bool repair = false;
  {
    std::lock_guard<std::mutex> lock(link->health_mutex);
    if (link->state == PeerState::kDead) return;  // rejoin machinery owns it
    if (local == digest) {
      link->mismatch_pending = false;
      return;
    }
    if (link->mismatch_pending && link->last_peer_digest == digest &&
        link->last_local_digest == local) {
      // Same mismatch two rounds in a row with nothing moving on either
      // side: this is real drift (a lost kInsert/kOwnerUpdate), not an
      // in-flight update racing the snapshot.
      repair = true;
      link->mismatch_pending = false;
    } else {
      link->mismatch_pending = true;
      link->last_peer_digest = digest;
      link->last_local_digest = local;
    }
  }
  if (!repair) return;
  digest_repairs_.fetch_add(1, std::memory_order_relaxed);
  SWALA_LOG(Warn) << "node " << self_ << ": directory digest drift vs peer "
                  << peer << " persisted two rounds; resyncing";
  // Same flow as a rejoin: drop our stale view of the peer's table and ask
  // it to re-announce.
  manager->on_peer_recovered(peer);
  resyncs_requested_.fetch_add(1, std::memory_order_relaxed);
  link->outbound->try_push(Message::sync_req(self_));
}

int NodeGroup::backoff_delay_ms(int attempt) {
  std::int64_t base = options_.backoff_base_ms;
  for (int i = 1; i < attempt && base < options_.backoff_max_ms; ++i) base *= 2;
  if (base > options_.backoff_max_ms) base = options_.backoff_max_ms;
  if (base < 1) base = 1;
  // Jitter in [base/2, base] de-synchronizes the per-peer sender threads.
  std::lock_guard<std::mutex> lock(backoff_mutex_);
  return static_cast<int>(backoff_rng_.uniform_int(base / 2, base));
}

// ---- info channel ----

void NodeGroup::info_accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto conn = info_listener_.accept(/*timeout_ms=*/200);
    if (!conn) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      break;  // listener closed
    }
    (void)conn.value().set_no_delay(true);
    (void)conn.value().set_recv_timeout(200);
    std::lock_guard<std::mutex> lock(reader_mutex_);
    reader_threads_.emplace_back(
        [this, stream = std::move(conn.value())]() mutable {
          info_read_loop(std::move(stream));
        });
  }
}

void NodeGroup::info_read_loop(net::TcpStream stream) {
  while (running_.load(std::memory_order_relaxed)) {
    auto msg = read_message(stream);
    if (!msg) {
      if (msg.status().code() == StatusCode::kTimeout) continue;
      return;  // closed or corrupt; drop the connection
    }
    if (msg.value().type == MsgType::kBatch) {
      // Inner messages apply in encode order, so the sender's version order
      // (inserts before their erases, etc.) is preserved exactly as if each
      // update had arrived in its own frame.
      for (const Message& inner : msg.value().batch) {
        updates_received_.fetch_add(1, std::memory_order_relaxed);
        apply_info_message(inner);
      }
    } else {
      updates_received_.fetch_add(1, std::memory_order_relaxed);
      apply_info_message(msg.value());
    }
  }
}

void NodeGroup::apply_info_message(const Message& msg) {
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  switch (msg.type) {
    case MsgType::kHello:
      // A HELLO from a peer we had written off is the rejoin signal: the
      // restarted node greets before its first broadcast.
      if (PeerLink* link = find_link(msg.sender)) {
        record_success(link);
      }
      // The greeting's piggybacked epoch vector exposes any invalidation
      // gap immediately (first exchange after a rejoin, not a full
      // anti-entropy round later). Runs after record_success returns so no
      // health_mutex is held across the synchronous pull.
      maybe_pull_inv_sync(msg.sender, msg.epochs);
      break;
    case MsgType::kDigest:
      // Anti-entropy round: epoch gap first (repairs lost invalidations),
      // then the directory digest (repairs lost inserts/owner updates).
      // Straggler digests from a node we no longer (or don't yet) consider
      // a member are dropped: we keep no table for it to compare.
      if (manager != nullptr && !manager->is_member(msg.sender)) break;
      maybe_pull_inv_sync(msg.sender, msg.epochs);
      check_digest(msg.sender, msg.has_digest, msg.digest);
      break;
    case MsgType::kSyncReq:
      // The peer cleared its copy of our table; re-announce what we hold.
      // A non-member requester gets nothing (its records would point at a
      // node the cluster no longer routes to).
      if (manager != nullptr && !manager->is_member(msg.sender)) break;
      if (PeerLink* link = find_link(msg.sender)) {
        resyncs_served_.fetch_add(1, std::memory_order_relaxed);
        push_state_to(link);
      }
      break;
    case MsgType::kInsert:
      if (manager != nullptr) {
        if (msg.handoff) {
          // Decommission handoff: the departing owner shipped us the whole
          // entry (meta + body); adopt it into our own store instead of
          // recording a directory entry for a node that is leaving.
          if (manager->adopt_entry(msg.meta, msg.data)) {
            handoffs_adopted_.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          manager->on_peer_insert(msg.meta);
        }
      }
      break;
    case MsgType::kErase:
      if (manager != nullptr) {
        manager->on_peer_erase(msg.sender, msg.key, msg.version);
      }
      break;
    case MsgType::kInvalidate:
      // The frame's sender is the originating node: invalidations are
      // broadcast by their origin only, never relayed.
      if (manager != nullptr) {
        manager->on_peer_invalidate(msg.key, msg.sender, msg.epoch);
      }
      break;
    case MsgType::kDecommission:
      // Graceful leave. Deactivate the slot without the dead-peer
      // quarantine: the leaver already handed its state off, so there is
      // nothing to resync when (if) the slot rejoins.
      decommissions_observed_.fetch_add(1, std::memory_order_relaxed);
      SWALA_LOG(Info) << "node " << self_ << ": peer " << msg.sender
                      << " decommissioned (epoch " << msg.membership_epoch
                      << ")";
      if (PeerLink* link = find_link(msg.sender)) {
        link->active.store(false, std::memory_order_release);
        // Not a death: reset the breaker so a later rejoin starts clean.
        std::lock_guard<std::mutex> lock(link->health_mutex);
        link->state = PeerState::kHealthy;
        link->consecutive_failures = 0;
      }
      if (manager != nullptr) manager->member_left(msg.sender);
      break;
    case MsgType::kOwnerUpdate:
      // Partitioned-mode unicast. A mis-routed frame (we are not this key's
      // ring owner) still carries true information, so apply it anyway:
      // apply_insert/apply_erase bounds-check the cache node id, and
      // answer_query serves from every table.
      if (manager != nullptr) {
        if (msg.owner_op == OwnerOp::kInsert) {
          manager->on_peer_insert(msg.meta);
        } else {
          manager->on_peer_erase(msg.meta.owner, msg.key, msg.version);
        }
      }
      break;
    default:
      // kBatch lands here too: nesting is decode-rejected, so seeing one
      // means a peer skipped its own flattening — ignore it.
      SWALA_LOG(Warn) << "unexpected message type on info channel";
      break;
  }
}

// ---- data channel ----

void NodeGroup::data_accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto conn = data_listener_.accept(/*timeout_ms=*/200);
    if (!conn) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      break;
    }
    (void)conn.value().set_no_delay(true);
    // Short read slices so the serving thread notices shutdown promptly;
    // the loop in serve_data_request tolerates timeouts between requests.
    (void)conn.value().set_recv_timeout(250);
    (void)conn.value().set_send_timeout(options_.fetch_timeout_ms);
    // The paper starts a separate thread per data request; with pooled
    // requester connections each thread serves a stream of fetches.
    std::lock_guard<std::mutex> lock(reader_mutex_);
    // Opportunistically reap finished data threads to bound the vector.
    if (data_threads_.size() > 256) {
      for (auto& t : data_threads_) {
        if (t.joinable()) t.join();
      }
      data_threads_.clear();
    }
    data_threads_.emplace_back(
        [this, stream = std::move(conn.value())]() mutable {
          serve_data_request(std::move(stream));
        });
  }
}

void NodeGroup::serve_data_request(net::TcpStream stream) {
  // Serve fetches until the peer closes or goes idle: requesters pool and
  // reuse these connections, so one connection handles many fetches.
  while (running_.load(std::memory_order_relaxed)) {
    auto msg = read_message(stream);
    if (!msg) {
      if (msg.status().code() == StatusCode::kTimeout) continue;
      return;  // closed or corrupt
    }
    if (msg.value().type == MsgType::kQuery) {
      // Directory probe (partitioned owner lookup or query-mode kQuery):
      // answer from the directory alone, never touching the blob store.
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      Message resp = Message::query_miss(self_);
      core::CacheManager* manager = manager_.load(std::memory_order_acquire);
      if (manager != nullptr) {
        if (auto meta = manager->answer_query(msg.value().key)) {
          resp = Message::query_hit(self_, *meta);
        }
      }
      if (!transport_.send(stream, msg.value().sender, resp).is_ok()) return;
      continue;
    }
    if (msg.value().type == MsgType::kInvSync) {
      // Anti-entropy pull: ship every logged invalidation above the
      // requester's floors so it can repair the gap it detected.
      inv_syncs_served_.fetch_add(1, std::memory_order_relaxed);
      Message resp = Message::inv_sync_resp(self_, {}, false);
      core::CacheManager* manager = manager_.load(std::memory_order_acquire);
      if (manager != nullptr) {
        bool truncated = false;
        auto entries =
            manager->inv_entries_after(msg.value().epochs, &truncated);
        resp = Message::inv_sync_resp(self_, std::move(entries), truncated);
      }
      if (!transport_.send(stream, msg.value().sender, resp).is_ok()) return;
      continue;
    }
    if (msg.value().type == MsgType::kJoin) {
      // Join admission (two-phase join, phase executed per peer): activate
      // the sender's slot, fold it into the ring, and answer with our
      // post-join membership view so the joiner can adopt it.
      joins_served_.fetch_add(1, std::memory_order_relaxed);
      Message resp = Message::join_ack(self_, 0, {});
      core::CacheManager* manager = manager_.load(std::memory_order_acquire);
      PeerLink* link = find_link(msg.value().sender);
      if (link != nullptr) {
        link->active.store(true, std::memory_order_release);
        // A joining node is reachable by definition; clear whatever breaker
        // state the slot accumulated while it was empty.
        std::lock_guard<std::mutex> lock(link->health_mutex);
        link->state = PeerState::kHealthy;
        link->consecutive_failures = 0;
      }
      if (manager != nullptr) {
        manager->member_joined(msg.value().sender);
        // Replicated mode: the newcomer starts with an empty directory, so
        // ship it our entries (in partitioned mode member_joined already
        // re-announced exactly the remapped ranges).
        if (link != nullptr &&
            manager->directory_mode() == core::DirectoryMode::kReplicated) {
          push_state_to(link);
        }
        resp = Message::join_ack(self_, manager->membership_epoch(),
                                 manager->active_members());
      }
      if (!transport_.send(stream, msg.value().sender, resp).is_ok()) return;
      continue;
    }
    if (msg.value().type != MsgType::kFetchReq) return;

    Message resp = Message::fetch_resp_miss(self_);
    core::CacheManager* manager = manager_.load(std::memory_order_acquire);
    if (manager != nullptr) {
      auto result = manager->serve_peer_fetch(msg.value().key);
      if (result) {
        fetches_served_.fetch_add(1, std::memory_order_relaxed);
        resp = Message::fetch_resp_found(self_, result.value().meta,
                                         std::move(result.value().data));
      } else {
        fetch_misses_served_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!transport_.send(stream, msg.value().sender, resp).is_ok()) return;
  }
}

// ---- purge daemon ----

void NodeGroup::purge_loop() {
  const auto interval =
      std::chrono::duration<double>(options_.purge_interval_seconds);
  auto next = std::chrono::steady_clock::now() + interval;
  if (options_.anti_entropy_interval_ms > 0) {
    next_anti_entropy_ =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.anti_entropy_interval_ms);
  }
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Half-open probing rides the purger's fine-grained tick, not its
    // multi-second purge interval.
    probe_dead_peers();
    // So does the anti-entropy digest round (its own, usually shorter,
    // cadence: it bounds the staleness window).
    if (options_.anti_entropy_interval_ms > 0 &&
        std::chrono::steady_clock::now() >= next_anti_entropy_) {
      next_anti_entropy_ =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.anti_entropy_interval_ms);
      anti_entropy_round();
    }
    if (std::chrono::steady_clock::now() < next) continue;
    next = std::chrono::steady_clock::now() + interval;
    core::CacheManager* manager = manager_.load(std::memory_order_acquire);
    if (manager != nullptr) manager->purge_expired();
  }
}

// ---- outbound ----

void NodeGroup::enqueue_broadcast(const Message& msg) {
  for (auto& peer : peers_) {
    if (!peer->active.load(std::memory_order_acquire)) continue;
    if (!peer->outbound->try_push(msg)) {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  broadcasts_sent_.fetch_add(1, std::memory_order_relaxed);
}

void NodeGroup::broadcast_insert(const core::EntryMeta& meta) {
  enqueue_broadcast(Message::insert(self_, meta));
}

void NodeGroup::broadcast_erase(core::NodeId owner, const std::string& key,
                                std::uint64_t version) {
  (void)owner;  // only the owner broadcasts erases for its own entries
  enqueue_broadcast(Message::erase(self_, key, version));
}

void NodeGroup::broadcast_invalidate(const std::string& pattern) {
  enqueue_broadcast(Message::invalidate(self_, pattern));
}

void NodeGroup::broadcast_invalidate(const std::string& pattern,
                                     std::uint64_t epoch) {
  enqueue_broadcast(Message::invalidate(self_, pattern, epoch));
}

void NodeGroup::enqueue_to(core::NodeId id, const Message& msg) {
  PeerLink* link = find_link(id);
  if (link == nullptr) return;  // self or unknown id: nothing to send
  if (!link->active.load(std::memory_order_acquire)) {
    // Slot outside the active set: drop (anti-entropy repairs any update
    // that raced a membership transition).
    link->dropped.fetch_add(1, std::memory_order_relaxed);
    messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!link->outbound->try_push(msg)) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NodeGroup::send_owner_insert(core::NodeId ring_owner,
                                  const core::EntryMeta& meta) {
  owner_updates_sent_.fetch_add(1, std::memory_order_relaxed);
  enqueue_to(ring_owner, Message::owner_insert(self_, meta));
}

void NodeGroup::send_owner_erase(core::NodeId ring_owner,
                                 core::NodeId cache_node,
                                 const std::string& key,
                                 std::uint64_t version) {
  owner_updates_sent_.fetch_add(1, std::memory_order_relaxed);
  enqueue_to(ring_owner, Message::owner_erase(self_, cache_node, key, version));
}

void NodeGroup::send_handoff(core::NodeId successor,
                             const core::EntryMeta& meta,
                             const std::string& body) {
  handoff_frames_sent_.fetch_add(1, std::memory_order_relaxed);
  enqueue_to(successor, Message::insert_handoff(self_, meta, body));
}

namespace {

/// Info-channel updates safe to coalesce. HELLO carries probe/greeting
/// semantics and SYNC_REQ triggers a state push, so both keep their own
/// frames.
bool batchable(const Message& msg) {
  return msg.type == MsgType::kInsert || msg.type == MsgType::kErase ||
         msg.type == MsgType::kInvalidate || msg.type == MsgType::kOwnerUpdate;
}

/// Cheap upper-bound estimate of a message's encoded size; close enough to
/// enforce batch_max_bytes without encoding twice.
std::size_t approx_encoded_size(const Message& msg) {
  return 64 + msg.key.size() + msg.data.size() + msg.meta.key.size() +
         msg.meta.content_type.size();
}

}  // namespace

void NodeGroup::collect_batch(PeerLink* link, std::vector<Message>* run,
                              std::optional<Message>* carry) {
  std::size_t bytes = approx_encoded_size(run->front());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.batch_linger_ms);
  while (run->size() < options_.batch_max_messages &&
         bytes < options_.batch_max_bytes) {
    std::optional<Message> next = link->outbound->try_pop();
    if (!next) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline || !running_.load(std::memory_order_relaxed)) break;
      next = link->outbound->pop_for(deadline - now);
      if (!next) break;  // lingered in vain (or queue closed)
    }
    if (!batchable(*next)) {
      *carry = std::move(next);  // sent on its own, right after this batch
      break;
    }
    bytes += approx_encoded_size(*next);
    run->push_back(std::move(*next));
  }
}

void NodeGroup::sender_loop(PeerLink* link) {
  net::TcpStream stream;
  bool greeted = false;
  // A non-batchable message pulled while collecting a batch waits here and
  // is consumed before the queue is polled again, so nothing is reordered
  // past it and nothing is lost on shutdown.
  std::optional<Message> carry;
  for (;;) {
    std::optional<Message> msg;
    if (carry.has_value()) {
      msg = std::move(carry);
      carry.reset();
    } else {
      msg = link->outbound->pop();
      if (!msg) break;  // queue closed and drained
    }
    if (!link->active.load(std::memory_order_acquire)) {
      // Slot left the active set after this message was queued; drop it.
      link->dropped.fetch_add(1, std::memory_order_relaxed);
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const bool is_probe = msg->type == MsgType::kHello;
    const PeerState state = state_of(link);
    if (state == PeerState::kDead && !is_probe) {
      // Breaker open: dropping beats retrying into a dead socket. The
      // rejoin resync repairs whatever the peer missed.
      link->dropped.fetch_add(1, std::memory_order_relaxed);
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    // Coalesce a run of queued directory updates into one kBatch frame.
    // The batch is the retry unit below; a run of one goes out in its
    // plain unbatched form, byte-identical to older builds.
    std::vector<Message> run;
    run.push_back(std::move(*msg));
    if (options_.batch_max_messages > 1 && batchable(run.front())) {
      collect_batch(link, &run, &carry);
    }
    const std::size_t run_size = run.size();
    Message out = run_size == 1 ? std::move(run.front())
                                : Message::make_batch(self_, std::move(run));

    // Probes get a single attempt (the purger reschedules them); regular
    // traffic retries with exponential backoff + jitter.
    const int max_attempts =
        state == PeerState::kDead ? 1 : std::max(1, options_.broadcast_retry_limit);
    bool sent = false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        if (!running_.load(std::memory_order_relaxed)) break;
        send_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff_delay_ms(attempt)));
      }
      if (!stream.valid()) {
        auto conn = net::TcpStream::connect(link->address.info_addr,
                                            options_.connect_timeout_ms);
        if (!conn) continue;
        stream = std::move(conn.value());
        (void)stream.set_no_delay(true);
        (void)stream.set_send_timeout(options_.connect_timeout_ms);
        greeted = false;
      }
      if (!greeted) {
        if (!transport_.send(stream, link->address.id, make_hello())
                 .is_ok()) {
          stream.close();
          continue;
        }
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
        greeted = true;
        if (is_probe) {
          sent = true;  // the greeting itself proved the peer reachable
          break;
        }
      }
      if (transport_.send(stream, link->address.id, out).is_ok()) {
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
        sent = true;
        break;
      }
      stream.close();
    }
    if (sent) {
      if (run_size > 1) {
        batched_broadcasts_.fetch_add(run_size, std::memory_order_relaxed);
      }
      record_success(link);
    } else {
      stream.close();
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      if (running_.load(std::memory_order_relaxed)) record_failure(link);
    }
  }
}

// ---- synchronous remote fetch ----

Result<core::CachedResult> NodeGroup::fetch_remote(core::NodeId owner,
                                                   const std::string& key) {
  return fetch_remote(owner, key, /*budget_ms=*/-1);
}

Result<core::CachedResult> NodeGroup::fetch_remote(core::NodeId owner,
                                                   const std::string& key,
                                                   int budget_ms) {
  remote_fetches_.fetch_add(1, std::memory_order_relaxed);
  // A request deadline caps every socket timeout: with `budget_ms` set, a
  // fetch can never out-live the request that issued it, so a slow peer
  // costs at most the remaining budget before the local-CGI fallback runs.
  const int io_timeout_ms =
      budget_ms > 0 ? std::min(options_.fetch_timeout_ms, budget_ms)
                    : options_.fetch_timeout_ms;
  const int connect_timeout_ms =
      budget_ms > 0 ? std::min(options_.connect_timeout_ms, budget_ms)
                    : options_.connect_timeout_ms;
  auto resp = data_exchange(owner, Message::fetch_req(self_, key),
                            MsgType::kFetchResp, io_timeout_ms,
                            connect_timeout_ms);
  if (!resp) return resp.status();
  if (!resp.value().found) {
    return Status(StatusCode::kNotFound, "remote miss (false hit)");
  }
  core::CachedResult result;
  result.meta = resp.value().meta;
  result.data = std::move(resp.value().data);
  return result;
}

Result<core::EntryMeta> NodeGroup::lookup_at_owner(core::NodeId ring_owner,
                                                   const std::string& key,
                                                   int budget_ms) {
  queries_sent_.fetch_add(1, std::memory_order_relaxed);
  // Probes cap at query_timeout_ms regardless of the request budget: an
  // owner that cannot answer quickly should not delay the local fallback.
  int io_timeout_ms = options_.query_timeout_ms;
  if (budget_ms > 0) io_timeout_ms = std::min(io_timeout_ms, budget_ms);
  const int connect_timeout_ms =
      std::min(options_.connect_timeout_ms, io_timeout_ms);
  auto resp = data_exchange(ring_owner, Message::query(self_, key),
                            MsgType::kQueryHit, io_timeout_ms,
                            connect_timeout_ms);
  if (!resp) return resp.status();
  if (!resp.value().found) {
    return Status(StatusCode::kNotFound, "owner knows of no cached copy");
  }
  query_hits_.fetch_add(1, std::memory_order_relaxed);
  return resp.value().meta;
}

Result<core::EntryMeta> NodeGroup::query_peers(const std::string& key,
                                               int budget_ms) {
  // Bounded sequential probe: each healthy peer gets at most
  // query_timeout_ms, and the whole sweep never exceeds the overall budget
  // (the request deadline when one is known). The first "found" wins.
  //
  // Probe order rotates (seeded per node) and visits healthy peers before
  // suspects: a fixed slot order would aim every sweep's first probe — and
  // therefore most of the budget — at the same peer, and a suspect probed
  // early can eat the whole budget in timeouts before a healthy peer that
  // has the entry is ever asked.
  const auto start = std::chrono::steady_clock::now();
  const int overall = budget_ms > 0 ? budget_ms : options_.fetch_timeout_ms;
  const std::size_t n = peers_.size();
  if (n == 0) return Status(StatusCode::kNotFound, "no peer caches this key");
  const std::size_t offset = static_cast<std::size_t>(
      query_rotation_.fetch_add(1, std::memory_order_relaxed) % n);
  std::vector<PeerLink*> order;
  order.reserve(n);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      PeerLink* peer = peers_[(offset + i) % n].get();
      if (!peer->active.load(std::memory_order_acquire)) continue;
      const PeerState state = state_of(peer);
      if (state == PeerState::kDead) continue;
      if ((state == PeerState::kHealthy) == (pass == 0)) order.push_back(peer);
    }
  }
  bool every_peer_answered = true;
  for (PeerLink* peer : order) {
    const int elapsed = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    const int remaining = overall - elapsed;
    if (remaining <= 0) {
      every_peer_answered = false;
      break;
    }
    queries_sent_.fetch_add(1, std::memory_order_relaxed);
    const int io_timeout_ms = std::min(options_.query_timeout_ms, remaining);
    const int connect_timeout_ms =
        std::min(options_.connect_timeout_ms, io_timeout_ms);
    auto resp = data_exchange(peer->address.id, Message::query(self_, key),
                              MsgType::kQueryHit, io_timeout_ms,
                              connect_timeout_ms);
    if (!resp) {
      every_peer_answered = false;  // timeout/dead: treat as silence, move on
      continue;
    }
    if (resp.value().found) {
      query_hits_.fetch_add(1, std::memory_order_relaxed);
      return resp.value().meta;
    }
  }
  if (every_peer_answered) {
    return Status(StatusCode::kNotFound, "no peer caches this key");
  }
  return Status(StatusCode::kTimeout, "query budget exhausted without a hit");
}

Result<Message> NodeGroup::data_exchange(core::NodeId peer_id,
                                         const Message& request,
                                         MsgType expected, int io_timeout_ms,
                                         int connect_timeout_ms) {
  const MemberAddress* peer = nullptr;
  for (const auto& m : members_) {
    if (m.id == peer_id) peer = &m;
  }
  if (peer == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "unknown node " + std::to_string(peer_id));
  }
  PeerLink* link = find_link(peer_id);
  if (link != nullptr && !link->active.load(std::memory_order_acquire)) {
    // Not an active member (decommissioned or never joined): fail fast,
    // exactly like an open breaker, so callers fall back immediately.
    return Status(StatusCode::kUnavailable,
                  "peer " + std::to_string(peer_id) + " not an active member");
  }
  if (link != nullptr && state_of(link) == PeerState::kDead) {
    // Breaker open: fail fast so the request thread goes straight to the
    // local CGI fallback instead of burning a connect timeout.
    return Status(StatusCode::kUnavailable,
                  "peer " + std::to_string(peer_id) + " dead (circuit open)");
  }

  const auto fail = [&](const Status& st) -> Status {
    if (link != nullptr) record_failure(link);
    return st;
  };

  // Up to two attempts: a pooled connection may have been closed by the
  // peer while idle; retry once on a fresh one.
  Status last_error(StatusCode::kUnavailable, "no attempt made");
  for (int attempt = 0; attempt < 2; ++attempt) {
    net::TcpStream stream;
    bool from_pool = false;
    if (attempt == 0 && options_.fetch_pool_size > 0) {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      auto& idle = fetch_pool_[peer_id];
      if (!idle.empty()) {
        stream = std::move(idle.back());
        idle.pop_back();
        from_pool = true;
      }
    }
    if (!stream.valid()) {
      auto conn =
          net::TcpStream::connect(peer->data_addr, connect_timeout_ms);
      if (!conn) return fail(conn.status());
      stream = std::move(conn.value());
      (void)stream.set_no_delay(true);
    }
    // Pooled streams carry whatever timeout the previous request set, so
    // (re)arm both directions for this request's budget unconditionally.
    (void)stream.set_recv_timeout(io_timeout_ms);
    (void)stream.set_send_timeout(io_timeout_ms);

    if (auto st = transport_.send(stream, peer_id, request); !st.is_ok()) {
      last_error = st;
      if (from_pool) continue;  // stale pooled connection; retry fresh
      return fail(st);
    }
    auto resp = read_message(stream);
    if (!resp) {
      last_error = resp.status();
      if (from_pool) continue;
      return fail(resp.status());
    }
    if (resp.value().type != expected) {
      return fail(Status(StatusCode::kInternal, "unexpected response type"));
    }

    // Healthy exchange: return the connection to the pool.
    if (link != nullptr) record_success(link);
    if (options_.fetch_pool_size > 0 &&
        running_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      auto& idle = fetch_pool_[peer_id];
      if (idle.size() < options_.fetch_pool_size) {
        idle.push_back(std::move(stream));
      }
    }
    return std::move(resp.value());
  }
  return fail(last_error);
}

// ---- dynamic membership ----

Status NodeGroup::join_cluster() {
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  if (manager == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "attach() a manager before joining");
  }
  const int io_timeout_ms = options_.join_timeout_ms;
  const int connect_timeout_ms =
      std::min(options_.connect_timeout_ms, io_timeout_ms);
  // Phase 1 (staged): every active peer gets its own kJoin, so each member
  // admits us explicitly (a HELLO alone must not activate a slot: a
  // decommissioned node still greets while draining). The first ack's view
  // is remembered but NOT adopted yet — adoption re-announces our resident
  // entries, and a peer that has not yet processed our kJoin would wipe
  // those records again when member_joined clears our table.
  // Phase 2 (active): with every member's admission in hand, adopt the
  // acked view, realign slot flags, and greet.
  bool acked = false;
  std::uint64_t acked_epoch = 0;
  std::vector<core::NodeId> acked_members;
  Status last_error(StatusCode::kUnavailable, "no active peer to join via");
  for (auto& peer : peers_) {
    if (!peer->active.load(std::memory_order_acquire)) continue;
    joins_sent_.fetch_add(1, std::memory_order_relaxed);
    auto resp = data_exchange(peer->address.id, Message::join(self_),
                              MsgType::kJoinAck, io_timeout_ms,
                              connect_timeout_ms);
    if (!resp) {
      last_error = resp.status();
      continue;
    }
    if (acked) continue;
    acked = true;
    acked_epoch = resp.value().membership_epoch;
    acked_members = resp.value().members;
  }
  if (!acked) return last_error;
  manager->adopt_membership(acked_epoch, acked_members);
  for (auto& p : peers_) {
    p->active.store(manager->is_member(p->address.id),
                    std::memory_order_release);
  }
  // Greet the cluster so the sender links come up and epoch vectors flow.
  for (auto& peer : peers_) {
    if (!peer->active.load(std::memory_order_acquire)) continue;
    peer->outbound->try_push(make_hello());
  }
  SWALA_LOG(Info) << "node " << self_ << ": joined cluster (epoch "
                  << manager->membership_epoch() << ", "
                  << manager->active_members().size() << " members)";
  return Status::ok();
}

void NodeGroup::announce_decommission() {
  core::CacheManager* manager = manager_.load(std::memory_order_acquire);
  const std::uint64_t epoch =
      manager != nullptr ? manager->membership_epoch() : 0;
  SWALA_LOG(Info) << "node " << self_
                  << ": announcing decommission (epoch " << epoch << ")";
  enqueue_broadcast(Message::decommission(self_, epoch));
}

void NodeGroup::set_member_active(core::NodeId id, bool active) {
  PeerLink* link = find_link(id);
  if (link == nullptr) return;
  link->active.store(active, std::memory_order_release);
}

bool NodeGroup::member_active(core::NodeId id) const {
  if (id == self_) return true;
  PeerLink* link = find_link(id);
  if (link == nullptr) return false;
  return link->active.load(std::memory_order_acquire);
}

std::size_t NodeGroup::outbound_backlog() const {
  std::size_t backlog = 0;
  for (const auto& peer : peers_) backlog += peer->outbound->size();
  return backlog;
}

std::vector<PeerHealth> NodeGroup::peer_health() const {
  std::vector<PeerHealth> out;
  out.reserve(peers_.size());
  for (const auto& peer : peers_) {
    PeerHealth h;
    h.id = peer->address.id;
    h.active = peer->active.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lock(peer->health_mutex);
      h.state = peer->state;
      h.consecutive_failures =
          static_cast<std::uint64_t>(peer->consecutive_failures);
    }
    h.total_failures = peer->total_failures.load(std::memory_order_relaxed);
    h.messages_dropped = peer->dropped.load(std::memory_order_relaxed);
    h.probes_sent = peer->probes.load(std::memory_order_relaxed);
    h.outbound_backlog = peer->outbound->size();
    out.push_back(h);
  }
  return out;
}

PeerState NodeGroup::peer_state(core::NodeId id) const {
  PeerLink* link = find_link(id);
  if (link == nullptr) return PeerState::kHealthy;
  return state_of(link);
}

GroupStats NodeGroup::stats() const {
  GroupStats s;
  s.broadcasts_sent = broadcasts_sent_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.batched_broadcasts = batched_broadcasts_.load(std::memory_order_relaxed);
  s.updates_received = updates_received_.load(std::memory_order_relaxed);
  s.fetches_served = fetches_served_.load(std::memory_order_relaxed);
  s.fetch_misses_served = fetch_misses_served_.load(std::memory_order_relaxed);
  s.remote_fetches = remote_fetches_.load(std::memory_order_relaxed);
  s.send_failures = send_failures_.load(std::memory_order_relaxed);
  s.send_retries = send_retries_.load(std::memory_order_relaxed);
  s.peer_failures = peer_failures_.load(std::memory_order_relaxed);
  s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
  s.probes_sent = probes_sent_.load(std::memory_order_relaxed);
  s.resyncs_requested = resyncs_requested_.load(std::memory_order_relaxed);
  s.resyncs_served = resyncs_served_.load(std::memory_order_relaxed);
  s.owner_updates_sent = owner_updates_sent_.load(std::memory_order_relaxed);
  s.queries_sent = queries_sent_.load(std::memory_order_relaxed);
  s.query_hits = query_hits_.load(std::memory_order_relaxed);
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.anti_entropy_rounds = anti_entropy_rounds_.load(std::memory_order_relaxed);
  s.digests_sent = digests_sent_.load(std::memory_order_relaxed);
  s.digest_repairs = digest_repairs_.load(std::memory_order_relaxed);
  s.inv_syncs_pulled = inv_syncs_pulled_.load(std::memory_order_relaxed);
  s.inv_syncs_served = inv_syncs_served_.load(std::memory_order_relaxed);
  s.joins_sent = joins_sent_.load(std::memory_order_relaxed);
  s.joins_served = joins_served_.load(std::memory_order_relaxed);
  s.decommissions_observed =
      decommissions_observed_.load(std::memory_order_relaxed);
  s.handoff_frames_sent = handoff_frames_sent_.load(std::memory_order_relaxed);
  s.handoffs_adopted = handoffs_adopted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace swala::cluster
