// LocalCluster: runs an N-node Swala cache group inside one process over
// loopback TCP. Used by the integration tests and the real-substrate
// experiments (Figure 3 remote fetch, Table 4 directory updates).
//
// It performs the ephemeral-port bootstrap dance: start every NodeGroup on
// port 0, collect the bound ports, redistribute the resolved member list,
// then construct and attach the CacheManagers.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/group.h"
#include "core/manager.h"

namespace swala::cluster {

class LocalCluster {
 public:
  /// Builds and starts `n` nodes; `make_options(i)` supplies each node's
  /// manager configuration. Throws std::runtime_error if networking fails
  /// (constructor-failure policy per the project error-handling rules).
  LocalCluster(std::size_t n,
               std::function<core::ManagerOptions(core::NodeId)> make_options,
               const Clock* clock = RealClock::instance(),
               GroupOptions group_options = {});

  /// As above, but `make_group_options(i)` supplies each node's group
  /// configuration — the failure tests use this to give individual nodes
  /// their own FaultInjector and tightened timeouts.
  LocalCluster(std::size_t n,
               std::function<core::ManagerOptions(core::NodeId)> make_options,
               const Clock* clock,
               std::function<GroupOptions(core::NodeId)> make_group_options);

  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  core::CacheManager& manager(std::size_t i) { return *managers_[i]; }
  NodeGroup& group(std::size_t i) { return *groups_[i]; }
  std::size_t size() const { return groups_.size(); }

  /// Resolved member addresses (real ports).
  const std::vector<MemberAddress>& members() const { return members_; }

  /// Waits until every node's outbound broadcast queue has drained and
  /// stayed drained across a settle delay (in-flight writes/applies land on
  /// loopback well within it). Returns false if the backlog has not cleared
  /// by `timeout_seconds`. Call before invariant checks instead of sleeping
  /// a hard-coded amount.
  bool quiesce(double timeout_seconds = 5.0);

  /// Runs the global consistency oracle over every node (per-node store↔
  /// directory checks plus cross-node drift). Quiesce first for an exact
  /// answer. Valid after stop() too — the managers outlive the groups.
  core::ClusterConsistencyReport check_cluster_consistency() const;

  void stop();

 private:
  std::vector<std::unique_ptr<NodeGroup>> groups_;
  std::vector<std::unique_ptr<core::CacheManager>> managers_;
  std::vector<MemberAddress> members_;
};

}  // namespace swala::cluster
