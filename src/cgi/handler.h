// CGI execution abstraction. Two implementations exist:
//   * ScriptedCgi  — in-process handler with a configurable compute model;
//                    deterministic, used by tests and benchmark workloads.
//   * ProcessCgi   — real fork/exec of an external program (RFC 3875 style),
//                    used by the quickstart example and Figure-3 experiments.
// The Swala request threads see only this interface, mirroring the paper's
// point that the cache lives *inside* the server, in front of CGI dispatch.
#pragma once

#include <memory>
#include <string>

#include "common/deadline.h"
#include "common/status.h"
#include "http/message.h"

namespace swala::cgi {

/// What a CGI program produced.
struct CgiOutput {
  int http_status = 200;                    ///< from a "Status:" CGI header
  std::string content_type = "text/html";  ///< from "Content-Type:"
  std::string body;
  bool success = true;  ///< exit code 0 and well-formed output

  /// Total bytes a cache entry for this output occupies.
  std::size_t size_bytes() const { return body.size(); }
};

/// A runnable dynamic-content generator.
class CgiHandler {
 public:
  virtual ~CgiHandler() = default;

  /// Executes the program for `request`. Implementations must be thread-safe:
  /// Swala runs many request threads concurrently.
  virtual Result<CgiOutput> run(const http::Request& request) = 0;

  /// Deadline-aware entry point used by the server's request path. The
  /// default ignores the deadline (in-process handlers finish on their own
  /// schedule); ProcessCgi overrides it to cap the child's lifetime at the
  /// remaining request budget.
  virtual Result<CgiOutput> run(const http::Request& request,
                                const Deadline& deadline) {
    (void)deadline;
    return run(request);
  }
};

using CgiHandlerPtr = std::shared_ptr<CgiHandler>;

/// Parses a CGI response document: optional header block ("Content-Type:",
/// "Status: 404 Not Found", ...) separated from the body by a blank line.
/// Input with no header block is treated as a bare text/html body.
CgiOutput parse_cgi_document(std::string_view raw, int exit_code);

}  // namespace swala::cgi
