// ExecGate: a counting semaphore over CGI execution. The paper's Figure 3
// shows per-request CGI overhead (fork/exec) dominating service time; under
// a miss burst, unbounded concurrent forks degrade into a fork storm. The
// gate caps concurrent executions; queue-wait counts against the caller's
// request deadline, so a request that cannot get a slot in time fails fast
// (the server sheds it with 503) instead of piling onto an overloaded box.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/deadline.h"
#include "common/status.h"

namespace swala::cgi {

struct ExecGateStats {
  std::uint64_t queue_waits = 0;     ///< acquisitions that had to queue
  std::uint64_t queue_timeouts = 0;  ///< gave up: deadline expired in queue
  std::uint64_t active = 0;          ///< slots currently held (gauge)
  std::uint64_t waiting = 0;         ///< callers currently queued (gauge)
};

class ExecGate {
 public:
  /// `max_concurrent` of 0 means unlimited (the gate becomes a no-op).
  explicit ExecGate(std::size_t max_concurrent)
      : max_concurrent_(max_concurrent) {}

  ExecGate(const ExecGate&) = delete;
  ExecGate& operator=(const ExecGate&) = delete;

  /// Blocks until a slot is free or `deadline` expires. Returns kOk when a
  /// slot was acquired (release() must follow), kTimeout when the deadline
  /// ran out while queued. The wait polls in short slices so a ManualClock
  /// advanced by a test is noticed without any real-time dependence on it.
  Status acquire(const Deadline& deadline) {
    if (max_concurrent_ == 0) return Status::ok();
    std::unique_lock<std::mutex> lock(mutex_);
    if (active_ < max_concurrent_) {
      ++active_;
      return Status::ok();
    }
    ++queue_waits_;
    ++waiting_;
    while (active_ >= max_concurrent_) {
      if (deadline.expired()) {
        --waiting_;
        ++queue_timeouts_;
        return Status(StatusCode::kTimeout, "CGI concurrency gate full");
      }
      const int slice_ms =
          deadline.unlimited() ? 50 : std::min(50, deadline.budget_ms(50));
      slot_free_.wait_for(lock, std::chrono::milliseconds(slice_ms));
    }
    --waiting_;
    ++active_;
    return Status::ok();
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (active_ > 0) --active_;
    }
    slot_free_.notify_one();
  }

  ExecGateStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ExecGateStats s;
    s.queue_waits = queue_waits_;
    s.queue_timeouts = queue_timeouts_;
    s.active = active_;
    s.waiting = waiting_;
    return s;
  }

  std::size_t capacity() const { return max_concurrent_; }

 private:
  const std::size_t max_concurrent_;
  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::size_t active_ = 0;   // guarded by mutex_
  std::size_t waiting_ = 0;  // guarded by mutex_
  std::uint64_t queue_waits_ = 0;
  std::uint64_t queue_timeouts_ = 0;
};

/// RAII slot: acquires on construction, releases on destruction.
class ExecSlot {
 public:
  ExecSlot(ExecGate* gate, const Deadline& deadline) : gate_(gate) {
    if (gate_ != nullptr) status_ = gate_->acquire(deadline);
  }
  ~ExecSlot() {
    if (gate_ != nullptr && status_.is_ok()) gate_->release();
  }
  ExecSlot(const ExecSlot&) = delete;
  ExecSlot& operator=(const ExecSlot&) = delete;

  const Status& status() const { return status_; }
  bool acquired() const { return status_.is_ok(); }

 private:
  ExecGate* gate_;
  Status status_ = Status::ok();
};

}  // namespace swala::cgi
