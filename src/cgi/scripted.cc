#include "cgi/scripted.h"

#include <chrono>
#include <thread>

#include "common/hash.h"
#include "common/strings.h"

namespace swala::cgi {

void busy_spin_for(double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  volatile std::uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 256; ++i) sink = sink * 6364136223846793005ULL + 1;
  }
}

std::string deterministic_body(std::uint64_t seed, std::size_t n) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \n";
  std::string out;
  out.reserve(n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    state = mix64(state + i);
    out.push_back(kAlphabet[state % (sizeof(kAlphabet) - 1)]);
  }
  return out;
}

ScriptedCgi::ScriptedCgi(ScriptedOptions options) : options_(options) {}

std::uint64_t ScriptedCgi::execution_count() const {
  return executions_.load(std::memory_order_relaxed);
}

Result<CgiOutput> ScriptedCgi::run(const http::Request& request) {
  double service = options_.service_seconds;
  if (options_.cost_from_query) {
    for (const auto& [key, value] : request.uri.query_params()) {
      double cost = 0.0;
      if (key == "cost" && parse_double(value, &cost)) service = cost;
    }
  }

  switch (options_.mode) {
    case ComputeMode::kNone:
      break;
    case ComputeMode::kBusy:
      busy_spin_for(service);
      break;
    case ComputeMode::kSleep:
      std::this_thread::sleep_for(std::chrono::duration<double>(service));
      break;
  }

  const std::uint64_t count = executions_.fetch_add(1, std::memory_order_relaxed) + 1;

  CgiOutput out;
  out.success = !options_.fail;
  if (options_.fail) {
    out.http_status = 500;
    out.body = "scripted CGI failure\n";
    return out;
  }

  const std::string canonical = request.uri.canonical();
  std::string header = "<!-- swala scripted cgi target=" + canonical +
                       " exec=" + std::to_string(count) + " -->\n";
  const std::size_t fill = options_.output_bytes > header.size()
                               ? options_.output_bytes - header.size()
                               : 0;
  out.body = header + deterministic_body(fnv1a64(canonical), fill);
  return out;
}

}  // namespace swala::cgi
