#include "cgi/process.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>

#include "common/logging.h"
#include "net/fd.h"

namespace swala::cgi {
namespace {

/// Builds the RFC 3875 environment block for a request.
std::vector<std::string> build_env(const http::Request& request,
                                   const std::string& executable,
                                   const ProcessOptions& options) {
  std::vector<std::string> env;
  env.push_back("GATEWAY_INTERFACE=CGI/1.1");
  env.push_back("SERVER_SOFTWARE=swala/1.0");
  env.push_back(std::string("SERVER_PROTOCOL=") +
                http::version_name(request.version));
  env.push_back(std::string("REQUEST_METHOD=") +
                http::method_name(request.method));
  env.push_back("SCRIPT_NAME=" + request.uri.path);
  env.push_back("SCRIPT_FILENAME=" + executable);
  env.push_back("QUERY_STRING=" + request.uri.raw_query);
  if (!request.body.empty()) {
    env.push_back("CONTENT_LENGTH=" + std::to_string(request.body.size()));
    if (const auto ct = request.headers.get("Content-Type")) {
      env.push_back("CONTENT_TYPE=" + std::string(*ct));
    }
  }
  if (const auto host = request.headers.get("Host")) {
    env.push_back("HTTP_HOST=" + std::string(*host));
  }
  env.push_back("PATH=/usr/bin:/bin");
  for (const auto& [key, value] : options.extra_env) {
    env.push_back(key + "=" + value);
  }
  return env;
}

}  // namespace

Result<ProcessResult> run_cgi_process(const std::string& executable,
                                      const http::Request& request,
                                      const ProcessOptions& options) {
  int in_pipe[2];   // parent -> child stdin
  int out_pipe[2];  // child stdout -> parent
  if (::pipe(in_pipe) != 0) {
    return Status(StatusCode::kIoError, std::string("pipe: ") + std::strerror(errno));
  }
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return Status(StatusCode::kIoError, std::string("pipe: ") + std::strerror(errno));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);
    return Status(StatusCode::kResourceExhausted,
                  std::string("fork: ") + std::strerror(errno));
  }

  if (pid == 0) {
    // Child: wire pipes to stdio and exec.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);

    const auto env_strings = build_env(request, executable, options);
    std::vector<char*> envp;
    envp.reserve(env_strings.size() + 1);
    for (const auto& e : env_strings) envp.push_back(const_cast<char*>(e.c_str()));
    envp.push_back(nullptr);

    char* argv[] = {const_cast<char*>(executable.c_str()), nullptr};
    ::execve(executable.c_str(), argv, envp.data());
    _exit(127);  // exec failed
  }

  // Parent.
  net::UniqueFd child_stdin(in_pipe[1]);
  net::UniqueFd child_stdout(out_pipe[0]);
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);

  // Write the request body, then close to signal EOF.
  if (!request.body.empty()) {
    std::size_t off = 0;
    while (off < request.body.size()) {
      const ssize_t n = ::write(child_stdin.get(), request.body.data() + off,
                                request.body.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // child may have exited without reading; not fatal
      }
      off += static_cast<std::size_t>(n);
    }
  }
  child_stdin.reset();

  ProcessResult result;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options.timeout_seconds);
  char buf[64 * 1024];
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      result.timed_out = true;
      break;
    }
    pollfd pfd{child_stdout.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc == 0) {
      result.timed_out = true;
      break;
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const ssize_t n = ::read(child_stdout.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: child closed stdout
    result.stdout_data.append(buf, static_cast<std::size_t>(n));
    if (result.stdout_data.size() > options.max_output_bytes) {
      result.oversized = true;
      break;
    }
  }

  if (result.timed_out || result.oversized) ::kill(pid, SIGKILL);
  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(wstatus)) {
    result.exit_code = WEXITSTATUS(wstatus);
  } else {
    result.exit_code = -1;
  }
  return result;
}

ProcessCgi::ProcessCgi(std::string executable, ProcessOptions options)
    : executable_(std::move(executable)), options_(std::move(options)) {}

Result<CgiOutput> ProcessCgi::run(const http::Request& request) {
  return run(request, Deadline());
}

Result<CgiOutput> ProcessCgi::run(const http::Request& request,
                                  const Deadline& deadline) {
  ProcessOptions effective = options_;
  if (!deadline.unlimited()) {
    effective.timeout_seconds =
        std::min(effective.timeout_seconds,
                 std::max(0.001, deadline.remaining_seconds()));
  }
  auto result = run_cgi_process(executable_, request, effective);
  if (!result) return result.status();
  const auto& proc = result.value();
  if (proc.timed_out) {
    CgiOutput out;
    out.success = false;
    out.http_status = 504;
    out.body = "CGI timeout\n";
    return out;
  }
  if (proc.oversized) {
    CgiOutput out;
    out.success = false;
    out.http_status = 500;
    out.body = "CGI output exceeded limit\n";
    return out;
  }
  return parse_cgi_document(proc.stdout_data, proc.exit_code);
}

}  // namespace swala::cgi
