// In-process "CGI programs" with a configurable compute model. These give the
// benchmarks deterministic service times (the paper's 1-second requests,
// null-CGI, ADL-like spatial queries) without forking real processes.
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "cgi/handler.h"
#include "common/clock.h"

namespace swala::cgi {

/// How a scripted CGI consumes its service time.
enum class ComputeMode {
  kNone,   ///< returns immediately (null-CGI)
  kBusy,   ///< spins the CPU for the duration (CPU-bound site, like ADL)
  kSleep,  ///< sleeps (I/O-bound work; releases the CPU)
};

/// Options for a scripted CGI program.
struct ScriptedOptions {
  ComputeMode mode = ComputeMode::kNone;
  double service_seconds = 0.0;  ///< per-call compute time
  std::size_t output_bytes = 64; ///< generated body size
  bool fail = false;             ///< simulate a failing program (exit != 0)

  /// If set, service time is derived from the request instead of fixed:
  /// the query parameter "cost" (seconds) overrides `service_seconds`.
  bool cost_from_query = false;
};

/// Deterministic in-process CGI. The body embeds the canonical target and a
/// counter, so repeated executions are distinguishable in consistency tests.
class ScriptedCgi final : public CgiHandler {
 public:
  explicit ScriptedCgi(ScriptedOptions options);

  Result<CgiOutput> run(const http::Request& request) override;

  /// Number of completed executions (used to count avoided re-executions).
  std::uint64_t execution_count() const;

 private:
  ScriptedOptions options_;
  std::atomic<std::uint64_t> executions_{0};
};

/// Adapter: wrap any callable as a CGI handler.
class LambdaCgi final : public CgiHandler {
 public:
  using Fn = std::function<Result<CgiOutput>(const http::Request&)>;
  explicit LambdaCgi(Fn fn) : fn_(std::move(fn)) {}

  Result<CgiOutput> run(const http::Request& request) override {
    return fn_(request);
  }

 private:
  Fn fn_;
};

/// Spins the CPU for approximately `seconds` (calibrated busy loop).
void busy_spin_for(double seconds);

/// Generates `n` bytes of printable deterministic filler seeded by `seed`.
std::string deterministic_body(std::uint64_t seed, std::size_t n);

}  // namespace swala::cgi
