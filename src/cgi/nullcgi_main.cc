// The paper's `nullcgi`: a CGI program that does no work and produces less
// than a hundred bytes of output. Fork/exec'd by the Figure-3 experiment to
// measure pure CGI call overhead.
#include <cstdio>

int main() {
  std::printf("Content-Type: text/html\n\n");
  std::printf("<html><body>null cgi</body></html>\n");
  return 0;
}
