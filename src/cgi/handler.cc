#include "cgi/handler.h"

#include "common/strings.h"

namespace swala::cgi {

CgiOutput parse_cgi_document(std::string_view raw, int exit_code) {
  CgiOutput out;
  out.success = exit_code == 0;

  // Find the header/body separator; accept both \n\n and \r\n\r\n.
  std::size_t body_start = std::string_view::npos;
  std::size_t head_end = 0;
  const std::size_t rn = raw.find("\r\n\r\n");
  const std::size_t n = raw.find("\n\n");
  if (rn != std::string_view::npos && (n == std::string_view::npos || rn < n)) {
    head_end = rn;
    body_start = rn + 4;
  } else if (n != std::string_view::npos) {
    head_end = n;
    body_start = n + 2;
  }

  if (body_start == std::string_view::npos) {
    out.body = std::string(raw);
    return out;
  }

  // The candidate header block must look like headers, else it is body text.
  const std::string_view head = raw.substr(0, head_end);
  bool all_headers = !head.empty();
  std::size_t pos = 0;
  while (pos <= head.size() && all_headers) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.find(':') == std::string_view::npos) all_headers = false;
  }
  if (!all_headers) {
    out.body = std::string(raw);
    return out;
  }

  pos = 0;
  while (pos <= head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    const std::string_view name = trim(line.substr(0, colon));
    const std::string_view value = trim(line.substr(colon + 1));
    if (iequals(name, "Content-Type")) {
      out.content_type = std::string(value);
    } else if (iequals(name, "Status")) {
      std::uint64_t code = 0;
      const std::size_t sp = value.find(' ');
      if (parse_u64(value.substr(0, sp), &code) && code >= 100 && code <= 599) {
        out.http_status = static_cast<int>(code);
      }
    }
  }
  out.body = std::string(raw.substr(body_start));
  return out;
}

}  // namespace swala::cgi
