// Real CGI execution: fork/exec an external program with an RFC 3875-style
// environment, feed it the request body on stdin, capture stdout. This is
// the call mechanism whose fork/exec overhead the paper's Figure 3 measures.
#pragma once

#include <string>
#include <vector>

#include "cgi/handler.h"

namespace swala::cgi {

/// Options controlling process execution.
struct ProcessOptions {
  double timeout_seconds = 30.0;       ///< kill and fail after this long
  std::size_t max_output_bytes = 16 * 1024 * 1024;
  std::vector<std::pair<std::string, std::string>> extra_env;
};

/// Executes one specific program for every matching request.
class ProcessCgi final : public CgiHandler {
 public:
  ProcessCgi(std::string executable, ProcessOptions options = {});

  Result<CgiOutput> run(const http::Request& request) override;

  /// Deadline-aware run: the child's timeout is the smaller of the
  /// configured `timeout_seconds` and the remaining request budget, so a
  /// slow CGI is SIGKILLed at the request deadline, not long after it.
  Result<CgiOutput> run(const http::Request& request,
                        const Deadline& deadline) override;

  const std::string& executable() const { return executable_; }

 private:
  std::string executable_;
  ProcessOptions options_;
};

/// Low-level runner shared by ProcessCgi and tests: execs `argv[0]` with the
/// CGI environment for `request`, returns raw stdout and the exit code.
struct ProcessResult {
  int exit_code = -1;
  std::string stdout_data;
  bool timed_out = false;   ///< deadline hit; child was SIGKILLed
  bool oversized = false;   ///< output exceeded max_output_bytes; killed
};

Result<ProcessResult> run_cgi_process(const std::string& executable,
                                      const http::Request& request,
                                      const ProcessOptions& options);

}  // namespace swala::cgi
