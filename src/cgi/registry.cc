#include "cgi/registry.h"

#include <mutex>

#include "common/strings.h"

namespace swala::cgi {

void HandlerRegistry::mount(std::string path, CgiHandlerPtr handler) {
  std::unique_lock lock(mutex_);
  mounts_[std::move(path)] = std::move(handler);
}

CgiHandlerPtr HandlerRegistry::find(std::string_view path) const {
  std::shared_lock lock(mutex_);
  // mounts_ is ordered lexicographically descending; scan for the first
  // mount that is an exact match or a matching '/'-terminated prefix.
  // Registries are small (a handful of mount points) so a scan is fine.
  for (const auto& [mount, handler] : mounts_) {
    if (mount == path) return handler;
    if (!mount.empty() && mount.back() == '/' && starts_with(path, mount)) {
      return handler;
    }
  }
  return nullptr;
}

std::size_t HandlerRegistry::size() const {
  std::shared_lock lock(mutex_);
  return mounts_.size();
}

}  // namespace swala::cgi
