// Maps request paths to CGI handlers. Longest-prefix match over registered
// mount points, the way /cgi-bin/ style servers dispatch.
#pragma once

#include <map>
#include <shared_mutex>
#include <string>

#include "cgi/handler.h"

namespace swala::cgi {

class HandlerRegistry {
 public:
  /// Mounts a handler at an exact path or a prefix ending in '/'.
  /// "/cgi-bin/" matches everything under it; "/cgi-bin/null" matches only
  /// that script (longest match wins).
  void mount(std::string path, CgiHandlerPtr handler);

  /// Handler for a decoded request path, or nullptr for static content.
  CgiHandlerPtr find(std::string_view path) const;

  /// True if any mount point would claim this path.
  bool is_dynamic(std::string_view path) const { return find(path) != nullptr; }

  std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, CgiHandlerPtr, std::greater<>> mounts_;  // longest first
};

}  // namespace swala::cgi
