// Cacheability rules (§4.1): "Swala uses a configuration file, loaded at
// startup, to provide the system administrator with a flexible way to
// control which requests are cache-able."
//
// Config syntax, inside a [cacheability] section (first matching rule wins):
//
//   [cacheability]
//   rule = /cgi-bin/private/* nocache
//   rule = /cgi-bin/* cache ttl=3600 min_exec=0.1
//   rule = /servlet/* cache ttl=600
//   default = nocache
//
// `ttl` is the content-consistency Time-To-Live in seconds (0 = forever);
// `min_exec` is the runtime threshold: results whose execution took less
// than this are not worth caching and are discarded (Figure 2, "execution
// time is longer than a runtime-defined limit").
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"

namespace swala::core {

/// Outcome of classifying a request path.
struct RuleDecision {
  bool cacheable = false;
  double ttl_seconds = 0.0;       ///< 0 = never expires
  double min_exec_seconds = 0.0;  ///< insert only if execution took >= this
};

class CacheabilityRules {
 public:
  /// Empty rule set: nothing is cacheable (safe default).
  CacheabilityRules() = default;

  /// Parses the [cacheability] section of a config.
  static Result<CacheabilityRules> from_config(const Config& config);

  /// Parses one rule line ("/cgi-bin/* cache ttl=60 min_exec=0.5").
  static Result<CacheabilityRules> from_lines(
      const std::vector<std::string>& lines, bool default_cacheable = false);

  /// Adds a rule programmatically (appended; first match wins).
  void add_rule(std::string pattern, RuleDecision decision);

  /// Sets the decision when no rule matches.
  void set_default(RuleDecision decision) { default_ = decision; }

  /// Classifies a decoded request path.
  RuleDecision classify(std::string_view path) const;

  std::size_t rule_count() const { return rules_.size(); }

 private:
  struct Rule {
    std::string pattern;
    RuleDecision decision;
  };

  static Result<Rule> parse_rule_line(std::string_view line);

  std::vector<Rule> rules_;
  RuleDecision default_{};
};

}  // namespace swala::core
