#include "core/storage.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace swala::core {

// ---- cache-file format ----

namespace {

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(std::string_view in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[off + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::string_view in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[off + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string encode_cache_header(std::uint64_t key_hash,
                                std::string_view payload) {
  std::string header;
  header.reserve(kCacheHeaderSize);
  put_u32(&header, kCacheFileMagic);
  put_u32(&header, kCacheFormatVersion);
  put_u64(&header, key_hash);
  put_u64(&header, payload.size());
  put_u32(&header, crc32c(payload));
  put_u32(&header, crc32c(header));  // first 28 bytes
  return header;
}

Result<std::string_view> verify_cache_file(std::string_view file,
                                           std::uint64_t expected_key_hash) {
  if (file.size() < kCacheHeaderSize) {
    return Status(StatusCode::kCorrupt, "cache file shorter than header");
  }
  if (get_u32(file, 28) != crc32c(file.substr(0, 28))) {
    return Status(StatusCode::kCorrupt, "cache header checksum mismatch");
  }
  if (get_u32(file, 0) != kCacheFileMagic) {
    return Status(StatusCode::kCorrupt, "bad cache file magic");
  }
  const std::uint32_t version = get_u32(file, 4);
  if (version != kCacheFormatVersion) {
    return Status(StatusCode::kCorrupt,
                  "unsupported cache format v" + std::to_string(version));
  }
  const std::uint64_t key_hash = get_u64(file, 8);
  if (expected_key_hash != 0 && key_hash != expected_key_hash) {
    return Status(StatusCode::kCorrupt, "cache file key hash mismatch");
  }
  const std::uint64_t payload_len = get_u64(file, 16);
  if (payload_len != file.size() - kCacheHeaderSize) {
    return Status(StatusCode::kCorrupt, "cache file payload length mismatch");
  }
  const std::string_view payload = file.substr(kCacheHeaderSize);
  if (get_u32(file, 24) != crc32c(payload)) {
    return Status(StatusCode::kCorrupt, "cache payload checksum mismatch");
  }
  return payload;
}

// ---- MemoryBackend ----

Result<StorageId> MemoryBackend::put(std::string_view data,
                                     std::uint64_t key_hash) {
  (void)key_hash;  // nothing survives this process; no format to bind it to
  std::lock_guard<std::mutex> lock(mutex_);
  const StorageId id = next_id_++;
  bytes_ += data.size();
  blobs_.emplace(id, std::string(data));
  return id;
}

Result<std::string> MemoryBackend::get(StorageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status(StatusCode::kNotFound, "no blob " + std::to_string(id));
  }
  return it->second;
}

void MemoryBackend::erase(StorageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) return;
  bytes_ -= it->second.size();
  blobs_.erase(it);
}

// ---- DiskBackend ----

DiskBackend::DiskBackend(std::string dir, FsOps* fs)
    : dir_(std::move(dir)), fs_(fs != nullptr ? fs : FsOps::real()) {
  init_status_ = make_dirs(fs_, dir_);
  if (!init_status_.is_ok()) {
    SWALA_LOG(Error) << "cache directory unusable: "
                     << init_status_.to_string();
  }
}

DiskBackend::~DiskBackend() {
  // No lock: destruction implies no concurrent users (outstanding pins hold
  // the backend via shared_ptr, so the destructor runs after the last one).
  if (retain_.load(std::memory_order_relaxed)) {
    return;  // warm-restart handoff: a manifest references these
  }
  // Remove files we created; leave foreign files alone.
  for (const auto& [id, size] : sizes_) {
    (void)size;
    (void)fs_->unlink(path_for(id).c_str());
  }
}

std::string DiskBackend::path_for(StorageId id) const {
  return dir_ + "/swala-" + std::to_string(id) + ".cache";
}

Result<std::string> DiskBackend::read_file(const std::string& path) const {
  const int fd = fs_->open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    const auto code =
        errno == ENOENT ? StatusCode::kNotFound : StatusCode::kIoError;
    return Status(code, "open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = fs_->read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      (void)fs_->close(fd);
      return Status(StatusCode::kIoError,
                    "read " + path + ": " + std::strerror(saved));
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  (void)fs_->close(fd);
  return out;
}

void DiskBackend::quarantine(const std::string& path) {
  const std::string target = path + ".corrupt";
  if (fs_->rename(path.c_str(), target.c_str()) != 0) {
    (void)fs_->unlink(path.c_str());
  }
  ++quarantined_;
  SWALA_LOG(Warn) << "quarantined corrupt cache file " << path;
}

Status DiskBackend::adopt(StorageId id, std::uint64_t size,
                          std::uint64_t key_hash) {
  const std::string path = path_for(id);
  auto file = read_file(path);
  if (!file) return file.status();
  if (file.value().size() != size + kCacheHeaderSize) {
    // A torn write could never reach a live name (atomic rename), so a size
    // mismatch means the file was truncated or grown in place — corrupt.
    quarantine(path);
    return Status(StatusCode::kCorrupt,
                  "cache file size mismatch for " + path);
  }
  auto payload = verify_cache_file(file.value(), key_hash);
  if (!payload) {
    quarantine(path);
    return payload.status();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (sizes_.emplace(id, size).second) bytes_ += size;
  key_hashes_[id] = key_hash;
  if (id >= next_id_) next_id_ = id + 1;
  return Status::ok();
}

Result<StorageId> DiskBackend::put(std::string_view data,
                                   std::uint64_t key_hash) {
  if (!init_status_.is_ok()) return init_status_;
  StorageId id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
  }
  const std::string path = path_for(id);
  const std::string tmp = path + ".tmp";

  const int fd = fs_->open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(StatusCode::kIoError,
                  "open " + tmp + ": " + std::strerror(errno));
  }
  const auto fail = [&](const char* what) {
    const int saved = errno;
    (void)fs_->close(fd);
    (void)fs_->unlink(tmp.c_str());
    return Status(StatusCode::kIoError, std::string(what) + " " + tmp + ": " +
                                            std::strerror(saved));
  };

  const std::string header = encode_cache_header(key_hash, data);
  for (std::string_view chunk : {std::string_view(header), data}) {
    std::size_t off = 0;
    while (off < chunk.size()) {
      const ssize_t n = fs_->write(fd, chunk.data() + off, chunk.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return fail("write");
      }
      if (n == 0) {
        errno = EIO;
        return fail("write");
      }
      off += static_cast<std::size_t>(n);
    }
  }
  if (fs_->fsync(fd) != 0) return fail("fsync");
  if (fs_->close(fd) != 0) {
    const int saved = errno;
    (void)fs_->unlink(tmp.c_str());
    return Status(StatusCode::kIoError,
                  "close " + tmp + ": " + std::strerror(saved));
  }
  if (fs_->rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    (void)fs_->unlink(tmp.c_str());
    return Status(StatusCode::kIoError,
                  "rename " + tmp + ": " + std::strerror(saved));
  }
  if (auto st = fsync_parent_dir(fs_, path); !st.is_ok()) {
    // The rename happened; the entry may or may not survive a power cut.
    // Treat as failure so the caller never records an entry less durable
    // than promised.
    (void)fs_->unlink(path.c_str());
    return st;
  }
  // A put that reached the disk proves it is writable again, so the erase
  // failure run ends here too (mirrors the degradation probe's recovery).
  consecutive_erase_failures_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  sizes_[id] = data.size();
  key_hashes_[id] = key_hash;
  bytes_ += data.size();
  return id;
}

Result<std::string> DiskBackend::get(StorageId id) {
  const std::string path = path_for(id);
  auto file = read_file(path);
  if (!file) return file.status();
  std::uint64_t expected_hash = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto kh = key_hashes_.find(id);
    if (kh != key_hashes_.end()) expected_hash = kh->second;
  }
  auto payload = verify_cache_file(file.value(), expected_hash);
  if (!payload) {
    SWALA_LOG(Warn) << "integrity failure reading " << path << ": "
                    << payload.status().to_string();
    return payload.status();
  }
  // Move the verified payload out without copying the header's bytes twice.
  std::string out = std::move(file.value());
  out.erase(0, kCacheHeaderSize);
  return out;
}

void DiskBackend::erase(StorageId id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sizes_.find(id);
    if (it == sizes_.end()) return;
    bytes_ -= it->second;
    sizes_.erase(it);
    key_hashes_.erase(id);
  }
  const std::string path = path_for(id);
  if (fs_->unlink(path.c_str()) != 0 && errno != ENOENT) {
    // The entry is gone from the index but its bytes still occupy the disk —
    // a dying disk that fails unlinks would leak space invisibly. Count it
    // and keep a consecutive-failure run for the manager's degradation probe.
    erase_errors_.fetch_add(1, std::memory_order_relaxed);
    consecutive_erase_failures_.fetch_add(1, std::memory_order_relaxed);
    SWALA_LOG(Warn) << "erase failed to unlink " << path << ": "
                    << std::strerror(errno);
  } else {
    consecutive_erase_failures_.store(0, std::memory_order_relaxed);
  }
}

StorageCounters DiskBackend::counters() const {
  StorageCounters c;
  c.backend = "files";
  c.erase_errors = erase_errors_.load(std::memory_order_relaxed);
  c.consecutive_erase_failures =
      consecutive_erase_failures_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    c.live_bytes = bytes_;
  }
  return c;
}

ScrubReport DiskBackend::scrub() {
  // Startup-only; holding the lock across the directory walk is fine.
  std::lock_guard<std::mutex> lock(mutex_);
  ScrubReport report;
  report.adopted = sizes_.size();
  report.quarantined = quarantined_.load(std::memory_order_relaxed);

  DIR* handle = ::opendir(dir_.c_str());
  if (handle == nullptr) return report;
  std::vector<std::string> orphans;
  std::vector<std::string> temps;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      temps.push_back(name);
      continue;
    }
    // Only our own namespace: swala-<id>.cache.
    constexpr std::string_view prefix = "swala-";
    constexpr std::string_view suffix = ".cache";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const StorageId id = std::strtoull(digits.c_str(), nullptr, 10);
    if (sizes_.find(id) == sizes_.end()) orphans.push_back(name);
  }
  ::closedir(handle);

  for (const auto& name : temps) {
    if (fs_->unlink((dir_ + "/" + name).c_str()) == 0) ++report.temps_removed;
  }
  for (const auto& name : orphans) {
    if (fs_->unlink((dir_ + "/" + name).c_str()) == 0) {
      ++report.orphans_removed;
    }
  }
  if (report.quarantined != 0 || report.orphans_removed != 0 ||
      report.temps_removed != 0) {
    SWALA_LOG(Info) << "cache scrub of " << dir_ << ": " << report.adopted
                    << " adopted, " << report.quarantined << " quarantined, "
                    << report.orphans_removed << " orphans and "
                    << report.temps_removed << " temp files removed";
  }
  return report;
}

}  // namespace swala::core
