#include "core/storage.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.h"

namespace swala::core {

Result<StorageId> MemoryBackend::put(std::string_view data) {
  const StorageId id = next_id_++;
  bytes_ += data.size();
  blobs_.emplace(id, std::string(data));
  return id;
}

Result<std::string> MemoryBackend::get(StorageId id) {
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status(StatusCode::kNotFound, "no blob " + std::to_string(id));
  }
  return it->second;
}

void MemoryBackend::erase(StorageId id) {
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) return;
  bytes_ -= it->second.size();
  blobs_.erase(it);
}

DiskBackend::DiskBackend(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0755);  // best effort; put() surfaces real failures
}

DiskBackend::~DiskBackend() {
  if (retain_) return;  // warm-restart handoff: a manifest references these
  // Remove files we created; leave foreign files alone.
  for (const auto& [id, size] : sizes_) {
    (void)size;
    ::unlink(path_for(id).c_str());
  }
}

Status DiskBackend::adopt(StorageId id, std::uint64_t size) {
  struct stat st{};
  const std::string path = path_for(id);
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    return Status(StatusCode::kNotFound, "no cache file " + path);
  }
  if (static_cast<std::uint64_t>(st.st_size) != size) {
    return Status(StatusCode::kInternal,
                  "cache file size mismatch for " + path);
  }
  if (sizes_.emplace(id, size).second) bytes_ += size;
  if (id >= next_id_) next_id_ = id + 1;
  return Status::ok();
}

std::string DiskBackend::path_for(StorageId id) const {
  return dir_ + "/swala-" + std::to_string(id) + ".cache";
}

Result<StorageId> DiskBackend::put(std::string_view data) {
  const StorageId id = next_id_++;
  const std::string path = path_for(id);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(StatusCode::kIoError,
                  "open " + path + ": " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(path.c_str());
      return Status(StatusCode::kIoError,
                    "write " + path + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  sizes_[id] = data.size();
  bytes_ += data.size();
  return id;
}

Result<std::string> DiskBackend::get(StorageId id) {
  const std::string path = path_for(id);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status(StatusCode::kNotFound,
                  "open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  const auto it = sizes_.find(id);
  if (it != sizes_.end()) out.reserve(it->second);
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status(StatusCode::kIoError,
                    "read " + path + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

void DiskBackend::erase(StorageId id) {
  const auto it = sizes_.find(id);
  if (it == sizes_.end()) return;
  ::unlink(path_for(id).c_str());
  bytes_ -= it->second;
  sizes_.erase(it);
}

}  // namespace swala::core
