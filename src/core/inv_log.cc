#include "core/inv_log.h"

namespace swala::core {

InvalidationLog::InvalidationLog(std::size_t max_entries)
    : max_entries_(max_entries > 0 ? max_entries : 1) {}

InvalidationRecord InvalidationLog::originate(NodeId origin,
                                              std::string pattern) {
  std::lock_guard<std::mutex> lock(mutex_);
  InvalidationRecord record;
  record.origin = origin;
  record.epoch = origins_[origin].high + 1;
  record.pattern = std::move(pattern);
  admit_locked(record);
  return record;
}

bool InvalidationLog::admit(const InvalidationRecord& record) {
  if (record.epoch == 0) return true;  // legacy/unepoched: apply, don't log
  std::lock_guard<std::mutex> lock(mutex_);
  return admit_locked(record);
}

bool InvalidationLog::admit_locked(const InvalidationRecord& record) {
  OriginState& st = origins_[record.origin];
  if (record.epoch <= st.floor || st.above_floor.count(record.epoch) != 0) {
    return false;  // exact duplicate: already applied
  }
  st.above_floor.insert(record.epoch);
  while (st.above_floor.count(st.floor + 1) != 0) {
    st.above_floor.erase(st.floor + 1);
    ++st.floor;
  }
  if (record.epoch > st.high) st.high = record.epoch;

  log_.push_back(record);
  while (log_.size() > max_entries_) {
    const InvalidationRecord& evicted = log_.front();
    OriginState& evicted_origin = origins_[evicted.origin];
    if (evicted.epoch > evicted_origin.evicted_high) {
      evicted_origin.evicted_high = evicted.epoch;
    }
    log_.pop_front();
  }
  return true;
}

EpochVector InvalidationLog::high_vector() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EpochVector out;
  out.reserve(origins_.size());
  for (const auto& [origin, st] : origins_) out.emplace_back(origin, st.high);
  return out;
}

EpochVector InvalidationLog::floor_vector() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EpochVector out;
  out.reserve(origins_.size());
  for (const auto& [origin, st] : origins_) out.emplace_back(origin, st.floor);
  return out;
}

bool InvalidationLog::behind(const EpochVector& peer_high) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [origin, peer] : peer_high) {
    if (peer == 0) continue;
    const auto it = origins_.find(origin);
    const std::uint64_t floor = it == origins_.end() ? 0 : it->second.floor;
    // floor < high means we hold a hole a peer at `peer` >= high could
    // fill; peer > high means the peer saw epochs we never did. Both cases
    // reduce to "the peer's high-water mark exceeds our contiguous floor".
    if (peer > floor) return true;
  }
  return false;
}

std::vector<InvalidationRecord> InvalidationLog::entries_after(
    const EpochVector& floors, bool* truncated) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto floor_of = [&floors](NodeId origin) -> std::uint64_t {
    for (const auto& [o, f] : floors) {
      if (o == origin) return f;
    }
    return 0;
  };
  if (truncated != nullptr) {
    *truncated = false;
    // A record evicted from the log above the requester's floor may be one
    // the requester never applied; entries alone cannot repair it.
    for (const auto& [origin, st] : origins_) {
      if (st.evicted_high > floor_of(origin)) {
        *truncated = true;
        break;
      }
    }
  }
  std::vector<InvalidationRecord> out;
  for (const auto& record : log_) {
    if (record.epoch > floor_of(record.origin)) out.push_back(record);
  }
  return out;
}

std::size_t InvalidationLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_.size();
}

}  // namespace swala::core
