#include "core/directory.h"

#include <mutex>

#include "common/strings.h"

namespace swala::core {

const char* locking_mode_name(LockingMode mode) {
  switch (mode) {
    case LockingMode::kWholeDirectory: return "whole-directory";
    case LockingMode::kPerTable: return "per-table";
    case LockingMode::kPerEntry: return "per-entry";
    case LockingMode::kMultiGranularity: return "multi-granularity";
  }
  return "?";
}

const char* directory_mode_name(DirectoryMode mode) {
  switch (mode) {
    case DirectoryMode::kReplicated: return "replicated";
    case DirectoryMode::kPartitioned: return "partitioned";
    case DirectoryMode::kQuery: return "query";
  }
  return "?";
}

std::optional<DirectoryMode> directory_mode_from_name(std::string_view name) {
  if (name == "replicated") return DirectoryMode::kReplicated;
  if (name == "partitioned") return DirectoryMode::kPartitioned;
  if (name == "query") return DirectoryMode::kQuery;
  return std::nullopt;
}

CacheDirectory::CacheDirectory(NodeId self, std::size_t num_nodes,
                               LockingMode mode)
    : clock_(RealClock::instance()),
      self_(self),
      mode_(mode),
      quarantined_(num_nodes) {
  tables_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    tables_.push_back(std::make_unique<Table>());
  }
}

void CacheDirectory::set_quarantined(NodeId node, bool quarantined) {
  if (node >= quarantined_.size() || node == self_) return;
  quarantined_[node].store(quarantined, std::memory_order_release);
}

bool CacheDirectory::quarantined(NodeId node) const {
  if (node >= quarantined_.size()) return false;
  return quarantined_[node].load(std::memory_order_acquire);
}

std::size_t CacheDirectory::clear_table(NodeId node) {
  if (node >= tables_.size()) return 0;
  Table& table = *tables_[node];
  std::size_t dropped = 0;
  const auto do_clear = [&] {
    dropped = table.entries.size();
    table.entries.clear();
  };
  if (mode_ == LockingMode::kWholeDirectory) {
    std::unique_lock lock(whole_mutex_);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    do_clear();
  } else {
    std::unique_lock lock(table.mutex);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    do_clear();
  }
  erases_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

void CacheDirectory::apply_insert(const EntryMeta& meta) {
  if (meta.owner >= tables_.size()) return;
  Table& table = *tables_[meta.owner];

  if (mode_ == LockingMode::kWholeDirectory) {
    std::unique_lock lock(whole_mutex_);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    table.entries[meta.key] = std::make_unique<EntrySlot>(meta);
  } else {
    std::unique_lock lock(table.mutex);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    table.entries[meta.key] = std::make_unique<EntrySlot>(meta);
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

void CacheDirectory::apply_erase(NodeId owner, const std::string& key,
                                 std::uint64_t version) {
  if (owner >= tables_.size()) return;
  Table& table = *tables_[owner];

  const auto do_erase = [&] {
    const auto it = table.entries.find(key);
    if (it == table.entries.end()) return;
    if (version != 0 && it->second->meta.version > version) return;
    table.entries.erase(it);
    erases_.fetch_add(1, std::memory_order_relaxed);
  };

  if (mode_ == LockingMode::kWholeDirectory) {
    std::unique_lock lock(whole_mutex_);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    do_erase();
  } else {
    std::unique_lock lock(table.mutex);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    do_erase();
  }
}

std::optional<EntryMeta> CacheDirectory::lookup(const std::string& key) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const TimeNs now = clock_->now();

  // Scan order: local table first, then peers, so a locally cached result
  // always wins over a remote copy.
  const auto scan_table = [&](NodeId node) -> std::optional<EntryMeta> {
    const Table& table = *tables_[node];
    // Multi-granularity (§4.2's fourth option): entry locks on the local
    // table, table locks on the remote tables.
    LockingMode effective = mode_;
    if (mode_ == LockingMode::kMultiGranularity) {
      effective = node == self_ ? LockingMode::kPerEntry
                                : LockingMode::kPerTable;
    }
    switch (effective) {
      case LockingMode::kWholeDirectory: {
        // whole_mutex_ already held by caller loop — handled below.
        const auto it = table.entries.find(key);
        if (it != table.entries.end() && !it->second->meta.expired(now)) {
          return it->second->meta;
        }
        return std::nullopt;
      }
      case LockingMode::kPerTable: {
        std::shared_lock lock(table.mutex);
        lock_count_.fetch_add(1, std::memory_order_relaxed);
        const auto it = table.entries.find(key);
        if (it != table.entries.end() && !it->second->meta.expired(now)) {
          return it->second->meta;
        }
        return std::nullopt;
      }
      case LockingMode::kPerEntry: {
        // Structural lock to locate the slot, then the entry's own mutex to
        // read it — two acquisitions per visited table, which is exactly the
        // overhead the paper rejects this mode for.
        const EntrySlot* slot = nullptr;
        {
          std::shared_lock lock(table.mutex);
          lock_count_.fetch_add(1, std::memory_order_relaxed);
          const auto it = table.entries.find(key);
          if (it != table.entries.end()) slot = it->second.get();
        }
        if (slot == nullptr) return std::nullopt;
        std::lock_guard<std::mutex> entry_lock(slot->entry_mutex);
        lock_count_.fetch_add(1, std::memory_order_relaxed);
        if (!slot->meta.expired(now)) return slot->meta;
        return std::nullopt;
      }
      case LockingMode::kMultiGranularity:
        break;  // resolved to kPerEntry/kPerTable above; unreachable
    }
    return std::nullopt;
  };

  std::optional<EntryMeta> found;
  if (mode_ == LockingMode::kWholeDirectory) {
    std::shared_lock lock(whole_mutex_);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    if (auto hit = scan_table(self_)) {
      found = hit;
    } else {
      for (NodeId n = 0; n < tables_.size() && !found; ++n) {
        if (n == self_ || quarantined(n)) continue;
        found = scan_table(n);
      }
    }
  } else {
    if (auto hit = scan_table(self_)) {
      found = hit;
    } else {
      for (NodeId n = 0; n < tables_.size() && !found; ++n) {
        if (n == self_ || quarantined(n)) continue;
        found = scan_table(n);
      }
    }
  }
  if (found) lookup_hits_.fetch_add(1, std::memory_order_relaxed);
  return found;
}

std::optional<EntryMeta> CacheDirectory::lookup_at(NodeId node,
                                                   const std::string& key) const {
  if (node >= tables_.size()) return std::nullopt;
  const TimeNs now = clock_->now();
  const Table& table = *tables_[node];
  if (mode_ == LockingMode::kWholeDirectory) {
    std::shared_lock lock(whole_mutex_);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    const auto it = table.entries.find(key);
    if (it != table.entries.end() && !it->second->meta.expired(now)) {
      return it->second->meta;
    }
    return std::nullopt;
  }
  std::shared_lock lock(table.mutex);
  lock_count_.fetch_add(1, std::memory_order_relaxed);
  const auto it = table.entries.find(key);
  if (it != table.entries.end() && !it->second->meta.expired(now)) {
    return it->second->meta;
  }
  return std::nullopt;
}

void CacheDirectory::apply_touch(NodeId owner, const std::string& key,
                                 TimeNs access_time) {
  if (owner >= tables_.size()) return;
  Table& table = *tables_[owner];
  const auto do_touch = [&] {
    const auto it = table.entries.find(key);
    if (it == table.entries.end()) return;
    it->second->meta.last_access = access_time;
    ++it->second->meta.access_count;
  };
  if (mode_ == LockingMode::kWholeDirectory) {
    std::unique_lock lock(whole_mutex_);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    do_touch();
  } else {
    std::unique_lock lock(table.mutex);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    do_touch();
  }
}

std::vector<std::string> CacheDirectory::expired_keys(NodeId node,
                                                      TimeNs now) const {
  std::vector<std::string> out;
  if (node >= tables_.size()) return out;
  const Table& table = *tables_[node];
  std::shared_lock lock(mode_ == LockingMode::kWholeDirectory ? whole_mutex_
                                                              : table.mutex);
  lock_count_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& [key, slot] : table.entries) {
    if (slot->meta.expired(now)) out.push_back(key);
  }
  return out;
}

std::size_t CacheDirectory::erase_matching(std::string_view pattern) {
  std::size_t removed = 0;
  for (auto& table_ptr : tables_) {
    Table& table = *table_ptr;
    std::unique_lock lock(mode_ == LockingMode::kWholeDirectory ? whole_mutex_
                                                                : table.mutex);
    lock_count_.fetch_add(1, std::memory_order_relaxed);
    for (auto it = table.entries.begin(); it != table.entries.end();) {
      if (glob_match(pattern, it->first)) {
        it = table.entries.erase(it);
        ++removed;
        erases_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  return removed;
}

std::size_t CacheDirectory::size() const {
  std::size_t total = 0;
  for (NodeId n = 0; n < tables_.size(); ++n) total += table_size(n);
  return total;
}

std::vector<std::string> CacheDirectory::keys_at(NodeId node) const {
  std::vector<std::string> out;
  if (node >= tables_.size()) return out;
  const Table& table = *tables_[node];
  std::shared_lock lock(mode_ == LockingMode::kWholeDirectory ? whole_mutex_
                                                              : table.mutex);
  out.reserve(table.entries.size());
  for (const auto& [key, slot] : table.entries) out.push_back(key);
  return out;
}

std::vector<EntryMeta> CacheDirectory::metas_at(NodeId node) const {
  std::vector<EntryMeta> out;
  if (node >= tables_.size()) return out;
  const Table& table = *tables_[node];
  std::shared_lock lock(mode_ == LockingMode::kWholeDirectory ? whole_mutex_
                                                              : table.mutex);
  out.reserve(table.entries.size());
  for (const auto& [key, slot] : table.entries) out.push_back(slot->meta);
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
CacheDirectory::key_versions_at(NodeId node) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (node >= tables_.size()) return out;
  const Table& table = *tables_[node];
  std::shared_lock lock(mode_ == LockingMode::kWholeDirectory ? whole_mutex_
                                                              : table.mutex);
  out.reserve(table.entries.size());
  for (const auto& [key, slot] : table.entries) {
    out.emplace_back(key, slot->meta.version);
  }
  return out;
}

std::size_t CacheDirectory::table_size(NodeId node) const {
  if (node >= tables_.size()) return 0;
  const Table& table = *tables_[node];
  std::shared_lock lock(mode_ == LockingMode::kWholeDirectory ? whole_mutex_
                                                              : table.mutex);
  return table.entries.size();
}

DirectoryStats CacheDirectory::stats() const {
  DirectoryStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.lookup_hits = lookup_hits_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.erases = erases_.load(std::memory_order_relaxed);
  s.lock_acquisitions = lock_count_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace swala::core
