// The replicated global cache directory (§4.1–4.2 of the paper).
//
// Every node holds one table per node in the group; table i describes what
// node i currently caches. Local inserts/deletes update the local table and
// are broadcast; broadcasts from peers update the corresponding remote
// table asynchronously (weak inter-node consistency).
//
// Intra-node consistency — the paper weighs three locking granularities and
// chooses per-table read/write locks; it mentions a fourth (multi-
// granularity) it did not implement. All four are implemented behind the
// same interface so `bench/micro_directory` can reproduce the argument:
//   kWholeDirectory    — one shared_mutex over everything
//   kPerTable          — one shared_mutex per node table (the paper's choice)
//   kPerEntry          — per-table structural lock + one mutex per entry
//   kMultiGranularity  — "entry locks on one table while using table lock on
//                        the other tables" (§4.2): per-entry on the local
//                        table (the write-hot one), per-table on the rest
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/entry.h"

namespace swala::core {

enum class LockingMode { kWholeDirectory, kPerTable, kPerEntry, kMultiGranularity };

const char* locking_mode_name(LockingMode mode);

/// How nodes share directory state (cluster.directory_mode).
///
///   kReplicated  — the paper's scheme: every insert/erase broadcasts so all
///                  nodes mirror all tables. O(n) frames per insert.
///   kPartitioned — a consistent-hash ring maps each key to one owner node
///                  that alone holds its directory entry; updates are unicast
///                  kOwnerUpdate frames, misses ask the owner. O(1) frames.
///   kQuery       — no remote directory state: a miss multicasts a bounded
///                  kQuery/kQueryHit exchange (ICP-style) before falling back
///                  to local execution. Zero insert traffic, per-miss probes.
enum class DirectoryMode { kReplicated, kPartitioned, kQuery };

const char* directory_mode_name(DirectoryMode mode);

/// Parses "replicated" | "partitioned" | "query"; nullopt on anything else.
std::optional<DirectoryMode> directory_mode_from_name(std::string_view name);

/// Aggregate directory statistics for experiments.
struct DirectoryStats {
  std::uint64_t lookups = 0;
  std::uint64_t lookup_hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t lock_acquisitions = 0;  ///< how many locks a workload took
};

class CacheDirectory {
 public:
  /// `self` is this node's id; the directory has `num_nodes` tables.
  CacheDirectory(NodeId self, std::size_t num_nodes,
                 LockingMode mode = LockingMode::kPerTable);

  /// Records that `meta.owner`'s cache now holds `meta`.
  void apply_insert(const EntryMeta& meta);

  /// Records that `owner` no longer caches `key`. `version`, when non-zero,
  /// guards against erasing a newer re-insert that raced ahead of the erase
  /// broadcast.
  void apply_erase(NodeId owner, const std::string& key,
                   std::uint64_t version = 0);

  /// Looks `key` up across all tables, local table first (a local hit avoids
  /// the remote fetch). Expired entries are invisible.
  std::optional<EntryMeta> lookup(const std::string& key) const;

  /// Looks up within one node's table only.
  std::optional<EntryMeta> lookup_at(NodeId node, const std::string& key) const;

  /// Updates access statistics after a fetch on the owner node's entry.
  void apply_touch(NodeId owner, const std::string& key, TimeNs access_time);

  /// Keys in `node`'s table that are expired at `now`.
  std::vector<std::string> expired_keys(NodeId node, TimeNs now) const;

  /// Removes every entry matching a shell-style glob from every table
  /// (cluster-wide invalidation applied locally). Returns removals.
  std::size_t erase_matching(std::string_view pattern);

  // ---- peer quarantine (failure handling) ----
  //
  // When the cluster layer declares a peer dead (circuit breaker), its table
  // is quarantined: `lookup` stops advertising that peer's entries, so
  // request threads fall straight through to local execution instead of
  // attempting doomed remote fetches. The table's contents are kept (they
  // are the membership view consistency checks and rejoin diff against);
  // `clear_table` + resync refreshes them when the peer re-HELLOs.

  /// Marks `node`'s table (in)visible to `lookup`. Self cannot be
  /// quarantined. Idempotent.
  void set_quarantined(NodeId node, bool quarantined);

  /// Whether `node`'s table is currently hidden from lookups.
  bool quarantined(NodeId node) const;

  /// Drops every entry in `node`'s table (stale state of a dead or
  /// rejoining peer). Returns how many entries were removed.
  std::size_t clear_table(NodeId node);

  /// Total entries across all tables.
  std::size_t size() const;

  /// Entries in one node's table.
  std::size_t table_size(NodeId node) const;

  /// All keys in one node's table, including expired-but-unpurged entries
  /// (membership view, for consistency cross-checks against the store).
  std::vector<std::string> keys_at(NodeId node) const;

  /// (key, version) pairs in one node's table, including expired-but-
  /// unpurged entries (anti-entropy digest input; version drift matters).
  std::vector<std::pair<std::string, std::uint64_t>> key_versions_at(
      NodeId node) const;

  /// Full metas in one node's table, including expired-but-unpurged entries
  /// (membership handoff: a decommissioning owner ships its directory
  /// partition to the successor as whole records).
  std::vector<EntryMeta> metas_at(NodeId node) const;

  NodeId self() const { return self_; }
  std::size_t num_nodes() const { return tables_.size(); }
  LockingMode locking_mode() const { return mode_; }

  DirectoryStats stats() const;

 private:
  struct EntrySlot {
    EntryMeta meta;
    mutable std::mutex entry_mutex;  // used only in kPerEntry mode

    explicit EntrySlot(EntryMeta m) : meta(std::move(m)) {}
  };

  struct Table {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, std::unique_ptr<EntrySlot>> entries;
  };

  /// Clock used only for expiry visibility checks.
  const Clock* clock_;

  NodeId self_;
  LockingMode mode_;
  std::vector<std::unique_ptr<Table>> tables_;
  /// One flag per table; set while the owning peer is considered dead.
  std::vector<std::atomic<bool>> quarantined_;
  mutable std::shared_mutex whole_mutex_;  // used only in kWholeDirectory
  mutable std::atomic<std::uint64_t> lock_count_{0};
  mutable std::atomic<std::uint64_t> lookups_{0};
  mutable std::atomic<std::uint64_t> lookup_hits_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> erases_{0};

 public:
  /// Injects the clock for expiry checks (defaults to RealClock).
  void set_clock(const Clock* clock) { clock_ = clock; }
};

}  // namespace swala::core
