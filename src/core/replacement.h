// Cache replacement policies. The paper (§3) refers to five replacement
// methods implemented in Swala (detailed in UCSB TR TRCS97-30): we implement
// the five classical candidates that match the attributes it lists —
// "execution time, access frequency, time of access, size" — plus FIFO:
//
//   LRU   — time of access
//   LFU   — access frequency
//   FIFO  — insertion order
//   SIZE  — evict largest first (favours many small results)
//   GDS   — GreedyDual-Size with cost = CGI execution time (Cao & Irani [5],
//           cited by the paper), the "more advanced" method §3 alludes to
//
// Policies only manage *ordering*; capacity enforcement lives in CacheStore.
// Implementations are not thread-safe; CacheStore serializes access.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "core/entry.h"

namespace swala::core {

enum class PolicyKind { kLru, kLfu, kFifo, kSize, kGreedyDualSize };

const char* policy_name(PolicyKind kind);

/// Parses "lru", "lfu", "fifo", "size", "gds"/"greedy-dual-size".
Result<PolicyKind> policy_from_name(std::string_view name);

/// Eviction-ordering strategy. The store notifies the policy of every
/// insert/access/erase; `victim()` names the entry to evict next.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void on_insert(const EntryMeta& meta) = 0;
  virtual void on_access(const EntryMeta& meta) = 0;
  virtual void on_erase(const std::string& key) = 0;

  /// Key of the entry this policy would evict now, or nullopt when empty.
  virtual std::optional<std::string> victim() const = 0;

  virtual PolicyKind kind() const = 0;
  virtual std::size_t size() const = 0;
};

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind);

}  // namespace swala::core
