#include "core/consistency.h"

#include <algorithm>
#include <unordered_set>

namespace swala::core {

std::string ConsistencyReport::to_string() const {
  std::string out = "store=" + std::to_string(store_entries) +
                    " directory=" + std::to_string(directory_entries);
  if (consistent()) return out + " (consistent)";
  const auto append = [&out](const char* label,
                             const std::vector<std::string>& keys) {
    if (keys.empty()) return;
    out += std::string(" ") + label + "=[";
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i != 0) out += ", ";
      if (i == 8) {  // keep failure messages readable
        out += "… +" + std::to_string(keys.size() - i) + " more";
        break;
      }
      out += keys[i];
    }
    out += "]";
  };
  append("missing_in_directory", missing_in_directory);
  append("stale_in_directory", stale_in_directory);
  return out;
}

ConsistencyReport check_store_directory_consistency(
    const CacheStore& store, const CacheDirectory& directory) {
  ConsistencyReport report;
  auto store_keys = store.keys();
  auto dir_keys = directory.keys_at(directory.self());
  report.store_entries = store_keys.size();
  report.directory_entries = dir_keys.size();

  const std::unordered_set<std::string> in_store(store_keys.begin(),
                                                 store_keys.end());
  const std::unordered_set<std::string> in_dir(dir_keys.begin(),
                                               dir_keys.end());
  for (const auto& key : store_keys) {
    if (in_dir.count(key) == 0) report.missing_in_directory.push_back(key);
  }
  for (const auto& key : dir_keys) {
    if (in_store.count(key) == 0) report.stale_in_directory.push_back(key);
  }
  std::sort(report.missing_in_directory.begin(),
            report.missing_in_directory.end());
  std::sort(report.stale_in_directory.begin(), report.stale_in_directory.end());
  return report;
}

}  // namespace swala::core
