#include "core/consistency.h"

#include <algorithm>
#include <unordered_set>

#include "core/manager.h"

namespace swala::core {

std::string ConsistencyReport::to_string() const {
  std::string out = "store=" + std::to_string(store_entries) +
                    " directory=" + std::to_string(directory_entries);
  if (consistent()) return out + " (consistent)";
  const auto append = [&out](const char* label,
                             const std::vector<std::string>& keys) {
    if (keys.empty()) return;
    out += std::string(" ") + label + "=[";
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i != 0) out += ", ";
      if (i == 8) {  // keep failure messages readable
        out += "… +" + std::to_string(keys.size() - i) + " more";
        break;
      }
      out += keys[i];
    }
    out += "]";
  };
  append("missing_in_directory", missing_in_directory);
  append("stale_in_directory", stale_in_directory);
  return out;
}

ConsistencyReport check_store_directory_consistency(
    const CacheStore& store, const CacheDirectory& directory) {
  ConsistencyReport report;
  auto store_keys = store.keys();
  auto dir_keys = directory.keys_at(directory.self());
  report.store_entries = store_keys.size();
  report.directory_entries = dir_keys.size();

  const std::unordered_set<std::string> in_store(store_keys.begin(),
                                                 store_keys.end());
  const std::unordered_set<std::string> in_dir(dir_keys.begin(),
                                               dir_keys.end());
  for (const auto& key : store_keys) {
    if (in_dir.count(key) == 0) report.missing_in_directory.push_back(key);
  }
  for (const auto& key : dir_keys) {
    if (in_store.count(key) == 0) report.stale_in_directory.push_back(key);
  }
  std::sort(report.missing_in_directory.begin(),
            report.missing_in_directory.end());
  std::sort(report.stale_in_directory.begin(), report.stale_in_directory.end());
  return report;
}

std::string ClusterConsistencyReport::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    out += "node " + std::to_string(i) + ": " + per_node[i].to_string() + "\n";
  }
  const auto append_keys = [&out](const std::vector<std::string>& keys) {
    out += "[";
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i != 0) out += ", ";
      if (i == 8) {
        out += "… +" + std::to_string(keys.size() - i) + " more";
        break;
      }
      out += keys[i];
    }
    out += "]";
  };
  for (const auto& d : drift) {
    out += "drift: node " + std::to_string(d.viewer) + " view of node " +
           std::to_string(d.subject);
    if (!d.missing.empty()) {
      out += " missing=";
      append_keys(d.missing);
    }
    if (!d.stale.empty()) {
      out += " stale=";
      append_keys(d.stale);
    }
    out += "\n";
  }
  if (drift.empty()) out += "no cross-node drift\n";
  for (const auto& line : membership_divergence) {
    out += "membership divergence: " + line + "\n";
  }
  for (const auto& line : ownership_violations) {
    out += "ownership violation: " + line + "\n";
  }
  return out;
}

namespace {

std::string members_to_string(const std::vector<NodeId>& members) {
  std::string out = "{";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(members[i]);
  }
  return out + "}";
}

}  // namespace

ClusterConsistencyReport check_cluster_consistency(
    const std::vector<const CacheManager*>& managers) {
  ClusterConsistencyReport report;
  report.per_node.resize(managers.size());
  for (std::size_t i = 0; i < managers.size(); ++i) {
    if (managers[i] == nullptr) continue;
    report.per_node[i] = managers[i]->debug_check_consistency();
  }
  // Membership agreement: after convergence every live node must hold the
  // same active set (transient disagreement mid-join/decommission is legal;
  // the oracle runs post-quiesce).
  {
    const CacheManager* reference = nullptr;
    std::vector<NodeId> reference_members;
    for (std::size_t i = 0; i < managers.size(); ++i) {
      if (managers[i] == nullptr) continue;
      if (reference == nullptr) {
        reference = managers[i];
        reference_members = reference->active_members();
        continue;
      }
      const auto members = managers[i]->active_members();
      if (members != reference_members) {
        report.membership_divergence.push_back(
            "node " + std::to_string(i) + ": " + members_to_string(members) +
            " != node " + std::to_string(reference->self()) + ": " +
            members_to_string(reference_members));
      }
    }
  }
  // Post-transition ownership invariant (partitioned mode): every cached
  // key must map to an owner the caching node itself considers active — a
  // record announced to a departed owner would be unreachable forever.
  for (std::size_t i = 0; i < managers.size(); ++i) {
    const CacheManager* m = managers[i];
    if (m == nullptr || m->directory_mode() != DirectoryMode::kPartitioned) {
      continue;
    }
    for (const auto& key : m->store().keys()) {
      const NodeId owner = m->ring_owner_of(key);
      if (!m->is_member(owner)) {
        report.ownership_violations.push_back(
            "node " + std::to_string(i) + ": key \"" + key +
            "\" maps to inactive owner " + std::to_string(owner));
      }
    }
  }
  for (std::size_t i = 0; i < managers.size(); ++i) {
    const CacheManager* viewer = managers[i];
    if (viewer == nullptr) continue;
    if (viewer->directory_mode() == DirectoryMode::kQuery) continue;
    for (std::size_t j = 0; j < managers.size(); ++j) {
      const CacheManager* subject = managers[j];
      if (i == j || subject == nullptr) continue;
      const NodeId subject_id = static_cast<NodeId>(j);
      // A viewer is only responsible for subjects it considers active; a
      // decommissioned slot's table was deliberately cleared.
      if (!viewer->is_member(subject_id)) continue;
      // A quarantined table is deliberately stale: the viewer wrote the
      // peer off and the rejoin resync will rebuild it.
      if (viewer->directory().quarantined(subject_id)) continue;
      // Ground truth: what the subject actually caches right now,
      // restricted to the keys this viewer is responsible for tracking.
      std::unordered_set<std::string> truth;
      for (const auto& key : subject->store().keys()) {
        if (viewer->directory_mode() == DirectoryMode::kPartitioned &&
            subject->ring_owner_of(key) != static_cast<NodeId>(i)) {
          continue;
        }
        truth.insert(key);
      }
      std::unordered_set<std::string> view;
      for (const auto& key : viewer->directory().keys_at(subject_id)) {
        if (viewer->directory_mode() == DirectoryMode::kPartitioned &&
            viewer->ring_owner_of(key) != static_cast<NodeId>(i)) {
          continue;  // mis-routed record; not this viewer's responsibility
        }
        view.insert(key);
      }
      NodeDrift d;
      d.viewer = static_cast<NodeId>(i);
      d.subject = subject_id;
      for (const auto& key : truth) {
        if (view.count(key) == 0) d.missing.push_back(key);
      }
      for (const auto& key : view) {
        if (truth.count(key) == 0) d.stale.push_back(key);
      }
      if (d.missing.empty() && d.stale.empty()) continue;
      std::sort(d.missing.begin(), d.missing.end());
      std::sort(d.stale.begin(), d.stale.end());
      report.drift.push_back(std::move(d));
    }
  }
  return report;
}

}  // namespace swala::core
