#include "core/monitor.h"

#include <sys/stat.h>

namespace swala::core {

DependencyMonitor::FileState DependencyMonitor::stat_file(
    const std::string& path) {
  struct stat st{};
  FileState state;
  if (::stat(path.c_str(), &st) == 0) {
    state.exists = true;
    state.mtime = st.st_mtime;
    state.size = static_cast<std::uint64_t>(st.st_size);
  }
  return state;
}

void DependencyMonitor::watch(std::string file_path, std::string key_pattern) {
  Watch watch;
  watch.last = stat_file(file_path);
  watch.path = std::move(file_path);
  watch.pattern = std::move(key_pattern);
  std::lock_guard<std::mutex> lock(mutex_);
  watches_.push_back(std::move(watch));
}

std::size_t DependencyMonitor::poll() {
  // Collect changed patterns under the lock, invalidate outside it (the
  // invalidation broadcasts and may take a while).
  std::vector<std::string> changed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& watch : watches_) {
      const FileState now = stat_file(watch.path);
      if (now == watch.last) continue;
      watch.last = now;
      changed.push_back(watch.pattern);
    }
  }
  std::size_t dropped = 0;
  for (const auto& pattern : changed) {
    dropped += manager_->invalidate(pattern);
  }
  return dropped;
}

ConsistencyReport DependencyMonitor::debug_check_consistency() const {
  return manager_->debug_check_consistency();
}

std::size_t DependencyMonitor::watch_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watches_.size();
}

}  // namespace swala::core
