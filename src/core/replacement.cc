#include "core/replacement.h"

#include <algorithm>
#include <list>
#include <map>
#include <set>
#include <unordered_map>

#include "common/strings.h"

namespace swala::core {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kLfu: return "lfu";
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kSize: return "size";
    case PolicyKind::kGreedyDualSize: return "gds";
  }
  return "?";
}

Result<PolicyKind> policy_from_name(std::string_view name) {
  const std::string lower = to_lower(trim(name));
  if (lower == "lru") return PolicyKind::kLru;
  if (lower == "lfu") return PolicyKind::kLfu;
  if (lower == "fifo") return PolicyKind::kFifo;
  if (lower == "size") return PolicyKind::kSize;
  if (lower == "gds" || lower == "greedy-dual-size") {
    return PolicyKind::kGreedyDualSize;
  }
  return Status(StatusCode::kInvalidArgument,
                "unknown replacement policy: " + std::string(name));
}

namespace {

/// LRU / FIFO share a recency list; FIFO simply ignores accesses.
class ListPolicy final : public ReplacementPolicy {
 public:
  explicit ListPolicy(bool move_on_access, PolicyKind kind)
      : move_on_access_(move_on_access), kind_(kind) {}

  void on_insert(const EntryMeta& meta) override {
    on_erase(meta.key);
    order_.push_back(meta.key);
    index_[meta.key] = std::prev(order_.end());
  }

  void on_access(const EntryMeta& meta) override {
    if (!move_on_access_) return;
    const auto it = index_.find(meta.key);
    if (it == index_.end()) return;
    order_.splice(order_.end(), order_, it->second);
    it->second = std::prev(order_.end());
  }

  void on_erase(const std::string& key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

  std::optional<std::string> victim() const override {
    if (order_.empty()) return std::nullopt;
    return order_.front();
  }

  PolicyKind kind() const override { return kind_; }
  std::size_t size() const override { return index_.size(); }

 private:
  bool move_on_access_;
  PolicyKind kind_;
  std::list<std::string> order_;
  std::unordered_map<std::string, std::list<std::string>::iterator> index_;
};

/// Generic "evict minimum score" policy backed by an ordered set.
/// Ties broken by key for determinism.
class ScoredPolicy : public ReplacementPolicy {
 public:
  void on_insert(const EntryMeta& meta) override {
    on_erase(meta.key);
    const double score = initial_score(meta);
    scores_.emplace(score, meta.key);
    index_[meta.key] = score;
  }

  void on_access(const EntryMeta& meta) override {
    const auto it = index_.find(meta.key);
    if (it == index_.end()) return;
    const double updated = access_score(meta, it->second);
    if (updated == it->second) return;
    scores_.erase({it->second, meta.key});
    scores_.emplace(updated, meta.key);
    it->second = updated;
  }

  void on_erase(const std::string& key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    scores_.erase({it->second, key});
    index_.erase(it);
  }

  std::optional<std::string> victim() const override {
    if (scores_.empty()) return std::nullopt;
    return scores_.begin()->second;
  }

  std::size_t size() const override { return index_.size(); }

 protected:
  /// Score assigned at insert; the minimum is evicted first.
  virtual double initial_score(const EntryMeta& meta) const = 0;
  /// Score after an access (default: unchanged).
  virtual double access_score(const EntryMeta& meta, double current) const {
    (void)meta;
    return current;
  }

  std::set<std::pair<double, std::string>> scores_;
  std::unordered_map<std::string, double> index_;
};

/// LFU: score = access count (evict least frequently used).
class LfuPolicy final : public ScoredPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kLfu; }

 protected:
  double initial_score(const EntryMeta& meta) const override {
    return static_cast<double>(meta.access_count);
  }
  double access_score(const EntryMeta& meta, double) const override {
    return static_cast<double>(meta.access_count);
  }
};

/// SIZE: score = -size (evict the largest entry first).
class SizePolicy final : public ScoredPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kSize; }

 protected:
  double initial_score(const EntryMeta& meta) const override {
    return -static_cast<double>(meta.size_bytes);
  }
};

/// GreedyDual-Size with cost = execution time. H = L + cost/size; L advances
/// to the H of each victim, ageing entries without per-access updates.
class GdsPolicy final : public ScoredPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kGreedyDualSize; }

  std::optional<std::string> victim() const override {
    if (scores_.empty()) return std::nullopt;
    inflation_ = scores_.begin()->first;  // L <- H(victim)
    return scores_.begin()->second;
  }

 protected:
  double initial_score(const EntryMeta& meta) const override {
    return inflation_ + value(meta);
  }
  double access_score(const EntryMeta& meta, double) const override {
    return inflation_ + value(meta);
  }

 private:
  static double value(const EntryMeta& meta) {
    const double size = std::max<double>(1.0, static_cast<double>(meta.size_bytes));
    // Saved time per byte of cache consumed.
    return std::max(1e-9, meta.cost_seconds) / size;
  }

  mutable double inflation_ = 0.0;  // L in the GreedyDual formulation
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<ListPolicy>(/*move_on_access=*/true, kind);
    case PolicyKind::kFifo:
      return std::make_unique<ListPolicy>(/*move_on_access=*/false, kind);
    case PolicyKind::kLfu:
      return std::make_unique<LfuPolicy>();
    case PolicyKind::kSize:
      return std::make_unique<SizePolicy>();
    case PolicyKind::kGreedyDualSize:
      return std::make_unique<GdsPolicy>();
  }
  return nullptr;
}

}  // namespace swala::core
