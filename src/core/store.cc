#include "core/store.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"
#include "http/uri.h"

namespace swala::core {

CacheStore::CacheStore(StoreLimits limits, PolicyKind policy,
                       std::unique_ptr<StorageBackend> backend,
                       const Clock* clock, NodeId owner)
    : limits_(limits),
      policy_(make_policy(policy)),
      backend_(std::move(backend)),
      clock_(clock),
      owner_(owner) {}

Result<EntryMeta> CacheStore::insert(const CacheKey& key, std::string_view data,
                                     double cost_seconds, double ttl_seconds,
                                     std::string content_type, int http_status,
                                     std::vector<EntryMeta>* evicted) {
  if (limits_.max_bytes != 0 && data.size() > limits_.max_bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected_too_large;
    return Status(StatusCode::kResourceExhausted,
                  "entry larger than cache byte limit");
  }

  // Write the blob before taking the mutex: the put (fsync + rename on the
  // disk backend) is the expensive part and must not stall readers. Losers
  // of a concurrent same-key race are handled below — the second install
  // dooms the first install's storage like any other replacement.
  auto id = backend_->put(data, key.hash());
  if (!id) return id.status();

  // Candidate hot blob, copied before taking the mutex (an 8 KB memcpy has
  // no business inside the metadata lock).
  std::shared_ptr<const std::string> hot_blob;
  if (limits_.hot_bytes != 0 && data.size() <= limits_.hot_bytes) {
    hot_blob = std::make_shared<const std::string>(data);
  }

  std::vector<Pin> doomed;
  EntryMeta meta;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Replace any existing copy first so its bytes do not count against us.
    if (entries_.find(key.text) != entries_.end()) {
      remove_locked(key.text, /*count_eviction=*/false, nullptr, &doomed);
    }
    make_room(data.size(), evicted, &doomed);

    const TimeNs now = clock_->now();
    Slot slot;
    slot.pin = std::make_shared<PinnedStorage>(backend_, id.value());
    slot.meta.key = key.text;
    slot.meta.owner = owner_;
    slot.meta.size_bytes = data.size();
    slot.meta.cost_seconds = cost_seconds;
    slot.meta.insert_time = now;
    slot.meta.expire_time =
        ttl_seconds > 0 ? now + from_seconds(ttl_seconds) : TimeNs{0};
    slot.meta.last_access = now;
    slot.meta.access_count = 0;
    slot.meta.content_type = std::move(content_type);
    slot.meta.http_status = http_status;
    slot.meta.version = ++version_counter_;

    policy_->on_insert(slot.meta);
    bytes_used_ += slot.meta.size_bytes;
    ++stats_.inserts;
    meta = slot.meta;
    auto& installed = entries_[key.text];
    installed = std::move(slot);
    // The data just came through this thread verified; keep it hot.
    if (hot_blob) hot_admit_locked(key.text, &installed, std::move(hot_blob));
  }
  // `doomed` destructs here, unlinking replaced/evicted blobs (or deferring
  // to a pinned reader) with the mutex released.
  return meta;
}

void CacheStore::make_room(std::uint64_t incoming_bytes,
                           std::vector<EntryMeta>* evicted,
                           std::vector<Pin>* doomed) {
  const auto over = [&] {
    if (limits_.max_entries != 0 && entries_.size() + 1 > limits_.max_entries) {
      return true;
    }
    if (limits_.max_bytes != 0 && bytes_used_ + incoming_bytes > limits_.max_bytes) {
      return true;
    }
    return false;
  };
  while (over() && !entries_.empty()) {
    const auto victim = policy_->victim();
    if (!victim) break;  // policy out of sync; bail rather than spin
    remove_locked(*victim, /*count_eviction=*/true, evicted, doomed);
  }
}

void CacheStore::remove_locked(const std::string& key, bool count_eviction,
                               std::vector<EntryMeta>* out,
                               std::vector<Pin>* doomed) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_used_ -= it->second.meta.size_bytes;
  hot_drop_locked(&it->second);
  if (it->second.pin) {
    it->second.pin->doomed.store(true, std::memory_order_release);
    doomed->push_back(std::move(it->second.pin));
  }
  policy_->on_erase(key);
  if (count_eviction) ++stats_.evictions;
  if (out) out->push_back(std::move(it->second.meta));
  entries_.erase(it);
}

std::optional<CachedResult> CacheStore::fetch(std::string_view key) {
  Pin pin;
  EntryMeta meta;
  std::shared_ptr<const std::string> hot_blob;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(std::string(key));
    if (it == entries_.end() || it->second.meta.expired(clock_->now())) {
      ++stats_.misses;
      return std::nullopt;
    }
    Slot& slot = it->second;
    if (slot.hot) {
      slot.meta.last_access = clock_->now();
      ++slot.meta.access_count;
      policy_->on_access(slot.meta);
      ++stats_.hits;
      ++stats_.hot_hits;
      hot_touch_locked(&slot);
      hot_blob = slot.hot;
      meta = slot.meta;
    } else {
      pin = slot.pin;
      meta = slot.meta;
    }
  }
  if (hot_blob) {
    // Copy the blob outside the mutex; the shared_ptr keeps it alive even
    // if the entry is evicted concurrently.
    return CachedResult{std::move(meta), *hot_blob};
  }

  // Read the backend with the mutex released; the pin keeps the blob alive
  // (and defers any concurrent unlink) until we are done.
  active_pins_.fetch_add(1, std::memory_order_relaxed);
  auto data = pin->backend->get(pin->id);
  active_pins_.fetch_sub(1, std::memory_order_relaxed);

  if (!data) {
    // Backing file vanished (e.g. external cleanup). Report a miss but keep
    // the entry resident: removal must go through the manager's commit
    // protocol so the directory erase and its broadcast are published with
    // the store change (the next complete() for the key replaces it).
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return std::nullopt;
  }

  // First verified read: promote to the hot-blob cache so later hits skip
  // the disk and the checksum. Copy the blob before relocking.
  std::shared_ptr<const std::string> promoted;
  if (limits_.hot_bytes != 0 && data.value().size() <= limits_.hot_bytes) {
    promoted = std::make_shared<const std::string>(data.value());
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(std::string(key));
    if (it != entries_.end() && it->second.pin == pin) {
      Slot& slot = it->second;
      slot.meta.last_access = clock_->now();
      ++slot.meta.access_count;
      policy_->on_access(slot.meta);
      meta = slot.meta;
      if (promoted && !slot.hot) {
        hot_admit_locked(it->first, &slot, std::move(promoted));
      }
    }
    // Entry replaced/removed while we read: the data was valid when read,
    // so still serve it (with the meta snapshotted before the read).
    ++stats_.hits;
    ++stats_.hot_misses;
  }
  return CachedResult{std::move(meta), std::move(data.value())};
}

std::optional<EntryMeta> CacheStore::peek(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end() || it->second.meta.expired(clock_->now())) {
    return std::nullopt;
  }
  return it->second.meta;
}

std::optional<EntryMeta> CacheStore::erase(std::string_view key) {
  std::vector<EntryMeta> out;
  std::vector<Pin> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    remove_locked(std::string(key), /*count_eviction=*/false, &out, &doomed);
  }
  if (out.empty()) return std::nullopt;
  return std::move(out.front());
}

std::vector<EntryMeta> CacheStore::purge_expired() {
  std::vector<EntryMeta> out;
  std::vector<Pin> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const TimeNs now = clock_->now();
    std::vector<std::string> expired;
    for (const auto& [key, slot] : entries_) {
      if (slot.meta.expired(now)) expired.push_back(key);
    }
    for (const auto& key : expired) {
      remove_locked(key, /*count_eviction=*/false, &out, &doomed);
      ++stats_.expirations;
    }
  }
  return out;
}

std::vector<EntryMeta> CacheStore::erase_matching(std::string_view pattern) {
  std::vector<EntryMeta> out;
  std::vector<Pin> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> matched;
    for (const auto& [key, slot] : entries_) {
      if (glob_match(pattern, key)) matched.push_back(key);
    }
    for (const auto& key : matched) {
      remove_locked(key, /*count_eviction=*/false, &out, &doomed);
    }
  }
  return out;
}

std::vector<EntryMeta> CacheStore::resident_metas() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EntryMeta> out;
  out.reserve(entries_.size());
  for (const auto& [key, slot] : entries_) out.push_back(slot.meta);
  return out;
}

std::vector<std::string> CacheStore::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, slot] : entries_) out.push_back(key);
  return out;
}

void CacheStore::clear() {
  std::vector<Pin> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> keys;
    keys.reserve(entries_.size());
    for (const auto& [key, slot] : entries_) keys.push_back(key);
    for (const auto& key : keys) {
      remove_locked(key, /*count_eviction=*/false, nullptr, &doomed);
    }
  }
}

Status CacheStore::save_manifest(const std::string& path) const {
  // Snapshot the manifest content under the mutex, but keep the disk write
  // (fsync + rename) outside it so a slow checkpoint cannot stall the hit
  // path.
  std::string content;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    content = "swala-manifest " + std::to_string(kManifestFormatVersion) + "\n";
    const TimeNs now = clock_->now();
    char line[4096];
    for (const auto& [key, slot] : entries_) {
      const EntryMeta& meta = slot.meta;
      if (meta.expired(now)) continue;
      const double age = to_seconds(now - meta.insert_time);
      const double ttl_remaining =
          meta.expire_time == 0 ? -1.0 : to_seconds(meta.expire_time - now);
      const double idle = to_seconds(now - meta.last_access);
      // content_type is percent-encoded (it may contain spaces, e.g.
      // "text/html; charset=..."); the key goes last and keeps its spaces.
      const int n = std::snprintf(
          line, sizeof(line), "%llu %llu %.9f %.6f %.6f %.6f %llu %d %llu %s %s\n",
          static_cast<unsigned long long>(slot.pin ? slot.pin->id : 0),
          static_cast<unsigned long long>(meta.size_bytes), meta.cost_seconds,
          age, ttl_remaining, idle,
          static_cast<unsigned long long>(meta.access_count), meta.http_status,
          static_cast<unsigned long long>(meta.version),
          http::percent_encode(meta.content_type).c_str(), key.c_str());
      if (n < 0 || static_cast<std::size_t>(n) >= sizeof(line)) {
        SWALA_LOG(Warn) << "manifest entry too long, skipped: " << key;
        continue;
      }
      content.append(line, static_cast<std::size_t>(n));
    }
  }
  // Drain the backend's write buffer first (volume store): the manifest must
  // never reference data that is still only in RAM, or a crash would leave
  // manifest entries pointing at nothing.
  if (auto st = backend_->sync(); !st.is_ok()) return st;
  // Atomic + durable replacement: a crash mid-checkpoint must leave the
  // previous manifest readable, never a torn mix.
  if (auto st = write_file_atomic(backend_->fs(), path, content);
      !st.is_ok()) {
    return st;
  }
  backend_->set_retain_on_destruction(true);
  return Status::ok();
}

Result<std::size_t> CacheStore::load_manifest(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status(StatusCode::kNotFound, "no manifest: " + path);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const TimeNs now = clock_->now();
  std::size_t restored = 0;
  char line[4096];
  // Header line: refuse manifests written by a newer format. Everything on
  // disk stays untouched (the newer version may still understand it), so a
  // rollback never silently destroys a newer deployment's cache.
  int version = 0;
  if (std::fgets(line, sizeof(line), file) == nullptr ||
      std::sscanf(line, "swala-manifest %d", &version) != 1) {
    std::fclose(file);
    return Status(StatusCode::kCorrupt, "manifest missing header: " + path);
  }
  if (version > kManifestFormatVersion) {
    std::fclose(file);
    return Status(StatusCode::kUnavailable,
                  "manifest format v" + std::to_string(version) +
                      " is newer than supported v" +
                      std::to_string(kManifestFormatVersion));
  }
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    unsigned long long storage = 0, size = 0, accesses = 0, version = 0;
    double cost = 0, age = 0, ttl_remaining = 0, idle = 0;
    int http_status = 0;
    char content_type[256] = {0};
    int consumed = 0;
    if (std::sscanf(line, "%llu %llu %lf %lf %lf %lf %llu %d %llu %255s %n",
                    &storage, &size, &cost, &age, &ttl_remaining, &idle,
                    &accesses, &http_status, &version, content_type,
                    &consumed) != 10) {
      continue;  // corrupt line; skip
    }
    std::string key(trim(std::string_view(line + consumed)));
    if (key.empty()) continue;
    if (entries_.count(key) != 0) continue;

    if (auto st = backend_->adopt(storage, size, fnv1a64(key)); !st.is_ok()) {
      SWALA_LOG(Warn) << "manifest entry skipped: " << st.to_string();
      continue;
    }

    Slot slot;
    slot.pin = std::make_shared<PinnedStorage>(backend_, storage);
    slot.meta.key = key;
    slot.meta.owner = owner_;
    slot.meta.size_bytes = size;
    slot.meta.cost_seconds = cost;
    slot.meta.insert_time = now - from_seconds(age);
    slot.meta.expire_time =
        ttl_remaining < 0 ? TimeNs{0} : now + from_seconds(ttl_remaining);
    slot.meta.last_access = now - from_seconds(idle);
    slot.meta.access_count = accesses;
    std::string decoded_type;
    if (!http::percent_decode(content_type, &decoded_type)) {
      decoded_type = "text/html";
    }
    slot.meta.content_type = std::move(decoded_type);
    slot.meta.http_status = http_status;
    slot.meta.version = version;

    policy_->on_insert(slot.meta);
    bytes_used_ += size;
    // Future versions must stay above every restored one so post-restart
    // re-inserts still win against stale erase broadcasts.
    version_counter_ = std::max(version_counter_, slot.meta.version);
    entries_[key] = std::move(slot);
    ++restored;
  }
  std::fclose(file);
  return restored;
}

ScrubReport CacheStore::scrub_backend() { return backend_->scrub(); }

std::size_t CacheStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t CacheStore::bytes_used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_used_;
}

StoreStats CacheStore::stats() const {
  StoreStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s = stats_;
    s.hot_bytes = hot_bytes_used_;
  }
  s.pinned_entries = active_pins_.load(std::memory_order_relaxed);
  return s;
}

PolicyKind CacheStore::policy() const { return policy_->kind(); }

// ---- hot-blob cache ----

void CacheStore::hot_admit_locked(const std::string& key, Slot* slot,
                                  std::shared_ptr<const std::string> blob) {
  if (limits_.hot_bytes == 0 || !blob || blob->size() > limits_.hot_bytes) {
    return;
  }
  if (slot->hot) {
    hot_touch_locked(slot);
    return;
  }
  while (hot_bytes_used_ + blob->size() > limits_.hot_bytes &&
         !hot_lru_.empty()) {
    const std::string victim = hot_lru_.back();
    const auto it = entries_.find(victim);
    if (it != entries_.end() && it->second.hot) {
      hot_bytes_used_ -= it->second.hot->size();
      it->second.hot.reset();
    }
    hot_lru_.pop_back();
  }
  hot_bytes_used_ += blob->size();
  hot_lru_.push_front(key);
  slot->hot_it = hot_lru_.begin();
  slot->hot = std::move(blob);
}

void CacheStore::hot_touch_locked(Slot* slot) {
  hot_lru_.splice(hot_lru_.begin(), hot_lru_, slot->hot_it);
}

void CacheStore::hot_drop_locked(Slot* slot) {
  if (!slot->hot) return;
  hot_bytes_used_ -= slot->hot->size();
  hot_lru_.erase(slot->hot_it);
  slot->hot.reset();
}

}  // namespace swala::core
