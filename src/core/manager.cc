#include "core/manager.h"

#include <algorithm>
#include <chrono>
#include <iterator>

#include "common/logging.h"

namespace swala::core {

CacheManager::CacheManager(NodeId self, std::size_t num_nodes,
                           ManagerOptions options, const Clock* clock,
                           CooperationBus* bus, LockingMode locking)
    : self_(self),
      options_(std::move(options)),
      clock_(clock),
      bus_(bus),
      ring_(options_.ring_seed, options_.ring_vnodes),
      inv_log_(options_.inv_log_entries) {
  if (options_.initial_members.empty()) {
    members_.reserve(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i) {
      members_.push_back(static_cast<NodeId>(i));
    }
  } else {
    members_ = options_.initial_members;
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()),
                   members_.end());
  }
  if (options_.directory_mode == DirectoryMode::kPartitioned) {
    // The ring covers the initially active membership; member_joined /
    // member_left resize it at runtime (only remapped ranges migrate,
    // under a dual-read window). An *unplanned* dead owner still
    // quarantines its key range instead — it handed nothing off.
    for (const NodeId n : members_) ring_.add_node(n);
  }
  std::unique_ptr<StorageBackend> backend;
  if (options_.disk_dir.empty()) {
    backend = std::make_unique<MemoryBackend>();
  } else if (options_.store == StoreBackendKind::kVolume) {
    backend = std::make_unique<VolumeBackend>(options_.disk_dir,
                                              options_.volume,
                                              options_.fs_ops, clock_);
  } else {
    backend = std::make_unique<DiskBackend>(options_.disk_dir,
                                            options_.fs_ops);
  }
  store_ = std::make_unique<CacheStore>(options_.limits, options_.policy,
                                        std::move(backend), clock_, self_);
  directory_ = std::make_unique<CacheDirectory>(self_, num_nodes, locking);
  directory_->set_clock(clock_);
  restore_pending_.store(!options_.state_file.empty(),
                         std::memory_order_relaxed);
}

CacheKey CacheManager::key_for(http::Method method, const http::Uri& uri) {
  return CacheKey::make(http::method_name(method), uri.canonical());
}

LookupResult CacheManager::lookup(http::Method method, const http::Uri& uri) {
  return lookup_impl(method, uri, /*deadline=*/nullptr);
}

LookupResult CacheManager::lookup(http::Method method, const http::Uri& uri,
                                  const Deadline& deadline) {
  return lookup_impl(method, uri, &deadline);
}

LookupResult CacheManager::lookup_impl(http::Method method,
                                       const http::Uri& uri,
                                       const Deadline* deadline) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  LookupResult out;
  out.rule = options_.rules.classify(uri.path);
  if (!out.rule.cacheable) {
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    out.outcome = LookupOutcome::kUncacheable;
    return out;
  }

  const CacheKey key = key_for(method, uri);
  const auto dir_hit = directory_->lookup(key.text);

  if (dir_hit && dir_hit->owner == self_) {
    auto local = store_->fetch(key.text);
    if (local) {
      directory_->apply_touch(self_, key.text, local->meta.last_access);
      local_hits_.fetch_add(1, std::memory_order_relaxed);
      out.outcome = LookupOutcome::kHit;
      out.result = std::move(*local);
      out.owner = self_;
      return out;
    }
    // Directory said we own it but the store disagrees (expired between the
    // two checks, or data file lost). Retire the entry from both sides in
    // one commit section, then execute.
    retire_dead_entry(key.text);
  } else if (dir_hit) {
    // Remote hit advertised by a local peer table (replicated mode, or a
    // partitioned owner serving keys it also caches knowledge of).
    if (fetch_hit_from(&out, *dir_hit, deadline,
                       FalseHitSource::kLocalTable)) {
      return out;
    }
  } else if (options_.directory_mode == DirectoryMode::kPartitioned) {
    // No local knowledge: ask the key's ring owner for the directory entry.
    // A quarantined (dead) owner takes its key range with it — fall through
    // to local execution, exactly like the dead-peer fetch path. During a
    // ring transition (dual-read window) the remapped range may not have
    // migrated yet, so probe the pre-transition owner first; a miss there
    // falls through to the current owner, so lookups never miss mid-move.
    const NodeId owner_node = ring_owner_of(key.text);
    const NodeId prev_owner = prev_ring_owner_of(key.text);
    if (prev_owner != owner_node) {
      dual_read_probes_.fetch_add(1, std::memory_order_relaxed);
      if (probe_dir_owner(&out, prev_owner, key.text, deadline)) return out;
    }
    if (probe_dir_owner(&out, owner_node, key.text, deadline)) return out;
  } else if (options_.directory_mode == DirectoryMode::kQuery &&
             bus_ != nullptr) {
    // No directory state anywhere: probe the peers (ICP-style), bounded by
    // the transport's query timeout and the request deadline.
    peer_queries_.fetch_add(1, std::memory_order_relaxed);
    const int budget = deadline != nullptr && !deadline->unlimited()
                           ? deadline->budget_ms(0)
                           : 0;
    auto entry = bus_->query_peers(key.text, budget);
    if (entry && entry.value().owner != self_) {
      peer_query_hits_.fetch_add(1, std::memory_order_relaxed);
      EntryMeta meta = std::move(entry.value());
      meta.key = key.text;
      if (fetch_hit_from(&out, meta, deadline, FalseHitSource::kProbe)) {
        return out;
      }
    }
    // Timeouts and all-miss answers both fall back to local execution; the
    // probe was an optimization, not a dependency.
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  out.outcome = LookupOutcome::kMissMustExecute;
  return finish_miss(std::move(out), key.text, deadline);
}

bool CacheManager::fetch_hit_from(LookupResult* out, const EntryMeta& meta,
                                  const Deadline* deadline,
                                  FalseHitSource source) {
  if (bus_ == nullptr) return false;
  auto remote = deadline != nullptr && !deadline->unlimited()
                    ? bus_->fetch_remote(meta.owner, meta.key,
                                         deadline->budget_ms(0))
                    : bus_->fetch_remote(meta.owner, meta.key);
  if (remote) {
    remote_hits_.fetch_add(1, std::memory_order_relaxed);
    out->outcome = LookupOutcome::kHit;
    out->result = std::move(remote.value());
    out->remote = true;
    out->owner = meta.owner;
    return true;
  }
  if (remote.status().code() == StatusCode::kNotFound) {
    // False hit (§4.2): the entry was deleted at the caching node before
    // the directory caught up. Execute locally, per Figure 2.
    false_hits_.fetch_add(1, std::memory_order_relaxed);
    switch (source) {
      case FalseHitSource::kLocalTable:
        directory_->apply_erase(meta.owner, meta.key);
        break;
      case FalseHitSource::kRingOwner: {
        directory_->apply_erase(meta.owner, meta.key);
        const NodeId owner_node = ring_owner_of(meta.key);
        if (owner_node != self_) {
          bus_->send_owner_erase(owner_node, meta.owner, meta.key, 0);
        }
        break;
      }
      case FalseHitSource::kProbe:
        break;  // no durable record to clean up
    }
  } else {
    // Timeout, dead peer, torn connection: degrade gracefully by running
    // the CGI locally instead of failing the client request.
    fallback_executions_.fetch_add(1, std::memory_order_relaxed);
    SWALA_LOG(Warn) << "remote fetch from node " << meta.owner << " failed ("
                    << remote.status().to_string()
                    << "); falling back to local execution";
  }
  return false;
}

bool CacheManager::probe_dir_owner(LookupResult* out, NodeId owner_node,
                                   const std::string& key,
                                   const Deadline* deadline) {
  if (bus_ == nullptr || owner_node == self_ ||
      directory_->quarantined(owner_node)) {
    return false;
  }
  remote_dir_lookups_.fetch_add(1, std::memory_order_relaxed);
  const int budget = deadline != nullptr && !deadline->unlimited()
                         ? deadline->budget_ms(0)
                         : 0;
  auto entry = bus_->lookup_at_owner(owner_node, key, budget);
  if (entry && entry.value().owner != self_) {
    remote_dir_hits_.fetch_add(1, std::memory_order_relaxed);
    EntryMeta meta = std::move(entry.value());
    meta.key = key;  // defend against a lying/mis-keyed answer
    return fetch_hit_from(out, meta, deadline, FalseHitSource::kRingOwner);
  }
  if (entry) {
    // The owner advertises *us* as the caching node, but our store just
    // said no: a stale record (our erase is still in flight, or was
    // lost). Nudge the owner; the unversioned erase is the same weak-
    // consistency tradeoff as the replicated false-hit cleanup.
    bus_->send_owner_erase(owner_node, self_, key, 0);
  } else if (entry.status().code() != StatusCode::kNotFound) {
    fallback_executions_.fetch_add(1, std::memory_order_relaxed);
    SWALA_LOG(Warn) << "directory lookup at owner " << owner_node
                    << " failed (" << entry.status().to_string()
                    << "); falling back to local execution";
  }
  return false;
}

NodeId CacheManager::ring_owner_of(const std::string& key) const {
  if (options_.directory_mode != DirectoryMode::kPartitioned) return self_;
  std::shared_lock lock(membership_mutex_);
  const auto owner = ring_.owner_of(key);
  return owner == HashRing::kNoOwner ? self_ : static_cast<NodeId>(owner);
}

NodeId CacheManager::prev_ring_owner_of(const std::string& key) const {
  if (options_.directory_mode != DirectoryMode::kPartitioned) return self_;
  std::shared_lock lock(membership_mutex_);
  if (!prev_ring_) {
    // No window open: report the *current* owner so the caller's
    // prev != current comparison reads "no dual read needed".
    const auto owner = ring_.owner_of(key);
    return owner == HashRing::kNoOwner ? self_ : static_cast<NodeId>(owner);
  }
  const auto owner = prev_ring_->owner_of(key);
  return owner == HashRing::kNoOwner ? self_ : static_cast<NodeId>(owner);
}

std::optional<EntryMeta> CacheManager::answer_query(
    const std::string& key) const {
  if (options_.directory_mode == DirectoryMode::kQuery) {
    return directory_->lookup_at(self_, key);
  }
  return directory_->lookup(key);
}

void CacheManager::announce_insert(const EntryMeta& meta) {
  if (bus_ == nullptr) return;
  // A node that is not (yet) a member of its own view serves stand-alone:
  // no directory chatter until the join protocol admits it. Peers would
  // wipe its table on admission anyway (member_joined clears it);
  // adopt_membership re-announces the resident store at that point.
  if (!is_member(self_)) return;
  switch (options_.directory_mode) {
    case DirectoryMode::kReplicated:
      bus_->broadcast_insert(meta);
      break;
    case DirectoryMode::kPartitioned: {
      const NodeId owner = ring_owner_of(meta.key);
      if (owner != self_) bus_->send_owner_insert(owner, meta);
      break;
    }
    case DirectoryMode::kQuery:
      break;  // no remote directory state to keep current
  }
}

bool CacheManager::announce_erase(const std::string& key,
                                  std::uint64_t version) {
  if (bus_ == nullptr) return false;
  if (!is_member(self_)) return false;  // stand-alone until admitted
  switch (options_.directory_mode) {
    case DirectoryMode::kReplicated:
      bus_->broadcast_erase(self_, key, version);
      return true;
    case DirectoryMode::kPartitioned: {
      const NodeId owner = ring_owner_of(key);
      if (owner == self_) return false;
      bus_->send_owner_erase(owner, self_, key, version);
      return true;
    }
    case DirectoryMode::kQuery:
      return false;
  }
  return false;
}

LookupResult CacheManager::finish_miss(LookupResult out, const std::string& key,
                                       const Deadline* deadline) {
  // Plain lookups keep the legacy contract: every miss executes, and
  // callers are not required to call complete()/fail() (the simulator and
  // several tests rely on that). Single-flight only engages when the
  // caller opted into the deadline-aware path.
  if (deadline == nullptr) return out;

  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    // Negative cache: a recent execution failure for this key is remembered;
    // fail fast instead of re-forking a CGI that just failed.
    if (auto it = negative_.find(key); it != negative_.end()) {
      if (clock_ != nullptr && clock_->now() < it->second.expires) {
        failed_fast_.fetch_add(1, std::memory_order_relaxed);
        out.outcome = LookupOutcome::kFailedFast;
        out.fail_status = it->second.status;
        out.fail_reason = it->second.reason;
        return out;
      }
      negative_.erase(it);
    }
    auto [it, inserted] =
        inflight_.try_emplace(key, nullptr);
    if (inserted) {
      it->second = std::make_shared<InFlight>();
      return out;  // leader: kMissMustExecute; MUST complete() or fail()
    }
    flight = it->second;
  }

  // Waiter: block on the leader's flight (its own mutex/cv — never the map
  // mutex) until it publishes or our own deadline runs out. Short slices so
  // a ManualClock advanced by a test is noticed without real time passing.
  std::unique_lock<std::mutex> lock(flight->mutex);
  while (!flight->done) {
    if (deadline->expired()) {
      coalesce_timeouts_.fetch_add(1, std::memory_order_relaxed);
      out.outcome = LookupOutcome::kFailedFast;
      out.fail_status = 503;
      out.fail_reason = "deadline expired waiting for in-flight execution";
      return out;
    }
    const int slice_ms =
        deadline->unlimited() ? 50 : std::min(50, deadline->budget_ms(50));
    flight->cv.wait_for(lock, std::chrono::milliseconds(slice_ms));
  }

  coalesced_misses_.fetch_add(1, std::memory_order_relaxed);
  if (!flight->success) {
    out.outcome = LookupOutcome::kFailedFast;
    out.fail_status = flight->fail_status;
    out.fail_reason = flight->fail_reason;
    return out;
  }
  out.outcome = LookupOutcome::kHit;
  out.coalesced = true;
  out.owner = self_;
  out.result.meta.key = key;
  out.result.meta.owner = self_;
  out.result.meta.content_type = flight->output.content_type;
  out.result.meta.http_status = flight->output.http_status;
  out.result.meta.size_bytes = flight->output.size_bytes();
  out.result.data = flight->output.body;
  return out;
}

void CacheManager::publish_execution(const std::string& key, bool success,
                                     const cgi::CgiOutput* output,
                                     int fail_status,
                                     const std::string& fail_reason) {
  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;  // no single-flight leader for key
    flight = std::move(it->second);
    inflight_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->success = success;
    if (success && output != nullptr) {
      flight->output = *output;
    } else {
      flight->fail_status = fail_status;
      flight->fail_reason = fail_reason;
    }
  }
  flight->cv.notify_all();
}

void CacheManager::record_negative(const std::string& key, int status,
                                   const std::string& reason) {
  if (options_.negative_ttl_seconds <= 0.0 || clock_ == nullptr) return;
  NegativeEntry entry;
  entry.expires =
      clock_->now() + from_seconds(options_.negative_ttl_seconds);
  entry.status = status;
  entry.reason = reason;
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  negative_[key] = std::move(entry);
}

void CacheManager::prune_negative() {
  if (clock_ == nullptr) return;
  const TimeNs now = clock_->now();
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  for (auto it = negative_.begin(); it != negative_.end();) {
    it = now >= it->second.expires ? negative_.erase(it) : std::next(it);
  }
}

void CacheManager::fail(http::Method method, const http::Uri& uri,
                        const RuleDecision& rule, int http_status,
                        const std::string& reason, bool remember) {
  if (!rule.cacheable) return;
  const CacheKey key = key_for(method, uri);
  if (remember) {
    failed_exec_.fetch_add(1, std::memory_order_relaxed);
    record_negative(key.text, http_status, reason);
  }
  publish_execution(key.text, /*success=*/false, nullptr, http_status, reason);
}

void CacheManager::complete(http::Method method, const http::Uri& uri,
                            const RuleDecision& rule,
                            const cgi::CgiOutput& output,
                            double exec_seconds) {
  if (!rule.cacheable) return;
  const CacheKey key = key_for(method, uri);
  if (!output.success || output.http_status >= 400) {
    failed_exec_.fetch_add(1, std::memory_order_relaxed);
    // Remember the failure so the next misses within negative_ttl fail
    // fast, and hand waiters the error rather than the cached-path result.
    record_negative(key.text,
                    output.http_status >= 400 ? output.http_status : 502,
                    "CGI execution failed");
    publish_execution(key.text, /*success=*/false, nullptr,
                      output.http_status >= 400 ? output.http_status : 502,
                      "CGI execution failed");
    return;
  }
  // Waiters get the output even when it is too fast to cache or the store
  // is degraded — the execution succeeded, so coalesced requests must not
  // see an error. Published before any early return below.
  publish_execution(key.text, /*success=*/true, &output, 0, {});
  if (exec_seconds < rule.min_exec_seconds) {
    below_threshold_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Leaving the cluster: the decommission handoff snapshot must not race
  // fresh inserts into the departing store (the response still went out).
  if (decommissioning_.load(std::memory_order_relaxed)) return;

  // Disk gone bad: serve uncacheable instead of hammering a failing device
  // on every request (the response itself was already produced).
  if (degraded_should_skip()) {
    degraded_skips_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Commit section: the store insert, the eviction victims' directory
  // erases, the new entry's directory insert, and all broadcast enqueues
  // publish as one unit. The victims' versions are read and applied inside
  // the same section, so a concurrent re-insert of a victim key cannot be
  // erased with a stale version.
  std::lock_guard<std::mutex> commit(commit_mutex_);
  std::vector<EntryMeta> evicted;
  auto inserted =
      store_->insert(key, output.body, exec_seconds, rule.ttl_seconds,
                     output.content_type, output.http_status, &evicted);

  for (const auto& victim : evicted) {
    directory_->apply_erase(self_, victim.key, victim.version);
    if (announce_erase(victim.key, victim.version)) {
      evictions_broadcast_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  record_insert_outcome(!inserted &&
                        inserted.status().code() == StatusCode::kIoError);
  if (!inserted) {
    SWALA_LOG(Debug) << "insert rejected: " << inserted.status().to_string();
    if (!evicted.empty()) ++commit_seq_;
    return;
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  directory_->apply_insert(inserted.value());
  announce_insert(inserted.value());
  ++commit_seq_;
}

void CacheManager::retire_dead_entry(const std::string& key) {
  std::lock_guard<std::mutex> commit(commit_mutex_);
  // Re-validate: another thread may have replaced the entry between our
  // failed fetch and this commit section. peek() hides expired entries, so
  // a live meta means a fresh re-insert we must not disturb.
  if (store_->peek(key).has_value()) return;
  const auto dead = store_->erase(key);
  directory_->apply_erase(self_, key, dead ? dead->version : 0);
  if (dead) announce_erase(key, dead->version);
  ++commit_seq_;
}

void CacheManager::on_peer_insert(const EntryMeta& meta) {
  if (meta.owner == self_) return;  // our own broadcast echoed back
  // False-miss evidence (§4.2): if we also cached this key locally, both
  // nodes executed the same request — one execution was avoidable.
  if (store_->contains(meta.key)) {
    false_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  directory_->apply_insert(meta);
}

void CacheManager::on_peer_erase(NodeId owner, const std::string& key,
                                 std::uint64_t version) {
  if (owner == self_) return;
  directory_->apply_erase(owner, key, version);
}

Result<CachedResult> CacheManager::serve_peer_fetch(const std::string& key) {
  auto local = store_->fetch(key);
  if (!local) {
    return Status(StatusCode::kNotFound, "not cached here: " + key);
  }
  directory_->apply_touch(self_, key, local->meta.last_access);
  return std::move(*local);
}

std::size_t CacheManager::purge_expired() {
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> commit(commit_mutex_);
    const auto purged = store_->purge_expired();
    for (const auto& meta : purged) {
      directory_->apply_erase(self_, meta.key, meta.version);
      announce_erase(meta.key, meta.version);
    }
    if (!purged.empty()) ++commit_seq_;
    count = purged.size();
  }
  // Outside the commit mutex: a slow disk during the checkpoint must not
  // stall request threads (the store serializes itself internally).
  maybe_checkpoint();
  prune_negative();
  // A run of erase (unlink) failures is the same dying-disk signal as a run
  // of put failures — feed it into the degradation path so leaked space
  // from failed unlinks can't accumulate unnoticed. The existing probe
  // inserts recover the store once the disk heals.
  if (!degraded_.load(std::memory_order_relaxed) &&
      options_.disk_failure_threshold > 0 &&
      store_->storage_counters().consecutive_erase_failures >=
          static_cast<std::uint64_t>(options_.disk_failure_threshold)) {
    if (!degraded_.exchange(true, std::memory_order_relaxed)) {
      SWALA_LOG(Error) << "node " << self_
                       << ": repeated erase failures; cache store degraded "
                          "to serve-uncacheable mode";
    }
  }
  return count;
}

bool CacheManager::degraded_should_skip() {
  if (!degraded_.load(std::memory_order_relaxed)) return false;
  const auto n = degraded_attempts_.fetch_add(1, std::memory_order_relaxed);
  const int every = options_.degraded_probe_every > 0
                        ? options_.degraded_probe_every
                        : 1;
  return n % static_cast<std::uint64_t>(every) != 0;  // probe occasionally
}

void CacheManager::record_insert_outcome(bool io_failure) {
  if (!io_failure) {
    consecutive_put_failures_.store(0, std::memory_order_relaxed);
    if (degraded_.exchange(false, std::memory_order_relaxed)) {
      SWALA_LOG(Info) << "node " << self_
                      << ": cache store recovered; caching re-enabled";
    }
    return;
  }
  disk_errors_.fetch_add(1, std::memory_order_relaxed);
  const int failures =
      consecutive_put_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= options_.disk_failure_threshold &&
      !degraded_.exchange(true, std::memory_order_relaxed)) {
    SWALA_LOG(Error) << "node " << self_ << ": " << failures
                     << " consecutive disk failures; cache store degraded to "
                        "serve-uncacheable mode";
  }
}

void CacheManager::maybe_checkpoint() {
  if (options_.state_file.empty()) return;
  // The purge daemon can tick before the warm restore; checkpointing then
  // would overwrite the manifest the restore is about to read.
  if (restore_pending_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(durability_mutex_);
    const TimeNs now = clock_->now();
    if (last_checkpoint_time_ != 0 &&
        to_seconds(now - last_checkpoint_time_) <
            options_.checkpoint_interval_seconds) {
      return;
    }
    last_checkpoint_time_ = now;
  }
  if (auto st = store_->save_manifest(options_.state_file); st.is_ok()) {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
  } else {
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    SWALA_LOG(Warn) << "manifest checkpoint failed: " << st.to_string();
  }
}

std::size_t CacheManager::invalidate(const std::string& pattern) {
  return apply_invalidation(pattern, /*rebroadcast=*/true, self_, 0);
}

std::size_t CacheManager::on_peer_invalidate(const std::string& pattern) {
  return apply_invalidation(pattern, /*rebroadcast=*/false, kInvalidNode, 0);
}

std::size_t CacheManager::on_peer_invalidate(const std::string& pattern,
                                             NodeId origin,
                                             std::uint64_t epoch) {
  return apply_invalidation(pattern, /*rebroadcast=*/false, origin, epoch);
}

void CacheManager::on_peer_dead(NodeId peer) {
  if (peer == self_) return;
  directory_->set_quarantined(peer, true);
  SWALA_LOG(Warn) << "node " << self_ << ": peer " << peer
                  << " declared dead; directory table quarantined";
}

void CacheManager::on_peer_recovered(NodeId peer) {
  if (peer == self_) return;
  const auto dropped = directory_->clear_table(peer);
  directory_->set_quarantined(peer, false);
  SWALA_LOG(Info) << "node " << self_ << ": peer " << peer
                  << " recovered; dropped " << dropped
                  << " stale directory entries pending resync";
}

// ---- Dynamic membership (PR10) ----

std::uint64_t CacheManager::membership_epoch() const {
  return membership_epoch_.load(std::memory_order_relaxed);
}

std::vector<NodeId> CacheManager::active_members() const {
  std::shared_lock lock(membership_mutex_);
  return members_;
}

bool CacheManager::is_member(NodeId node) const {
  std::shared_lock lock(membership_mutex_);
  return std::binary_search(members_.begin(), members_.end(), node);
}

CacheManager::HandoffStats CacheManager::member_joined(NodeId node) {
  HandoffStats stats;
  bool changed = false;
  bool ring_changed = false;
  HashRing old_ring(options_.ring_seed, options_.ring_vnodes);
  HashRing new_ring(options_.ring_seed, options_.ring_vnodes);
  {
    std::unique_lock lock(membership_mutex_);
    const auto pos = std::lower_bound(members_.begin(), members_.end(), node);
    if (pos == members_.end() || *pos != node) {
      members_.insert(pos, node);
      changed = true;
    }
    if (options_.directory_mode == DirectoryMode::kPartitioned &&
        !ring_.contains(node)) {
      old_ring = ring_;
      prev_ring_ = ring_;  // open the dual-read window
      ring_.add_node(node);
      new_ring = ring_;
      changed = ring_changed = true;
    }
  }
  if (!changed) return stats;
  membership_epoch_.fetch_add(1, std::memory_order_relaxed);
  membership_transitions_.fetch_add(1, std::memory_order_relaxed);
  if (node != self_) {
    // Drop any stale state from a previous life of this slot; a joining
    // member must not start its new life quarantined.
    directory_->clear_table(node);
    directory_->set_quarantined(node, false);
  }
  if (ring_changed) stats = reannounce_remapped(old_ring, new_ring);
  SWALA_LOG(Info) << "node " << self_ << ": member " << node
                  << " joined (epoch " << membership_epoch() << "); forwarded "
                  << stats.records + stats.entries << " remapped records";
  return stats;
}

CacheManager::HandoffStats CacheManager::member_left(NodeId node) {
  HandoffStats stats;
  if (node == self_) return stats;  // self-removal goes via decommission
  bool changed = false;
  bool ring_changed = false;
  HashRing old_ring(options_.ring_seed, options_.ring_vnodes);
  HashRing new_ring(options_.ring_seed, options_.ring_vnodes);
  {
    std::unique_lock lock(membership_mutex_);
    const auto pos = std::lower_bound(members_.begin(), members_.end(), node);
    if (pos != members_.end() && *pos == node) {
      members_.erase(pos);
      changed = true;
    }
    if (options_.directory_mode == DirectoryMode::kPartitioned &&
        ring_.contains(node)) {
      old_ring = ring_;
      prev_ring_ = ring_;  // open the dual-read window
      ring_.remove_node(node);
      new_ring = ring_;
      changed = ring_changed = true;
    }
  }
  if (!changed) return stats;
  membership_epoch_.fetch_add(1, std::memory_order_relaxed);
  membership_transitions_.fetch_add(1, std::memory_order_relaxed);
  // Graceful leave, not death: clear the table without quarantining (the
  // leaver handed its state off; quarantine is the unplanned-death path).
  directory_->clear_table(node);
  directory_->set_quarantined(node, false);
  if (ring_changed) stats = reannounce_remapped(old_ring, new_ring);
  SWALA_LOG(Info) << "node " << self_ << ": member " << node
                  << " left (epoch " << membership_epoch() << "); forwarded "
                  << stats.records + stats.entries << " remapped records";
  return stats;
}

void CacheManager::adopt_membership(std::uint64_t epoch,
                                    const std::vector<NodeId>& members) {
  std::vector<NodeId> sorted(members);
  sorted.push_back(self_);  // whatever the responder says, we exist
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  bool changed = false;
  {
    std::unique_lock lock(membership_mutex_);
    if (sorted != members_) {
      if (options_.directory_mode == DirectoryMode::kPartitioned) {
        prev_ring_ = ring_;  // dual read across the adopted change
        HashRing fresh(options_.ring_seed, options_.ring_vnodes);
        for (const NodeId n : sorted) fresh.add_node(n);
        ring_ = std::move(fresh);
      }
      members_ = std::move(sorted);
      changed = true;
    }
  }
  // Advance to at least the responder's epoch: we were not around for the
  // transitions it already applied.
  auto current = membership_epoch_.load(std::memory_order_relaxed);
  while (epoch > current &&
         !membership_epoch_.compare_exchange_weak(current, epoch,
                                                  std::memory_order_relaxed)) {
  }
  if (changed) {
    membership_transitions_.fetch_add(1, std::memory_order_relaxed);
    // Introduce the local cache to the adopted cluster. Entries cached
    // while stand-alone (or under the old view) have no records at the
    // new directory owners — and peers wiped this node's table on
    // admission — so without this they would be invisible forever.
    std::size_t announced = 0;
    if (bus_ != nullptr) {
      for (const auto& meta : store_->resident_metas()) {
        announce_insert(meta);
        ++announced;
      }
    }
    handoff_records_sent_.fetch_add(announced, std::memory_order_relaxed);
    SWALA_LOG(Info) << "node " << self_ << ": adopted membership view ("
                    << members.size() << " members, epoch " << epoch
                    << "); announced " << announced << " resident entries";
  }
}

void CacheManager::begin_decommission() {
  if (!decommissioning_.exchange(true, std::memory_order_relaxed)) {
    SWALA_LOG(Info) << "node " << self_
                    << ": decommissioning; new inserts suspended";
  }
}

bool CacheManager::decommissioning() const {
  return decommissioning_.load(std::memory_order_relaxed);
}

NodeId CacheManager::successor_for(const std::string& key) const {
  std::shared_lock lock(membership_mutex_);
  if (options_.directory_mode == DirectoryMode::kPartitioned) {
    HashRing reduced = ring_;
    reduced.remove_node(self_);
    const auto owner = reduced.owner_of(key);
    return owner == HashRing::kNoOwner ? self_ : static_cast<NodeId>(owner);
  }
  // Replicated/query: deterministic key-hash spread over the survivors.
  std::size_t others = 0;
  for (const NodeId n : members_) {
    if (n != self_) ++others;
  }
  if (others == 0) return self_;
  std::size_t index = mix64(fnv1a64(key)) % others;
  for (const NodeId n : members_) {
    if (n == self_) continue;
    if (index-- == 0) return n;
  }
  return self_;  // unreachable
}

CacheManager::HandoffStats CacheManager::handoff_state(
    std::uint64_t batch_bytes) {
  HandoffStats stats;
  if (bus_ == nullptr) return stats;
  // Successor placement under the ring with self removed, computed once
  // (partitioned); replicated/query fall back to successor_for's key-hash
  // spread. begin_decommission already stopped inserts, so the snapshot
  // only races expiry (fetch() re-checks and skips).
  std::optional<HashRing> reduced;
  if (options_.directory_mode == DirectoryMode::kPartitioned) {
    std::shared_lock lock(membership_mutex_);
    reduced = ring_;
  }
  if (reduced) reduced->remove_node(self_);
  const auto successor = [&](const std::string& key) {
    if (!reduced) return successor_for(key);
    const auto owner = reduced->owner_of(key);
    return owner == HashRing::kNoOwner ? self_ : static_cast<NodeId>(owner);
  };
  for (const auto& meta : store_->resident_metas()) {
    const NodeId succ = successor(meta.key);
    if (succ == self_) continue;  // no survivor to take it
    auto cached = store_->fetch(meta.key);
    if (!cached) continue;  // expired between snapshot and read
    if (batch_bytes != 0 && cached->data.size() > batch_bytes) {
      SWALA_LOG(Warn) << "decommission: dropping " << meta.key
                      << " (body exceeds cluster.handoff_batch_bytes)";
      continue;
    }
    bus_->send_handoff(succ, cached->meta, cached->data);
    ++stats.entries;
  }
  if (reduced) {
    // Forward the directory partition this node owns to its post-removal
    // owners. Records pointing at our own (departing) cache are skipped:
    // those entries shipped above, and the successors' adoptions
    // re-announce them with a live owner.
    for (NodeId t = 0; t < directory_->num_nodes(); ++t) {
      if (t == self_) continue;
      for (const auto& meta : directory_->metas_at(t)) {
        if (ring_owner_of(meta.key) != self_) continue;  // not our partition
        const auto owner = reduced->owner_of(meta.key);
        if (owner == HashRing::kNoOwner) continue;
        const NodeId to = static_cast<NodeId>(owner);
        if (to == self_) continue;
        bus_->send_owner_insert(to, meta);
        ++stats.records;
      }
    }
  }
  handoff_entries_sent_.fetch_add(stats.entries, std::memory_order_relaxed);
  handoff_records_sent_.fetch_add(stats.records, std::memory_order_relaxed);
  SWALA_LOG(Info) << "node " << self_ << ": handed off " << stats.entries
                  << " entries and " << stats.records
                  << " directory records to successors";
  return stats;
}

bool CacheManager::adopt_entry(const EntryMeta& meta, const std::string& body) {
  if (decommissioning_.load(std::memory_order_relaxed)) return false;
  double ttl = 0.0;
  if (meta.expire_time != 0) {
    if (clock_ == nullptr) return false;
    ttl = to_seconds(meta.expire_time - clock_->now());
    if (ttl <= 0.0) return false;  // arrived already expired
  }
  if (degraded_should_skip()) {
    degraded_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> commit(commit_mutex_);
  // A live local entry wins: it is at least as fresh as the handed-off copy
  // (versions are per-store counters and do not compare across nodes).
  if (store_->peek(meta.key).has_value()) return false;
  CacheKey key;
  key.text = meta.key;
  std::vector<EntryMeta> evicted;
  auto inserted = store_->insert(key, body, meta.cost_seconds, ttl,
                                 meta.content_type, meta.http_status,
                                 &evicted);
  for (const auto& victim : evicted) {
    directory_->apply_erase(self_, victim.key, victim.version);
    if (announce_erase(victim.key, victim.version)) {
      evictions_broadcast_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  record_insert_outcome(!inserted &&
                        inserted.status().code() == StatusCode::kIoError);
  if (!inserted) {
    if (!evicted.empty()) ++commit_seq_;
    return false;
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  handoff_entries_adopted_.fetch_add(1, std::memory_order_relaxed);
  directory_->apply_insert(inserted.value());
  announce_insert(inserted.value());
  ++commit_seq_;
  return true;
}

void CacheManager::finish_ring_transition() {
  std::unique_lock lock(membership_mutex_);
  prev_ring_.reset();
}

bool CacheManager::ring_transition_active() const {
  std::shared_lock lock(membership_mutex_);
  return prev_ring_.has_value();
}

std::uint64_t CacheManager::ring_version() const {
  std::shared_lock lock(membership_mutex_);
  return ring_.version();
}

CacheManager::HandoffStats CacheManager::reannounce_remapped(
    const HashRing& old_ring, const HashRing& new_ring) {
  HandoffStats stats;
  if (bus_ == nullptr) return stats;
  const auto owner_in = [this](const HashRing& ring, const std::string& key) {
    const auto owner = ring.owner_of(key);
    return owner == HashRing::kNoOwner ? self_ : static_cast<NodeId>(owner);
  };
  // Cache-node side: re-announce own entries whose directory owner moved.
  // The stale record at the old owner is left in place — during the
  // dual-read window it is what keeps pre-transition readers hitting, and
  // afterwards it ages out via expiry / version-guarded erase.
  for (const auto& meta : store_->resident_metas()) {
    const NodeId from = owner_in(old_ring, meta.key);
    const NodeId to = owner_in(new_ring, meta.key);
    if (from == to || to == self_) continue;
    bus_->send_owner_insert(to, meta);
    ++stats.entries;
  }
  // Owner side: directory partition records held for *other* nodes' caches
  // that now belong to another owner (own entries are covered above).
  for (NodeId t = 0; t < directory_->num_nodes(); ++t) {
    if (t == self_) continue;
    for (const auto& meta : directory_->metas_at(t)) {
      if (owner_in(old_ring, meta.key) != self_) continue;
      const NodeId to = owner_in(new_ring, meta.key);
      if (to == self_) continue;
      bus_->send_owner_insert(to, meta);
      ++stats.records;
    }
  }
  handoff_records_sent_.fetch_add(stats.records + stats.entries,
                                  std::memory_order_relaxed);
  return stats;
}

std::size_t CacheManager::apply_invalidation(const std::string& pattern,
                                             bool rebroadcast, NodeId origin,
                                             std::uint64_t epoch) {
  std::lock_guard<std::mutex> commit(commit_mutex_);
  std::uint64_t stamped_epoch = epoch;
  if (rebroadcast) {
    // Locally originated: stamp the next epoch inside the commit section so
    // the epoch order matches the store-mutation order.
    stamped_epoch = inv_log_.originate(self_, pattern).epoch;
  } else if (epoch != 0) {
    InvalidationRecord rec;
    rec.origin = origin;
    rec.epoch = epoch;
    rec.pattern = pattern;
    if (!inv_log_.admit(rec)) return 0;  // replayed frame: exact no-op
  }
  const auto dropped = store_->erase_matching(pattern);
  directory_->erase_matching(pattern);
  if (rebroadcast && bus_ != nullptr) {
    bus_->broadcast_invalidate(pattern, stamped_epoch);
  }
  invalidations_.fetch_add(dropped.size(), std::memory_order_relaxed);
  ++commit_seq_;
  return dropped.size();
}

EpochVector CacheManager::inv_high_vector() const {
  return inv_log_.high_vector();
}

EpochVector CacheManager::inv_floor_vector() const {
  return inv_log_.floor_vector();
}

bool CacheManager::inv_behind(const EpochVector& peer_high) const {
  return inv_log_.behind(peer_high);
}

std::vector<InvalidationRecord> CacheManager::inv_entries_after(
    const EpochVector& floors, bool* truncated) const {
  return inv_log_.entries_after(floors, truncated);
}

std::size_t CacheManager::apply_inv_sync(
    const std::vector<InvalidationRecord>& entries, bool truncated) {
  std::size_t applied = 0;
  {
    std::lock_guard<std::mutex> commit(commit_mutex_);
    for (const auto& rec : entries) {
      if (rec.epoch == 0 || !inv_log_.admit(rec)) continue;  // replay: no-op
      const auto dropped = store_->erase_matching(rec.pattern);
      directory_->erase_matching(rec.pattern);
      // Announce the erases: survivors' peer tables were re-polluted by the
      // additions-only resync and must drop the stale records too.
      for (const auto& meta : dropped) {
        announce_erase(meta.key, meta.version);
      }
      ++applied;
      inv_epoch_gaps_repaired_.fetch_add(1, std::memory_order_relaxed);
      invalidations_.fetch_add(dropped.size(), std::memory_order_relaxed);
      stale_serves_prevented_.fetch_add(dropped.size(),
                                        std::memory_order_relaxed);
    }
    if (truncated) {
      // The peer's log evicted records we needed. Conservatively drop
      // everything cached before the gap rather than stay stale forever.
      const auto dropped = store_->erase_matching("*");
      directory_->erase_matching("*");
      for (const auto& meta : dropped) {
        announce_erase(meta.key, meta.version);
      }
      inv_overflow_purges_.fetch_add(1, std::memory_order_relaxed);
      invalidations_.fetch_add(dropped.size(), std::memory_order_relaxed);
      stale_serves_prevented_.fetch_add(dropped.size(),
                                        std::memory_order_relaxed);
    }
    if (applied > 0 || truncated) ++commit_seq_;
  }
  if (applied > 0) {
    SWALA_LOG(Info) << "node " << self_ << ": repaired " << applied
                    << " missed invalidation(s) via anti-entropy pull";
  }
  return applied;
}

namespace {

// Order-independent xor of mixed (key, version) terms: mix64 decorrelates
// the terms so a single-bit version bump flips ~half the digest bits.
std::uint64_t digest_of(
    const std::vector<std::pair<std::string, std::uint64_t>>& pairs) {
  std::uint64_t d = 0;
  for (const auto& [key, version] : pairs) {
    d ^= mix64(fnv1a64(key) ^ version * 0x9E3779B97F4A7C15ULL);
  }
  return d;
}

}  // namespace

std::uint64_t CacheManager::digest_for_peer(NodeId peer,
                                            std::size_t* entries) const {
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  switch (options_.directory_mode) {
    case DirectoryMode::kReplicated:
      // The peer mirrors our whole self table.
      pairs = directory_->key_versions_at(self_);
      break;
    case DirectoryMode::kPartitioned: {
      // The peer holds directory records for the subset of our store it
      // owns on the ring.
      for (auto& [key, version] : directory_->key_versions_at(self_)) {
        if (ring_owner_of(key) == peer) pairs.emplace_back(std::move(key),
                                                           version);
      }
      break;
    }
    case DirectoryMode::kQuery:
      break;  // query mode keeps no peer state to compare
  }
  if (entries != nullptr) *entries = pairs.size();
  return digest_of(pairs);
}

std::uint64_t CacheManager::digest_of_peer_table(NodeId peer,
                                                 std::size_t* entries) const {
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  switch (options_.directory_mode) {
    case DirectoryMode::kReplicated:
      pairs = directory_->key_versions_at(peer);
      break;
    case DirectoryMode::kPartitioned: {
      // Only the keys we own on the ring: a mis-routed kOwnerUpdate parked
      // in our table must not cause a persistent mismatch storm.
      for (auto& [key, version] : directory_->key_versions_at(peer)) {
        if (ring_owner_of(key) == self_) pairs.emplace_back(std::move(key),
                                                            version);
      }
      break;
    }
    case DirectoryMode::kQuery:
      break;
  }
  if (entries != nullptr) *entries = pairs.size();
  return digest_of(pairs);
}

Status CacheManager::save_state(const std::string& manifest_path) {
  return store_->save_manifest(manifest_path);
}

Result<std::size_t> CacheManager::restore_state(
    const std::string& manifest_path) {
  std::lock_guard<std::mutex> commit(commit_mutex_);
  auto restored = store_->load_manifest(manifest_path);
  if (!restored &&
      restored.status().code() != StatusCode::kNotFound) {
    // Unreadable or newer-format manifest: leave the directory contents
    // alone (no scrub — a rollback must not destroy a newer deployment's
    // files) and surface the error. restore_pending_ stays set, so this
    // process will never checkpoint over the manifest either.
    return restored.status();
  }
  restore_pending_.store(false, std::memory_order_relaxed);
  const std::size_t count = restored ? restored.value() : 0;
  for (const auto& meta : store_->resident_metas()) {
    directory_->apply_insert(meta);
    announce_insert(meta);
  }
  // fsck: corrupt files were quarantined during adoption; now drop orphans
  // (torn puts the crash cut off, entries skipped as expired) and temps.
  // Runs even when the manifest is missing, so a first boot over a dirty
  // directory comes up clean.
  const ScrubReport report = store_->scrub_backend();
  {
    std::lock_guard<std::mutex> lock(durability_mutex_);
    last_scrub_ = report;
  }
  SWALA_LOG(Info) << "restore_state: " << count << " entries restored, "
                  << report.quarantined << " quarantined, "
                  << report.orphans_removed << " orphans and "
                  << report.temps_removed << " temp files removed";
  ++commit_seq_;
  if (!restored) return restored.status();  // kNotFound: scrubbed, 0 restored
  return restored;
}

ScrubReport CacheManager::last_scrub() const {
  std::lock_guard<std::mutex> lock(durability_mutex_);
  return last_scrub_;
}

ConsistencyReport CacheManager::debug_check_consistency() const {
  std::lock_guard<std::mutex> commit(commit_mutex_);
  return check_store_directory_consistency(*store_, *directory_);
}

std::uint64_t CacheManager::commit_sequence() const {
  std::lock_guard<std::mutex> commit(commit_mutex_);
  return commit_seq_;
}

ManagerStats CacheManager::stats() const {
  ManagerStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  s.local_hits = local_hits_.load(std::memory_order_relaxed);
  s.remote_hits = remote_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.below_threshold = below_threshold_.load(std::memory_order_relaxed);
  s.failed_exec = failed_exec_.load(std::memory_order_relaxed);
  s.false_hits = false_hits_.load(std::memory_order_relaxed);
  s.false_misses = false_misses_.load(std::memory_order_relaxed);
  s.evictions_broadcast = evictions_broadcast_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.fallback_executions = fallback_executions_.load(std::memory_order_relaxed);
  s.remote_dir_lookups = remote_dir_lookups_.load(std::memory_order_relaxed);
  s.remote_dir_hits = remote_dir_hits_.load(std::memory_order_relaxed);
  s.peer_queries = peer_queries_.load(std::memory_order_relaxed);
  s.peer_query_hits = peer_query_hits_.load(std::memory_order_relaxed);
  s.coalesced_misses = coalesced_misses_.load(std::memory_order_relaxed);
  s.coalesce_timeouts = coalesce_timeouts_.load(std::memory_order_relaxed);
  s.failed_fast = failed_fast_.load(std::memory_order_relaxed);
  s.disk_errors = disk_errors_.load(std::memory_order_relaxed);
  s.degraded_skips = degraded_skips_.load(std::memory_order_relaxed);
  s.store_degraded = degraded_.load(std::memory_order_relaxed) ? 1 : 0;
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.checkpoint_failures = checkpoint_failures_.load(std::memory_order_relaxed);
  s.inv_epoch_gaps_repaired =
      inv_epoch_gaps_repaired_.load(std::memory_order_relaxed);
  s.stale_serves_prevented =
      stale_serves_prevented_.load(std::memory_order_relaxed);
  s.inv_overflow_purges = inv_overflow_purges_.load(std::memory_order_relaxed);
  s.membership_transitions =
      membership_transitions_.load(std::memory_order_relaxed);
  s.handoff_records_sent =
      handoff_records_sent_.load(std::memory_order_relaxed);
  s.handoff_entries_sent =
      handoff_entries_sent_.load(std::memory_order_relaxed);
  s.handoff_entries_adopted =
      handoff_entries_adopted_.load(std::memory_order_relaxed);
  s.dual_read_probes = dual_read_probes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace swala::core
