// VolumeBackend: a log-structured, single-file alternative to DiskBackend.
//
// The paper's file-per-entry disk cache pays a create + write + fsync +
// rename + fsync(dir) round-trip per insert and exhausts inodes and
// directory-scan time long before the "millions of users" target. The
// volume store instead preallocates ONE large file, divides it into
// fixed-size segments, and batches inserts in an in-memory write buffer
// that is flushed sequentially with a single pwrite + fsync per flush
// group (trafficserver's cyclone cache is the exemplar).
//
// On-disk format (all integers little-endian, CRC-32C like the PR 3
// cache-file header):
//
//   segment header (32 bytes, at each slot boundary):
//     u32 magic "SWVS"  u32 version  u64 seq  u32 capacity  u32 reserved
//     u32 header_crc32c(first 24)  u32 pad
//   record header (48 bytes, records never cross a segment boundary):
//     u32 magic "SWVR"  u32 version  u64 seq(== segment seq)
//     u64 storage_id  u64 key_hash  u32 payload_len  u32 flags
//     u32 payload_crc32c  u32 header_crc32c(first 44)
//
// Segment seq numbers are ever-increasing, so a reused slot's stale
// records (old seq) are distinguishable from live ones without zeroing.
// Space is reclaimed by segment-granularity compaction: the sealed
// segment with the least live bytes has its live records re-appended
// through the normal buffered write path (copies become durable before
// the victim slot can be overwritten, because a slot is only reused
// after the single write buffer — which holds the copies — has flushed).
//
// Restart rebuilds the id → location index by a sequential segment walk
// ordered by seq: the torn tail of the highest-seq (open) segment is
// truncated at the last valid record; corrupt records in sealed segments
// are skipped (and counted) with a byte-wise magic resync. No per-entry
// file opens, no directory scan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/fs_ops.h"
#include "core/storage.h"

namespace swala::core {

constexpr std::uint32_t kVolumeSegmentMagic = 0x53565753;  // "SWVS" LE
constexpr std::uint32_t kVolumeRecordMagic = 0x52565753;   // "SWVR" LE
constexpr std::uint32_t kVolumeFormatVersion = 1;
constexpr std::size_t kVolumeSegmentHeaderSize = 32;
constexpr std::size_t kVolumeRecordHeaderSize = 48;

/// Tuning knobs, populated from the `[cache]` config section.
struct VolumeOptions {
  std::uint64_t volume_bytes = 0;  ///< total preallocated size; required
  std::uint64_t segment_bytes = 4ull << 20;        ///< compaction granularity
  std::uint64_t write_buffer_bytes = 256ull << 10; ///< flush-group target
  std::uint64_t flush_interval_ms = 100;  ///< max buffering delay (0 = every put)
};

class VolumeBackend final : public StorageBackend {
 public:
  /// Opens (or creates + preallocates) `<dir>/volume.swala` and rebuilds the
  /// index by the sequential recovery walk. `fs`/`clock` null = real ones.
  VolumeBackend(std::string dir, VolumeOptions options, FsOps* fs = nullptr,
                const Clock* clock = nullptr);
  ~VolumeBackend() override;

  using StorageBackend::put;
  Result<StorageId> put(std::string_view data, std::uint64_t key_hash) override;
  Result<std::string> get(StorageId id) override;
  void erase(StorageId id) override;
  std::uint64_t bytes_stored() const override;
  Status adopt(StorageId id, std::uint64_t size,
               std::uint64_t key_hash) override;
  void set_retain_on_destruction(bool retain) override {
    retain_.store(retain, std::memory_order_relaxed);
  }
  Status init_status() const override { return init_status_; }
  ScrubReport scrub() override;
  Status sync() override;
  StorageCounters counters() const override;
  FsOps* fs() const override { return fs_; }

  const std::string& dir() const { return dir_; }
  /// Path of the one volume file (tests corrupt it in place).
  std::string volume_path() const { return dir_ + "/volume.swala"; }
  /// Path of the sidecar index checkpoint written by sync().
  std::string index_path() const { return dir_ + "/volume.idx"; }

 private:
  enum class SegState : std::uint8_t { kFree, kOpen, kSealed, kDraining };

  struct Segment {
    SegState state = SegState::kFree;
    std::uint64_t seq = 0;
    std::uint64_t write_off = 0;   ///< next free byte within the slot
    std::uint64_t live_bytes = 0;  ///< header+payload bytes of live records
    int readers = 0;               ///< active preads; blocks reuse (pins)
  };

  /// Where a record lives: a disk slot, or kBufferSlot while still in the
  /// write buffer (readable from RAM before it is durable).
  static constexpr std::uint32_t kBufferSlot = 0xFFFFFFFFu;
  struct IndexEntry {
    std::uint32_t slot = 0;
    std::uint64_t offset = 0;  ///< absolute file offset of the record header
                               ///< (disk) or offset within the buffer
    std::uint32_t payload_len = 0;
    std::uint64_t key_hash = 0;
  };

  struct BufferedRec {
    StorageId id;
    std::uint64_t buf_off;
    std::uint32_t payload_len;
  };

  /// A record seen by the recovery walk, awaiting adopt()/scrub().
  struct RecoveredRec {
    std::uint32_t slot;
    std::uint64_t offset;  ///< absolute
    std::uint32_t payload_len;
    std::uint64_t key_hash;
    std::uint64_t seq;
  };

  std::uint64_t slot_base(std::uint32_t slot) const {
    return static_cast<std::uint64_t>(slot) * options_.segment_bytes;
  }

  // All helpers below require mutex_ held.
  Status ensure_fit_locked(std::uint64_t record_size);
  Status open_segment_locked();
  Status flush_locked();
  Status compact_locked();
  void append_record_locked(StorageId id, std::uint64_t key_hash,
                            std::string_view payload);
  void release_reader_locked(std::uint32_t slot);

  /// pread of [offset, offset+len) with retry; kIoError on failure.
  Status read_at(std::uint64_t offset, std::size_t len, char* out) const;

  void recover();  // constructor only, no locking needed
  void load_sidecar_index();

  std::string dir_;
  VolumeOptions options_;
  FsOps* fs_;
  const Clock* clock_;
  Status init_status_;
  int fd_ = -1;
  std::uint32_t slot_count_ = 0;

  mutable std::mutex mutex_;
  std::vector<Segment> segments_;
  std::unordered_map<StorageId, IndexEntry> index_;
  std::unordered_map<StorageId, RecoveredRec> recovered_;
  StorageId next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t bytes_ = 0;  ///< live payload bytes (bookkeeping)
  std::uint64_t dead_bytes_ = 0;

  /// The single write buffer, destined for the open segment at
  /// buffer_disk_base_. Holding one buffer (not a queue) is what orders
  /// compaction copies before any reuse of their source slot.
  std::string buffer_;
  std::vector<BufferedRec> buffered_;
  std::uint64_t buffer_disk_base_ = 0;
  std::uint32_t active_slot_ = kBufferSlot;  ///< kBufferSlot = none open
  TimeNs last_flush_ = 0;
  bool compacting_ = false;

  std::atomic<bool> retain_{false};

  // Counters (guarded by mutex_ where written on hot paths).
  std::uint64_t flushes_ = 0;
  std::uint64_t flushed_records_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t compacted_records_ = 0;
  std::uint64_t corrupt_records_skipped_ = 0;
  std::uint64_t torn_tail_truncated_ = 0;
  std::uint64_t index_mismatches_ = 0;
  std::uint64_t adopted_ = 0;
};

}  // namespace swala::core
