// Cache entry metadata: what the replicated global directory stores about
// every cached CGI result on every node.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/hash.h"

namespace swala::core {

/// Identifies a node within the server group (dense, 0-based).
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = ~NodeId{0};

/// Canonical cache key: "<METHOD> <canonical-target>". Two requests with the
/// same key are the same CGI invocation and may share a cached result.
struct CacheKey {
  std::string text;

  static CacheKey make(std::string_view method, std::string_view canonical_target) {
    CacheKey k;
    k.text.reserve(method.size() + 1 + canonical_target.size());
    k.text.append(method);
    k.text.push_back(' ');
    k.text.append(canonical_target);
    return k;
  }

  std::uint64_t hash() const { return fnv1a64(text); }
  bool operator==(const CacheKey&) const = default;
};

/// Directory-visible metadata for one cached entry.
struct EntryMeta {
  std::string key;            ///< CacheKey::text
  NodeId owner = kInvalidNode;
  std::uint64_t size_bytes = 0;
  double cost_seconds = 0.0;  ///< CGI execution time that the entry saves
  TimeNs insert_time = 0;
  TimeNs expire_time = 0;     ///< 0 = never expires
  TimeNs last_access = 0;
  std::uint64_t access_count = 0;
  std::string content_type = "text/html";
  int http_status = 200;
  /// Drawn from the owning store's monotonic counter at insert time; a
  /// re-insert of the same key always gets a strictly larger version, so
  /// version-guarded directory erases can never kill a newer entry.
  std::uint64_t version = 0;

  bool expired(TimeNs now) const { return expire_time != 0 && now >= expire_time; }
};

}  // namespace swala::core
