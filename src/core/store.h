// The local cache of one Swala node: entry metadata + stored result data +
// replacement policy + capacity enforcement. Thread-safe (one mutex; all
// operations are short — data I/O goes through the backend while holding it,
// matching the paper's single manager thread per node).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "core/entry.h"
#include "core/replacement.h"
#include "core/storage.h"

namespace swala::core {

/// Format version written in the manifest's header line. Bump when the line
/// layout changes; loaders refuse versions newer than they understand.
constexpr int kManifestFormatVersion = 1;

/// Capacity limits; 0 means unlimited on that axis.
struct StoreLimits {
  std::uint64_t max_entries = 2000;
  std::uint64_t max_bytes = 0;
};

/// Counters exposed for experiments.
struct StoreStats {
  std::uint64_t inserts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t rejected_too_large = 0;
};

/// A fetched cached result.
struct CachedResult {
  EntryMeta meta;
  std::string data;
};

class CacheStore {
 public:
  CacheStore(StoreLimits limits, PolicyKind policy,
             std::unique_ptr<StorageBackend> backend, const Clock* clock,
             NodeId owner);

  /// Inserts (or replaces) an entry. Evicts per policy until within limits;
  /// evicted entry metas are appended to `evicted` so the caller can
  /// broadcast deletions. Returns the inserted meta, or an error if the
  /// entry alone exceeds the byte limit.
  Result<EntryMeta> insert(const CacheKey& key, std::string_view data,
                           double cost_seconds, double ttl_seconds,
                           std::string content_type, int http_status,
                           std::vector<EntryMeta>* evicted);

  /// Looks up and reads an entry; updates access stats and the policy.
  /// Expired entries are treated as absent (but not removed; the purge
  /// daemon owns removal so deletions are always broadcast). Likewise an
  /// entry whose backing data vanished reads as a miss but stays resident:
  /// every membership change must go through the manager's commit protocol
  /// so the directory erase and broadcast happen with it.
  std::optional<CachedResult> fetch(std::string_view key);

  /// Metadata-only peek (no access-stat update).
  std::optional<EntryMeta> peek(std::string_view key) const;

  bool contains(std::string_view key) const { return peek(key).has_value(); }

  /// Removes an entry; returns its meta if it existed.
  std::optional<EntryMeta> erase(std::string_view key);

  /// Removes all expired entries and returns their metas (for broadcast).
  std::vector<EntryMeta> purge_expired();

  /// Removes every entry whose key matches a shell-style glob; returns the
  /// removed metas. Used by application-driven invalidation.
  std::vector<EntryMeta> erase_matching(std::string_view pattern);

  /// All keys currently stored (diagnostics, status pages).
  std::vector<std::string> keys() const;

  /// Metadata of every resident entry, including expired-but-unpurged ones
  /// (membership view; lets restore_state rebuild the directory in exact
  /// lockstep with the store).
  std::vector<EntryMeta> resident_metas() const;

  // ---- Warm restart (disk backend only) ----
  //
  // `save_manifest` writes entry metadata with *relative* timestamps (age,
  // remaining TTL, idle time) so the virtual clock's epoch does not leak
  // across processes, and marks the backend to retain its data files.
  // A later process constructed over the same disk directory calls
  // `load_manifest`, which re-adopts the files and rebases the timestamps
  // against its own clock.
  //
  // The manifest starts with a "swala-manifest <version>" header line and is
  // replaced atomically (temp → fsync → rename → fsync(dir)), so a crash
  // mid-checkpoint leaves the previous manifest intact and a manifest from a
  // newer format version is refused instead of misparsed.

  /// Persists the manifest; skips entries already expired.
  Status save_manifest(const std::string& path) const;

  /// Restores entries from a manifest. Entries whose data file is missing,
  /// corrupt (size/key-hash/CRC mismatch — corrupt files are quarantined by
  /// the backend) or already expired are skipped. Returns how many were
  /// restored; kUnavailable if the manifest's format version is newer than
  /// this build understands.
  Result<std::size_t> load_manifest(const std::string& path);

  /// Backend fsck after load_manifest: quarantine/orphan/temp cleanup.
  ScrubReport scrub_backend();

  /// Whether the storage backend constructed usably (cache dir exists).
  Status backend_init_status() const { return backend_->init_status(); }

  /// Removes everything.
  void clear();

  std::size_t entry_count() const;
  std::uint64_t bytes_used() const;
  StoreStats stats() const;
  const StoreLimits& limits() const { return limits_; }
  PolicyKind policy() const;

 private:
  struct Slot {
    EntryMeta meta;
    StorageId storage = 0;
  };

  /// Evicts until within limits assuming `incoming_bytes` are arriving.
  /// Caller holds mutex_.
  void make_room(std::uint64_t incoming_bytes, std::vector<EntryMeta>* evicted);

  /// Caller holds mutex_.
  void remove_locked(const std::string& key, bool count_eviction,
                     std::vector<EntryMeta>* out);

  StoreLimits limits_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<StorageBackend> backend_;
  const Clock* clock_;
  NodeId owner_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Slot> entries_;
  std::uint64_t bytes_used_ = 0;
  StoreStats stats_;
  /// Store-wide monotonic version source. Per-key versions drawn from it
  /// never regress, even across erase→re-insert of the same key, so a stale
  /// erase broadcast can always be recognized by peers (its version is
  /// smaller than the re-insert's).
  std::uint64_t version_counter_ = 0;
};

}  // namespace swala::core
