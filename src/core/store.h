// The local cache of one Swala node: entry metadata + stored result data +
// replacement policy + capacity enforcement. Thread-safe. The mutex guards
// metadata only — all blob I/O (backend put/get, manifest writes, unlinks)
// happens outside it. Readers pin an entry's storage with a refcount before
// reading, so eviction and purge can never unlink a file a concurrent fetch
// is still reading from: the last pin holder performs the deferred unlink.
// A byte-capped in-memory hot-blob cache sits above the backend; a blob is
// admitted on insert or on its first verified read and is then served from
// memory with no disk access and no checksum re-verification.
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "core/entry.h"
#include "core/replacement.h"
#include "core/storage.h"

namespace swala::core {

/// Format version written in the manifest's header line. Bump when the line
/// layout changes; loaders refuse versions newer than they understand.
constexpr int kManifestFormatVersion = 1;

/// Capacity limits; 0 means unlimited on that axis (except hot_bytes,
/// where 0 disables the hot-blob cache entirely).
struct StoreLimits {
  std::uint64_t max_entries = 2000;
  std::uint64_t max_bytes = 0;
  /// Capacity of the in-memory hot-blob cache (LRU over verified blobs).
  /// 0 disables it: every hit reads the backend (outside the mutex).
  std::uint64_t hot_bytes = 0;
};

/// Counters exposed for experiments.
struct StoreStats {
  std::uint64_t inserts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
  std::uint64_t rejected_too_large = 0;
  // ---- hot path ----
  std::uint64_t hot_hits = 0;    ///< hits served from the hot-blob cache
  std::uint64_t hot_misses = 0;  ///< hits that had to read the backend
  std::uint64_t hot_bytes = 0;   ///< current hot-blob residency (gauge)
  std::uint64_t pinned_entries = 0;  ///< readers inside a backend get (gauge)
};

/// A fetched cached result.
struct CachedResult {
  EntryMeta meta;
  std::string data;
};

class CacheStore {
 public:
  CacheStore(StoreLimits limits, PolicyKind policy,
             std::unique_ptr<StorageBackend> backend, const Clock* clock,
             NodeId owner);

  /// Inserts (or replaces) an entry. Evicts per policy until within limits;
  /// evicted entry metas are appended to `evicted` so the caller can
  /// broadcast deletions. Returns the inserted meta, or an error if the
  /// entry alone exceeds the byte limit.
  Result<EntryMeta> insert(const CacheKey& key, std::string_view data,
                           double cost_seconds, double ttl_seconds,
                           std::string content_type, int http_status,
                           std::vector<EntryMeta>* evicted);

  /// Looks up and reads an entry; updates access stats and the policy.
  /// Expired entries are treated as absent (but not removed; the purge
  /// daemon owns removal so deletions are always broadcast). Likewise an
  /// entry whose backing data vanished reads as a miss but stays resident:
  /// every membership change must go through the manager's commit protocol
  /// so the directory erase and broadcast happen with it.
  std::optional<CachedResult> fetch(std::string_view key);

  /// Metadata-only peek (no access-stat update).
  std::optional<EntryMeta> peek(std::string_view key) const;

  bool contains(std::string_view key) const { return peek(key).has_value(); }

  /// Removes an entry; returns its meta if it existed.
  std::optional<EntryMeta> erase(std::string_view key);

  /// Removes all expired entries and returns their metas (for broadcast).
  std::vector<EntryMeta> purge_expired();

  /// Removes every entry whose key matches a shell-style glob; returns the
  /// removed metas. Used by application-driven invalidation.
  std::vector<EntryMeta> erase_matching(std::string_view pattern);

  /// All keys currently stored (diagnostics, status pages).
  std::vector<std::string> keys() const;

  /// Metadata of every resident entry, including expired-but-unpurged ones
  /// (membership view; lets restore_state rebuild the directory in exact
  /// lockstep with the store).
  std::vector<EntryMeta> resident_metas() const;

  // ---- Warm restart (disk backend only) ----
  //
  // `save_manifest` writes entry metadata with *relative* timestamps (age,
  // remaining TTL, idle time) so the virtual clock's epoch does not leak
  // across processes, and marks the backend to retain its data files.
  // A later process constructed over the same disk directory calls
  // `load_manifest`, which re-adopts the files and rebases the timestamps
  // against its own clock.
  //
  // The manifest starts with a "swala-manifest <version>" header line and is
  // replaced atomically (temp → fsync → rename → fsync(dir)), so a crash
  // mid-checkpoint leaves the previous manifest intact and a manifest from a
  // newer format version is refused instead of misparsed.

  /// Persists the manifest; skips entries already expired. The manifest
  /// content is snapshotted under the mutex, but the disk write happens
  /// outside it so a slow checkpoint cannot stall the hit path.
  Status save_manifest(const std::string& path) const;

  /// Restores entries from a manifest. Entries whose data file is missing,
  /// corrupt (size/key-hash/CRC mismatch — corrupt files are quarantined by
  /// the backend) or already expired are skipped. Returns how many were
  /// restored; kUnavailable if the manifest's format version is newer than
  /// this build understands.
  Result<std::size_t> load_manifest(const std::string& path);

  /// Backend fsck after load_manifest: quarantine/orphan/temp cleanup.
  ScrubReport scrub_backend();

  /// Whether the storage backend constructed usably (cache dir exists).
  Status backend_init_status() const { return backend_->init_status(); }

  /// Backend operational counters (erase errors, flush/compaction/recovery
  /// stats) for the /swala-status durability object.
  StorageCounters storage_counters() const { return backend_->counters(); }

  /// Removes everything.
  void clear();

  std::size_t entry_count() const;
  std::uint64_t bytes_used() const;
  StoreStats stats() const;
  const StoreLimits& limits() const { return limits_; }
  PolicyKind policy() const;

 private:
  /// Refcounted handle to one entry's backing storage. Fetch copies the
  /// shared_ptr under the mutex and reads the backend outside it; removal
  /// marks the pin doomed and drops the store's reference. The last holder
  /// (a reader in flight, or the removal itself) erases the backend object
  /// from its destructor — always outside the store mutex.
  struct PinnedStorage {
    PinnedStorage(std::shared_ptr<StorageBackend> b, StorageId sid)
        : backend(std::move(b)), id(sid) {}
    ~PinnedStorage() {
      if (doomed.load(std::memory_order_acquire)) backend->erase(id);
    }
    PinnedStorage(const PinnedStorage&) = delete;
    PinnedStorage& operator=(const PinnedStorage&) = delete;

    std::shared_ptr<StorageBackend> backend;
    StorageId id = 0;
    std::atomic<bool> doomed{false};
  };
  using Pin = std::shared_ptr<PinnedStorage>;

  struct Slot {
    EntryMeta meta;
    Pin pin;
    /// Verified blob held in memory; null when not hot-resident.
    std::shared_ptr<const std::string> hot;
    /// Position in hot_lru_; valid only while `hot` is set.
    std::list<std::string>::iterator hot_it;
  };

  /// Evicts until within limits assuming `incoming_bytes` are arriving.
  /// Doomed pins are appended to `doomed` for destruction outside the
  /// mutex. Caller holds mutex_.
  void make_room(std::uint64_t incoming_bytes, std::vector<EntryMeta>* evicted,
                 std::vector<Pin>* doomed);

  /// Caller holds mutex_. The removed entry's pin is marked doomed and
  /// moved into `doomed`; the caller destroys it after unlocking so the
  /// unlink (or its deferral to a pinned reader) happens outside the lock.
  void remove_locked(const std::string& key, bool count_eviction,
                     std::vector<EntryMeta>* out, std::vector<Pin>* doomed);

  // ---- hot-blob cache (callers hold mutex_) ----
  void hot_admit_locked(const std::string& key, Slot* slot,
                        std::shared_ptr<const std::string> blob);
  void hot_touch_locked(Slot* slot);
  void hot_drop_locked(Slot* slot);

  StoreLimits limits_;
  std::unique_ptr<ReplacementPolicy> policy_;
  /// Shared so outstanding pins keep the backend alive even if a reader
  /// races store destruction.
  std::shared_ptr<StorageBackend> backend_;
  const Clock* clock_;
  NodeId owner_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Slot> entries_;
  std::uint64_t bytes_used_ = 0;
  StoreStats stats_;
  /// Hot-blob LRU: front = most recently used. Only keys whose slot holds a
  /// hot blob appear here.
  std::list<std::string> hot_lru_;
  std::uint64_t hot_bytes_used_ = 0;
  /// Readers currently inside an unlocked backend get (gauge for stats).
  std::atomic<std::uint64_t> active_pins_{0};
  /// Store-wide monotonic version source. Per-key versions drawn from it
  /// never regress, even across erase→re-insert of the same key, so a stale
  /// erase broadcast can always be recognized by peers (its version is
  /// smaller than the re-insert's).
  std::uint64_t version_counter_ = 0;
};

}  // namespace swala::core
