// Source-file dependency monitoring (§4.2 / related work [16]).
//
// The paper cites Vahdat & Anderson's Transparent Result Caching — monitor
// the inputs of the CGI programs whose output is cached and invalidate the
// cached results when a source changes — as the other invalidation method a
// future Swala would support. `DependencyMonitor` implements it: register
// (file, key-pattern) dependencies; `poll()` stats the files and triggers a
// cluster-wide invalidation for every pattern whose file changed. Run it
// from the purge daemon's cadence or any housekeeping thread.
#pragma once

#include <ctime>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/manager.h"

namespace swala::core {

class DependencyMonitor {
 public:
  /// `manager` receives the invalidations (cluster-wide via its bus).
  explicit DependencyMonitor(CacheManager* manager) : manager_(manager) {}

  /// Declares that cached entries whose key matches `key_pattern` (a
  /// shell-style glob over the full cache key) depend on `file_path`.
  /// The file's current state is the baseline; a missing file is a valid
  /// baseline (creation counts as a change).
  void watch(std::string file_path, std::string key_pattern);

  /// Re-stats every watched file. For each file whose mtime/size/existence
  /// changed since the last poll, invalidates its key pattern. Returns the
  /// number of cache entries dropped.
  std::size_t poll();

  /// Store↔directory cross-check on the monitored manager, so housekeeping
  /// threads can assert the mirror invariant on their cadence (same report
  /// as CacheManager::debug_check_consistency).
  ConsistencyReport debug_check_consistency() const;

  std::size_t watch_count() const;

 private:
  struct FileState {
    bool exists = false;
    std::time_t mtime = 0;
    std::uint64_t size = 0;

    bool operator==(const FileState&) const = default;
  };

  struct Watch {
    std::string path;
    std::string pattern;
    FileState last;
  };

  static FileState stat_file(const std::string& path);

  CacheManager* manager_;
  mutable std::mutex mutex_;
  std::vector<Watch> watches_;
};

}  // namespace swala::core
