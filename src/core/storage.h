// Storage backends for cached CGI results.
//
// The paper stores each cached result in its own operating-system file and
// keeps only the directory in main memory, relying on the UNIX buffer cache
// to keep hot files in RAM (§4.1). `DiskBackend` reproduces that design;
// `MemoryBackend` serves the simulator and unit tests.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace swala::core {

/// Opaque handle naming a stored result.
using StorageId = std::uint64_t;

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Persists `data` under a fresh id.
  virtual Result<StorageId> put(std::string_view data) = 0;

  /// Retrieves the full content for `id`.
  virtual Result<std::string> get(StorageId id) = 0;

  /// Removes `id`; idempotent.
  virtual void erase(StorageId id) = 0;

  /// Bytes currently stored (bookkeeping, not filesystem truth).
  virtual std::uint64_t bytes_stored() const = 0;

  /// Re-registers content persisted by an earlier process under the same
  /// id (warm restart). Default: unsupported.
  virtual Status adopt(StorageId id, std::uint64_t size) {
    (void)id;
    (void)size;
    return Status(StatusCode::kUnavailable, "backend cannot adopt");
  }

  /// When true, stored content survives destruction (so a later process
  /// can adopt it). Default: no-op (memory content cannot survive anyway).
  virtual void set_retain_on_destruction(bool retain) { (void)retain; }
};

/// Heap-backed storage for tests and the simulator.
class MemoryBackend final : public StorageBackend {
 public:
  Result<StorageId> put(std::string_view data) override;
  Result<std::string> get(StorageId id) override;
  void erase(StorageId id) override;
  std::uint64_t bytes_stored() const override { return bytes_; }

 private:
  std::unordered_map<StorageId, std::string> blobs_;
  StorageId next_id_ = 1;
  std::uint64_t bytes_ = 0;
};

/// One file per cached result under `dir` (created if absent), named
/// "swala-<id>.cache". Mirrors the paper's disk cache: every cache fetch is
/// a file fetch served from the OS buffer cache when hot.
class DiskBackend final : public StorageBackend {
 public:
  explicit DiskBackend(std::string dir);
  ~DiskBackend() override;

  Result<StorageId> put(std::string_view data) override;
  Result<std::string> get(StorageId id) override;
  void erase(StorageId id) override;
  std::uint64_t bytes_stored() const override { return bytes_; }
  Status adopt(StorageId id, std::uint64_t size) override;
  void set_retain_on_destruction(bool retain) override { retain_ = retain; }

  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(StorageId id) const;

  std::string dir_;
  StorageId next_id_ = 1;
  std::uint64_t bytes_ = 0;
  bool retain_ = false;
  std::unordered_map<StorageId, std::uint64_t> sizes_;
};

}  // namespace swala::core
