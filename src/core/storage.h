// Storage backends for cached CGI results.
//
// The paper stores each cached result in its own operating-system file and
// keeps only the directory in main memory, relying on the UNIX buffer cache
// to keep hot files in RAM (§4.1). `DiskBackend` reproduces that design;
// `MemoryBackend` serves the simulator and unit tests.
//
// Durability (beyond the paper): every cache file is self-describing — a
// fixed 32-byte header carrying magic, format version, the owning key's
// hash, the payload length and a CRC-32C of the payload — and is written
// atomically (temp file → write → fsync → rename → fsync(dir)). Torn writes
// and silent corruption therefore surface as kCorrupt errors on get/adopt
// instead of wrong bytes served to clients, and a crash can never leave a
// half-written file under a live name.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "core/fs_ops.h"

namespace swala::core {

/// Opaque handle naming a stored result.
using StorageId = std::uint64_t;

/// Cache-file header constants (little-endian, packed by hand so the layout
/// is identical across compilers):
///   u32 magic  u32 version  u64 key_hash  u64 payload_len
///   u32 payload_crc32c  u32 header_crc32c(first 28 bytes)
constexpr std::uint32_t kCacheFileMagic = 0x414C5753;  // "SWLA" little-endian
constexpr std::uint32_t kCacheFormatVersion = 1;
constexpr std::size_t kCacheHeaderSize = 32;

/// Serializes a header for `payload` owned by the entry hashing to
/// `key_hash`. Returns exactly kCacheHeaderSize bytes.
std::string encode_cache_header(std::uint64_t key_hash,
                                std::string_view payload);

/// Validates `file` (header + payload) against the expected key hash.
/// `expected_key_hash` of 0 skips the key check (unknown caller). Returns
/// the payload view into `file` on success, kCorrupt on any mismatch.
Result<std::string_view> verify_cache_file(std::string_view file,
                                           std::uint64_t expected_key_hash);

/// What the startup scrub (fsck) found and did in a cache directory.
struct ScrubReport {
  std::uint64_t adopted = 0;          ///< files referenced and verified
  std::uint64_t quarantined = 0;      ///< corrupt files renamed *.corrupt
  std::uint64_t orphans_removed = 0;  ///< unreferenced swala-*.cache unlinked
  std::uint64_t temps_removed = 0;    ///< leftover *.tmp unlinked
};

/// Operational counters every backend can report; surfaced through
/// `/swala-status`'s durability object. Fields irrelevant to a backend stay
/// zero (e.g. MemoryBackend reports all zeros, DiskBackend has no segments).
struct StorageCounters {
  const char* backend = "memory";     ///< "memory" | "files" | "volume"
  std::uint64_t erase_errors = 0;     ///< unlink/erase failures (leaked space)
  std::uint64_t consecutive_erase_failures = 0;  ///< degradation feed
  // Volume-store specific:
  std::uint64_t flushes = 0;             ///< write-buffer flush groups
  std::uint64_t flushed_records = 0;     ///< records made durable by flushes
  std::uint64_t compactions = 0;         ///< segments reclaimed
  std::uint64_t compacted_records = 0;   ///< live records relocated
  std::uint64_t corrupt_records_skipped = 0;  ///< recovery-walk CRC failures
  std::uint64_t torn_tail_truncated = 0;      ///< torn tails trimmed at open
  std::uint64_t index_mismatches = 0;    ///< sidecar-index disagreements
  std::uint64_t segments_total = 0;
  std::uint64_t segments_free = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t dead_bytes = 0;          ///< erased-but-unreclaimed bytes
};

/// Backends are internally thread-safe: the cache store issues puts, gets
/// and erases concurrently without holding its own mutex (pin/refcount
/// protocol), so each backend guards its bookkeeping itself and keeps the
/// actual data I/O outside its internal lock.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Persists `data` under a fresh id. `key_hash` identifies the owning
  /// cache key (CacheKey::hash()); durable backends bind it into the stored
  /// format so a mis-adopted or swapped file is detectable.
  virtual Result<StorageId> put(std::string_view data,
                                std::uint64_t key_hash) = 0;

  /// Convenience for callers without a key (tests, tools): hash 0 means
  /// "unknown", which skips the key-binding check on later verification.
  Result<StorageId> put(std::string_view data) { return put(data, 0); }

  /// Retrieves the full content for `id`, verifying integrity where the
  /// backend supports it (kCorrupt on checksum mismatch).
  virtual Result<std::string> get(StorageId id) = 0;

  /// Removes `id`; idempotent.
  virtual void erase(StorageId id) = 0;

  /// Bytes currently stored (bookkeeping, not filesystem truth).
  virtual std::uint64_t bytes_stored() const = 0;

  /// Re-registers content persisted by an earlier process under the same
  /// id (warm restart), verifying size, key hash and checksum.
  /// Default: unsupported.
  virtual Status adopt(StorageId id, std::uint64_t size,
                       std::uint64_t key_hash) {
    (void)id;
    (void)size;
    (void)key_hash;
    return Status(StatusCode::kUnavailable, "backend cannot adopt");
  }

  /// When true, stored content survives destruction (so a later process
  /// can adopt it). Default: no-op (memory content cannot survive anyway).
  virtual void set_retain_on_destruction(bool retain) { (void)retain; }

  /// Whether the backend constructed usably (e.g. its directory exists).
  /// Default: always ok.
  virtual Status init_status() const { return Status::ok(); }

  /// Removes debris a crash may have left behind: files not adopted by the
  /// manifest (orphans) and leftover temp files. Call after the manifest
  /// load so the adopted set is known. Default: nothing to scrub.
  virtual ScrubReport scrub() { return {}; }

  /// Makes every previously acknowledged put durable before returning (the
  /// volume store drains its write buffer and fsyncs). The manifest writer
  /// calls this first so a manifest never references data still in RAM.
  /// Default: puts are already durable (or volatile by design) — no-op.
  virtual Status sync() { return Status::ok(); }

  /// Operational counters snapshot; see StorageCounters.
  virtual StorageCounters counters() const { return {}; }

  /// Filesystem seam used for manifest writes sharing the backend's fault
  /// injection. Default: the real filesystem.
  virtual FsOps* fs() const { return FsOps::real(); }
};

/// Heap-backed storage for tests and the simulator.
class MemoryBackend final : public StorageBackend {
 public:
  using StorageBackend::put;
  Result<StorageId> put(std::string_view data, std::uint64_t key_hash) override;
  Result<std::string> get(StorageId id) override;
  void erase(StorageId id) override;
  std::uint64_t bytes_stored() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<StorageId, std::string> blobs_;
  StorageId next_id_ = 1;
  std::uint64_t bytes_ = 0;
};

/// One file per cached result under `dir` (created recursively if absent),
/// named "swala-<id>.cache". Mirrors the paper's disk cache — every cache
/// fetch is a file fetch served from the OS buffer cache when hot — with the
/// checksummed header format and atomic-rename writes described above.
class DiskBackend final : public StorageBackend {
 public:
  /// `fs` is the injectable filesystem seam; null = the real filesystem.
  explicit DiskBackend(std::string dir, FsOps* fs = nullptr);
  ~DiskBackend() override;

  using StorageBackend::put;
  Result<StorageId> put(std::string_view data, std::uint64_t key_hash) override;
  Result<std::string> get(StorageId id) override;
  void erase(StorageId id) override;
  std::uint64_t bytes_stored() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
  }
  Status adopt(StorageId id, std::uint64_t size,
               std::uint64_t key_hash) override;
  void set_retain_on_destruction(bool retain) override {
    retain_.store(retain, std::memory_order_relaxed);
  }
  Status init_status() const override { return init_status_; }
  ScrubReport scrub() override;
  StorageCounters counters() const override;
  FsOps* fs() const override { return fs_; }

  const std::string& dir() const { return dir_; }

  /// Path of the cache file backing `id` (tests corrupt files in place).
  std::string path_for(StorageId id) const;

 private:
  /// Reads the whole file at `path`; kNotFound / kIoError on failure.
  Result<std::string> read_file(const std::string& path) const;

  /// Renames a corrupt cache file to "<path>.corrupt" so it is off the
  /// serving path but preserved for postmortem. Unlinks if rename fails.
  void quarantine(const std::string& path);

  std::string dir_;
  FsOps* fs_;
  Status init_status_;
  /// Guards the bookkeeping maps and counters below; file I/O (write,
  /// read, unlink) always happens with it released.
  mutable std::mutex mutex_;
  StorageId next_id_ = 1;
  std::uint64_t bytes_ = 0;
  std::atomic<bool> retain_{false};
  std::atomic<std::uint64_t> quarantined_{0};  ///< corrupt files renamed
  /// Unlink failures from erase(): total, plus a consecutive run the
  /// manager's degradation probe watches (reset by any erase or put that
  /// reaches the disk successfully).
  std::atomic<std::uint64_t> erase_errors_{0};
  std::atomic<std::uint64_t> consecutive_erase_failures_{0};
  std::unordered_map<StorageId, std::uint64_t> sizes_;  ///< payload bytes
  std::unordered_map<StorageId, std::uint64_t> key_hashes_;
};

}  // namespace swala::core
