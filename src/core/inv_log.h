// InvalidationLog: epoch-stamped replay log for application-driven
// invalidations (anti-entropy repair layer).
//
// The paper's invalidations are fire-and-forget broadcasts: a kInvalidate
// frame lost to a drop storm, a dead-peer breaker or a partition leaves the
// unlucky node serving the stale entry until TTL, silently. To make that
// loss detectable and repairable, every node stamps the invalidations it
// *originates* with a per-origin monotonic epoch and keeps a bounded FIFO
// replay log of every epoch-stamped invalidation it has *applied* (its own
// and its peers'). Peers exchange epoch vectors (piggybacked on HELLOs and
// the periodic anti-entropy digest); a node whose contiguous floor for some
// origin is below a peer's high-water mark knows it missed an invalidation
// and pulls the gap via kInvSync — from *any* peer that applied it, not
// just the origin, so repair works across partitions and restarts.
//
// Per-origin bookkeeping keeps an exact duplicate filter without unbounded
// memory: `floor` is the largest epoch E such that every epoch <= E has
// been applied; epochs above the floor sit in a (normally tiny) set until
// the hole closes. Epoch 0 marks a legacy/unepoched invalidation: it is
// always applied and never logged, which keeps old frames and direct
// on_peer_invalidate(pattern) callers working unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/entry.h"

namespace swala::core {

/// One epoch-stamped invalidation, as logged and as shipped over kInvSync.
struct InvalidationRecord {
  NodeId origin = kInvalidNode;  ///< node whose invalidate() call this was
  std::uint64_t epoch = 0;       ///< per-origin monotonic stamp (1-based)
  std::string pattern;           ///< the shell-style key glob invalidated
};

/// Per-origin (high-water or floor) epoch vector, as exchanged on the wire.
using EpochVector = std::vector<std::pair<NodeId, std::uint64_t>>;

class InvalidationLog {
 public:
  /// `max_entries` bounds the replay log; evicting a record a peer still
  /// needs surfaces as `truncated` in entries_after (the peer then falls
  /// back to a conservative full purge).
  explicit InvalidationLog(std::size_t max_entries = 4096);

  /// Stamps a locally originated invalidation with the next epoch for
  /// `origin` (this node), applies it to the duplicate filter and logs it.
  InvalidationRecord originate(NodeId origin, std::string pattern);

  /// Exact duplicate filter for a peer's (or replayed) invalidation.
  /// Returns true when the record is new — the caller must apply it — and
  /// logs it; false when it was already applied (replayed frame: no-op).
  /// Records with epoch 0 are legacy/unepoched: always "new", never logged.
  bool admit(const InvalidationRecord& record);

  /// Highest epoch applied per origin (what HELLO/digest advertises).
  EpochVector high_vector() const;

  /// Contiguous floor per origin (what a kInvSync pull asks "after").
  EpochVector floor_vector() const;

  /// True when `peer_high` proves this node may have missed an
  /// invalidation: some origin's advertised high-water mark exceeds our
  /// contiguous floor (either the peer is ahead of us, or we hold a hole
  /// the peer can fill).
  bool behind(const EpochVector& peer_high) const;

  /// Every logged record with an epoch above the requester's floor for its
  /// origin (missing origins count as floor 0), in log order. Sets
  /// `*truncated` when eviction may have discarded a record the requester
  /// has not applied — the requester must then fall back to a full purge.
  std::vector<InvalidationRecord> entries_after(const EpochVector& floors,
                                                bool* truncated) const;

  /// Records currently retained in the replay log.
  std::size_t size() const;

 private:
  struct OriginState {
    std::uint64_t floor = 0;  ///< every epoch <= floor has been applied
    std::uint64_t high = 0;   ///< max epoch applied
    std::set<std::uint64_t> above_floor;  ///< applied epochs > floor (holes)
    std::uint64_t evicted_high = 0;  ///< highest epoch evicted from the log
  };

  /// Applies `record` to the duplicate filter and the log. Caller holds
  /// mutex_. Returns false for an exact duplicate.
  bool admit_locked(const InvalidationRecord& record);

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::deque<InvalidationRecord> log_;          // FIFO, bounded
  std::map<NodeId, OriginState> origins_;       // ordered → stable vectors
};

}  // namespace swala::core
