#include "core/rules.h"

#include "common/strings.h"

namespace swala::core {

Result<CacheabilityRules::Rule> CacheabilityRules::parse_rule_line(
    std::string_view line) {
  const auto tokens = split_trimmed(line, ' ');
  if (tokens.size() < 2) {
    return Status(StatusCode::kInvalidArgument,
                  "rule needs '<pattern> cache|nocache [...]': " +
                      std::string(line));
  }
  Rule rule;
  rule.pattern = tokens[0];
  const std::string& verb = tokens[1];
  if (verb == "cache") {
    rule.decision.cacheable = true;
  } else if (verb == "nocache") {
    rule.decision.cacheable = false;
  } else {
    return Status(StatusCode::kInvalidArgument,
                  "rule verb must be cache|nocache, got: " + verb);
  }
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string& opt = tokens[i];
    const std::size_t eq = opt.find('=');
    if (eq == std::string::npos) {
      return Status(StatusCode::kInvalidArgument, "malformed option: " + opt);
    }
    const std::string key = opt.substr(0, eq);
    double value = 0.0;
    if (!parse_double(opt.substr(eq + 1), &value) || value < 0) {
      return Status(StatusCode::kInvalidArgument, "bad option value: " + opt);
    }
    if (key == "ttl") {
      rule.decision.ttl_seconds = value;
    } else if (key == "min_exec") {
      rule.decision.min_exec_seconds = value;
    } else {
      return Status(StatusCode::kInvalidArgument, "unknown option: " + key);
    }
  }
  return rule;
}

Result<CacheabilityRules> CacheabilityRules::from_config(const Config& config) {
  CacheabilityRules rules;
  for (const auto& line : config.get_all("cacheability", "rule")) {
    auto rule = parse_rule_line(line);
    if (!rule) return rule.status();
    rules.rules_.push_back(std::move(rule.value()));
  }
  const std::string def = config.get_string("cacheability", "default", "nocache");
  if (def == "cache") {
    rules.default_.cacheable = true;
  } else if (def == "nocache") {
    rules.default_.cacheable = false;
  } else {
    return Status(StatusCode::kInvalidArgument,
                  "cacheability default must be cache|nocache");
  }
  return rules;
}

Result<CacheabilityRules> CacheabilityRules::from_lines(
    const std::vector<std::string>& lines, bool default_cacheable) {
  CacheabilityRules rules;
  for (const auto& line : lines) {
    auto rule = parse_rule_line(line);
    if (!rule) return rule.status();
    rules.rules_.push_back(std::move(rule.value()));
  }
  rules.default_.cacheable = default_cacheable;
  return rules;
}

void CacheabilityRules::add_rule(std::string pattern, RuleDecision decision) {
  rules_.push_back({std::move(pattern), decision});
}

RuleDecision CacheabilityRules::classify(std::string_view path) const {
  for (const auto& rule : rules_) {
    if (glob_match(rule.pattern, path)) return rule.decision;
  }
  return default_;
}

}  // namespace swala::core
