// Store↔directory consistency checking.
//
// The commit protocol in CacheManager guarantees that a node's local result
// store and the self-table of its replicated directory always hold exactly
// the same set of keys (the paper's Section 3 invariant: the directory is a
// faithful mirror of each node's cache). `check_store_directory_consistency`
// cross-verifies that membership invariant; it is the machine-checked form
// of the property the cluster soak test asserts after quiesce, and is also
// exposed through CacheManager::debug_check_consistency() and the
// /swala-admin/check-consistency endpoint.
#pragma once

#include <string>
#include <vector>

#include "core/directory.h"
#include "core/store.h"

namespace swala::core {

/// Result of one consistency cross-check between a store and the owning
/// node's directory self-table.
struct ConsistencyReport {
  std::size_t store_entries = 0;      ///< keys in the local store
  std::size_t directory_entries = 0;  ///< keys in the directory self-table
  /// Keys present in the store but absent from the directory self-table.
  std::vector<std::string> missing_in_directory;
  /// Keys present in the directory self-table but absent from the store.
  std::vector<std::string> stale_in_directory;

  bool consistent() const {
    return missing_in_directory.empty() && stale_in_directory.empty();
  }

  /// Human-readable summary for logs and test failure messages.
  std::string to_string() const;
};

/// Compares the store's key set against `directory`'s self-table key set.
/// Membership-based: expired-but-unpurged entries count on both sides (the
/// purge daemon removes them from both under one commit). Callers that need
/// an exact answer must ensure no commit is in flight — CacheManager does so
/// by holding its commit mutex around this call.
ConsistencyReport check_store_directory_consistency(
    const CacheStore& store, const CacheDirectory& directory);

}  // namespace swala::core
