// Store↔directory consistency checking.
//
// The commit protocol in CacheManager guarantees that a node's local result
// store and the self-table of its replicated directory always hold exactly
// the same set of keys (the paper's Section 3 invariant: the directory is a
// faithful mirror of each node's cache). `check_store_directory_consistency`
// cross-verifies that membership invariant; it is the machine-checked form
// of the property the cluster soak test asserts after quiesce, and is also
// exposed through CacheManager::debug_check_consistency() and the
// /swala-admin/check-consistency endpoint.
#pragma once

#include <string>
#include <vector>

#include "core/directory.h"
#include "core/store.h"

namespace swala::core {

/// Result of one consistency cross-check between a store and the owning
/// node's directory self-table.
struct ConsistencyReport {
  std::size_t store_entries = 0;      ///< keys in the local store
  std::size_t directory_entries = 0;  ///< keys in the directory self-table
  /// Keys present in the store but absent from the directory self-table.
  std::vector<std::string> missing_in_directory;
  /// Keys present in the directory self-table but absent from the store.
  std::vector<std::string> stale_in_directory;

  bool consistent() const {
    return missing_in_directory.empty() && stale_in_directory.empty();
  }

  /// Human-readable summary for logs and test failure messages.
  std::string to_string() const;
};

/// Compares the store's key set against `directory`'s self-table key set.
/// Membership-based: expired-but-unpurged entries count on both sides (the
/// purge daemon removes them from both under one commit). Callers that need
/// an exact answer must ensure no commit is in flight — CacheManager does so
/// by holding its commit mutex around this call.
ConsistencyReport check_store_directory_consistency(
    const CacheStore& store, const CacheDirectory& directory);

// ---- cluster-wide oracle (anti-entropy / chaos harness) ----

class CacheManager;  // manager.h includes this header; implemented in .cc

/// Cross-node drift: what `viewer`'s directory table for `subject` gets
/// wrong relative to the ground truth (what `subject` actually caches,
/// restricted to the keys `viewer` is responsible for tracking).
struct NodeDrift {
  NodeId viewer = kInvalidNode;
  NodeId subject = kInvalidNode;
  /// Keys `subject` caches (and `viewer` should track) that `viewer`'s
  /// table lacks — lost kInsert/kOwnerUpdate frames (false misses).
  std::vector<std::string> missing;
  /// Keys `viewer`'s table advertises for `subject` that `subject` no
  /// longer caches — lost kErase/kInvalidate frames (false hits, and the
  /// stale-serve hazard the anti-entropy layer exists to repair).
  std::vector<std::string> stale;
};

/// Global oracle verdict over a whole cluster snapshot.
struct ClusterConsistencyReport {
  /// Per-node store↔self-table checks (the local commit invariant).
  std::vector<ConsistencyReport> per_node;
  /// Cross-node directory drift (weak consistency means transient drift is
  /// legal mid-traffic; after quiesce + one anti-entropy round it is not).
  std::vector<NodeDrift> drift;
  /// Membership divergence: nodes whose active member set disagrees with
  /// the rest of the cluster (post-convergence every node must agree on who
  /// is in). Human-readable "node i: {…} != {…}" lines.
  std::vector<std::string> membership_divergence;
  /// Post-transition ownership violations (partitioned mode): a cached key
  /// whose current ring owner is not an active member of the caching
  /// node's own view — its directory record points into the void.
  std::vector<std::string> ownership_violations;

  bool consistent() const {
    for (const auto& r : per_node) {
      if (!r.consistent()) return false;
    }
    return drift.empty() && membership_divergence.empty() &&
           ownership_violations.empty();
  }

  std::string to_string() const;
};

/// Runs the global oracle over every manager in the cluster (index i must
/// be node i; null entries are skipped — a crashed node has no view to
/// check). Mode-aware: replicated compares every viewer's table[j] against
/// node j's store; partitioned compares viewer i's table[j] against the
/// subset of node j's store that i owns on the ring; query mode keeps no
/// remote tables, so only the per-node checks run. Quarantined tables are
/// skipped (a dead peer's table is deliberately stale pending resync).
/// Exactness requires the caller to quiesce traffic first.
///
/// Membership-aware (PR10): a viewer is only held responsible for subjects
/// it considers active, all nodes' active member sets must agree, and in
/// partitioned mode every cached key's ring owner must be an active member
/// (the post-transition ownership invariant — after a join/decommission
/// converges, no directory record may point at a departed owner).
ClusterConsistencyReport check_cluster_consistency(
    const std::vector<const CacheManager*>& managers);

}  // namespace swala::core
