// FsOps: the filesystem twin of cluster/transport.h's FaultInjector. Every
// syscall the durable cache path performs (open/read/write/fsync/close/
// rename/unlink/mkdir) flows through one FsOps object, so a single seeded
// FaultingFsOps can inject EIO, ENOSPC, short writes and crash-at-op
// truncation per operation / path / sequence position — which is what makes
// disk-failure behaviour testable without pulling real disks.
//
// Production code uses `FsOps::real()`, a stateless passthrough to the libc
// calls. Tests construct a FaultingFsOps, add rules, and hand it to
// DiskBackend (via ManagerOptions::fs_ops or the DiskBackend constructor).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace swala::core {

/// Which filesystem operation a fault rule matches.
enum class FsOp {
  kOpen,
  kRead,
  kWrite,
  kFsync,
  kRename,
  kUnlink,
  kMkdir,
  kTruncate,
};

const char* fs_op_name(FsOp op);

/// Syscall-shaped filesystem interface. The base class delegates straight to
/// libc; FaultingFsOps overrides `decide` hooks to corrupt the outcome.
/// All methods follow the libc contract (-1 + errno on failure).
class FsOps {
 public:
  virtual ~FsOps() = default;

  virtual int open(const char* path, int flags, int mode);
  virtual ssize_t read(int fd, void* buf, std::size_t count);
  virtual ssize_t write(int fd, const void* buf, std::size_t count);
  /// Positional variants (the volume store's random-access path). Matched by
  /// the same FsOp::kRead / FsOp::kWrite fault rules as read/write, so one
  /// rule covers both access styles.
  virtual ssize_t pread(int fd, void* buf, std::size_t count, off_t offset);
  virtual ssize_t pwrite(int fd, const void* buf, std::size_t count,
                         off_t offset);
  virtual int fsync(int fd);
  virtual int close(int fd);
  virtual int rename(const char* from, const char* to);
  virtual int unlink(const char* path);
  virtual int mkdir(const char* path, int mode);
  /// Preallocation / torn-tail trimming (FsOp::kTruncate rules).
  virtual int ftruncate(int fd, off_t length);

  /// The shared passthrough instance production code uses.
  static FsOps* real();
};

/// What an injected fault does to the matched operation.
enum class FsFaultKind {
  /// Fail with `error_no` (EIO, ENOSPC, ...); the operation has no effect.
  kError,
  /// Write only half the requested bytes and report the short count. The
  /// caller's retry loop normally recovers; combine with a follow-up kError
  /// rule to model a disk that degrades mid-write.
  kShortWrite,
  /// Simulate the process dying at this operation: a write persists only a
  /// prefix (the torn tail is lost), then this and every later operation
  /// fails with EIO until `reset_crash()`. The test then rebuilds the
  /// backend over the same directory, exactly like a restart after SIGKILL.
  kCrash,
};

/// One injection rule, matched in insertion order (first match decides).
/// `skip` lets that many matching operations pass before the rule starts
/// firing and `count` bounds the firings (0 = forever), so a test can target
/// "the 3rd write of the 2nd put" deterministically.
struct FsFaultRule {
  std::optional<FsOp> op;             ///< nullopt = any operation
  std::string path_substr;            ///< only paths containing this; "" = any
                                      ///< (fd-only ops match any rule path)
  FsFaultKind kind = FsFaultKind::kError;
  int error_no = 5;                   ///< EIO; kError only
  std::uint64_t skip = 0;             ///< matches to let pass first
  std::uint64_t count = 0;            ///< firings allowed; 0 = forever
  double probability = 1.0;           ///< seeded coin after skip/count
};

/// Deterministic, thread-safe faulting filesystem. All randomness comes from
/// one seeded Rng, so a failure scenario replays bit-for-bit given the same
/// seed and operation order.
class FaultingFsOps final : public FsOps {
 public:
  explicit FaultingFsOps(std::uint64_t seed = 0xD15CFA11u);

  void add_rule(FsFaultRule rule);
  void clear();

  /// True once a kCrash rule fired; every operation fails until reset.
  bool crashed() const;
  void reset_crash();

  /// Total faults fired so far (tests assert the scenario actually ran).
  std::uint64_t faults_injected() const;

  int open(const char* path, int flags, int mode) override;
  ssize_t read(int fd, void* buf, std::size_t count) override;
  ssize_t write(int fd, const void* buf, std::size_t count) override;
  ssize_t pread(int fd, void* buf, std::size_t count, off_t offset) override;
  ssize_t pwrite(int fd, const void* buf, std::size_t count,
                 off_t offset) override;
  int fsync(int fd) override;
  int close(int fd) override;
  int rename(const char* from, const char* to) override;
  int unlink(const char* path) override;
  int mkdir(const char* path, int mode) override;
  int ftruncate(int fd, off_t length) override;

 private:
  struct ActiveRule {
    FsFaultRule rule;
    std::uint64_t matched = 0;
    std::uint64_t fired = 0;
  };

  struct Decision {
    FsFaultKind kind;
    int error_no;
  };

  /// Consults the rules for one operation; nullopt = proceed normally.
  std::optional<Decision> decide(FsOp op, const char* path);

  mutable std::mutex mutex_;
  Rng rng_;                        // guarded by mutex_
  std::vector<ActiveRule> rules_;  // guarded by mutex_
  bool crashed_ = false;           // guarded by mutex_
  std::uint64_t faults_injected_ = 0;
};

/// Atomically and durably replaces `path` with `content`: temp file in the
/// same directory → write → fsync → rename → fsync(directory). On any
/// failure the temp file is unlinked and `path` is untouched, so a reader
/// always sees either the old or the new content, never a torn mix.
/// `fs` may be null (uses FsOps::real()).
Status write_file_atomic(FsOps* fs, const std::string& path,
                         std::string_view content);

/// fsyncs the directory containing `path` so a preceding rename is durable.
Status fsync_parent_dir(FsOps* fs, const std::string& path);

/// Creates `path` and every missing parent (mkdir -p). Existing directories
/// are fine; anything else (a file in the way, permission denied) is an
/// error naming the failing component.
Status make_dirs(FsOps* fs, const std::string& path);

}  // namespace swala::core
