#include "core/volume.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "common/hash.h"
#include "common/logging.h"

namespace swala::core {

namespace {

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(std::string_view in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[off + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::string_view in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[off + i]))
         << (8 * i);
  }
  return v;
}

std::string encode_segment_header(std::uint64_t seq, std::uint64_t capacity) {
  std::string h;
  h.reserve(kVolumeSegmentHeaderSize);
  put_u32(&h, kVolumeSegmentMagic);
  put_u32(&h, kVolumeFormatVersion);
  put_u64(&h, seq);
  put_u32(&h, static_cast<std::uint32_t>(capacity));
  put_u32(&h, 0);  // reserved
  put_u32(&h, crc32c(h));  // first 24 bytes
  put_u32(&h, 0);  // pad to 32
  return h;
}

std::string encode_record_header(std::uint64_t seq, StorageId id,
                                 std::uint64_t key_hash,
                                 std::string_view payload) {
  std::string h;
  h.reserve(kVolumeRecordHeaderSize);
  put_u32(&h, kVolumeRecordMagic);
  put_u32(&h, kVolumeFormatVersion);
  put_u64(&h, seq);
  put_u64(&h, id);
  put_u64(&h, key_hash);
  put_u32(&h, static_cast<std::uint32_t>(payload.size()));
  put_u32(&h, 0);  // flags
  put_u32(&h, crc32c(payload));
  put_u32(&h, crc32c(h));  // first 44 bytes
  return h;
}

/// Structural validation of a 48-byte record header (magic, version, CRC).
/// Does NOT check the payload or the sequence binding.
bool record_header_valid(std::string_view h) {
  if (h.size() < kVolumeRecordHeaderSize) return false;
  if (get_u32(h, 0) != kVolumeRecordMagic) return false;
  if (get_u32(h, 4) != kVolumeFormatVersion) return false;
  return get_u32(h, 44) == crc32c(h.substr(0, 44));
}

bool all_zero(std::string_view bytes) {
  for (const char c : bytes) {
    if (c != '\0') return false;
  }
  return true;
}

}  // namespace

VolumeBackend::VolumeBackend(std::string dir, VolumeOptions options, FsOps* fs,
                             const Clock* clock)
    : dir_(std::move(dir)),
      options_(options),
      fs_(fs != nullptr ? fs : FsOps::real()),
      clock_(clock != nullptr ? clock : RealClock::instance()) {
  init_status_ = make_dirs(fs_, dir_);
  if (!init_status_.is_ok()) {
    SWALA_LOG(Error) << "volume directory unusable: "
                     << init_status_.to_string();
    return;
  }
  if (options_.segment_bytes <=
      kVolumeSegmentHeaderSize + kVolumeRecordHeaderSize) {
    init_status_ = Status(StatusCode::kInvalidArgument,
                          "volume segment_bytes too small");
    return;
  }
  const std::uint64_t slots = options_.volume_bytes / options_.segment_bytes;
  if (slots < 2) {
    init_status_ = Status(
        StatusCode::kInvalidArgument,
        "volume_bytes must hold at least two segments of segment_bytes");
    return;
  }
  slot_count_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(slots, 0xFFFFFFFEull));

  const std::string path = volume_path();
  fd_ = fs_->open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    init_status_ = Status(StatusCode::kIoError,
                          "open " + path + ": " + std::strerror(errno));
    return;
  }
  const off_t existing = ::lseek(fd_, 0, SEEK_END);
  const std::uint64_t total =
      static_cast<std::uint64_t>(slot_count_) * options_.segment_bytes;
  if (existing < 0 || static_cast<std::uint64_t>(existing) < total) {
    // Preallocate up front so steady-state flushes never extend the file
    // (and ENOSPC surfaces here, at startup, not mid-flush).
    if (fs_->ftruncate(fd_, static_cast<off_t>(total)) != 0) {
      init_status_ =
          Status(StatusCode::kIoError,
                 "preallocate " + path + ": " + std::strerror(errno));
      (void)fs_->close(fd_);
      fd_ = -1;
      return;
    }
  }
  segments_.assign(slot_count_, Segment{});
  if (existing > 0) recover();
  load_sidecar_index();
  last_flush_ = clock_->now();
}

VolumeBackend::~VolumeBackend() {
  // No lock: destruction implies no concurrent users (outstanding pins hold
  // the backend via shared_ptr, so the destructor runs after the last one).
  if (fd_ >= 0) {
    if (retain_.load(std::memory_order_relaxed)) {
      (void)flush_locked();  // best effort: don't strand the buffered tail
      (void)fs_->close(fd_);
    } else {
      (void)fs_->close(fd_);
      (void)fs_->unlink(volume_path().c_str());
      (void)fs_->unlink(index_path().c_str());
    }
    fd_ = -1;
  }
}

Status VolumeBackend::read_at(std::uint64_t offset, std::size_t len,
                              char* out) const {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n =
        fs_->pread(fd_, out + off, len - off, static_cast<off_t>(offset + off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kIoError,
                    "volume pread: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status(StatusCode::kIoError, "volume pread: unexpected EOF");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

void VolumeBackend::recover() {
  // One sequential pass, no per-entry file opens: read every slot header,
  // then scan the records of each valid segment. Later sequence numbers win
  // when two segments carry the same storage id (compaction copies).
  struct Candidate {
    std::uint32_t slot;
    std::uint64_t seq;
  };
  std::vector<Candidate> candidates;
  char hdr[kVolumeSegmentHeaderSize];
  std::uint64_t max_seq = 0;
  std::uint32_t max_seq_slot = kBufferSlot;
  for (std::uint32_t slot = 0; slot < slot_count_; ++slot) {
    if (!read_at(slot_base(slot), sizeof(hdr), hdr).is_ok()) continue;
    const std::string_view h(hdr, sizeof(hdr));
    if (get_u32(h, 0) != kVolumeSegmentMagic) continue;
    if (get_u32(h, 4) != kVolumeFormatVersion) continue;
    if (get_u32(h, 24) != crc32c(h.substr(0, 24))) continue;
    if (get_u32(h, 16) != options_.segment_bytes) continue;  // resized
    const std::uint64_t seq = get_u64(h, 8);
    if (seq == 0) continue;
    candidates.push_back({slot, seq});
    if (seq > max_seq) {
      max_seq = seq;
      max_seq_slot = slot;
    }
  }
  next_seq_ = max_seq + 1;

  std::string blob;
  for (const auto& cand : candidates) {
    const bool open_tail = cand.slot == max_seq_slot;
    blob.resize(options_.segment_bytes);
    if (!read_at(slot_base(cand.slot), options_.segment_bytes, blob.data())
             .is_ok()) {
      continue;
    }
    const std::string_view seg(blob);
    std::size_t pos = kVolumeSegmentHeaderSize;
    while (pos + kVolumeRecordHeaderSize <= seg.size()) {
      const std::string_view rh = seg.substr(pos, kVolumeRecordHeaderSize);
      if (!record_header_valid(rh)) {
        if (all_zero(rh)) break;  // never-written space: clean end
        if (open_tail) {
          // The crash tore the last flush group; everything from here on is
          // the lost tail. Adopt nothing past the last valid record.
          ++torn_tail_truncated_;
          break;
        }
        // Sealed segment: a damaged record. Resync on the next structurally
        // valid header bound to this segment's sequence number.
        std::size_t next = std::string::npos;
        for (std::size_t p = pos + 1;
             p + kVolumeRecordHeaderSize <= seg.size(); ++p) {
          if (get_u32(seg, p) != kVolumeRecordMagic) continue;
          const std::string_view cand_h =
              seg.substr(p, kVolumeRecordHeaderSize);
          if (!record_header_valid(cand_h)) continue;
          if (get_u64(cand_h, 8) != cand.seq) continue;
          next = p;
          break;
        }
        ++corrupt_records_skipped_;
        if (next == std::string::npos) break;
        pos = next;
        continue;
      }
      if (get_u64(rh, 8) != cand.seq) break;  // stale older generation: end
      const StorageId id = get_u64(rh, 16);
      const std::uint64_t key_hash = get_u64(rh, 24);
      const std::uint32_t len = get_u32(rh, 32);
      if (pos + kVolumeRecordHeaderSize + len > seg.size()) {
        if (open_tail) {
          ++torn_tail_truncated_;
        } else {
          ++corrupt_records_skipped_;
        }
        break;
      }
      const std::string_view payload =
          seg.substr(pos + kVolumeRecordHeaderSize, len);
      if (get_u32(rh, 40) != crc32c(payload)) {
        if (open_tail) {
          // Torn payload in the final flush group.
          ++torn_tail_truncated_;
          break;
        }
        ++corrupt_records_skipped_;
        pos += kVolumeRecordHeaderSize + len;
        continue;
      }
      const auto it = recovered_.find(id);
      if (it == recovered_.end() || it->second.seq < cand.seq) {
        recovered_[id] = RecoveredRec{
            cand.slot, slot_base(cand.slot) + pos, len, key_hash, cand.seq};
      }
      if (id >= next_id_) next_id_ = id + 1;
      pos += kVolumeRecordHeaderSize + len;
    }
    Segment& s = segments_[cand.slot];
    s.state = SegState::kSealed;
    s.seq = cand.seq;
    s.write_off = pos;
    s.live_bytes = 0;  // accumulated by adopt()
  }
  if (torn_tail_truncated_ != 0 || corrupt_records_skipped_ != 0) {
    SWALA_LOG(Warn) << "volume recovery walk: " << recovered_.size()
                    << " records recovered, " << corrupt_records_skipped_
                    << " corrupt skipped, " << torn_tail_truncated_
                    << " torn tails truncated";
  }
}

void VolumeBackend::load_sidecar_index() {
  // The recovery walk is authoritative; the sidecar written by sync() is
  // only cross-checked so silent divergence (index/manifest mismatch)
  // becomes a visible counter instead of a latent wrong answer.
  const std::string path = index_path();
  const int fd = fs_->open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return;  // absent is normal on first boot
  std::string content;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = fs_->read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      (void)fs_->close(fd);
      return;
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  (void)fs_->close(fd);

  std::size_t pos = 0;
  const auto next_line = [&]() -> std::string_view {
    if (pos >= content.size()) return {};
    const auto nl = content.find('\n', pos);
    const auto end = nl == std::string::npos ? content.size() : nl;
    const std::string_view line(content.data() + pos, end - pos);
    pos = end + 1;
    return line;
  };
  const std::string_view header = next_line();
  if (header != "swala-volindex 1") {
    ++index_mismatches_;
    return;
  }
  while (pos < content.size()) {
    const std::string_view line = next_line();
    if (line.empty()) continue;
    std::uint64_t id = 0, offset = 0, len = 0;
    if (std::sscanf(std::string(line).c_str(), "%llu %llu %llu",
                    reinterpret_cast<unsigned long long*>(&id),
                    reinterpret_cast<unsigned long long*>(&offset),
                    reinterpret_cast<unsigned long long*>(&len)) != 3) {
      ++index_mismatches_;
      continue;
    }
    const auto it = recovered_.find(id);
    if (it == recovered_.end() || it->second.offset != offset ||
        it->second.payload_len != len) {
      ++index_mismatches_;
    }
  }
  if (index_mismatches_ != 0) {
    SWALA_LOG(Warn) << "volume sidecar index disagrees with recovery walk on "
                    << index_mismatches_ << " entries (walk wins)";
  }
}

void VolumeBackend::append_record_locked(StorageId id, std::uint64_t key_hash,
                                         std::string_view payload) {
  const std::uint64_t buf_off = buffer_.size();
  buffer_ += encode_record_header(segments_[active_slot_].seq, id, key_hash,
                                  payload);
  buffer_.append(payload.data(), payload.size());
  buffered_.push_back(
      {id, buf_off, static_cast<std::uint32_t>(payload.size())});
  index_[id] = IndexEntry{kBufferSlot, buf_off,
                          static_cast<std::uint32_t>(payload.size()), key_hash};
}

Status VolumeBackend::open_segment_locked() {
  auto find_free = [&]() -> std::uint32_t {
    for (std::uint32_t s = 0; s < slot_count_; ++s) {
      if (segments_[s].state == SegState::kFree) return s;
    }
    return kBufferSlot;
  };
  std::uint32_t slot = find_free();
  if (slot == kBufferSlot && !compacting_) {
    if (const Status st = compact_locked(); !st.is_ok()) return st;
    slot = find_free();
  }
  if (slot == kBufferSlot) {
    return Status(StatusCode::kResourceExhausted,
                  "volume full: no free segment");
  }
  Segment& s = segments_[slot];
  s.state = SegState::kOpen;
  s.seq = next_seq_++;
  s.write_off = 0;
  s.live_bytes = 0;
  active_slot_ = slot;
  buffer_disk_base_ = slot_base(slot);
  // The segment header rides in the buffer; it becomes durable with the
  // first flush, so a crash before that leaves the slot looking free.
  buffer_ += encode_segment_header(s.seq, options_.segment_bytes);
  return Status::ok();
}

Status VolumeBackend::flush_locked() {
  if (buffer_.empty()) return Status::ok();
  // One sequential pwrite of the whole flush group, then ONE fsync — this is
  // the entire per-group durability cost, versus five metadata syscalls per
  // record in DiskBackend. On failure the buffer is kept (entries stay
  // readable from RAM) and a later put/sync retries the same bytes at the
  // same offsets.
  std::size_t off = 0;
  while (off < buffer_.size()) {
    const ssize_t n =
        fs_->pwrite(fd_, buffer_.data() + off, buffer_.size() - off,
                    static_cast<off_t>(buffer_disk_base_ + off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kIoError,
                    "volume flush pwrite: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status(StatusCode::kIoError, "volume flush pwrite: no progress");
    }
    off += static_cast<std::size_t>(n);
  }
  if (fs_->fsync(fd_) != 0) {
    return Status(StatusCode::kIoError,
                  "volume flush fsync: " + std::string(std::strerror(errno)));
  }
  Segment& seg = segments_[active_slot_];
  for (const BufferedRec& rec : buffered_) {
    const auto it = index_.find(rec.id);
    if (it != index_.end() && it->second.slot == kBufferSlot &&
        it->second.offset == rec.buf_off) {
      it->second.slot = active_slot_;
      it->second.offset = buffer_disk_base_ + rec.buf_off;
      seg.live_bytes += kVolumeRecordHeaderSize + rec.payload_len;
      ++flushed_records_;
    } else {
      // Erased (or failed) while buffered: its bytes land on disk dead.
      dead_bytes_ += kVolumeRecordHeaderSize + rec.payload_len;
    }
  }
  seg.write_off = buffer_disk_base_ + buffer_.size() - slot_base(active_slot_);
  buffer_disk_base_ += buffer_.size();
  buffer_.clear();
  buffered_.clear();
  ++flushes_;
  last_flush_ = clock_->now();

  if (!compacting_) {
    // Keep one free slot in reserve so compaction's own appends can always
    // seal into fresh space (the low-watermark that guarantees progress).
    std::uint32_t free_slots = 0;
    for (const Segment& s : segments_) {
      if (s.state == SegState::kFree) ++free_slots;
    }
    if (free_slots <= 1) (void)compact_locked();
  }
  return Status::ok();
}

Status VolumeBackend::compact_locked() {
  compacting_ = true;
  const auto done = [&](Status st) {
    compacting_ = false;
    return st;
  };
  std::uint32_t victim = kBufferSlot;
  for (std::uint32_t s = 0; s < slot_count_; ++s) {
    if (segments_[s].state != SegState::kSealed) continue;
    if (victim == kBufferSlot ||
        segments_[s].live_bytes < segments_[victim].live_bytes) {
      victim = s;
    }
  }
  if (victim == kBufferSlot) {
    return done(Status(StatusCode::kResourceExhausted,
                       "volume full: no compactable segment"));
  }
  Segment& seg = segments_[victim];
  if (seg.live_bytes == 0) {
    seg.state = seg.readers > 0 ? SegState::kDraining : SegState::kFree;
    ++compactions_;
    return done(Status::ok());
  }

  // Collect the victim's live records, then relocate them through the
  // normal buffered write path. The single write buffer orders the copies
  // ahead of any reuse of this slot, so a crash at any point leaves either
  // the originals (old seq) or durable copies (new seq) adoptable.
  struct Move {
    StorageId id;
    IndexEntry entry;
  };
  std::vector<Move> moves;
  for (const auto& [id, entry] : index_) {
    if (entry.slot == victim) moves.push_back({id, entry});
  }
  std::string blob(seg.write_off, '\0');
  if (const Status st = read_at(slot_base(victim), seg.write_off, blob.data());
      !st.is_ok()) {
    return done(st);
  }
  const std::string_view data(blob);
  std::uint64_t moved = 0;
  for (const Move& m : moves) {
    const std::size_t rel = m.entry.offset - slot_base(victim);
    const std::string_view rh = data.substr(rel, kVolumeRecordHeaderSize);
    const std::string_view payload =
        data.substr(rel + kVolumeRecordHeaderSize, m.entry.payload_len);
    if (!record_header_valid(rh) || get_u64(rh, 16) != m.id ||
        get_u32(rh, 40) != crc32c(payload)) {
      // Bit rot since the record was written; drop it rather than copy
      // garbage forward under a fresh checksum.
      ++corrupt_records_skipped_;
      bytes_ -= m.entry.payload_len;
      seg.live_bytes -= kVolumeRecordHeaderSize + m.entry.payload_len;
      index_.erase(m.id);
      continue;
    }
    if (const Status st =
            ensure_fit_locked(kVolumeRecordHeaderSize + payload.size());
        !st.is_ok()) {
      // Partial compaction: already-moved records are fine, the rest still
      // point at the victim, which stays sealed.
      return done(st);
    }
    append_record_locked(m.id, m.entry.key_hash, payload);
    seg.live_bytes -= kVolumeRecordHeaderSize + m.entry.payload_len;
    ++moved;
  }
  seg.live_bytes = 0;
  seg.state = seg.readers > 0 ? SegState::kDraining : SegState::kFree;
  ++compactions_;
  compacted_records_ += moved;
  return done(Status::ok());
}

Status VolumeBackend::ensure_fit_locked(std::uint64_t record_size) {
  if (active_slot_ == kBufferSlot) {
    if (const Status st = open_segment_locked(); !st.is_ok()) return st;
  }
  // Backpressure: if flushes keep failing the buffer must not grow without
  // bound; past 4 flush groups the failure surfaces to the caller.
  if (buffer_.size() + record_size > 4 * options_.write_buffer_bytes +
                                         kVolumeSegmentHeaderSize) {
    if (const Status st = flush_locked(); !st.is_ok()) return st;
  }
  const auto remaining = [&]() {
    const std::uint64_t used =
        buffer_disk_base_ + buffer_.size() - slot_base(active_slot_);
    return options_.segment_bytes - used;
  };
  if (remaining() >= record_size) return Status::ok();
  // Record would cross the segment boundary: drain the buffer into the open
  // segment, seal it, and start a fresh one.
  if (const Status st = flush_locked(); !st.is_ok()) return st;
  if (remaining() >= record_size) return Status::ok();
  segments_[active_slot_].state = SegState::kSealed;
  active_slot_ = kBufferSlot;
  return open_segment_locked();
}

Result<StorageId> VolumeBackend::put(std::string_view data,
                                     std::uint64_t key_hash) {
  if (!init_status_.is_ok()) return init_status_;
  const std::uint64_t record_size = kVolumeRecordHeaderSize + data.size();
  if (record_size > options_.segment_bytes - kVolumeSegmentHeaderSize) {
    return Status(StatusCode::kResourceExhausted,
                  "object larger than a volume segment");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Status st = ensure_fit_locked(record_size); !st.is_ok()) return st;
  const StorageId id = next_id_++;
  append_record_locked(id, key_hash, data);
  bytes_ += data.size();
  const bool flush_now =
      buffer_.size() >= options_.write_buffer_bytes ||
      clock_->now() - last_flush_ >=
          from_millis(static_cast<double>(options_.flush_interval_ms));
  if (flush_now) {
    if (const Status st = flush_locked(); !st.is_ok()) {
      // This put is being reported as failed; take its entry back so the
      // store never references data we could not promise. Its bytes stay in
      // the buffer as a dead record (the flip loop skips missing ids).
      index_.erase(id);
      bytes_ -= data.size();
      return st;
    }
  }
  return id;
}

Result<std::string> VolumeBackend::get(StorageId id) {
  IndexEntry entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(id);
    if (it == index_.end()) {
      return Status(StatusCode::kNotFound,
                    "no volume record " + std::to_string(id));
    }
    entry = it->second;
    if (entry.slot == kBufferSlot) {
      // Still in the write buffer: serve straight from RAM (just encoded,
      // nothing to verify).
      return std::string(
          buffer_.data() + entry.offset + kVolumeRecordHeaderSize,
          entry.payload_len);
    }
    // Pin the slot against reuse while the pread is in flight.
    ++segments_[entry.slot].readers;
  }
  std::string rec(kVolumeRecordHeaderSize + entry.payload_len, '\0');
  const Status read_st = read_at(entry.offset, rec.size(), rec.data());
  Status verify_st = Status::ok();
  if (read_st.is_ok()) {
    const std::string_view rh(rec.data(), kVolumeRecordHeaderSize);
    const std::string_view payload(rec.data() + kVolumeRecordHeaderSize,
                                   entry.payload_len);
    if (!record_header_valid(rh) || get_u64(rh, 16) != id ||
        get_u32(rh, 32) != entry.payload_len ||
        (entry.key_hash != 0 && get_u64(rh, 24) != entry.key_hash) ||
        get_u32(rh, 40) != crc32c(payload)) {
      verify_st = Status(StatusCode::kCorrupt,
                         "volume record " + std::to_string(id) +
                             " failed integrity verification");
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    release_reader_locked(entry.slot);
  }
  if (!read_st.is_ok()) return read_st;
  if (!verify_st.is_ok()) {
    SWALA_LOG(Warn) << verify_st.to_string();
    return verify_st;
  }
  rec.erase(0, kVolumeRecordHeaderSize);
  return rec;
}

void VolumeBackend::release_reader_locked(std::uint32_t slot) {
  Segment& s = segments_[slot];
  if (--s.readers == 0 && s.state == SegState::kDraining) {
    s.state = SegState::kFree;
  }
}

void VolumeBackend::erase(StorageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  const IndexEntry& entry = it->second;
  bytes_ -= entry.payload_len;
  if (entry.slot != kBufferSlot) {
    // The bytes stay dead in the segment until compaction reclaims it.
    segments_[entry.slot].live_bytes -=
        kVolumeRecordHeaderSize + entry.payload_len;
    dead_bytes_ += kVolumeRecordHeaderSize + entry.payload_len;
  }
  index_.erase(it);
}

std::uint64_t VolumeBackend::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

Status VolumeBackend::adopt(StorageId id, std::uint64_t size,
                            std::uint64_t key_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = recovered_.find(id);
  if (it == recovered_.end()) {
    return Status(StatusCode::kNotFound,
                  "no recovered volume record " + std::to_string(id));
  }
  const RecoveredRec rec = it->second;
  if (rec.payload_len != size ||
      (key_hash != 0 && rec.key_hash != 0 && rec.key_hash != key_hash)) {
    recovered_.erase(it);
    return Status(StatusCode::kCorrupt,
                  "recovered volume record " + std::to_string(id) +
                      " does not match manifest");
  }
  recovered_.erase(it);
  index_[id] =
      IndexEntry{rec.slot, rec.offset, rec.payload_len, rec.key_hash};
  segments_[rec.slot].live_bytes += kVolumeRecordHeaderSize + rec.payload_len;
  bytes_ += rec.payload_len;
  if (id >= next_id_) next_id_ = id + 1;
  ++adopted_;
  return Status::ok();
}

ScrubReport VolumeBackend::scrub() {
  std::lock_guard<std::mutex> lock(mutex_);
  ScrubReport report;
  report.adopted = adopted_;
  report.quarantined = corrupt_records_skipped_;
  // Records the walk found but no manifest claimed: drop them as dead
  // bytes; compaction reclaims the space. Nothing valid is quarantined.
  report.orphans_removed = recovered_.size();
  for (const auto& [id, rec] : recovered_) {
    (void)id;
    dead_bytes_ += kVolumeRecordHeaderSize + rec.payload_len;
  }
  recovered_.clear();
  for (Segment& s : segments_) {
    if (s.state == SegState::kSealed && s.live_bytes == 0 && s.readers == 0) {
      s.state = SegState::kFree;
    }
  }
  if (report.orphans_removed != 0 || report.quarantined != 0 ||
      torn_tail_truncated_ != 0) {
    SWALA_LOG(Info) << "volume scrub: " << report.adopted << " adopted, "
                    << report.quarantined << " corrupt records skipped, "
                    << report.orphans_removed << " orphans dropped, "
                    << torn_tail_truncated_ << " torn tails truncated";
  }
  return report;
}

Status VolumeBackend::sync() {
  if (!init_status_.is_ok()) return init_status_;
  std::string sidecar;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const Status st = flush_locked(); !st.is_ok()) return st;
    sidecar = "swala-volindex 1\n";
    char line[96];
    for (const auto& [id, entry] : index_) {
      std::snprintf(line, sizeof(line), "%llu %llu %llu\n",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(entry.offset),
                    static_cast<unsigned long long>(entry.payload_len));
      sidecar += line;
    }
  }
  return write_file_atomic(fs_, index_path(), sidecar);
}

StorageCounters VolumeBackend::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StorageCounters c;
  c.backend = "volume";
  c.flushes = flushes_;
  c.flushed_records = flushed_records_;
  c.compactions = compactions_;
  c.compacted_records = compacted_records_;
  c.corrupt_records_skipped = corrupt_records_skipped_;
  c.torn_tail_truncated = torn_tail_truncated_;
  c.index_mismatches = index_mismatches_;
  c.segments_total = slot_count_;
  for (const Segment& s : segments_) {
    if (s.state == SegState::kFree) ++c.segments_free;
  }
  c.live_bytes = bytes_;
  c.dead_bytes = dead_bytes_;
  return c;
}

}  // namespace swala::core
