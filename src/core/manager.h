// CacheManager: the paper's "cacher module" (§4.1, Figure 2). Request
// threads ask it to classify a request as uncacheable / cacheable-but-not-
// cached / cached, fetch hits (local or remote, with false-hit fallback),
// and insert results after successful, long-enough CGI executions.
//
// Cooperation with the rest of the group goes through the `CooperationBus`
// interface; the real TCP implementation lives in src/cluster, an in-memory
// one in src/sim and the tests. A null bus produces a stand-alone cache.
//
// Commit protocol: every path that changes the local store's membership
// (complete, invalidate, on_peer_invalidate, purge_expired, the false-hit
// self-cleanup in lookup, restore_state) runs inside one mutation section
// guarded by `commit_mutex_`. Within a section the store change, the
// matching directory self-table change, and the broadcast enqueue are
// published together, so the directory self-table is a faithful mirror of
// the store at every section boundary (the paper's Section 3 invariant).
// Broadcast enqueues are non-blocking (per-peer bounded queues), so holding
// the commit mutex across them cannot deadlock or stall on a slow peer.
// Peer-table updates (on_peer_insert/on_peer_erase) stay outside the
// section: they never touch the local store and are weakly consistent by
// design. Each committed section bumps `commit_sequence()`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "cgi/handler.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "common/hash.h"
#include "core/consistency.h"
#include "core/directory.h"
#include "core/inv_log.h"
#include "core/rules.h"
#include "core/store.h"
#include "core/volume.h"

namespace swala::core {

/// How the manager talks to the other nodes in the group.
class CooperationBus {
 public:
  virtual ~CooperationBus() = default;

  /// Announces a new/updated local entry to all peers (asynchronous).
  virtual void broadcast_insert(const EntryMeta& meta) = 0;

  /// Announces a local deletion to all peers (asynchronous).
  virtual void broadcast_erase(NodeId owner, const std::string& key,
                               std::uint64_t version) = 0;

  /// Fetches a cached result from `owner`'s cache (synchronous).
  /// kNotFound signals a false hit: the entry is gone at the owner.
  virtual Result<CachedResult> fetch_remote(NodeId owner,
                                            const std::string& key) = 0;

  /// Deadline-budgeted fetch: the transport should give up after
  /// `budget_ms` (<=0 = use the configured timeout). Default ignores the
  /// budget so single-purpose buses (tests, simulator) need not care; the
  /// real TCP group caps its socket timeouts at the budget.
  virtual Result<CachedResult> fetch_remote(NodeId owner,
                                            const std::string& key,
                                            int budget_ms) {
    (void)budget_ms;
    return fetch_remote(owner, key);
  }

  /// Announces a cluster-wide invalidation of every key matching a
  /// shell-style glob (application-driven invalidation, §4.2 future work).
  /// Default: no-op, so single-purpose buses (tests, simulator) need not
  /// care unless they exercise invalidation.
  virtual void broadcast_invalidate(const std::string& pattern) {
    (void)pattern;
  }

  /// Epoch-stamped variant (anti-entropy repair layer): the frame carries
  /// the origin's monotonic epoch so peers can detect and repair a lost
  /// invalidation. Default forwards to the unepoched overload so legacy
  /// buses keep working.
  virtual void broadcast_invalidate(const std::string& pattern,
                                    std::uint64_t epoch) {
    (void)epoch;
    broadcast_invalidate(pattern);
  }

  // ---- partitioned mode (DirectoryMode::kPartitioned) ----
  // Defaults are no-ops / unavailable so replicated-only buses need not
  // care; the TCP group and the simulator override them.

  /// Unicasts "my cache now holds `meta`" to the key's ring owner.
  virtual void send_owner_insert(NodeId ring_owner, const EntryMeta& meta) {
    (void)ring_owner;
    (void)meta;
  }

  /// Unicasts "`cache_node` dropped `key`" to the key's ring owner.
  virtual void send_owner_erase(NodeId ring_owner, NodeId cache_node,
                                const std::string& key,
                                std::uint64_t version) {
    (void)ring_owner;
    (void)cache_node;
    (void)key;
    (void)version;
  }

  /// Asks the ring owner who caches `key` (synchronous, budgeted).
  /// kNotFound = the owner definitively knows of no copy.
  virtual Result<EntryMeta> lookup_at_owner(NodeId ring_owner,
                                            const std::string& key,
                                            int budget_ms) {
    (void)ring_owner;
    (void)key;
    (void)budget_ms;
    return Status(StatusCode::kUnavailable, "no partitioned-mode transport");
  }

  // ---- query mode (DirectoryMode::kQuery) ----

  /// Probes the peers for a cached copy of `key` (ICP-style, bounded by
  /// `budget_ms`; <=0 = transport default). kNotFound = every peer that
  /// answered in time reported a miss.
  virtual Result<EntryMeta> query_peers(const std::string& key,
                                        int budget_ms) {
    (void)key;
    (void)budget_ms;
    return Status(StatusCode::kUnavailable, "no query-mode transport");
  }

  // ---- dynamic membership (PR10) ----

  /// Graceful decommission: ship one cached entry (meta + body) to
  /// `successor`, which adopts it into its own store (a kInsert frame with
  /// the handoff tail). Default: no-op, so single-purpose buses need not
  /// care unless they exercise membership change.
  virtual void send_handoff(NodeId successor, const EntryMeta& meta,
                            const std::string& body) {
    (void)successor;
    (void)meta;
    (void)body;
  }
};

/// Classification of one incoming request.
enum class LookupOutcome {
  kUncacheable,      ///< execute, never cache
  kMissMustExecute,  ///< cacheable; execute and call `complete` (or `fail`)
  kHit,              ///< served from cache; `result` is valid
  /// Fail without executing: the key is negative-cached after a recent
  /// execution failure, the in-flight leader this request coalesced onto
  /// failed, or the request's deadline expired while waiting for the
  /// leader. `fail_status`/`fail_reason` describe the error. Only the
  /// deadline-aware lookup produces this outcome.
  kFailedFast,
};

struct LookupResult {
  LookupOutcome outcome = LookupOutcome::kUncacheable;
  RuleDecision rule;
  CachedResult result;   ///< valid when outcome == kHit
  bool remote = false;   ///< hit was fetched from a peer
  /// Hit was produced by riding another request's in-flight execution of
  /// the same key (single-flight miss coalescing), not by the cache proper.
  bool coalesced = false;
  NodeId owner = kInvalidNode;
  int fail_status = 0;      ///< HTTP status when outcome == kFailedFast
  std::string fail_reason;  ///< diagnostic when outcome == kFailedFast
};

/// Counters for the experiments (all monotonic).
struct ManagerStats {
  std::uint64_t lookups = 0;
  std::uint64_t uncacheable = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t below_threshold = 0;  ///< executed but too fast to cache
  std::uint64_t failed_exec = 0;      ///< CGI failed; result discarded
  std::uint64_t false_hits = 0;       ///< remote fetch found entry deleted
  std::uint64_t false_misses = 0;     ///< duplicate caching detected
  std::uint64_t evictions_broadcast = 0;
  std::uint64_t invalidations = 0;    ///< entries dropped by invalidate()
  /// Remote fetch failed for a reason other than a false hit (timeout, dead
  /// peer, torn connection) and the request fell back to local execution.
  std::uint64_t fallback_executions = 0;

  // ---- cooperation modes (cluster.directory_mode) ----
  /// Partitioned mode: misses that asked the key's ring owner for the
  /// directory entry (the local table had nothing).
  std::uint64_t remote_dir_lookups = 0;
  /// ... of which the owner knew a cached copy.
  std::uint64_t remote_dir_hits = 0;
  /// Query mode: misses that probed the peers (kQuery multicast).
  std::uint64_t peer_queries = 0;
  /// ... of which some peer advertised a cached copy.
  std::uint64_t peer_query_hits = 0;

  // ---- overload protection (single-flight miss coalescing) ----
  /// Misses that rode another request's in-flight execution instead of
  /// forking their own CGI (success or failure — the waiters got the
  /// leader's result either way).
  std::uint64_t coalesced_misses = 0;
  /// Waiters whose deadline expired before the leader finished; the
  /// request failed fast rather than outliving its budget.
  std::uint64_t coalesce_timeouts = 0;
  /// Lookups answered from the per-key negative cache (a recent execution
  /// failure is remembered for `negative_ttl_seconds`, stopping retry
  /// storms on a persistently failing CGI).
  std::uint64_t failed_fast = 0;

  // ---- durability ----
  /// Store inserts that failed with a disk I/O error.
  std::uint64_t disk_errors = 0;
  /// Inserts skipped because the store is degraded (request still served,
  /// just uncached — the disk equivalent of fallback_executions).
  std::uint64_t degraded_skips = 0;
  /// 1 while the store is degraded after `disk_failure_threshold`
  /// consecutive put failures; probe inserts eventually clear it.
  std::uint64_t store_degraded = 0;
  /// Successful periodic manifest checkpoints (purge-tick cadence).
  std::uint64_t checkpoints = 0;
  /// Checkpoint attempts that failed (manifest write error).
  std::uint64_t checkpoint_failures = 0;

  // ---- anti-entropy consistency repair ----
  /// Missed invalidations pulled from a peer via kInvSync and applied
  /// (each one is an invalidation this node would otherwise never see).
  std::uint64_t inv_epoch_gaps_repaired = 0;
  /// Stale store entries dropped by repaired invalidations — each was a
  /// pre-invalidation version this node would have kept serving until TTL.
  std::uint64_t stale_serves_prevented = 0;
  /// Conservative full purges taken because the peer's replay log had
  /// already evicted records this node needed (inv_log_entries too small
  /// for the gap).
  std::uint64_t inv_overflow_purges = 0;

  // ---- dynamic membership (PR10) ----
  /// Membership transitions applied locally (joins + leaves).
  std::uint64_t membership_transitions = 0;
  /// Directory records forwarded to a new ring owner (ring change or
  /// decommission partition handoff) — kOwnerUpdate frames.
  std::uint64_t handoff_records_sent = 0;
  /// Cached entries shipped to successors at decommission (kInsert handoff).
  std::uint64_t handoff_entries_sent = 0;
  /// Handed-off entries this node adopted into its own store.
  std::uint64_t handoff_entries_adopted = 0;
  /// Partitioned lookups that probed the pre-transition ring owner during a
  /// dual-read window.
  std::uint64_t dual_read_probes = 0;

  std::uint64_t hits() const { return local_hits + remote_hits; }
};

/// Which durable store implementation backs the cache when `disk_dir` is
/// set ([cache] store = files | volume).
enum class StoreBackendKind {
  kFiles,   ///< DiskBackend: one file per entry (the paper's design)
  kVolume,  ///< VolumeBackend: log-structured single preallocated file
};

/// Configuration for one node's cache manager.
struct ManagerOptions {
  StoreLimits limits;
  PolicyKind policy = PolicyKind::kLru;
  CacheabilityRules rules;
  /// Storage directory for the disk backend; empty selects MemoryBackend.
  std::string disk_dir;
  /// Durable store implementation under `disk_dir` (default: the paper's
  /// file-per-entry DiskBackend, which stays the fault-injection reference).
  StoreBackendKind store = StoreBackendKind::kFiles;
  /// Volume-store tuning; `volume.volume_bytes` must be set when
  /// store == kVolume.
  VolumeOptions volume;
  /// Manifest path for periodic checkpointing; empty disables it. A crash
  /// then loses at most `checkpoint_interval_seconds` of cache additions,
  /// not the whole cache.
  std::string state_file;
  /// Minimum seconds between checkpoints. Checkpoints ride the purge tick
  /// (purge_expired), so the effective cadence is
  /// max(purge_interval, checkpoint_interval_seconds).
  double checkpoint_interval_seconds = 10.0;
  /// Consecutive insert I/O failures before the store degrades to
  /// serve-uncacheable mode.
  int disk_failure_threshold = 5;
  /// While degraded, one insert in this many is attempted as a recovery
  /// probe; a success re-enables caching.
  int degraded_probe_every = 32;
  /// Injectable filesystem seam threaded into the disk backend (tests).
  /// Null = the real filesystem. Not owned.
  FsOps* fs_ops = nullptr;
  /// Seconds a failed execution is remembered per key; deadline-aware
  /// lookups within the window fail fast (kFailedFast) instead of
  /// re-executing a CGI that just failed. 0 disables the negative cache.
  double negative_ttl_seconds = 0.0;
  /// How directory state is shared across the group (see DirectoryMode).
  /// Every node must agree on the mode, seed and vnode count.
  DirectoryMode directory_mode = DirectoryMode::kReplicated;
  /// Consistent-hash placement parameters (partitioned mode only). The ring
  /// covers the *active* membership: initially `initial_members` (or all of
  /// [0, num_nodes) when empty), then member_joined/member_left resize it —
  /// only the remapped key ranges migrate, and a dual-read window (probe
  /// the pre-transition owner first) covers the migration. A dead owner's
  /// key range is still handled by quarantine + local-execution fallback,
  /// not by resizing (an unplanned death hands nothing off).
  std::uint64_t ring_seed = HashRing::kDefaultSeed;
  std::size_t ring_vnodes = HashRing::kDefaultVnodes;
  /// Active members at construction. Empty = every slot [0, num_nodes).
  /// The directory always provisions `num_nodes` tables — capacity is fixed
  /// at config time; which slots are *active* is dynamic (join/decommission).
  std::vector<NodeId> initial_members;
  /// Bound on the epoch-stamped invalidation replay log (anti-entropy
  /// repair). A peer whose gap outruns the log falls back to a conservative
  /// full purge instead of staying stale.
  std::size_t inv_log_entries = 4096;
};

class CacheManager {
 public:
  CacheManager(NodeId self, std::size_t num_nodes, ManagerOptions options,
               const Clock* clock, CooperationBus* bus = nullptr,
               LockingMode locking = LockingMode::kPerTable);

  // ---- Request-thread API (Figure 2) ----

  /// Classifies and, on a hit, fetches. A false hit (remote copy vanished)
  /// comes back as kMissMustExecute after cleaning the directory.
  LookupResult lookup(http::Method method, const http::Uri& uri);

  /// Deadline-aware lookup with single-flight miss coalescing: concurrent
  /// misses (and expired-TTL refreshes) of one key share a single
  /// execution. The first miss becomes the *leader* (kMissMustExecute; it
  /// MUST later call `complete` or `fail`, or waiters stall until their
  /// deadlines); later misses block — up to `deadline` — for the leader's
  /// result and come back as a coalesced kHit or a propagated kFailedFast.
  /// Remote fetches cap their socket timeouts at the remaining budget.
  LookupResult lookup(http::Method method, const http::Uri& uri,
                      const Deadline& deadline);

  /// Reports a finished CGI execution so the result can be cached and
  /// broadcast. `rule` must be the decision `lookup` returned. Also
  /// releases single-flight waiters with the output (even when the result
  /// is not cached) and negative-caches the key on a failed execution.
  void complete(http::Method method, const http::Uri& uri,
                const RuleDecision& rule, const cgi::CgiOutput& output,
                double exec_seconds);

  /// Reports that the execution could not run at all (fork failure, gate
  /// timeout, deadline bail-out): releases single-flight waiters with the
  /// error and — when `remember` is set — negative-caches the key for
  /// `negative_ttl_seconds`. Pass remember=false for overload bail-outs
  /// (the CGI itself is fine; a short 503 must not poison the key).
  void fail(http::Method method, const http::Uri& uri,
            const RuleDecision& rule, int http_status,
            const std::string& reason, bool remember);

  // ---- Cluster-facing API (info/data daemon threads) ----

  /// Peer announced an insert.
  void on_peer_insert(const EntryMeta& meta);

  /// Peer announced a deletion.
  void on_peer_erase(NodeId owner, const std::string& key,
                     std::uint64_t version);

  /// Serves a peer's data request from the local store.
  Result<CachedResult> serve_peer_fetch(const std::string& key);

  /// Answers a peer's kQuery / owner-lookup probe: who caches `key`?
  /// Query mode answers from the self table alone (that is all the state
  /// the mode keeps, and it keeps the probe O(1)); partitioned owners scan
  /// every table (their partition is spread across per-cache-node tables).
  std::optional<EntryMeta> answer_query(const std::string& key) const;

  /// Purge daemon tick: drop expired local entries, broadcast the erases.
  /// Also the durability heartbeat: checkpoints the manifest when
  /// `state_file` is set and the checkpoint interval has elapsed. Returns
  /// how many entries were purged.
  std::size_t purge_expired();

  // ---- Invalidation (§4.2 future work, IBM-style [12]) ----

  /// Cluster-wide invalidation: removes every entry whose key matches the
  /// shell-style glob — from the local store, from every directory table,
  /// and (via broadcast) from all peers. Patterns match the full cache key
  /// ("GET /cgi-bin/report?q=1"). Returns local removals.
  std::size_t invalidate(const std::string& pattern);

  /// Applies a peer's invalidation broadcast (no re-broadcast).
  std::size_t on_peer_invalidate(const std::string& pattern);

  /// Epoch-stamped variant: the (origin, epoch) pair feeds the replay log's
  /// exact duplicate filter, so a replayed frame is a no-op. Epoch 0 =
  /// legacy/unepoched (always applied, never logged).
  std::size_t on_peer_invalidate(const std::string& pattern, NodeId origin,
                                 std::uint64_t epoch);

  // ---- Anti-entropy repair (epoch log + digest exchange) ----

  /// Highest invalidation epoch applied per origin (piggybacked on HELLO
  /// and the periodic kDigest round).
  EpochVector inv_high_vector() const;

  /// Contiguous floor per origin (what our kInvSync pull asks "after").
  EpochVector inv_floor_vector() const;

  /// True when a peer's advertised high-water vector proves we may have
  /// missed an invalidation (gap detected → pull via kInvSync).
  bool inv_behind(const EpochVector& peer_high) const;

  /// Serves a peer's kInvSync pull: every logged record above the
  /// requester's floors. Sets `*truncated` when the log already evicted
  /// records the requester needs.
  std::vector<InvalidationRecord> inv_entries_after(const EpochVector& floors,
                                                    bool* truncated) const;

  /// Applies a kInvSyncResp: admits each record through the duplicate
  /// filter and applies the new ones (counting inv_epoch_gaps_repaired and
  /// stale_serves_prevented). A truncated response falls back to a
  /// conservative full purge ("*"), counted as an inv_overflow_purge.
  /// Returns how many records were newly applied.
  std::size_t apply_inv_sync(const std::vector<InvalidationRecord>& entries,
                             bool truncated);

  /// Order-independent xor digest of (key, version) pairs this node expects
  /// `peer` to hold in its directory for us: replicated mode digests our
  /// whole self table; partitioned mode digests the subset of our store
  /// owned by `peer` on the ring; query mode keeps no peer state (0/empty).
  /// `*entries` gets the number of pairs digested.
  std::uint64_t digest_for_peer(NodeId peer, std::size_t* entries) const;

  /// The receiving side of the comparison: digest of what we actually hold
  /// in our table for `peer` (replicated: table[peer]; partitioned:
  /// table[peer] filtered to keys whose ring owner is us, so mis-routed
  /// frames cannot cause a persistent mismatch).
  std::uint64_t digest_of_peer_table(NodeId peer, std::size_t* entries) const;

  // ---- Dynamic membership (PR10) ----
  //
  // Capacity (directory tables, id space) is fixed at config time; the
  // *active set* within [0, num_nodes) is mutable. A join activates a slot,
  // a decommission deactivates one. In partitioned mode each transition
  // resizes the consistent-hash ring: only the remapped key ranges migrate
  // (targeted kOwnerUpdate forwarding), and until finish_ring_transition()
  // lookups run a dual-read window — probe the pre-transition owner first,
  // then the new one — so no lookup misses during migration.

  /// What a membership transition or decommission handoff actually sent.
  struct HandoffStats {
    std::size_t records = 0;  ///< directory records forwarded (kOwnerUpdate)
    std::size_t entries = 0;  ///< cached entries re-announced / shipped
  };

  /// Monotonic count of membership transitions applied by this node. Two
  /// nodes that applied the same joins/leaves report the same epoch
  /// (carried on HELLO / kJoinAck / kDecommission for divergence checks).
  std::uint64_t membership_epoch() const;

  /// Currently active member ids, sorted ascending.
  std::vector<NodeId> active_members() const;

  /// Whether `node` is in the active set.
  bool is_member(NodeId node) const;

  /// Activates `node` (two-phase join, activation side): adds it to the
  /// active set and the ring, bumps the membership epoch, clears any stale
  /// table state, and — in partitioned mode — opens the dual-read window
  /// and forwards the remapped slice (directory records this node owns that
  /// now map to `node`, plus re-announcing own entries whose owner moved).
  /// Idempotent: a no-op (zero stats, no epoch bump) if already active.
  HandoffStats member_joined(NodeId node);

  /// Deactivates `node` (graceful decommission observed, or operator
  /// removal): removes it from the active set and the ring, bumps the
  /// epoch, clears its table *without* quarantining (the leaver handed its
  /// state off; quarantine is for the unplanned-death path), opens the
  /// dual-read window, and re-announces own entries whose owner moved.
  /// Idempotent. Self-removal is rejected (use begin_decommission).
  HandoffStats member_left(NodeId node);

  /// Joiner side of kJoinAck: adopt the responder's membership view.
  /// Rebuilds the active set (self is always retained) and — in partitioned
  /// mode — the ring, with a dual-read window over the change; the epoch
  /// advances to at least `epoch`.
  void adopt_membership(std::uint64_t epoch,
                        const std::vector<NodeId>& members);

  /// Decommission step 1: stop accepting new inserts and adoptions, so the
  /// handoff below cannot race fresh state into the departing store.
  /// Lookups keep serving until the server-level drain.
  void begin_decommission();
  bool decommissioning() const;

  /// Decommission step 2: ship every cached entry (meta + body) to its
  /// post-removal successor via the bus's handoff channel — bodies larger
  /// than `batch_bytes` are skipped (a lost cache entry costs one future
  /// re-execution, never correctness; 0 = no cap) — and, in partitioned
  /// mode, forward this node's directory partition to its new owners.
  HandoffStats handoff_state(std::uint64_t batch_bytes);

  /// The node that takes over `key` once this node leaves: the ring owner
  /// with self removed (partitioned), or a key-hash pick among the other
  /// active members (replicated/query). Self when no other member exists.
  NodeId successor_for(const std::string& key) const;

  /// Receiving side of the handoff channel: adopt a shipped entry into the
  /// local store (one commit section: insert + directory + announce).
  /// Skipped — returns false — when already cached locally, expired, being
  /// decommissioned ourselves, or the store rejects it.
  bool adopt_entry(const EntryMeta& meta, const std::string& body);

  /// Closes the dual-read window (lookups stop probing the old owner).
  /// The next transition reopens it over the latest change.
  void finish_ring_transition();
  bool ring_transition_active() const;

  /// Current ring transition counter (HashRing::version).
  std::uint64_t ring_version() const;

  // ---- Peer failure handling (cluster circuit breaker) ----

  /// The cluster layer declared `peer` dead: quarantine its directory table
  /// so lookups stop advertising entries we cannot fetch.
  void on_peer_dead(NodeId peer);

  /// `peer` re-HELLOed: drop its stale table (a resync re-announces the
  /// live entries) and lift the quarantine.
  void on_peer_recovered(NodeId peer);

  // ---- Warm restart (disk-backed caches) ----

  /// Saves the local store's manifest and marks the data files for
  /// retention, so the next process can `restore_state`.
  Status save_state(const std::string& manifest_path);

  /// Restores the local store from a manifest, repopulates the local
  /// directory table, and (if clustered) broadcasts the restored entries so
  /// peers relearn them. Then scrubs the cache directory: corrupt files
  /// were quarantined during adoption, orphans (files no manifest line
  /// references — e.g. a put the crash cut off, or entries save_manifest
  /// skipped as expired) and leftover temp files are deleted. Returns how
  /// many entries came back; a missing manifest restores zero but still
  /// scrubs (first boot over a dirty directory).
  Result<std::size_t> restore_state(const std::string& manifest_path);

  /// What the startup scrub found (zeros before restore_state ran).
  ScrubReport last_scrub() const;

  /// Backend operational counters (erase errors, volume flush/compaction/
  /// recovery stats) for the /swala-status durability object.
  StorageCounters storage_counters() const {
    return store_->storage_counters();
  }

  /// Whether the storage backend is usable (cache dir creation can fail).
  Status storage_status() const { return store_->backend_init_status(); }

  /// True while inserts are suspended after repeated disk failures.
  bool store_degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  // ---- Introspection ----

  ManagerStats stats() const;
  const CacheStore& store() const { return *store_; }
  const CacheDirectory& directory() const { return *directory_; }
  const CacheabilityRules& rules() const { return options_.rules; }
  NodeId self() const { return self_; }
  DirectoryMode directory_mode() const { return options_.directory_mode; }

  /// The node owning `key`'s directory entry on the consistent-hash ring.
  /// Outside partitioned mode (or on an empty ring) this is `self`, so
  /// callers can treat "owner == self" uniformly as "no remote owner".
  NodeId ring_owner_of(const std::string& key) const;

  /// Cross-verifies the store's key set against the directory self-table
  /// under the commit mutex, so the answer is exact (no commit can be half
  /// applied while the check runs). Callable from tests, housekeeping
  /// threads, and the /swala-admin/check-consistency endpoint.
  ConsistencyReport debug_check_consistency() const;

  /// Number of mutation sections committed so far (diagnostics).
  std::uint64_t commit_sequence() const;

  /// Key for a request, exposed for tests and the simulator.
  static CacheKey key_for(http::Method method, const http::Uri& uri);

 private:
  /// One in-flight execution; waiters block on `cv` until the leader
  /// publishes. Held by shared_ptr so a waiter can outlive the map entry.
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;     // guarded by mutex
    bool success = false;  // guarded by mutex
    cgi::CgiOutput output;  ///< valid when success
    int fail_status = 500;
    std::string fail_reason;
  };

  /// A remembered execution failure (negative cache).
  struct NegativeEntry {
    TimeNs expires = 0;
    int status = 503;
    std::string reason;
  };

  /// Shared body of the two lookup overloads; `deadline` null = the legacy
  /// path (no single-flight, no negative cache, uncapped remote fetch).
  LookupResult lookup_impl(http::Method method, const http::Uri& uri,
                           const Deadline* deadline);

  /// Partitioned-mode probe of one candidate directory owner (current or
  /// pre-transition). True when the lookup was satisfied (`out` is a hit).
  bool probe_dir_owner(LookupResult* out, NodeId owner_node,
                       const std::string& key, const Deadline* deadline);

  /// `key`'s owner under the pre-transition ring, or the current owner when
  /// no dual-read window is open (so prev != current ⇔ dual read needed).
  NodeId prev_ring_owner_of(const std::string& key) const;

  /// After a ring change old→new: forward the remapped slice — own store
  /// entries whose directory owner moved (re-announce to the new owner) and
  /// directory partition records this node owned that now belong elsewhere.
  HandoffStats reannounce_remapped(const HashRing& old_ring,
                                   const HashRing& new_ring);

  /// Who to tell about a stale directory record discovered via a false hit.
  enum class FalseHitSource {
    kLocalTable,  ///< replicated: erase from our own peer table
    kRingOwner,   ///< partitioned: also unicast the erase to the ring owner
    kProbe,       ///< query: no durable record exists anywhere — do nothing
  };

  /// Fetches `meta` from its caching node and fills `out` on success.
  /// Handles the false-hit (kNotFound) bookkeeping per `source` and counts
  /// fallback_executions on transport failure. Returns true on a hit.
  bool fetch_hit_from(LookupResult* out, const EntryMeta& meta,
                      const Deadline* deadline, FalseHitSource source);

  /// Mode-aware announcement of a local insert/erase: broadcast in
  /// replicated mode, unicast to the ring owner in partitioned mode, silent
  /// in query mode. announce_erase returns whether anything was sent.
  void announce_insert(const EntryMeta& meta);
  bool announce_erase(const std::string& key, std::uint64_t version);

  /// Single-flight entry point for a miss: leader registration or waiting.
  LookupResult finish_miss(LookupResult out, const std::string& key,
                           const Deadline* deadline);

  /// Releases waiters for `key` with a result or an error. No-op when no
  /// in-flight entry exists (plain-lookup callers never register one).
  void publish_execution(const std::string& key, bool success,
                         const cgi::CgiOutput* output, int fail_status,
                         const std::string& fail_reason);

  /// Remembers a failed execution for negative_ttl_seconds (if enabled).
  void record_negative(const std::string& key, int status,
                       const std::string& reason);

  /// Drops expired negative-cache entries (purge-tick housekeeping).
  void prune_negative();

  /// Removes `key` from store + directory and broadcasts the erase, all in
  /// one commit section. Used by lookup's self-cleanup when the directory
  /// advertises an entry the store can no longer serve. Re-validates under
  /// the mutex and leaves a fresh re-insert untouched.
  void retire_dead_entry(const std::string& key);

  /// Shared body of invalidate / on_peer_invalidate: one commit section
  /// dropping matching keys from the store and every directory table, plus
  /// (optionally) the re-broadcast. Returns local store removals.
  /// Rebroadcast (a locally originated invalidate) stamps the next epoch
  /// for this node; the peer path admits (origin, epoch) through the replay
  /// log's duplicate filter first and no-ops on a replay.
  std::size_t apply_invalidation(const std::string& pattern, bool rebroadcast,
                                 NodeId origin, std::uint64_t epoch);

  /// Degradation bookkeeping around one store insert outcome. Returns true
  /// when the insert should not even be attempted (degraded, not a probe).
  bool degraded_should_skip();
  void record_insert_outcome(bool io_failure);

  /// Saves the manifest if `state_file` is set and the checkpoint interval
  /// elapsed. Called from purge_expired (outside the commit mutex: the
  /// store serializes itself, and a slow disk must not stall lookups).
  void maybe_checkpoint();

  NodeId self_;
  ManagerOptions options_;
  const Clock* clock_;
  CooperationBus* bus_;

  std::unique_ptr<CacheStore> store_;
  std::unique_ptr<CacheDirectory> directory_;
  /// Key → directory-owner placement (partitioned mode; empty otherwise).
  /// Guarded by membership_mutex_ since PR10 (the ring resizes at runtime).
  HashRing ring_;
  // ---- dynamic membership state (guarded by membership_mutex_) ----
  /// Shared (not the commit mutex): ring_owner_of sits on the lookup hot
  /// path; transitions are rare and take the writer side. Lock order:
  /// commit_mutex_ → membership_mutex_ (announce_* under a commit section
  /// read the ring); transitions themselves never hold commit_mutex_.
  mutable std::shared_mutex membership_mutex_;
  /// Pre-transition ring while a dual-read window is open.
  std::optional<HashRing> prev_ring_;
  std::vector<NodeId> members_;  ///< sorted active set (all modes)
  std::atomic<std::uint64_t> membership_epoch_{0};
  std::atomic<bool> decommissioning_{false};
  /// Epoch-stamped invalidation replay log (anti-entropy repair). Its own
  /// mutex; epoch assignment/admission happens inside the commit section so
  /// the epoch order matches the store-mutation order.
  InvalidationLog inv_log_;

  /// Guards every local-store membership change together with its directory
  /// update and broadcast enqueue (see file header). Mutable so read-side
  /// diagnostics (debug_check_consistency) can take it on a const manager.
  mutable std::mutex commit_mutex_;
  std::uint64_t commit_seq_ = 0;  ///< guarded by commit_mutex_

  std::atomic<std::uint64_t> lookups_{0}, uncacheable_{0}, local_hits_{0},
      remote_hits_{0}, misses_{0}, inserts_{0}, below_threshold_{0},
      failed_exec_{0}, false_hits_{0}, false_misses_{0},
      evictions_broadcast_{0}, invalidations_{0}, fallback_executions_{0},
      coalesced_misses_{0}, coalesce_timeouts_{0}, failed_fast_{0},
      remote_dir_lookups_{0}, remote_dir_hits_{0}, peer_queries_{0},
      peer_query_hits_{0}, inv_epoch_gaps_repaired_{0},
      stale_serves_prevented_{0}, inv_overflow_purges_{0},
      membership_transitions_{0}, handoff_records_sent_{0},
      handoff_entries_sent_{0}, handoff_entries_adopted_{0},
      dual_read_probes_{0};

  // ---- single-flight state ----
  /// Guards inflight_ and negative_. Never held while waiting: waiters
  /// block on the flight's own mutex/cv so other keys stay unobstructed.
  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  std::unordered_map<std::string, NegativeEntry> negative_;

  // ---- durability state ----
  std::atomic<bool> degraded_{false};
  /// Checkpointing is held off until restore_state has run (set when
  /// `state_file` is configured): the purge daemon starts before the warm
  /// restore, and a checkpoint of the still-empty store would overwrite the
  /// very manifest the restore is about to read. Stays set when the restore
  /// fails for any reason other than a missing manifest, so an unreadable or
  /// newer-format manifest is never clobbered by this process.
  std::atomic<bool> restore_pending_{false};
  std::atomic<int> consecutive_put_failures_{0};
  std::atomic<std::uint64_t> degraded_attempts_{0};  ///< probe cadence
  std::atomic<std::uint64_t> disk_errors_{0}, degraded_skips_{0},
      checkpoints_{0}, checkpoint_failures_{0};
  /// Guards last_checkpoint_time_ and last_scrub_ (cold path only).
  mutable std::mutex durability_mutex_;
  TimeNs last_checkpoint_time_ = 0;
  ScrubReport last_scrub_;
};

}  // namespace swala::core
