#include "core/fs_ops.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace swala::core {

const char* fs_op_name(FsOp op) {
  switch (op) {
    case FsOp::kOpen: return "open";
    case FsOp::kRead: return "read";
    case FsOp::kWrite: return "write";
    case FsOp::kFsync: return "fsync";
    case FsOp::kRename: return "rename";
    case FsOp::kUnlink: return "unlink";
    case FsOp::kMkdir: return "mkdir";
    case FsOp::kTruncate: return "truncate";
  }
  return "unknown";
}

int FsOps::open(const char* path, int flags, int mode) {
  // Close-on-exec: cache-file descriptors must not leak into fork+exec'd
  // CGI children (fd exhaustion, files held open past erase).
  return ::open(path, flags | O_CLOEXEC, mode);
}

ssize_t FsOps::read(int fd, void* buf, std::size_t count) {
  return ::read(fd, buf, count);
}

ssize_t FsOps::write(int fd, const void* buf, std::size_t count) {
  return ::write(fd, buf, count);
}

ssize_t FsOps::pread(int fd, void* buf, std::size_t count, off_t offset) {
  return ::pread(fd, buf, count, offset);
}

ssize_t FsOps::pwrite(int fd, const void* buf, std::size_t count,
                      off_t offset) {
  return ::pwrite(fd, buf, count, offset);
}

int FsOps::fsync(int fd) { return ::fsync(fd); }

int FsOps::close(int fd) { return ::close(fd); }

int FsOps::rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int FsOps::unlink(const char* path) { return ::unlink(path); }

int FsOps::mkdir(const char* path, int mode) {
  return ::mkdir(path, static_cast<mode_t>(mode));
}

int FsOps::ftruncate(int fd, off_t length) { return ::ftruncate(fd, length); }

FsOps* FsOps::real() {
  static FsOps instance;
  return &instance;
}

// ---- FaultingFsOps ----

FaultingFsOps::FaultingFsOps(std::uint64_t seed) : rng_(seed) {}

void FaultingFsOps::add_rule(FsFaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(ActiveRule{std::move(rule)});
}

void FaultingFsOps::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  crashed_ = false;
}

bool FaultingFsOps::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void FaultingFsOps::reset_crash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = false;
}

std::uint64_t FaultingFsOps::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_injected_;
}

std::optional<FaultingFsOps::Decision> FaultingFsOps::decide(
    FsOp op, const char* path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return Decision{FsFaultKind::kError, EIO};
  for (auto& active : rules_) {
    const FsFaultRule& rule = active.rule;
    if (rule.op.has_value() && *rule.op != op) continue;
    if (!rule.path_substr.empty() && path != nullptr &&
        std::strstr(path, rule.path_substr.c_str()) == nullptr) {
      continue;
    }
    ++active.matched;
    if (active.matched <= rule.skip) return std::nullopt;
    if (rule.count != 0 && active.fired >= rule.count) continue;
    if (rule.probability < 1.0 && !rng_.bernoulli(rule.probability)) {
      return std::nullopt;
    }
    ++active.fired;
    ++faults_injected_;
    if (rule.kind == FsFaultKind::kCrash) crashed_ = true;
    return Decision{rule.kind, rule.error_no};
  }
  return std::nullopt;
}

int FaultingFsOps::open(const char* path, int flags, int mode) {
  if (const auto fault = decide(FsOp::kOpen, path)) {
    errno = fault->kind == FsFaultKind::kError ? fault->error_no : EIO;
    return -1;
  }
  return FsOps::open(path, flags, mode);
}

ssize_t FaultingFsOps::read(int fd, void* buf, std::size_t count) {
  if (const auto fault = decide(FsOp::kRead, nullptr)) {
    errno = fault->kind == FsFaultKind::kError ? fault->error_no : EIO;
    return -1;
  }
  return FsOps::read(fd, buf, count);
}

ssize_t FaultingFsOps::write(int fd, const void* buf, std::size_t count) {
  const auto fault = decide(FsOp::kWrite, nullptr);
  if (!fault) return FsOps::write(fd, buf, count);
  switch (fault->kind) {
    case FsFaultKind::kError:
      errno = fault->error_no;
      return -1;
    case FsFaultKind::kShortWrite: {
      const std::size_t half = count > 1 ? count / 2 : count;
      return FsOps::write(fd, buf, half);
    }
    case FsFaultKind::kCrash: {
      // The dying process got a prefix to the disk; the tail is lost.
      if (count > 1) (void)FsOps::write(fd, buf, count / 2);
      errno = EIO;
      return -1;
    }
  }
  errno = EIO;
  return -1;
}

ssize_t FaultingFsOps::pread(int fd, void* buf, std::size_t count,
                             off_t offset) {
  if (const auto fault = decide(FsOp::kRead, nullptr)) {
    errno = fault->kind == FsFaultKind::kError ? fault->error_no : EIO;
    return -1;
  }
  return FsOps::pread(fd, buf, count, offset);
}

ssize_t FaultingFsOps::pwrite(int fd, const void* buf, std::size_t count,
                              off_t offset) {
  const auto fault = decide(FsOp::kWrite, nullptr);
  if (!fault) return FsOps::pwrite(fd, buf, count, offset);
  switch (fault->kind) {
    case FsFaultKind::kError:
      errno = fault->error_no;
      return -1;
    case FsFaultKind::kShortWrite: {
      const std::size_t half = count > 1 ? count / 2 : count;
      return FsOps::pwrite(fd, buf, half, offset);
    }
    case FsFaultKind::kCrash: {
      // The dying process got a prefix to the disk; the tail is lost.
      if (count > 1) (void)FsOps::pwrite(fd, buf, count / 2, offset);
      errno = EIO;
      return -1;
    }
  }
  errno = EIO;
  return -1;
}

int FaultingFsOps::fsync(int fd) {
  if (const auto fault = decide(FsOp::kFsync, nullptr)) {
    errno = fault->kind == FsFaultKind::kError ? fault->error_no : EIO;
    return -1;
  }
  return FsOps::fsync(fd);
}

int FaultingFsOps::close(int fd) {
  // close() always releases the descriptor; injecting here would leak fds in
  // the caller. Crash mode still fails it (the process is "gone").
  if (crashed()) {
    (void)FsOps::close(fd);
    errno = EIO;
    return -1;
  }
  return FsOps::close(fd);
}

int FaultingFsOps::rename(const char* from, const char* to) {
  if (const auto fault = decide(FsOp::kRename, to)) {
    errno = fault->kind == FsFaultKind::kError ? fault->error_no : EIO;
    return -1;
  }
  return FsOps::rename(from, to);
}

int FaultingFsOps::unlink(const char* path) {
  if (const auto fault = decide(FsOp::kUnlink, path)) {
    errno = fault->kind == FsFaultKind::kError ? fault->error_no : EIO;
    return -1;
  }
  return FsOps::unlink(path);
}

int FaultingFsOps::mkdir(const char* path, int mode) {
  if (const auto fault = decide(FsOp::kMkdir, path)) {
    errno = fault->kind == FsFaultKind::kError ? fault->error_no : EIO;
    return -1;
  }
  return FsOps::mkdir(path, mode);
}

int FaultingFsOps::ftruncate(int fd, off_t length) {
  if (const auto fault = decide(FsOp::kTruncate, nullptr)) {
    errno = fault->kind == FsFaultKind::kError ? fault->error_no : EIO;
    return -1;
  }
  return FsOps::ftruncate(fd, length);
}

// ---- durable-write helpers ----

namespace {

std::string parent_dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status errno_status(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

}  // namespace

Status fsync_parent_dir(FsOps* fs, const std::string& path) {
  if (fs == nullptr) fs = FsOps::real();
  const std::string dir = parent_dir_of(path);
  const int fd = fs->open(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return errno_status("open dir " + dir);
  const int rc = fs->fsync(fd);
  const int saved = errno;
  (void)fs->close(fd);
  if (rc != 0) {
    errno = saved;
    return errno_status("fsync dir " + dir);
  }
  return Status::ok();
}

Status write_file_atomic(FsOps* fs, const std::string& path,
                         std::string_view content) {
  if (fs == nullptr) fs = FsOps::real();
  const std::string tmp = path + ".tmp";
  const int fd = fs->open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_status("open " + tmp);

  const auto fail = [&](const std::string& what) {
    const int saved = errno;
    (void)fs->close(fd);
    (void)fs->unlink(tmp.c_str());
    errno = saved;
    return errno_status(what);
  };

  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = fs->write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write " + tmp);
    }
    if (n == 0) {
      errno = EIO;
      return fail("write " + tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (fs->fsync(fd) != 0) return fail("fsync " + tmp);
  if (fs->close(fd) != 0) {
    const int saved = errno;
    (void)fs->unlink(tmp.c_str());
    errno = saved;
    return errno_status("close " + tmp);
  }
  if (fs->rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    (void)fs->unlink(tmp.c_str());
    errno = saved;
    return errno_status("rename " + tmp);
  }
  return fsync_parent_dir(fs, path);
}

Status make_dirs(FsOps* fs, const std::string& path) {
  if (fs == nullptr) fs = FsOps::real();
  if (path.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty directory path");
  }
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const auto slash = path.find('/', pos);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    prefix = path.substr(0, end);
    pos = end + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (fs->mkdir(prefix.c_str(), 0755) == 0 || errno == EEXIST) {
      if (slash == std::string::npos) break;
      continue;
    }
    return errno_status("mkdir " + prefix);
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status(StatusCode::kIoError, "not a directory: " + path);
  }
  return Status::ok();
}

}  // namespace swala::core
