// Wall-clock chaos driver: the same schedule language executed over a real
// loopback LocalCluster, with faults injected at the TCP transport's send
// side and crash/restart mapped to NodeGroup::stop()/start() (the store
// survives — a partition-like crash, which is exactly the rejoin-staleness
// scenario the repair layer exists for). Timing is real, so verdicts are
// reproducible in outcome but the log is not byte-deterministic; keep
// durations short and slack generous.
#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "chaos/chaos.h"
#include "chaos/internal.h"
#include "cluster/local_cluster.h"
#include "http/uri.h"

namespace swala::chaos {
namespace {

using core::CacheManager;
using core::NodeId;
using detail::fmt3;
using detail::stamp;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ChaosVerdict run_live_chaos(const ChaosSchedule& schedule,
                            const OracleOptions& oracle) {
  ChaosVerdict verdict;
  const std::size_t n = schedule.nodes;

  std::vector<std::unique_ptr<cluster::FaultInjector>> injectors;
  for (std::size_t i = 0; i < n; ++i) {
    injectors.push_back(
        std::make_unique<cluster::FaultInjector>(schedule.seed + i));
  }

  // Test-tuned group options: fast breaker, fast probes, the schedule's
  // anti-entropy cadence.
  const auto group_options = [&](NodeId id) {
    cluster::GroupOptions go;
    go.purge_interval_seconds = 0.2;
    go.failure_threshold = 2;
    go.probe_interval_ms = 100;
    go.connect_timeout_ms = 500;
    go.fetch_timeout_ms = 500;
    go.query_timeout_ms = 200;
    go.backoff_base_ms = 5;
    go.backoff_max_ms = 20;
    go.anti_entropy_interval_ms = static_cast<int>(
        schedule.anti_entropy_interval_seconds * 1000.0);
    go.fault_injector = injectors[id].get();
    go.initial_active = schedule.initial_active;
    go.handoff_batch_bytes = schedule.handoff_batch_bytes;
    return go;
  };
  const auto manager_options = [&](NodeId) {
    core::ManagerOptions mo;
    mo.limits = {100000, 0};
    core::RuleDecision d;
    d.cacheable = true;
    mo.rules.add_rule("/cgi-bin/*", d);
    mo.directory_mode = schedule.directory_mode;
    mo.initial_members = schedule.initial_active;
    return mo;
  };
  cluster::LocalCluster cluster(n, manager_options, RealClock::instance(),
                                group_options);

  detail::StalenessProbe probe;
  probe.interval = schedule.anti_entropy_interval_seconds;
  probe.slack = schedule.slack_seconds;
  probe.instant = oracle.expect_instant_consistency;
  probe.restart_at.assign(n, -1.0);

  std::vector<char> alive(n, 1);
  std::vector<char> member(n, 1);
  if (!schedule.initial_active.empty()) {
    member.assign(n, 0);
    for (const NodeId id : schedule.initial_active) {
      if (id < n) member[id] = 1;
    }
  }
  auto actions = schedule.actions;
  std::stable_sort(actions.begin(), actions.end(),
                   [](const ChaosAction& a, const ChaosAction& b) {
                     return a.at_seconds < b.at_seconds;
                   });

  const auto start = std::chrono::steady_clock::now();
  const auto log = [&](const std::string& text) {
    verdict.log.push_back(stamp(seconds_since(start), text));
  };
  log("chaos(live): " + std::to_string(n) + " nodes, seed " +
      std::to_string(schedule.seed) + ", anti-entropy interval " +
      fmt3(schedule.anti_entropy_interval_seconds) + "s, slack " +
      fmt3(schedule.slack_seconds) + "s");

  const auto nodes_for_check = [&] {
    std::vector<const CacheManager*> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(alive[i] && member[i] ? &cluster.manager(i) : nullptr);
    }
    return nodes;
  };
  const auto poll = [&] {
    if (!oracle.check_bounded_staleness) return;
    probe.poll(seconds_since(start), nodes_for_check(), alive, &verdict);
  };

  const auto apply = [&](const ChaosAction& action) {
    const std::size_t node = action.node;
    switch (action.kind) {
      case ActionKind::kAddFault:
        log("node " + std::to_string(node) + ": add fault " +
            cluster::fault_kind_name(action.rule.kind));
        injectors[node]->add_rule(action.rule);
        break;
      case ActionKind::kClearFaults:
        log("node " + std::to_string(node) + ": clear faults");
        injectors[node]->clear();
        break;
      case ActionKind::kCrash:
        if (!alive[node]) break;
        log("node " + std::to_string(node) + ": CRASH (group stopped)");
        cluster.group(node).stop();
        alive[node] = 0;
        break;
      case ActionKind::kRestart: {
        if (alive[node]) break;
        log("node " + std::to_string(node) + ": RESTART");
        const auto st = cluster.group(node).start();
        if (!st.is_ok()) {
          verdict.violations.push_back(stamp(
              seconds_since(start),
              "HARNESS: restart of node " + std::to_string(node) +
                  " failed: " + st.to_string()));
          break;
        }
        alive[node] = 1;
        probe.restart_at[node] = seconds_since(start);
        break;
      }
      case ActionKind::kInvalidate: {
        if (!alive[node]) {
          log("node " + std::to_string(node) +
              ": invalidate skipped (node down)");
          break;
        }
        probe.invalidations.push_back(
            {action.key_or_pattern, seconds_since(start)});
        const std::size_t removed =
            cluster.manager(node).invalidate(action.key_or_pattern);
        log("node " + std::to_string(node) + ": invalidate \"" +
            action.key_or_pattern + "\" removed " + std::to_string(removed) +
            " local");
        break;
      }
      case ActionKind::kInsert: {
        if (!alive[node]) {
          log("node " + std::to_string(node) + ": insert skipped (down)");
          break;
        }
        http::Uri uri;
        if (!http::parse_uri(action.key_or_pattern, &uri)) {
          log("node " + std::to_string(node) + ": bad insert target");
          break;
        }
        auto& manager = cluster.manager(node);
        auto lookup = manager.lookup(http::Method::kGet, uri);
        if (lookup.outcome != core::LookupOutcome::kMissMustExecute) {
          log("node " + std::to_string(node) + ": insert \"" +
              action.key_or_pattern + "\" skipped (already cached)");
          break;
        }
        auto rule = lookup.rule;
        if (action.ttl_seconds > 0) rule.ttl_seconds = action.ttl_seconds;
        cgi::CgiOutput out;
        out.success = true;
        out.body = "chaos-" + action.key_or_pattern;
        manager.complete(http::Method::kGet, uri, rule, out, 1.0);
        log("node " + std::to_string(node) + ": insert \"" +
            action.key_or_pattern + "\"");
        break;
      }
      case ActionKind::kCheck: {
        const auto report = core::check_cluster_consistency(nodes_for_check());
        log(std::string("mid-run check: ") +
            (report.consistent() ? "consistent" : "drift present") +
            " (advisory)");
        break;
      }
      case ActionKind::kJoinNode: {
        if (!alive[node]) {
          log("node " + std::to_string(node) + ": join skipped (node down)");
          break;
        }
        if (member[node]) {
          log("node " + std::to_string(node) +
              ": join skipped (already a member)");
          break;
        }
        const auto st = cluster.group(node).join_cluster();
        if (!st.is_ok()) {
          verdict.violations.push_back(
              stamp(seconds_since(start),
                    "HARNESS: join of node " + std::to_string(node) +
                        " failed: " + st.to_string()));
          break;
        }
        member[node] = 1;
        verdict.membership_transitions += 1;
        log("node " + std::to_string(node) + ": JOIN complete (epoch " +
            std::to_string(cluster.manager(node).membership_epoch()) + ")");
        break;
      }
      case ActionKind::kDecommissionNode: {
        if (!alive[node] || !member[node]) {
          log("node " + std::to_string(node) +
              ": decommission skipped (not an active member)");
          break;
        }
        auto& manager = cluster.manager(node);
        manager.begin_decommission();
        const auto handed =
            manager.handoff_state(schedule.handoff_batch_bytes);
        cluster.group(node).announce_decommission();
        member[node] = 0;
        verdict.membership_transitions += 1;
        log("node " + std::to_string(node) + ": DECOMMISSION (handed off " +
            std::to_string(handed.records) + " records, " +
            std::to_string(handed.entries) + " entries)");
        break;
      }
    }
  };

  // Single-threaded driver loop: real time, ~20 ms steps. The tail leaves
  // room for two repair rounds after the last scripted action.
  const double tail =
      2.0 * schedule.anti_entropy_interval_seconds + schedule.slack_seconds +
      1.0;
  const double t_end = schedule.duration_seconds + tail;
  std::size_t next_action = 0;
  while (true) {
    const double now = seconds_since(start);
    while (next_action < actions.size() &&
           actions[next_action].at_seconds <= now) {
      apply(actions[next_action]);
      ++next_action;
    }
    poll();
    if (now >= t_end && next_action >= actions.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  cluster.quiesce(5.0);
  poll();

  if (oracle.check_final_consistency) {
    const auto report = core::check_cluster_consistency(nodes_for_check());
    if (!report.consistent()) {
      verdict.violations.push_back(
          stamp(seconds_since(start),
                "FINAL: cluster inconsistent after repair rounds:\n" +
                    report.to_string()));
    }
    log(std::string("final check: ") +
        (report.consistent() ? "consistent" : "INCONSISTENT"));
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto ms = cluster.manager(i).stats();
    verdict.gaps_repaired += ms.inv_epoch_gaps_repaired;
    verdict.stale_serves_prevented += ms.stale_serves_prevented;
    verdict.overflow_purges += ms.inv_overflow_purges;
    const auto gs = cluster.group(i).stats();
    verdict.anti_entropy_rounds += gs.anti_entropy_rounds;
    verdict.repair_frames +=
        gs.digests_sent + 2 * gs.inv_syncs_pulled + gs.inv_syncs_served;
    verdict.handoff_frames += gs.handoff_frames_sent;
    verdict.handoffs_adopted += gs.handoffs_adopted;
  }
  verdict.passed = verdict.violations.empty();
  log(std::string("verdict: ") + (verdict.passed ? "PASS" : "FAIL") + " (" +
      std::to_string(verdict.violations.size()) + " violations, " +
      std::to_string(verdict.gaps_repaired) + " gaps repaired)");
  cluster.stop();
  return verdict;
}

}  // namespace swala::chaos
