// Virtual-time chaos driver: the whole scenario runs on the discrete-event
// engine, so every run of a given schedule is bit-for-bit identical —
// event log included. The in-memory bus mirrors the TCP group's repair
// protocol (epoch piggyback on rejoin, periodic digest rounds with the
// two-strike mismatch rule, kInvSync pulls, recovery resync pushes) while
// charging repair traffic at real encoded-frame sizes.
#include <memory>
#include <unordered_set>

#include "chaos/chaos.h"
#include "chaos/internal.h"
#include "cluster/message.h"
#include "common/strings.h"
#include "http/uri.h"
#include "sim/engine.h"

namespace swala::chaos {
namespace {

using core::CacheManager;
using core::NodeId;
using detail::fmt3;
using detail::stamp;

constexpr double kDeliveryDelay = 0.01;  ///< virtual propagation latency
constexpr double kPollInterval = 0.05;   ///< staleness probe cadence

struct SimState;

/// In-memory CooperationBus for one node; consults the node's seeded
/// FaultInjector for every outgoing leg, exactly like Transport::send.
class ChaosBus final : public core::CooperationBus {
 public:
  ChaosBus(SimState* state, NodeId self) : state_(state), self_(self) {}

  void broadcast_insert(const core::EntryMeta& meta) override;
  void broadcast_erase(NodeId owner, const std::string& key,
                       std::uint64_t version) override;
  void broadcast_invalidate(const std::string& pattern) override {
    broadcast_invalidate(pattern, 0);
  }
  void broadcast_invalidate(const std::string& pattern,
                            std::uint64_t epoch) override;
  void send_owner_insert(NodeId ring_owner,
                         const core::EntryMeta& meta) override;
  void send_owner_erase(NodeId ring_owner, NodeId cache_node,
                        const std::string& key,
                        std::uint64_t version) override;
  Result<core::EntryMeta> lookup_at_owner(NodeId ring_owner,
                                          const std::string& key,
                                          int budget_ms) override;
  Result<core::CachedResult> fetch_remote(NodeId owner,
                                          const std::string& key) override;
  void send_handoff(NodeId successor, const core::EntryMeta& meta,
                    const std::string& body) override;

 private:
  /// Peers outside the sender's membership view get no traffic (the TCP
  /// group drops frames to inactive slots at the sender).
  bool peer_is_member(std::size_t peer) const;

  SimState* state_;
  NodeId self_;
};

/// Everything one sim run owns. Single-threaded: only engine callbacks
/// touch it.
struct SimState {
  const ChaosSchedule* schedule = nullptr;
  const OracleOptions* oracle = nullptr;
  sim::SimEngine engine;
  std::vector<std::unique_ptr<cluster::FaultInjector>> injectors;
  std::vector<std::unique_ptr<ChaosBus>> buses;
  std::vector<std::unique_ptr<CacheManager>> managers;
  std::vector<char> alive;
  /// Active-membership bookkeeping (harness view): nodes outside it take no
  /// part in digest rounds and are excluded from the oracle — a joiner has
  /// not been admitted yet, a decommissioned leaver handed its state off.
  std::vector<char> member;
  ChaosVerdict verdict;
  detail::StalenessProbe probe;
  std::uint64_t digest_round = 0;

  /// Two-strike digest tracking per (receiver, sender), mirroring
  /// PeerLink::{last_peer_digest, last_local_digest, mismatch_pending}.
  struct PairTrack {
    std::uint64_t peer_digest = 0;
    std::uint64_t local_digest = 0;
    bool pending = false;
  };
  std::vector<std::vector<PairTrack>> track;

  void log(const std::string& text) {
    verdict.log.push_back(stamp(engine.now(), text));
  }
  void count_repair(const cluster::Message& msg) {
    verdict.repair_frames += 1;
    verdict.repair_bytes += cluster::encode_message(msg).size();
  }
  /// Send-side fault consultation for one leg: how many copies arrive
  /// (0 = lost, 2 = duplicated), stretching *delay on kDelay.
  int deliveries(NodeId from, NodeId to, cluster::MsgType type,
                 double* delay) {
    const auto fault = injectors[from]->decide(to, type);
    switch (fault.kind) {
      case cluster::FaultKind::kNone:
        return 1;
      case cluster::FaultKind::kDelay:
        *delay += fault.delay_ms / 1000.0;
        return 1;
      case cluster::FaultKind::kDuplicate:
        return 2;
      case cluster::FaultKind::kDrop:
      case cluster::FaultKind::kTruncate:
      case cluster::FaultKind::kBlackhole:
        return 0;
    }
    return 1;
  }
};

bool ChaosBus::peer_is_member(std::size_t peer) const {
  return state_->managers[self_]->is_member(static_cast<NodeId>(peer));
}

void ChaosBus::broadcast_insert(const core::EntryMeta& meta) {
  for (std::size_t peer = 0; peer < state_->managers.size(); ++peer) {
    if (peer == self_ || !peer_is_member(peer)) continue;
    double delay = kDeliveryDelay;
    const int copies = state_->deliveries(
        self_, static_cast<NodeId>(peer), cluster::MsgType::kInsert, &delay);
    for (int c = 0; c < copies; ++c) {
      state_->engine.schedule_in(delay, [this, peer, meta] {
        if (!state_->alive[peer]) return;  // lost on the floor of a crash
        state_->managers[peer]->on_peer_insert(meta);
      });
    }
  }
}

void ChaosBus::broadcast_erase(NodeId owner, const std::string& key,
                               std::uint64_t version) {
  for (std::size_t peer = 0; peer < state_->managers.size(); ++peer) {
    if (peer == self_ || !peer_is_member(peer)) continue;
    double delay = kDeliveryDelay;
    const int copies = state_->deliveries(
        self_, static_cast<NodeId>(peer), cluster::MsgType::kErase, &delay);
    for (int c = 0; c < copies; ++c) {
      state_->engine.schedule_in(delay, [this, peer, owner, key, version] {
        if (!state_->alive[peer]) return;
        state_->managers[peer]->on_peer_erase(owner, key, version);
      });
    }
  }
}

void ChaosBus::broadcast_invalidate(const std::string& pattern,
                                    std::uint64_t epoch) {
  const NodeId origin = self_;
  for (std::size_t peer = 0; peer < state_->managers.size(); ++peer) {
    if (peer == self_ || !peer_is_member(peer)) continue;
    double delay = kDeliveryDelay;
    const int copies =
        state_->deliveries(self_, static_cast<NodeId>(peer),
                           cluster::MsgType::kInvalidate, &delay);
    for (int c = 0; c < copies; ++c) {
      state_->engine.schedule_in(delay, [this, peer, pattern, origin, epoch] {
        if (!state_->alive[peer]) return;
        state_->managers[peer]->on_peer_invalidate(pattern, origin, epoch);
      });
    }
  }
}

void ChaosBus::send_owner_insert(NodeId ring_owner,
                                 const core::EntryMeta& meta) {
  if (ring_owner >= state_->managers.size() || ring_owner == self_) return;
  double delay = kDeliveryDelay;
  const int copies = state_->deliveries(
      self_, ring_owner, cluster::MsgType::kOwnerUpdate, &delay);
  for (int c = 0; c < copies; ++c) {
    state_->engine.schedule_in(delay, [this, ring_owner, meta] {
      if (!state_->alive[ring_owner]) return;
      state_->managers[ring_owner]->on_peer_insert(meta);
    });
  }
}

void ChaosBus::send_owner_erase(NodeId ring_owner, NodeId cache_node,
                                const std::string& key,
                                std::uint64_t version) {
  if (ring_owner >= state_->managers.size() || ring_owner == self_) return;
  double delay = kDeliveryDelay;
  const int copies = state_->deliveries(
      self_, ring_owner, cluster::MsgType::kOwnerUpdate, &delay);
  for (int c = 0; c < copies; ++c) {
    state_->engine.schedule_in(
        delay, [this, ring_owner, cache_node, key, version] {
          if (!state_->alive[ring_owner]) return;
          state_->managers[ring_owner]->on_peer_erase(cache_node, key,
                                                      version);
        });
  }
}

void ChaosBus::send_handoff(NodeId successor, const core::EntryMeta& meta,
                            const std::string& body) {
  if (successor >= state_->managers.size() || successor == self_) return;
  state_->verdict.handoff_frames += 1;
  state_->verdict.handoff_bytes +=
      cluster::encode_message(cluster::Message::insert_handoff(self_, meta,
                                                               body))
          .size();
  double delay = kDeliveryDelay;
  const int copies = state_->deliveries(self_, successor,
                                        cluster::MsgType::kInsert, &delay);
  for (int c = 0; c < copies; ++c) {
    state_->engine.schedule_in(delay, [this, successor, meta, body] {
      if (!state_->alive[successor]) return;
      if (state_->managers[successor]->adopt_entry(meta, body)) {
        state_->verdict.handoffs_adopted += 1;
      }
    });
  }
}

Result<core::EntryMeta> ChaosBus::lookup_at_owner(NodeId ring_owner,
                                                  const std::string& key,
                                                  int budget_ms) {
  (void)budget_ms;
  if (ring_owner >= state_->managers.size()) {
    return Status(StatusCode::kInvalidArgument, "bad ring owner");
  }
  double delay = 0.0;
  if (!state_->alive[ring_owner] ||
      state_->deliveries(self_, ring_owner, cluster::MsgType::kQuery,
                         &delay) == 0) {
    return Status(StatusCode::kTimeout, "chaos: owner lookup lost");
  }
  auto answer = state_->managers[ring_owner]->answer_query(key);
  if (!answer) return Status(StatusCode::kNotFound, "owner knows no copy");
  return *answer;
}

Result<core::CachedResult> ChaosBus::fetch_remote(NodeId owner,
                                                  const std::string& key) {
  if (owner >= state_->managers.size()) {
    return Status(StatusCode::kInvalidArgument, "bad owner");
  }
  double delay = 0.0;
  if (!state_->alive[owner] ||
      state_->deliveries(self_, owner, cluster::MsgType::kFetchReq, &delay) ==
          0) {
    return Status(StatusCode::kTimeout, "chaos: fetch lost");
  }
  return state_->managers[owner]->serve_peer_fetch(key);
}

// ---- repair protocol (mirrors NodeGroup's anti-entropy paths) ----

/// `puller` pulls missed invalidations from `source` over the simulated
/// kInvSync exchange, with both legs subject to fault injection.
void pull_inv_sync(SimState* state, std::size_t puller, std::size_t source) {
  CacheManager* p = state->managers[puller].get();
  CacheManager* s = state->managers[source].get();
  double delay = 0.0;
  const auto req = cluster::Message::inv_sync(static_cast<NodeId>(puller),
                                              p->inv_floor_vector());
  state->count_repair(req);
  if (state->deliveries(static_cast<NodeId>(puller),
                        static_cast<NodeId>(source),
                        cluster::MsgType::kInvSync, &delay) == 0) {
    state->log("node " + std::to_string(puller) +
               ": kInvSync pull to node " + std::to_string(source) +
               " lost (fault injection)");
    return;
  }
  bool truncated = false;
  const auto entries = s->inv_entries_after(p->inv_floor_vector(), &truncated);
  const auto resp = cluster::Message::inv_sync_resp(
      static_cast<NodeId>(source), entries, truncated);
  state->count_repair(resp);
  if (state->deliveries(static_cast<NodeId>(source),
                        static_cast<NodeId>(puller),
                        cluster::MsgType::kInvSyncResp, &delay) == 0) {
    state->log("node " + std::to_string(puller) +
               ": kInvSyncResp from node " + std::to_string(source) +
               " lost (fault injection)");
    return;
  }
  const std::size_t applied = p->apply_inv_sync(entries, truncated);
  state->log("node " + std::to_string(puller) + ": pulled " +
             std::to_string(entries.size()) + " invalidation records from " +
             std::to_string(source) + ", applied " + std::to_string(applied) +
             (truncated ? " (log truncated: full purge)" : ""));
}

/// Epoch-gap check: if `source`'s advertised high vector proves `receiver`
/// missed an invalidation, pull.
void maybe_pull(SimState* state, std::size_t receiver, std::size_t source,
                const core::EpochVector& advertised_high) {
  if (advertised_high.empty()) return;
  if (!state->managers[receiver]->inv_behind(advertised_high)) return;
  state->log("node " + std::to_string(receiver) +
             ": epoch gap behind node " + std::to_string(source));
  pull_inv_sync(state, receiver, source);
}

/// `from` re-announces its resident entries to `to` (the kSyncReq answer /
/// recovery push), mode-aware like NodeGroup::push_state_to.
void push_state(SimState* state, std::size_t from, std::size_t to) {
  CacheManager* m = state->managers[from].get();
  const auto mode = m->directory_mode();
  if (mode == core::DirectoryMode::kQuery) return;
  for (const auto& meta : m->store().resident_metas()) {
    if (mode == core::DirectoryMode::kPartitioned &&
        m->ring_owner_of(meta.key) != static_cast<NodeId>(to)) {
      continue;
    }
    state->count_repair(
        cluster::Message::insert(static_cast<NodeId>(from), meta));
    state->engine.schedule_in(kDeliveryDelay, [state, to, meta] {
      if (!state->alive[to]) return;
      state->managers[to]->on_peer_insert(meta);
    });
  }
}

/// One periodic digest round: every live node sends every live peer a
/// tailored kDigest; receivers pull on an epoch gap and resync on a
/// two-strike digest mismatch.
void digest_round(SimState* state) {
  state->digest_round += 1;
  state->verdict.anti_entropy_rounds += 1;
  const bool has_digest =
      state->schedule->directory_mode != core::DirectoryMode::kQuery;
  for (std::size_t s = 0; s < state->managers.size(); ++s) {
    if (!state->alive[s] || !state->member[s]) continue;
    CacheManager* sender = state->managers[s].get();
    const auto high = sender->inv_high_vector();
    for (std::size_t p = 0; p < state->managers.size(); ++p) {
      if (p == s || !state->alive[p] || !state->member[p]) continue;
      std::size_t entries = 0;
      const std::uint64_t digest =
          sender->digest_for_peer(static_cast<NodeId>(p), &entries);
      const auto msg = cluster::Message::make_digest(
          static_cast<NodeId>(s), high, has_digest, digest);
      state->count_repair(msg);
      double delay = kDeliveryDelay;
      if (state->deliveries(static_cast<NodeId>(s), static_cast<NodeId>(p),
                            cluster::MsgType::kDigest, &delay) == 0) {
        continue;  // this round's frame lost; the next round retries
      }
      state->engine.schedule_in(delay, [state, s, p, high, has_digest,
                                        digest] {
        if (!state->alive[p] || !state->alive[s]) return;
        maybe_pull(state, p, s, high);
        if (!has_digest) return;
        std::size_t n = 0;
        const std::uint64_t local =
            state->managers[p]->digest_of_peer_table(static_cast<NodeId>(s),
                                                     &n);
        auto& track = state->track[p][s];
        if (local == digest) {
          track.pending = false;
          return;
        }
        if (track.pending && track.peer_digest == digest &&
            track.local_digest == local) {
          // Same mismatch two rounds running: nothing is in flight, the
          // divergence is real. Drop the table and ask for a resync.
          track.pending = false;
          state->log("node " + std::to_string(p) +
                     ": digest mismatch vs node " + std::to_string(s) +
                     " confirmed; resyncing table");
          state->managers[p]->on_peer_recovered(static_cast<NodeId>(s));
          push_state(state, s, p);
        } else {
          track.peer_digest = digest;
          track.local_digest = local;
          track.pending = true;
        }
      });
    }
  }
}

/// Rejoin after a crash: mirrors what record_success + the greeting HELLO
/// exchange do on the TCP substrate — survivors drop their quarantined
/// table of the rejoiner and re-push, the rejoiner re-pushes its surviving
/// store, and the HELLO epoch vectors expose invalidation gaps both ways.
void rejoin(SimState* state, std::size_t node) {
  state->alive[node] = 1;
  state->probe.restart_at[node] = state->engine.now();
  if (!state->member[node]) return;  // outside the cluster: nothing to resync
  for (std::size_t o = 0; o < state->managers.size(); ++o) {
    if (o == node || !state->alive[o] || !state->member[o]) continue;
    state->managers[o]->on_peer_recovered(static_cast<NodeId>(node));
    state->managers[node]->on_peer_recovered(static_cast<NodeId>(o));
    push_state(state, o, node);
    push_state(state, node, o);
    // HELLO epoch piggyback, both directions.
    maybe_pull(state, node, o, state->managers[o]->inv_high_vector());
    maybe_pull(state, o, node, state->managers[node]->inv_high_vector());
  }
}

void apply_action(SimState* state, const ChaosAction& action) {
  const std::size_t n = action.node;
  switch (action.kind) {
    case ActionKind::kAddFault:
      state->log("node " + std::to_string(n) + ": add fault " +
                 cluster::fault_kind_name(action.rule.kind) + " peer=" +
                 (action.rule.peer == core::kInvalidNode
                      ? std::string("*")
                      : std::to_string(action.rule.peer)));
      state->injectors[n]->add_rule(action.rule);
      break;
    case ActionKind::kClearFaults:
      state->log("node " + std::to_string(n) + ": clear faults");
      state->injectors[n]->clear();
      break;
    case ActionKind::kCrash:
      if (!state->alive[n]) break;
      state->log("node " + std::to_string(n) + ": CRASH (off the network)");
      state->alive[n] = 0;
      break;
    case ActionKind::kRestart:
      if (state->alive[n]) break;
      state->log("node " + std::to_string(n) + ": RESTART (rejoin resync)");
      rejoin(state, n);
      break;
    case ActionKind::kInvalidate: {
      if (!state->alive[n]) {
        state->log("node " + std::to_string(n) +
                   ": invalidate skipped (node down)");
        break;
      }
      state->probe.invalidations.push_back(
          {action.key_or_pattern, state->engine.now()});
      const std::size_t removed =
          state->managers[n]->invalidate(action.key_or_pattern);
      state->log("node " + std::to_string(n) + ": invalidate \"" +
                 action.key_or_pattern + "\" removed " +
                 std::to_string(removed) + " local");
      if (state->oracle->expect_instant_consistency) {
        // Broken-oracle self-test: probe before the broadcast can land.
        state->engine.schedule_in(kDeliveryDelay / 2, [state] {
          std::vector<const CacheManager*> nodes;
          for (std::size_t i = 0; i < state->managers.size(); ++i) {
            nodes.push_back(state->member[i] ? state->managers[i].get()
                                             : nullptr);
          }
          state->probe.poll(state->engine.now(), nodes, state->alive,
                            &state->verdict);
        });
      }
      break;
    }
    case ActionKind::kInsert: {
      if (!state->alive[n]) {
        state->log("node " + std::to_string(n) +
                   ": insert skipped (node down)");
        break;
      }
      http::Uri uri;
      if (!http::parse_uri(action.key_or_pattern, &uri)) {
        state->log("node " + std::to_string(n) + ": bad insert target \"" +
                   action.key_or_pattern + "\"");
        break;
      }
      auto lookup = state->managers[n]->lookup(http::Method::kGet, uri);
      if (lookup.outcome != core::LookupOutcome::kMissMustExecute) {
        state->log("node " + std::to_string(n) + ": insert \"" +
                   action.key_or_pattern + "\" skipped (already cached)");
        break;
      }
      auto rule = lookup.rule;
      if (action.ttl_seconds > 0) rule.ttl_seconds = action.ttl_seconds;
      cgi::CgiOutput out;
      out.success = true;
      out.body = "chaos-" + action.key_or_pattern;
      state->managers[n]->complete(http::Method::kGet, uri, rule, out, 1.0);
      state->log("node " + std::to_string(n) + ": insert \"" +
                 action.key_or_pattern + "\"");
      break;
    }
    case ActionKind::kCheck: {
      std::vector<const CacheManager*> nodes;
      for (std::size_t i = 0; i < state->managers.size(); ++i) {
        nodes.push_back(state->alive[i] && state->member[i]
                            ? state->managers[i].get()
                            : nullptr);
      }
      const auto report = core::check_cluster_consistency(nodes);
      state->log(std::string("mid-run check: ") +
                 (report.consistent() ? "consistent" : "drift present") +
                 " (advisory)");
      break;
    }
    case ActionKind::kJoinNode: {
      if (!state->alive[n]) {
        state->log("node " + std::to_string(n) + ": join skipped (node down)");
        break;
      }
      if (state->member[n]) {
        state->log("node " + std::to_string(n) +
                   ": join skipped (already a member)");
        break;
      }
      // The kJoinAck responder: the first live member the kJoin fan-out
      // reaches.
      std::size_t responder = state->managers.size();
      for (std::size_t o = 0; o < state->managers.size(); ++o) {
        if (o != n && state->alive[o] && state->member[o]) {
          responder = o;
          break;
        }
      }
      if (responder == state->managers.size()) {
        state->log("node " + std::to_string(n) +
                   ": join skipped (no live member to ack)");
        break;
      }
      // Every live member admits the joiner (the per-peer kJoin serve path):
      // partitioned mode forwards the remapped directory slice, replicated
      // mode re-pushes the admitting peer's resident entries.
      const auto mode = state->managers[n]->directory_mode();
      for (std::size_t o = 0; o < state->managers.size(); ++o) {
        if (o == n || !state->alive[o] || !state->member[o]) continue;
        const auto hs =
            state->managers[o]->member_joined(static_cast<NodeId>(n));
        if (hs.records + hs.entries > 0) {
          state->log("node " + std::to_string(o) + ": remapped " +
                     std::to_string(hs.records) + " records, re-announced " +
                     std::to_string(hs.entries) + " entries for joiner " +
                     std::to_string(n));
        }
        if (mode == core::DirectoryMode::kReplicated) {
          push_state(state, o, n);
        }
      }
      // The joiner adopts the responder's post-admission view (kJoinAck).
      state->member[n] = 1;
      state->managers[n]->adopt_membership(
          state->managers[responder]->membership_epoch(),
          state->managers[responder]->active_members());
      state->verdict.membership_transitions += 1;
      state->log("node " + std::to_string(n) + ": JOIN complete (epoch " +
                 std::to_string(state->managers[n]->membership_epoch()) +
                 ")");
      break;
    }
    case ActionKind::kDecommissionNode: {
      if (!state->alive[n] || !state->member[n]) {
        state->log("node " + std::to_string(n) +
                   ": decommission skipped (not an active member)");
        break;
      }
      state->managers[n]->begin_decommission();
      const auto hs = state->managers[n]->handoff_state(
          state->schedule->handoff_batch_bytes);
      for (std::size_t o = 0; o < state->managers.size(); ++o) {
        if (o == n || !state->alive[o] || !state->member[o]) continue;
        state->managers[o]->member_left(static_cast<NodeId>(n));
      }
      state->member[n] = 0;
      state->verdict.membership_transitions += 1;
      state->log("node " + std::to_string(n) + ": DECOMMISSION (handed off " +
                 std::to_string(hs.records) + " records, " +
                 std::to_string(hs.entries) + " entries)");
      break;
    }
  }
}

}  // namespace

ChaosVerdict run_sim_chaos(const ChaosSchedule& schedule,
                           const OracleOptions& oracle) {
  SimState state;
  state.schedule = &schedule;
  state.oracle = &oracle;
  const std::size_t n = schedule.nodes;
  state.alive.assign(n, 1);
  if (schedule.initial_active.empty()) {
    state.member.assign(n, 1);
  } else {
    state.member.assign(n, 0);
    for (const NodeId id : schedule.initial_active) {
      if (id < n) state.member[id] = 1;
    }
  }
  state.track.assign(n, std::vector<SimState::PairTrack>(n));
  state.probe.interval = schedule.anti_entropy_interval_seconds;
  state.probe.slack = schedule.slack_seconds;
  state.probe.instant = oracle.expect_instant_consistency;
  state.probe.restart_at.assign(n, -1.0);

  for (std::size_t i = 0; i < n; ++i) {
    state.injectors.push_back(std::make_unique<cluster::FaultInjector>(
        schedule.seed + i));
    state.buses.push_back(
        std::make_unique<ChaosBus>(&state, static_cast<NodeId>(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    core::ManagerOptions mo;
    mo.limits = {100000, 0};
    core::RuleDecision d;
    d.cacheable = true;
    mo.rules.add_rule("/cgi-bin/*", d);
    mo.directory_mode = schedule.directory_mode;
    mo.initial_members = schedule.initial_active;
    state.managers.push_back(std::make_unique<CacheManager>(
        static_cast<NodeId>(i), n, std::move(mo), state.engine.clock(),
        state.buses[i].get()));
  }

  state.log("chaos: " + std::to_string(n) + " nodes, seed " +
            std::to_string(schedule.seed) + ", anti-entropy interval " +
            fmt3(schedule.anti_entropy_interval_seconds) + "s, slack " +
            fmt3(schedule.slack_seconds) + "s");

  // Tail: enough for two repair rounds after the last scripted action.
  const double tail =
      2.0 * schedule.anti_entropy_interval_seconds + schedule.slack_seconds +
      0.5;
  const double t_end = schedule.duration_seconds + tail;

  for (const auto& action : schedule.actions) {
    state.engine.schedule_at(action.at_seconds, [&state, action] {
      apply_action(&state, action);
    });
  }
  if (schedule.anti_entropy_interval_seconds > 0) {
    for (double t = schedule.anti_entropy_interval_seconds; t < t_end;
         t += schedule.anti_entropy_interval_seconds) {
      state.engine.schedule_at(t, [&state] { digest_round(&state); });
    }
  }
  if (oracle.check_bounded_staleness) {
    for (double t = kPollInterval; t < t_end; t += kPollInterval) {
      state.engine.schedule_at(t, [&state] {
        std::vector<const CacheManager*> nodes;
        for (std::size_t i = 0; i < state.managers.size(); ++i) {
          nodes.push_back(state.member[i] ? state.managers[i].get()
                                          : nullptr);
        }
        state.probe.poll(state.engine.now(), nodes, state.alive,
                         &state.verdict);
      });
    }
  }
  state.engine.run();

  // Final global oracle: crashed nodes have no view to check.
  if (oracle.check_final_consistency) {
    std::vector<const CacheManager*> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(state.alive[i] && state.member[i]
                          ? state.managers[i].get()
                          : nullptr);
    }
    const auto report = core::check_cluster_consistency(nodes);
    if (!report.consistent()) {
      state.verdict.violations.push_back(
          stamp(state.engine.now(),
                "FINAL: cluster inconsistent after repair rounds:\n" +
                    report.to_string()));
    }
    state.log(std::string("final check: ") +
              (report.consistent() ? "consistent" : "INCONSISTENT"));
  }
  for (const auto& m : state.managers) {
    const auto s = m->stats();
    state.verdict.gaps_repaired += s.inv_epoch_gaps_repaired;
    state.verdict.stale_serves_prevented += s.stale_serves_prevented;
    state.verdict.overflow_purges += s.inv_overflow_purges;
  }
  state.verdict.passed = state.verdict.violations.empty();
  state.log(std::string("verdict: ") +
            (state.verdict.passed ? "PASS" : "FAIL") + " (" +
            std::to_string(state.verdict.violations.size()) +
            " violations, " +
            std::to_string(state.verdict.gaps_repaired) + " gaps repaired, " +
            std::to_string(state.verdict.stale_serves_prevented) +
            " stale serves prevented)");
  return state.verdict;
}

}  // namespace swala::chaos
