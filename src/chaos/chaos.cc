#include "chaos/chaos.h"

#include <cstdio>

#include "chaos/internal.h"
#include "common/random.h"
#include "common/strings.h"

namespace swala::chaos {

const char* action_kind_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kAddFault:
      return "add_fault";
    case ActionKind::kClearFaults:
      return "clear_faults";
    case ActionKind::kCrash:
      return "crash";
    case ActionKind::kRestart:
      return "restart";
    case ActionKind::kInvalidate:
      return "invalidate";
    case ActionKind::kInsert:
      return "insert";
    case ActionKind::kCheck:
      return "check";
    case ActionKind::kJoinNode:
      return "join_node";
    case ActionKind::kDecommissionNode:
      return "decommission_node";
  }
  return "?";
}

std::string ChaosVerdict::log_text() const {
  std::string out;
  for (const auto& line : log) {
    out += line;
    out += '\n';
  }
  return out;
}

ChaosSchedule make_random_schedule(std::uint64_t seed, std::size_t nodes,
                                   double duration_seconds) {
  if (nodes < 2) nodes = 2;
  if (duration_seconds < 2.0) duration_seconds = 2.0;
  ChaosSchedule s;
  s.nodes = nodes;
  s.seed = seed;
  s.duration_seconds = duration_seconds;
  Rng rng(seed ^ 0xC4A05C4A05ULL);

  const auto node_of = [&rng, nodes] {
    return static_cast<core::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
  };
  const auto push = [&s](double t, ChaosAction a) {
    a.at_seconds = t;
    s.actions.push_back(std::move(a));
  };

  // Warmup: every node caches a few keys in its own namespace, all before
  // any invalidation fires (the staleness probe is membership-based, so a
  // pattern must never be re-populated after its invalidation).
  for (std::size_t n = 0; n < nodes; ++n) {
    const int keys = static_cast<int>(rng.uniform_int(2, 4));
    for (int k = 0; k < keys; ++k) {
      ChaosAction a;
      a.kind = ActionKind::kInsert;
      a.node = static_cast<core::NodeId>(n);
      a.key_or_pattern =
          "/cgi-bin/chaos/n" + std::to_string(n) + "/k" + std::to_string(k);
      push(rng.uniform(0.02, 0.2) * duration_seconds, a);
    }
  }

  // Fault storm: a handful of send-side rules on random nodes. Everything
  // is cleared well before the end so the tail repair rounds can converge.
  const int storms = static_cast<int>(rng.uniform_int(2, 4));
  for (int i = 0; i < storms; ++i) {
    ChaosAction a;
    a.kind = ActionKind::kAddFault;
    a.node = node_of();
    cluster::FaultRule rule;
    rule.peer = rng.bernoulli(0.5) ? node_of() : core::kInvalidNode;
    switch (rng.uniform_int(0, 3)) {
      case 0:
        rule.type = cluster::MsgType::kInvalidate;
        break;
      case 1:
        rule.type = cluster::MsgType::kInsert;
        break;
      case 2:
        rule.type = cluster::MsgType::kErase;
        break;
      default:
        rule.type.reset();  // any message type
        break;
    }
    switch (rng.uniform_int(0, 3)) {
      case 0:
        rule.kind = cluster::FaultKind::kDrop;
        break;
      case 1:
        rule.kind = cluster::FaultKind::kDelay;
        rule.delay_ms = static_cast<int>(rng.uniform_int(20, 150));
        break;
      case 2:
        rule.kind = cluster::FaultKind::kDuplicate;
        break;
      default:
        rule.kind = cluster::FaultKind::kBlackhole;
        break;
    }
    rule.probability = rng.bernoulli(0.5) ? 1.0 : 0.6;
    a.rule = rule;
    push(rng.uniform(0.2, 0.5) * duration_seconds, a);
  }

  // One partition-like crash + rejoin (store survives, network does not).
  const core::NodeId victim = node_of();
  {
    ChaosAction a;
    a.kind = ActionKind::kCrash;
    a.node = victim;
    push(rng.uniform(0.25, 0.35) * duration_seconds, a);
    a.kind = ActionKind::kRestart;
    push(rng.uniform(0.55, 0.65) * duration_seconds, a);
  }

  // Invalidations of the warmup namespaces, after every matching insert.
  const int invals = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < invals; ++i) {
    const core::NodeId target = node_of();
    ChaosAction a;
    a.kind = ActionKind::kInvalidate;
    a.node = node_of();  // any node may originate it
    a.key_or_pattern =
        "GET /cgi-bin/chaos/n" + std::to_string(target) + "/*";
    push(rng.uniform(0.3, 0.55) * duration_seconds, a);
  }

  // Clear every injector, then snapshot mid-run state.
  for (std::size_t n = 0; n < nodes; ++n) {
    ChaosAction a;
    a.kind = ActionKind::kClearFaults;
    a.node = static_cast<core::NodeId>(n);
    push(0.7 * duration_seconds, a);
  }
  {
    ChaosAction a;
    a.kind = ActionKind::kCheck;
    push(0.75 * duration_seconds, a);
  }
  return s;
}

namespace detail {

std::string fmt3(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return std::string(buf);
}

std::string stamp(double t, const std::string& text) {
  return "t=" + fmt3(t) + " " + text;
}

double StalenessProbe::deadline_for(std::size_t node, double t_inv) const {
  double base = t_inv;
  if (node < restart_at.size() && restart_at[node] > base) {
    base = restart_at[node];  // a rejoiner gets one repair exchange
  }
  if (instant) return base + 0.001;
  return base + interval + slack;
}

void StalenessProbe::poll(double now,
                          const std::vector<const core::CacheManager*>& nodes,
                          const std::vector<char>& alive,
                          ChaosVerdict* verdict) {
  for (const auto& inv : invalidations) {
    if (now <= inv.at) continue;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (nodes[n] == nullptr || !alive[n]) continue;
      for (const auto& key : nodes[n]->store().keys()) {
        if (!glob_match(inv.pattern, key)) continue;
        const double deadline = deadline_for(n, inv.at);
        const std::string id = std::to_string(n) + "|" + key + "|" +
                               std::to_string(inv.at);
        const bool is_violation = now > deadline;
        if (is_violation && violated_.insert(id).second) {
          StalenessWindow w;
          w.node = static_cast<core::NodeId>(n);
          w.key = key;
          w.invalidated_at = inv.at;
          w.observed_at = now;
          w.deadline = deadline;
          w.violation = true;
          verdict->staleness_windows.push_back(w);
          verdict->violations.push_back(detail::stamp(
              now, "STALE: node " + std::to_string(n) + " still holds \"" +
                       key + "\" invalidated at t=" + fmt3(inv.at) +
                       " (deadline t=" + fmt3(deadline) + ")"));
        } else if (!is_violation && seen_.insert(id).second) {
          StalenessWindow w;
          w.node = static_cast<core::NodeId>(n);
          w.key = key;
          w.invalidated_at = inv.at;
          w.observed_at = now;
          w.deadline = deadline;
          verdict->staleness_windows.push_back(w);
        }
      }
    }
  }
}

}  // namespace detail

}  // namespace swala::chaos
