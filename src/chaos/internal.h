// Shared internals of the two chaos drivers (sim + live): event-log
// stamping and the bounded-staleness probe. Kept out of chaos.h — these
// are implementation details, not harness API.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "chaos/chaos.h"

namespace swala::chaos::detail {

/// "t=1.250 <text>" — fixed %.3f formatting so the sim substrate's log is
/// byte-deterministic across runs.
std::string stamp(double t, const std::string& text);

/// "%.3f" of a time value (for embedding mid-sentence).
std::string fmt3(double t);

/// One invalidation the oracle is watching.
struct InvalidationTrack {
  std::string pattern;  ///< glob over full cache keys
  double at = 0.0;      ///< origination time (harness clock)
};

/// The bounded-staleness probe: called periodically by both drivers, it
/// scans every live node's store for entries matching a tracked pattern.
/// An observation is a StalenessWindow; one past the node's deadline is a
/// violation. A node's deadline restarts when the node does (a rejoiner is
/// entitled to one repair exchange before its copy must be gone).
struct StalenessProbe {
  double interval = 0.0;  ///< anti-entropy cadence (0 = disabled)
  double slack = 0.5;
  /// Broken-oracle mode: the deadline collapses to ~origination time, so
  /// any propagation delay at all trips it (oracle self-test).
  bool instant = false;

  std::vector<InvalidationTrack> invalidations;
  std::vector<double> restart_at;  ///< per node; < 0 = never restarted

  /// Deadline for `node` to have dropped entries invalidated at `t_inv`.
  double deadline_for(std::size_t node, double t_inv) const;

  /// Scans `nodes` (index = node id; skip when !alive[i]) at harness time
  /// `now`, appending windows/violations to `verdict`. Each (node, key,
  /// invalidation) is reported at most once per phase (seen / violated).
  void poll(double now, const std::vector<const core::CacheManager*>& nodes,
            const std::vector<char>& alive, ChaosVerdict* verdict);

 private:
  std::set<std::string> seen_;
  std::set<std::string> violated_;
};

}  // namespace swala::chaos::detail
