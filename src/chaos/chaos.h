// Deterministic chaos harness + invariant oracle for the anti-entropy
// consistency-repair layer.
//
// A ChaosSchedule is a seeded, time-scripted fault scenario: inserts,
// invalidations, fault-injection rules (drop storms, slow peers, duplicate
// replays, torn writes), crash/restart of whole nodes, and explicit
// mid-run checkpoints. The same schedule runs on two substrates:
//
//   * run_sim_chaos  — virtual time over the discrete-event engine; fully
//     deterministic (same seed + schedule ⇒ byte-identical event log and
//     verdict), so it can drive CI regression tests of the repair protocol.
//   * run_live_chaos — real loopback TCP via LocalCluster + the send-side
//     FaultInjector; wall-clock time, so the verdict is reproducible in
//     outcome but not byte-for-byte in its log.
//
// The oracle asserts the bounded-staleness invariant: after invalidate(P)
// at time t, no live node may still hold a matching pre-invalidation entry
// past t + anti_entropy_interval + slack. With the interval set to 0
// (anti-entropy disabled) the deadline collapses to t + slack, which is how
// the harness demonstrates the failure mode the repair layer exists to fix.
// It also runs the cluster-wide store↔directory consistency check at the
// end of the run (crashed nodes excluded — they have no view to check).
//
// Schedules must not re-insert a key matching a pattern they have already
// invalidated: the staleness probe is membership-based (an entry in the
// store matching an invalidated pattern is presumed pre-invalidation), and
// make_random_schedule respects that by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/transport.h"
#include "core/manager.h"

namespace swala::chaos {

/// One scripted event in a chaos schedule.
enum class ActionKind {
  kAddFault,     ///< install `rule` on `node`'s send-side fault injector
  kClearFaults,  ///< clear every rule on `node`'s injector
  kCrash,        ///< take `node` off the network (its store survives —
                 ///< partition-like crash, the rejoin-staleness scenario)
  kRestart,      ///< bring `node` back; rejoin resync + epoch repair run
  kInvalidate,   ///< `node` originates invalidate(key_or_pattern)
  kInsert,       ///< `node` executes + caches GET key_or_pattern
  kCheck,        ///< log a mid-run cluster consistency snapshot (advisory:
                 ///< drift is legal mid-traffic under weak consistency)
  kJoinNode,     ///< `node` runs the two-phase join protocol into the live
                 ///< cluster (no-op when already an active member)
  kDecommissionNode,  ///< graceful leave: `node` stops admitting entries,
                      ///< hands cached state to its ring successors, and
                      ///< peers deactivate it without quarantining it
};

const char* action_kind_name(ActionKind kind);

struct ChaosAction {
  double at_seconds = 0.0;
  ActionKind kind = ActionKind::kCheck;
  core::NodeId node = 0;         ///< acting node
  cluster::FaultRule rule;       ///< kAddFault only
  std::string key_or_pattern;    ///< kInsert: request target; kInvalidate:
                                 ///< glob over full cache keys ("GET /…*")
  double ttl_seconds = 0.0;      ///< kInsert: 0 = never expires
};

/// A complete scripted scenario. `seed` feeds every per-node FaultInjector
/// (seed + node) and, for generated schedules, the action mix itself.
struct ChaosSchedule {
  std::size_t nodes = 3;
  std::uint64_t seed = 1;
  double duration_seconds = 10.0;
  /// Anti-entropy digest cadence; 0 disables the periodic repair rounds
  /// (HELLO-piggybacked epoch repair on rejoin still runs — it is part of
  /// the resync path, not the periodic round).
  double anti_entropy_interval_seconds = 1.0;
  /// Grace beyond one anti-entropy round before staleness is a violation
  /// (covers propagation delay and, on the live substrate, scheduling).
  double slack_seconds = 0.5;
  core::DirectoryMode directory_mode = core::DirectoryMode::kReplicated;
  /// Active members at t=0 (empty = every node). A node absent from this
  /// list starts outside the cluster — alive and addressable, but ignored
  /// by peers — and must kJoinNode before it cooperates.
  std::vector<core::NodeId> initial_active;
  /// Decommission handoff: entry bodies larger than this are not shipped
  /// (0 = no cap). Mirrors cluster.handoff_batch_bytes.
  std::uint64_t handoff_batch_bytes = 256 * 1024;
  std::vector<ChaosAction> actions;
};

/// What the oracle checks. `expect_instant_consistency` is a deliberately
/// broken invariant (staleness deadline t + ~0 instead of t + interval +
/// slack): the harness self-test uses it to prove the oracle actually fails
/// when given a falsifiable claim, guarding against a vacuous checker.
struct OracleOptions {
  bool check_bounded_staleness = true;
  bool check_final_consistency = true;
  bool expect_instant_consistency = false;
};

/// One observed stale interval: `node` still held a pre-invalidation entry
/// matching an invalidated pattern at `observed_at` (> invalidated_at).
/// A violation is such an observation past `deadline`.
struct StalenessWindow {
  core::NodeId node = core::kInvalidNode;
  std::string key;
  double invalidated_at = 0.0;
  double observed_at = 0.0;
  double deadline = 0.0;
  bool violation = false;
};

/// Verdict of one chaos run.
struct ChaosVerdict {
  bool passed = false;
  std::vector<std::string> violations;
  /// Chronological event log ("t=1.250 …"); byte-deterministic on the sim
  /// substrate for a given schedule.
  std::vector<std::string> log;
  std::vector<StalenessWindow> staleness_windows;

  // ---- repair-layer accounting (cost of the consistency guarantee) ----
  std::uint64_t anti_entropy_rounds = 0;
  std::uint64_t repair_frames = 0;  ///< kDigest + kInvSync(+Resp) + resync
  std::uint64_t repair_bytes = 0;
  std::uint64_t gaps_repaired = 0;          ///< sum of per-node stats
  std::uint64_t stale_serves_prevented = 0; ///< sum of per-node stats
  std::uint64_t overflow_purges = 0;        ///< sum of per-node stats

  // ---- membership churn accounting (kJoinNode / kDecommissionNode) ----
  std::uint64_t membership_transitions = 0;  ///< joins + decommissions applied
  std::uint64_t handoff_frames = 0;   ///< entries shipped on the handoff
                                      ///< channel (kInsert handoff frames)
  std::uint64_t handoff_bytes = 0;    ///< encoded size of those frames
                                      ///< (sim substrate only)
  std::uint64_t handoffs_adopted = 0; ///< shipped entries successors adopted

  /// The whole log as one newline-joined string (determinism guard tests
  /// compare this across runs).
  std::string log_text() const;
};

/// Generates a seeded random-but-deterministic schedule: a warmup wave of
/// inserts, a middle phase of fault storms / crashes / invalidations, a
/// fault-clearing step well before the end (so the tail anti-entropy rounds
/// can actually converge), and restarts for every crashed node.
ChaosSchedule make_random_schedule(std::uint64_t seed, std::size_t nodes,
                                   double duration_seconds);

/// Runs `schedule` under virtual time (discrete-event engine, in-memory
/// bus, per-node seeded FaultInjectors). Deterministic.
ChaosVerdict run_sim_chaos(const ChaosSchedule& schedule,
                           const OracleOptions& oracle = {});

/// Runs `schedule` over real loopback TCP (LocalCluster). Crash/restart map
/// to NodeGroup::stop()/start(); wall-clock timing, so keep durations short
/// and slack generous.
ChaosVerdict run_live_chaos(const ChaosSchedule& schedule,
                            const OracleOptions& oracle = {});

}  // namespace swala::chaos
