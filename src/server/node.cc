#include "server/node.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <unistd.h>

#include "common/logging.h"
#include "common/strings.h"

namespace swala::server {

namespace {

// ---- signal-save plumbing ----
//
// A SIGTERM/SIGINT handler may only do async-signal-safe work, so the
// handler writes one byte to a self-pipe; a watcher thread does the actual
// manifest save and then re-raises the signal with the default disposition
// so the process still terminates. Only the first node with a state file
// registers (multi-node-per-process setups are test-only; their harnesses
// stop() nodes explicitly). If the embedding program installed its own
// handler (like swalad does after start()), that handler simply wins —
// its orderly stop() saves the manifest anyway.

int g_save_pipe[2] = {-1, -1};
std::atomic<SwalaNode*> g_signal_node{nullptr};
std::atomic<int> g_signal_received{0};

void on_save_signal(int signo) {
  g_signal_received.store(signo, std::memory_order_relaxed);
  const char byte = 1;
  ssize_t rc = ::write(g_save_pipe[1], &byte, 1);
  (void)rc;
}

}  // namespace

Result<std::unique_ptr<SwalaNode>> SwalaNode::from_config(
    const Config& config, std::shared_ptr<cgi::HandlerRegistry> registry) {
  auto node = std::unique_ptr<SwalaNode>(new SwalaNode());

  // ---- cluster membership ----
  std::vector<cluster::MemberAddress> members;
  for (const auto& line : config.get_all("cluster", "member")) {
    const auto tokens = split_trimmed(line, ' ');
    if (tokens.size() != 4) {
      return Status(StatusCode::kInvalidArgument,
                    "member needs 'id host info_port data_port': " + line);
    }
    std::uint64_t id = 0, info_port = 0, data_port = 0;
    if (!parse_u64(tokens[0], &id) || !parse_u64(tokens[2], &info_port) ||
        !parse_u64(tokens[3], &data_port) || info_port > 65535 ||
        data_port > 65535) {
      return Status(StatusCode::kInvalidArgument, "bad member line: " + line);
    }
    cluster::MemberAddress m;
    m.id = static_cast<core::NodeId>(id);
    m.info_addr = {tokens[1], static_cast<std::uint16_t>(info_port)};
    m.data_addr = {tokens[1], static_cast<std::uint16_t>(data_port)};
    members.push_back(std::move(m));
  }
  const auto node_id =
      static_cast<core::NodeId>(config.get_int("cluster", "node_id", 0));
  const std::size_t group_size = members.empty() ? 1 : members.size();

  // Fail fast on membership misconfiguration: a duplicate id silently
  // shadows a peer, a sparse id indexes past the directory tables, and a
  // node_id outside the list binds no listeners yet broadcasts to everyone.
  if (!members.empty()) {
    std::vector<bool> seen(members.size(), false);
    bool self_listed = false;
    for (const auto& m : members) {
      if (m.id >= members.size()) {
        return Status(StatusCode::kInvalidArgument,
                      "cluster.member id " + std::to_string(m.id) +
                          " outside [0, " + std::to_string(members.size()) +
                          "): ids must be dense");
      }
      if (seen[m.id]) {
        return Status(StatusCode::kInvalidArgument,
                      "duplicate cluster.member id " + std::to_string(m.id));
      }
      seen[m.id] = true;
      if (m.id == node_id) self_listed = true;
    }
    if (!self_listed) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster.node_id " + std::to_string(node_id) +
                        " is not in the member list");
    }
  }

  // ---- cache manager ----
  const bool cache_enabled = config.get_bool("cache", "enabled", true);
  if (cache_enabled) {
    core::ManagerOptions mo;
    mo.limits.max_entries =
        static_cast<std::uint64_t>(config.get_int("cache", "max_entries", 2000));
    mo.limits.max_bytes =
        static_cast<std::uint64_t>(config.get_int("cache", "max_bytes", 0));
    // Hot-blob cache on by default for deployments: a disk-backed store
    // otherwise pays a file read + CRC on every hit (0 disables).
    mo.limits.hot_bytes = static_cast<std::uint64_t>(
        config.get_int("cache", "hot_bytes", 64 * 1024 * 1024));
    auto policy =
        core::policy_from_name(config.get_string("cache", "policy", "lru"));
    if (!policy) return policy.status();
    mo.policy = policy.value();
    const std::string disk_dir = config.get_string("cache", "disk_dir", "");
    mo.disk_dir = disk_dir;

    // ---- store backend (files | volume) ----
    const std::string store_name = config.get_string("cache", "store", "files");
    if (store_name == "files") {
      mo.store = core::StoreBackendKind::kFiles;
    } else if (store_name == "volume") {
      mo.store = core::StoreBackendKind::kVolume;
    } else {
      return Status(StatusCode::kInvalidArgument,
                    "cache.store must be files or volume: " + store_name);
    }
    const std::int64_t volume_bytes =
        config.get_int("cache", "volume_bytes", 0);
    const std::int64_t segment_bytes =
        config.get_int("cache", "segment_bytes", 4 * 1024 * 1024);
    const std::int64_t write_buffer_bytes =
        config.get_int("cache", "write_buffer_bytes", 256 * 1024);
    const std::int64_t flush_interval_ms =
        config.get_int("cache", "flush_interval_ms", 100);
    if (mo.store == core::StoreBackendKind::kVolume) {
      if (disk_dir.empty()) {
        return Status(StatusCode::kInvalidArgument,
                      "cache.store = volume requires cache.disk_dir");
      }
      if (volume_bytes <= 0) {
        return Status(StatusCode::kInvalidArgument,
                      "cache.store = volume requires cache.volume_bytes > 0");
      }
      if (segment_bytes <= 0 ||
          static_cast<std::uint64_t>(segment_bytes) <=
              core::kVolumeSegmentHeaderSize + core::kVolumeRecordHeaderSize) {
        return Status(StatusCode::kInvalidArgument,
                      "cache.segment_bytes too small: " +
                          std::to_string(segment_bytes));
      }
      if (volume_bytes < 2 * segment_bytes) {
        return Status(StatusCode::kInvalidArgument,
                      "cache.volume_bytes must hold at least two segments "
                      "of cache.segment_bytes");
      }
      if (write_buffer_bytes <= 0) {
        return Status(StatusCode::kInvalidArgument,
                      "cache.write_buffer_bytes must be > 0: " +
                          std::to_string(write_buffer_bytes));
      }
      if (flush_interval_ms < 0) {
        return Status(StatusCode::kInvalidArgument,
                      "cache.flush_interval_ms must be >= 0: " +
                          std::to_string(flush_interval_ms));
      }
      mo.volume.volume_bytes = static_cast<std::uint64_t>(volume_bytes);
      mo.volume.segment_bytes = static_cast<std::uint64_t>(segment_bytes);
      mo.volume.write_buffer_bytes =
          static_cast<std::uint64_t>(write_buffer_bytes);
      mo.volume.flush_interval_ms =
          static_cast<std::uint64_t>(flush_interval_ms);
    }

    auto rules = core::CacheabilityRules::from_config(config);
    if (!rules) return rules.status();
    mo.rules = std::move(rules.value());

    // ---- cooperation scheme ----
    const std::string mode_name =
        config.get_string("cluster", "directory_mode", "replicated");
    const auto mode = core::directory_mode_from_name(mode_name);
    if (!mode) {
      return Status(StatusCode::kInvalidArgument,
                    "cluster.directory_mode must be replicated, partitioned "
                    "or query: " +
                        mode_name);
    }
    mo.directory_mode = *mode;
    mo.ring_vnodes = static_cast<std::size_t>(config.get_int(
        "cluster", "ring_vnodes",
        static_cast<std::int64_t>(HashRing::kDefaultVnodes)));
    mo.ring_seed = static_cast<std::uint64_t>(config.get_int(
        "cluster", "ring_seed",
        static_cast<std::int64_t>(HashRing::kDefaultSeed)));

    if (!members.empty()) {
      cluster::GroupOptions go;
      go.purge_interval_seconds =
          config.get_double("cache", "purge_interval", 2.0);
      // Batching defaults ON for deployments (GroupOptions itself defaults
      // it off so tests keep one-message-per-frame semantics).
      go.batch_max_messages = static_cast<std::size_t>(
          config.get_int("cluster", "batch_max_messages", 64));
      go.batch_max_bytes = static_cast<std::size_t>(
          config.get_int("cluster", "batch_max_bytes", 256 * 1024));
      go.batch_linger_ms =
          static_cast<int>(config.get_int("cluster", "batch_linger_ms", 2));
      go.query_timeout_ms = static_cast<int>(
          config.get_int("cluster", "query_timeout_ms", 300));
      // Anti-entropy digest cadence; 0 disables the repair layer (gaps then
      // heal only via greeting-HELLO epoch exchange on reconnects).
      go.anti_entropy_interval_ms = static_cast<int>(
          config.get_int("cluster", "anti_entropy_interval_ms", 1000));
      // ---- dynamic membership ----
      go.join_timeout_ms = static_cast<int>(
          config.get_int("cluster", "join_timeout_ms", 3000));
      go.handoff_batch_bytes = static_cast<std::size_t>(
          config.get_int("cluster", "handoff_batch_bytes", 256 * 1024));
      for (const auto& tok : split_trimmed(
               config.get_string("cluster", "initial_active", ""), ' ')) {
        if (tok.empty()) continue;
        std::uint64_t id = 0;
        if (!parse_u64(tok, &id) || id >= members.size()) {
          return Status(StatusCode::kInvalidArgument,
                        "bad cluster.initial_active id: " + tok);
        }
        go.initial_active.push_back(static_cast<core::NodeId>(id));
      }
      mo.initial_members = go.initial_active;
      node->handoff_batch_bytes_ = go.handoff_batch_bytes;
      node->join_on_start_ =
          config.get_bool("cluster", "join_on_start", false);
      node->group_ =
          std::make_unique<cluster::NodeGroup>(node_id, members, go);
    }
    const std::string state_file = config.get_string("cache", "state_file", "");
    if (!state_file.empty() && disk_dir.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "cache.state_file requires cache.disk_dir");
    }
    mo.state_file = state_file;
    mo.checkpoint_interval_seconds =
        config.get_double("cache", "checkpoint_interval", 10.0);
    mo.disk_failure_threshold =
        static_cast<int>(config.get_int("cache", "disk_failure_threshold", 5));
    // Negative cache defaults ON for deployments: a persistently failing
    // CGI answers from memory for a second instead of forking a retry
    // storm. (ManagerOptions itself defaults it off so directly-built test
    // managers keep legacy semantics.)
    mo.negative_ttl_seconds = config.get_double("cache", "negative_ttl", 1.0);
    // Bounded invalidation replay log (per-origin); peers that fall further
    // behind than this resync with a conservative full purge.
    mo.inv_log_entries = static_cast<std::size_t>(
        config.get_int("cluster", "inv_log_entries", 4096));

    node->manager_ = std::make_unique<core::CacheManager>(
        node_id, group_size, std::move(mo), RealClock::instance(),
        node->group_.get());
    if (node->group_ != nullptr) node->group_->attach(node->manager_.get());

    // A cache directory that cannot be created is a deployment error worth
    // failing fast on, not a per-request surprise later.
    if (auto st = node->manager_->storage_status(); !st.is_ok()) {
      return Status(st.code(), "cache.disk_dir unusable: " + st.message());
    }

    node->state_file_ = state_file;
    node->save_on_signal_ = config.get_bool("cache", "save_on_signal", true);
    node->purge_interval_seconds_ =
        config.get_double("cache", "purge_interval", 2.0);
  }

  // ---- HTTP server ----
  SwalaServerOptions so;
  so.listen.host = config.get_string("server", "host", "127.0.0.1");
  so.listen.port =
      static_cast<std::uint16_t>(config.get_int("server", "port", 0));
  so.request_threads =
      static_cast<std::size_t>(config.get_int("server", "threads", 16));
  // threads: thread-per-connection (§4.1); epoll: event-driven reactor,
  // where `threads` sizes the handler worker pool instead.
  const std::string io_model =
      config.get_string("server", "io_model", "threads");
  if (io_model == "threads") {
    so.io_model = IoModel::kThreads;
  } else if (io_model == "epoll") {
    so.io_model = IoModel::kEpoll;
  } else {
    return Status(StatusCode::kInvalidArgument,
                  "server.io_model must be 'threads' or 'epoll', got '" +
                      io_model + "'");
  }
  so.timer_resolution_ms = static_cast<int>(
      config.get_int("server", "timer_resolution_ms", 50));
  so.docroot = config.get_string("server", "docroot", "");
  so.enable_admin = config.get_bool("server", "admin", false);
  so.access_log_path = config.get_string("server", "access_log", "");
  so.listen_backlog =
      static_cast<int>(config.get_int("server", "listen_backlog", 128));
  // ---- overload protection ----
  so.max_connections = static_cast<std::size_t>(
      config.get_int("server", "max_connections", 0));
  so.shed_resume_percent =
      static_cast<int>(config.get_int("server", "shed_resume_percent", 75));
  so.retry_after_seconds =
      static_cast<int>(config.get_int("server", "retry_after", 1));
  // Per-request budget defaults to 30s for deployments (the classic CGI
  // timeout); 0 disables. Covers parse → lookup → fetch → CGI → write.
  so.request_timeout_ms =
      static_cast<int>(config.get_int("server", "request_timeout_ms", 30000));
  so.dispatch_queue_depth = static_cast<std::size_t>(
      config.get_int("server", "dispatch_queue_depth", 1024));
  so.max_concurrent_cgi = static_cast<std::size_t>(
      config.get_int("server", "max_concurrent_cgi", 0));
  so.drain_timeout_ms =
      static_cast<int>(config.get_int("server", "drain_timeout_ms", 5000));
  node->server_ = std::make_unique<SwalaServer>(
      std::move(so), std::move(registry), node->manager_.get());
  node->server_->set_group(node->group_.get());
  if (node->group_ != nullptr && node->manager_ != nullptr) {
    node->server_->set_decommission_hook([raw = node.get()] {
      const auto handed = raw->decommission();
      return "{\n  \"handoff_records\": " + std::to_string(handed.records) +
             ",\n  \"handoff_entries\": " + std::to_string(handed.entries) +
             "\n}\n";
    });
  }

  return node;
}

SwalaNode::~SwalaNode() { stop(); }

Status SwalaNode::start() {
  if (group_ != nullptr) {
    if (auto st = group_->start(); !st.is_ok()) return st;
    if (join_on_start_) {
      // Join before serving traffic so the first cached entries already
      // land under the post-join ring. A failed join is not fatal: the
      // node serves standalone and the operator can retry.
      if (auto st = group_->join_cluster(); !st.is_ok()) {
        SWALA_LOG(Warn) << "join_cluster failed: " << st.to_string();
      }
    }
  }
  if (auto st = server_->start(); !st.is_ok()) return st;
  // Warm restart after the group is up, so the restored entries broadcast.
  if (manager_ != nullptr && !state_file_.empty()) {
    auto restored = manager_->restore_state(state_file_);
    if (restored) {
      const auto scrub = manager_->last_scrub();
      SWALA_LOG(Info) << "warm restart: restored " << restored.value()
                      << " cached entries (" << scrub.quarantined
                      << " quarantined, " << scrub.orphans_removed
                      << " orphans removed)";
    } else if (restored.status().code() != StatusCode::kNotFound) {
      // An unreadable or newer-format manifest is an operator problem:
      // refuse to run rather than serve cold and eventually overwrite the
      // manifest (and with it the evidence, or a newer deployment's state).
      return Status(restored.status().code(),
                    "state restore failed: " + restored.status().message());
    }  // a missing manifest is normal on first boot
  }
  // Stand-alone nodes have no cluster purger; run our own so expiry and
  // manifest checkpointing still happen.
  if (group_ == nullptr && manager_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(housekeeping_mutex_);
      housekeeping_stop_ = false;
    }
    housekeeping_thread_ = std::thread([this] { housekeeping_loop(); });
  }
  if (manager_ != nullptr && !state_file_.empty() && save_on_signal_) {
    register_signal_save();
  }
  started_ = true;
  return Status::ok();
}

void SwalaNode::housekeeping_loop() {
  const auto interval = std::chrono::duration<double>(
      purge_interval_seconds_ > 0 ? purge_interval_seconds_ : 2.0);
  std::unique_lock<std::mutex> lock(housekeeping_mutex_);
  while (!housekeeping_stop_) {
    if (housekeeping_cv_.wait_for(lock, interval,
                                  [this] { return housekeeping_stop_; })) {
      break;
    }
    lock.unlock();
    manager_->purge_expired();  // also checkpoints (manager cadence)
    lock.lock();
  }
}

void SwalaNode::register_signal_save() {
  SwalaNode* expected = nullptr;
  if (!g_signal_node.compare_exchange_strong(expected, this)) return;
  if (g_save_pipe[0] < 0 && ::pipe(g_save_pipe) != 0) {
    g_signal_node.store(nullptr);
    return;
  }
  // Leave foreign handlers (e.g. swalad's, installed later; or a custom one
  // installed before us) in charge — they own shutdown and call stop().
  for (const int signo : {SIGTERM, SIGINT}) {
    const auto prev = std::signal(signo, on_save_signal);
    if (prev != SIG_DFL && prev != SIG_IGN && prev != on_save_signal) {
      (void)std::signal(signo, prev);
    }
  }
  static bool watcher_started = false;
  if (watcher_started) return;
  watcher_started = true;
  std::thread([] {
    char byte;
    while (::read(g_save_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    if (SwalaNode* node = g_signal_node.load()) {
      // Drain first: stop accepting, let in-flight requests complete, so
      // the manifest saved below includes their cache insertions.
      (void)node->drain();
      if (node->manager_ != nullptr && !node->state_file_.empty()) {
        if (auto st = node->manager_->save_state(node->state_file_);
            !st.is_ok()) {
          SWALA_LOG(Warn) << "signal-save failed: " << st.to_string();
        } else {
          SWALA_LOG(Info) << "manifest saved on signal";
        }
      }
    }
    const int signo = g_signal_received.load(std::memory_order_relaxed);
    (void)std::signal(signo != 0 ? signo : SIGTERM, SIG_DFL);
    (void)::raise(signo != 0 ? signo : SIGTERM);
  }).detach();
}

bool SwalaNode::drain() {
  return server_ != nullptr ? server_->drain() : true;
}

core::CacheManager::HandoffStats SwalaNode::decommission() {
  core::CacheManager::HandoffStats handed;
  if (manager_ == nullptr) return handed;
  manager_->begin_decommission();
  if (group_ != nullptr) {
    handed = manager_->handoff_state(handoff_batch_bytes_);
    group_->announce_decommission();
  }
  return handed;
}

void SwalaNode::stop() {
  {
    std::lock_guard<std::mutex> lock(housekeeping_mutex_);
    housekeeping_stop_ = true;
  }
  housekeeping_cv_.notify_all();
  if (housekeeping_thread_.joinable()) housekeeping_thread_.join();
  SwalaNode* expected = this;
  g_signal_node.compare_exchange_strong(expected, nullptr);
  // Only a node that actually started owns the manifest. A node that
  // refused to start (e.g. restore rejected a newer-format manifest) must
  // not overwrite it with its empty store on the way out.
  if (started_ && manager_ != nullptr && !state_file_.empty()) {
    if (auto st = manager_->save_state(state_file_); !st.is_ok()) {
      SWALA_LOG(Warn) << "state save failed: " << st.to_string();
    }
  }
  if (server_ != nullptr) server_->stop();
  if (group_ != nullptr) group_->stop();
}

}  // namespace swala::server
