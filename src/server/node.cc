#include "server/node.h"

#include "common/logging.h"
#include "common/strings.h"

namespace swala::server {

Result<std::unique_ptr<SwalaNode>> SwalaNode::from_config(
    const Config& config, std::shared_ptr<cgi::HandlerRegistry> registry) {
  auto node = std::unique_ptr<SwalaNode>(new SwalaNode());

  // ---- cluster membership ----
  std::vector<cluster::MemberAddress> members;
  for (const auto& line : config.get_all("cluster", "member")) {
    const auto tokens = split_trimmed(line, ' ');
    if (tokens.size() != 4) {
      return Status(StatusCode::kInvalidArgument,
                    "member needs 'id host info_port data_port': " + line);
    }
    std::uint64_t id = 0, info_port = 0, data_port = 0;
    if (!parse_u64(tokens[0], &id) || !parse_u64(tokens[2], &info_port) ||
        !parse_u64(tokens[3], &data_port) || info_port > 65535 ||
        data_port > 65535) {
      return Status(StatusCode::kInvalidArgument, "bad member line: " + line);
    }
    cluster::MemberAddress m;
    m.id = static_cast<core::NodeId>(id);
    m.info_addr = {tokens[1], static_cast<std::uint16_t>(info_port)};
    m.data_addr = {tokens[1], static_cast<std::uint16_t>(data_port)};
    members.push_back(std::move(m));
  }
  const auto node_id =
      static_cast<core::NodeId>(config.get_int("cluster", "node_id", 0));
  const std::size_t group_size = members.empty() ? 1 : members.size();

  // ---- cache manager ----
  const bool cache_enabled = config.get_bool("cache", "enabled", true);
  if (cache_enabled) {
    core::ManagerOptions mo;
    mo.limits.max_entries =
        static_cast<std::uint64_t>(config.get_int("cache", "max_entries", 2000));
    mo.limits.max_bytes =
        static_cast<std::uint64_t>(config.get_int("cache", "max_bytes", 0));
    auto policy =
        core::policy_from_name(config.get_string("cache", "policy", "lru"));
    if (!policy) return policy.status();
    mo.policy = policy.value();
    const std::string disk_dir = config.get_string("cache", "disk_dir", "");
    mo.disk_dir = disk_dir;
    auto rules = core::CacheabilityRules::from_config(config);
    if (!rules) return rules.status();
    mo.rules = std::move(rules.value());

    if (!members.empty()) {
      cluster::GroupOptions go;
      go.purge_interval_seconds =
          config.get_double("cache", "purge_interval", 2.0);
      node->group_ =
          std::make_unique<cluster::NodeGroup>(node_id, members, go);
    }
    node->manager_ = std::make_unique<core::CacheManager>(
        node_id, group_size, std::move(mo), RealClock::instance(),
        node->group_.get());
    if (node->group_ != nullptr) node->group_->attach(node->manager_.get());

    node->state_file_ = config.get_string("cache", "state_file", "");
    if (!node->state_file_.empty() && disk_dir.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "cache.state_file requires cache.disk_dir");
    }
  }

  // ---- HTTP server ----
  SwalaServerOptions so;
  so.listen.host = config.get_string("server", "host", "127.0.0.1");
  so.listen.port =
      static_cast<std::uint16_t>(config.get_int("server", "port", 0));
  so.request_threads =
      static_cast<std::size_t>(config.get_int("server", "threads", 16));
  so.docroot = config.get_string("server", "docroot", "");
  so.enable_admin = config.get_bool("server", "admin", false);
  so.access_log_path = config.get_string("server", "access_log", "");
  node->server_ = std::make_unique<SwalaServer>(
      std::move(so), std::move(registry), node->manager_.get());
  node->server_->set_group(node->group_.get());

  return node;
}

SwalaNode::~SwalaNode() { stop(); }

Status SwalaNode::start() {
  if (group_ != nullptr) {
    if (auto st = group_->start(); !st.is_ok()) return st;
  }
  if (auto st = server_->start(); !st.is_ok()) return st;
  // Warm restart after the group is up, so the restored entries broadcast.
  if (manager_ != nullptr && !state_file_.empty()) {
    auto restored = manager_->restore_state(state_file_);
    if (restored) {
      SWALA_LOG(Info) << "warm restart: restored " << restored.value()
                      << " cached entries";
    }  // a missing manifest is normal on first boot
  }
  return Status::ok();
}

void SwalaNode::stop() {
  if (manager_ != nullptr && !state_file_.empty()) {
    if (auto st = manager_->save_state(state_file_); !st.is_ok()) {
      SWALA_LOG(Warn) << "state save failed: " << st.to_string();
    }
  }
  if (server_ != nullptr) server_->stop();
  if (group_ != nullptr) group_->stop();
}

}  // namespace swala::server
