#include "server/baselines.h"

#include <csignal>
#include <unistd.h>

#include "common/logging.h"

namespace swala::server {

// ---- MiniServer ----

MiniServer::MiniServer(BaselineOptions options,
                       std::shared_ptr<cgi::HandlerRegistry> registry)
    : options_(std::move(options)), registry_(std::move(registry)) {
  ctx_.docroot = options_.docroot;
  ctx_.registry = registry_;
  ctx_.cache = nullptr;
  ctx_.clock = RealClock::instance();
  ctx_.allow_keep_alive = options_.allow_keep_alive;
  ctx_.recv_timeout_ms = options_.recv_timeout_ms;
  ctx_.counters = &counters_;
  ctx_.running = &running_;
}

MiniServer::~MiniServer() { stop(); }

Status MiniServer::start() {
  if (running_.exchange(true)) return Status::ok();
  auto listener = net::TcpListener::listen(options_.listen);
  if (!listener) {
    running_ = false;
    return listener.status();
  }
  listener_ = std::move(listener.value());
  acceptor_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void MiniServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void MiniServer::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto conn = listener_.accept(/*timeout_ms=*/200);
    if (!conn) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      return;
    }
    std::lock_guard<std::mutex> lock(workers_mutex_);
    if (workers_.size() > 512) {  // bound the vector in long runs
      for (auto& w : workers_) {
        if (w.joinable()) w.join();
      }
      workers_.clear();
    }
    workers_.emplace_back([this, stream = std::move(conn.value())]() mutable {
      handle_connection(std::move(stream), ctx_);
    });
  }
}

// ---- ForkingServer ----

ForkingServer::ForkingServer(BaselineOptions options,
                             std::shared_ptr<cgi::HandlerRegistry> registry)
    : options_(std::move(options)), registry_(std::move(registry)) {
  ctx_.docroot = options_.docroot;
  ctx_.registry = registry_;
  ctx_.cache = nullptr;
  ctx_.clock = RealClock::instance();
  ctx_.allow_keep_alive = options_.allow_keep_alive;
  ctx_.recv_timeout_ms = options_.recv_timeout_ms;
  ctx_.counters = &counters_;
  ctx_.running = &running_;
}

ForkingServer::~ForkingServer() { stop(); }

Status ForkingServer::start() {
  if (running_.exchange(true)) return Status::ok();
  ::signal(SIGCHLD, SIG_IGN);  // auto-reap children
  auto listener = net::TcpListener::listen(options_.listen);
  if (!listener) {
    running_ = false;
    return listener.status();
  }
  listener_ = std::move(listener.value());
  acceptor_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void ForkingServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
}

void ForkingServer::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto conn = listener_.accept(/*timeout_ms=*/200);
    if (!conn) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: serve the connection, then exit without running destructors
      // (the parent's listener etc. must stay untouched).
      listener_.close();
      handle_connection(std::move(conn.value()), ctx_);
      _exit(0);
    }
    if (pid < 0) {
      SWALA_LOG(Error) << "fork failed; dropping connection";
    }
    // Parent: TcpStream destructor closes our copy of the connection fd.
  }
}

}  // namespace swala::server
