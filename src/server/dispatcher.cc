#include "server/dispatcher.h"

#include <algorithm>

#include "common/logging.h"
#include "http/client.h"
#include "http/parser.h"

namespace swala::server {

Dispatcher::Dispatcher(DispatcherOptions options,
                       std::vector<net::InetAddress> backends)
    : options_(std::move(options)), backends_(std::move(backends)) {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    in_flight_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    forwarded_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

Dispatcher::~Dispatcher() { stop(); }

Status Dispatcher::start() {
  if (backends_.empty()) {
    return Status(StatusCode::kInvalidArgument, "dispatcher needs backends");
  }
  if (running_.exchange(true)) return Status::ok();
  auto listener =
      net::TcpListener::listen(options_.listen, options_.listen_backlog);
  if (!listener) {
    running_ = false;
    return listener.status();
  }
  listener_ = std::move(listener.value());
  threads_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  return Status::ok();
}

void Dispatcher::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void Dispatcher::worker_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    net::TcpStream stream;
    {
      std::lock_guard<std::mutex> lock(accept_mutex_);
      if (!running_.load(std::memory_order_relaxed)) return;
      auto conn = listener_.accept(/*timeout_ms=*/200);
      if (!conn) {
        if (conn.status().code() == StatusCode::kTimeout) continue;
        return;
      }
      stream = std::move(conn.value());
    }
    if (options_.max_connections > 0 &&
        active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      // Fast shed at the door: the client learns to back off immediately
      // instead of queueing behind saturated dispatcher threads.
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      http::Response resp =
          http::Response::error(503, "dispatcher at connection limit");
      if (options_.retry_after_seconds > 0) {
        resp.headers.set("Retry-After",
                         std::to_string(options_.retry_after_seconds));
      }
      (void)stream.set_send_timeout(1000);
      (void)stream.write_vec(resp.serialize_head(), resp.body);
      continue;
    }
    handle_connection(std::move(stream));
  }
}

std::size_t Dispatcher::pick_backend(const std::vector<std::size_t>& exclude) {
  const auto excluded = [&](std::size_t index) {
    return std::find(exclude.begin(), exclude.end(), index) != exclude.end();
  };
  if (options_.strategy == DispatchStrategy::kLeastConnections) {
    std::size_t best = backends_.size();
    std::uint64_t best_load = ~std::uint64_t{0};
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      if (excluded(i)) continue;
      const std::uint64_t load = in_flight_[i]->load(std::memory_order_relaxed);
      if (load < best_load) {
        best_load = load;
        best = i;
      }
    }
    if (best < backends_.size()) return best;
  }
  // Round-robin (and the least-connections everything-excluded fallback).
  for (std::size_t hop = 0; hop < backends_.size(); ++hop) {
    const std::size_t index =
        round_robin_.fetch_add(1, std::memory_order_relaxed) % backends_.size();
    if (!excluded(index)) return index;
  }
  return round_robin_.load(std::memory_order_relaxed) % backends_.size();
}

void Dispatcher::handle_connection(net::TcpStream stream) {
  active_connections_.fetch_add(1, std::memory_order_relaxed);
  struct ActiveGuard {
    std::atomic<std::uint64_t>* g;
    ~ActiveGuard() { g->fetch_sub(1, std::memory_order_relaxed); }
  } guard{&active_connections_};

  (void)stream.set_no_delay(true);
  // Short read slices so shutdown is noticed promptly; the client's idle
  // allowance is its own knob, not the backend forward timeout.
  const int slice_ms = std::max(1, std::min(250, options_.client_idle_timeout_ms));
  (void)stream.set_recv_timeout(slice_ms);
  (void)stream.set_send_timeout(options_.backend_timeout_ms);

  http::RequestParser parser;
  char buf[16 * 1024];
  int idle_ms = 0;

  for (;;) {
    http::ParseState state = parser.pump();
    while (state == http::ParseState::kNeedMore) {
      auto n = stream.read_some(buf, sizeof(buf));
      if (!n) {
        if (n.status().code() != StatusCode::kTimeout) return;
        idle_ms += slice_ms;
        if (idle_ms >= options_.client_idle_timeout_ms ||
            !running_.load(std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if (n.value() == 0) return;
      idle_ms = 0;
      state = parser.feed({buf, n.value()});
    }
    if (state == http::ParseState::kError) {
      const auto resp = http::Response::error(parser.error_status());
      (void)stream.write_vec(resp.serialize_head(), resp.body);
      return;
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    http::Request& request = parser.request();
    bool client_keep = request.keep_alive();

    // Forward with failover across distinct backends. When every attempt
    // fails this is an overload/outage, so shed with 503 + Retry-After
    // (the request was never served; the client should retry shortly),
    // not a generic 502.
    http::Response response =
        http::Response::error(503, "no backend available");
    if (options_.retry_after_seconds > 0) {
      response.headers.set("Retry-After",
                           std::to_string(options_.retry_after_seconds));
    }
    bool forwarded_ok = false;
    std::vector<std::size_t> tried;
    const std::size_t attempts =
        std::min(options_.max_attempts, backends_.size());
    for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
      const std::size_t index = pick_backend(tried);
      tried.push_back(index);
      in_flight_[index]->fetch_add(1, std::memory_order_relaxed);

      http::Request upstream = request;
      upstream.headers.set("Via", "1.1 swala-dispatcher");
      upstream.headers.set("Connection", "close");
      http::HttpClient backend(backends_[index], options_.backend_timeout_ms);
      auto result = backend.send(upstream);

      in_flight_[index]->fetch_sub(1, std::memory_order_relaxed);
      if (result) {
        forwarded_[index]->fetch_add(1, std::memory_order_relaxed);
        response = std::move(result.value());
        forwarded_ok = true;
        break;
      }
      forward_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!forwarded_ok) {
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      client_keep = false;  // suspect connection state: close after the 503
    }

    response.version = request.version;
    response.headers.set("Connection", client_keep ? "keep-alive" : "close");
    response.headers.set("Content-Length", std::to_string(response.body.size()));
    if (!stream.write_vec(response.serialize_head(), response.body).is_ok()) {
      return;
    }
    if (!client_keep) return;
    parser.reset();
  }
}

DispatcherStats Dispatcher::stats() const {
  DispatcherStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.forward_failures = forward_failures_.load(std::memory_order_relaxed);
  s.unavailable = unavailable_.load(std::memory_order_relaxed);
  s.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  s.active_connections = active_connections_.load(std::memory_order_relaxed);
  for (const auto& counter : forwarded_) {
    s.per_backend.push_back(counter->load(std::memory_order_relaxed));
  }
  return s;
}

}  // namespace swala::server
