#include "server/swala_server.h"

#include "common/logging.h"

namespace swala::server {

SwalaServer::SwalaServer(SwalaServerOptions options,
                         std::shared_ptr<cgi::HandlerRegistry> registry,
                         core::CacheManager* cache, const Clock* clock)
    : options_(std::move(options)), registry_(std::move(registry)) {
  ctx_.docroot = options_.docroot;
  ctx_.registry = registry_;
  ctx_.cache = cache;
  ctx_.clock = clock;
  ctx_.allow_keep_alive = options_.allow_keep_alive;
  ctx_.enable_admin = options_.enable_admin;
  ctx_.recv_timeout_ms = options_.recv_timeout_ms;
  ctx_.counters = &counters_;
  ctx_.running = &running_;
  ctx_.latency = &latency_;
}

SwalaServer::~SwalaServer() { stop(); }

Status SwalaServer::start() {
  if (running_.exchange(true)) return Status::ok();
  if (!options_.access_log_path.empty()) {
    if (auto st = access_log_.open(options_.access_log_path); !st.is_ok()) {
      running_ = false;
      return st;
    }
    ctx_.access_log = &access_log_;
  }
  auto listener =
      net::TcpListener::listen(options_.listen, options_.listen_backlog);
  if (!listener) {
    running_ = false;
    return listener.status();
  }
  listener_ = std::move(listener.value());
  threads_.reserve(options_.request_threads);
  if (options_.accept_model == AcceptModel::kTakeTurns) {
    for (std::size_t i = 0; i < options_.request_threads; ++i) {
      threads_.emplace_back([this] { request_thread_loop(); });
    }
  } else {
    conn_queue_ = std::make_unique<BoundedQueue<net::TcpStream>>(1024);
    for (std::size_t i = 0; i < options_.request_threads; ++i) {
      threads_.emplace_back([this] { queue_worker_loop(); });
    }
    acceptor_ = std::thread([this] { acceptor_loop(); });
  }
  SWALA_LOG(Info) << "SwalaServer listening on port " << port() << " with "
                  << options_.request_threads << " request threads";
  return Status::ok();
}

void SwalaServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (conn_queue_ != nullptr) conn_queue_->close();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  conn_queue_.reset();
}

void SwalaServer::request_thread_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    net::TcpStream stream;
    {
      // Take turns listening (§4.1): only one thread blocks in accept.
      std::lock_guard<std::mutex> lock(accept_mutex_);
      if (!running_.load(std::memory_order_relaxed)) return;
      auto conn = listener_.accept(/*timeout_ms=*/200);
      if (!conn) {
        if (conn.status().code() == StatusCode::kTimeout) continue;
        return;  // listener closed
      }
      stream = std::move(conn.value());
    }
    // Handle outside the accept lock so other threads can accept.
    handle_connection(std::move(stream), ctx_);
  }
}

void SwalaServer::acceptor_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto conn = listener_.accept(/*timeout_ms=*/200);
    if (!conn) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      break;
    }
    if (!conn_queue_->push(std::move(conn.value()))) break;  // shutting down
  }
}

void SwalaServer::queue_worker_loop() {
  while (auto stream = conn_queue_->pop()) {
    handle_connection(std::move(*stream), ctx_);
  }
}

}  // namespace swala::server
