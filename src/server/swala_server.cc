#include "server/swala_server.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "server/reactor.h"

namespace swala::server {

SwalaServer::SwalaServer(SwalaServerOptions options,
                         std::shared_ptr<cgi::HandlerRegistry> registry,
                         core::CacheManager* cache, const Clock* clock)
    : options_(std::move(options)), registry_(std::move(registry)) {
  ctx_.docroot = options_.docroot;
  ctx_.registry = registry_;
  ctx_.cache = cache;
  ctx_.clock = clock;
  ctx_.allow_keep_alive = options_.allow_keep_alive;
  ctx_.enable_admin = options_.enable_admin;
  ctx_.recv_timeout_ms = options_.recv_timeout_ms;
  ctx_.counters = &counters_;
  ctx_.running = &running_;
  ctx_.latency = &latency_;
  ctx_.request_timeout_ms = options_.request_timeout_ms;
  ctx_.retry_after_seconds = options_.retry_after_seconds;
  ctx_.draining = &draining_;
  if (options_.max_concurrent_cgi > 0) {
    cgi_gate_ = std::make_unique<cgi::ExecGate>(options_.max_concurrent_cgi);
    ctx_.cgi_gate = cgi_gate_.get();
  }
}

SwalaServer::~SwalaServer() { stop(); }

Status SwalaServer::start() {
  if (running_.exchange(true)) return Status::ok();
  if (!options_.access_log_path.empty()) {
    if (auto st = access_log_.open(options_.access_log_path); !st.is_ok()) {
      running_ = false;
      return st;
    }
    ctx_.access_log = &access_log_;
  }
  auto listener =
      net::TcpListener::listen(options_.listen, options_.listen_backlog);
  if (!listener) {
    running_ = false;
    return listener.status();
  }
  listener_ = std::move(listener.value());
  if (options_.io_model == IoModel::kEpoll) {
    // Event-driven connection path: the reactor owns the listener and every
    // connection fd; request_threads sizes its worker pool. Admission
    // control sheds inline at accept (the loop is never pinned inside a
    // connection), so the dedicated shedder thread is not needed.
    ctx_.io_model = "epoll";
    ReactorOptions ro;
    ro.worker_threads = options_.request_threads;
    ro.max_connections = options_.max_connections;
    ro.shed_resume_percent = options_.shed_resume_percent;
    ro.timer_resolution_ms = options_.timer_resolution_ms;
    reactor_ = std::make_unique<EpollReactor>(&ctx_, &listener_, ro);
    if (auto st = reactor_->start(); !st.is_ok()) {
      reactor_.reset();
      listener_.close();
      running_ = false;
      return st;
    }
    SWALA_LOG(Info) << "SwalaServer listening on port " << port()
                    << " (epoll reactor, " << options_.request_threads
                    << " workers)";
    return Status::ok();
  }
  threads_.reserve(options_.request_threads);
  if (options_.accept_model == AcceptModel::kTakeTurns) {
    for (std::size_t i = 0; i < options_.request_threads; ++i) {
      threads_.emplace_back([this] { request_thread_loop(); });
    }
    if (options_.max_connections > 0) {
      shedder_ = std::thread([this] { shed_loop(); });
    }
  } else {
    conn_queue_ = std::make_unique<BoundedQueue<net::TcpStream>>(
        options_.dispatch_queue_depth);
    for (std::size_t i = 0; i < options_.request_threads; ++i) {
      threads_.emplace_back([this] { queue_worker_loop(); });
    }
    acceptor_ = std::thread([this] { acceptor_loop(); });
  }
  SWALA_LOG(Info) << "SwalaServer listening on port " << port() << " with "
                  << options_.request_threads << " request threads";
  return Status::ok();
}

void SwalaServer::stop() {
  if (!running_.exchange(false)) return;
  if (reactor_ != nullptr) {
    // The reactor flushes in-flight responses (mid-request connections get
    // a 503 "server shutting down") before its loop exits; the listener is
    // closed by its stop sweep.
    reactor_->stop();
    reactor_.reset();
  }
  listener_.close();
  if (conn_queue_ != nullptr) conn_queue_->close();
  if (acceptor_.joinable()) acceptor_.join();
  if (shedder_.joinable()) shedder_.join();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  conn_queue_.reset();
}

bool SwalaServer::drain() {
  if (!running_.load(std::memory_order_relaxed)) return true;
  draining_.store(true, std::memory_order_relaxed);
  // Closing the listener stops new work at the front door; handlers see
  // ctx.draining and send "Connection: close", so keep-alive connections
  // wind down one in-flight response at a time.
  if (reactor_ != nullptr) {
    // The loop thread closes the listener itself (it owns the epoll
    // registration) and sweeps idle keep-alive connections; wait for that
    // acknowledgment so callers observe refused connects on return.
    reactor_->begin_drain();
    const auto ack_by = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(1000);
    while (listener_.valid() &&
           std::chrono::steady_clock::now() < ack_by) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  } else {
    listener_.close();
  }
  SWALA_LOG(Info) << "SwalaServer draining: waiting up to "
                  << options_.drain_timeout_ms << "ms for "
                  << counters_.active_connections.load(
                         std::memory_order_relaxed)
                  << " active connections";
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
  while (counters_.active_connections.load(std::memory_order_relaxed) > 0) {
    if (std::chrono::steady_clock::now() >= give_up) {
      SWALA_LOG(Warn) << "drain timeout: "
                      << counters_.active_connections.load(
                             std::memory_order_relaxed)
                      << " connections still active; stopping anyway";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

bool SwalaServer::should_shed() {
  if (options_.max_connections == 0) return false;
  const auto active =
      counters_.active_connections.load(std::memory_order_relaxed);
  if (shedding_.load(std::memory_order_relaxed)) {
    const std::size_t resume =
        options_.max_connections *
        static_cast<std::size_t>(std::max(0, options_.shed_resume_percent)) /
        100;
    if (active <= resume) {
      shedding_.store(false, std::memory_order_relaxed);
      SWALA_LOG(Info) << "admission control: resumed at " << active
                      << " active connections";
      return false;
    }
    return true;
  }
  if (active >= options_.max_connections) {
    shedding_.store(true, std::memory_order_relaxed);
    SWALA_LOG(Warn) << "admission control: shedding at " << active << "/"
                    << options_.max_connections << " active connections";
    return true;
  }
  return false;
}

void SwalaServer::shed_connection(net::TcpStream stream) {
  counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
  http::Response resp = overload_response(503, "server at connection limit",
                                          options_.retry_after_seconds);
  (void)stream.set_send_timeout(1000);
  (void)stream.write_vec(resp.serialize_head(), resp.body);
  // stream destructor closes the socket.
}

void SwalaServer::request_thread_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    net::TcpStream stream;
    {
      // Take turns listening (§4.1): only one thread blocks in accept.
      std::lock_guard<std::mutex> lock(accept_mutex_);
      if (!running_.load(std::memory_order_relaxed)) return;
      auto conn = listener_.accept(/*timeout_ms=*/200);
      if (!conn) {
        if (conn.status().code() == StatusCode::kTimeout) continue;
        return;  // listener closed
      }
      stream = std::move(conn.value());
    }
    if (should_shed()) {
      shed_connection(std::move(stream));
      continue;
    }
    // Handle outside the accept lock so other threads can accept.
    handle_connection(std::move(stream), ctx_);
  }
}

void SwalaServer::shed_loop() {
  // Only active while the admission gate is closed: in the take-turns
  // model every request thread may be pinned inside a keep-alive
  // connection, leaving nobody in accept() to refuse overflow arrivals.
  // Evaluates should_shed() itself (off the active-connections gauge), so
  // it engages even when no request thread reaches an accept point.
  while (running_.load(std::memory_order_relaxed)) {
    if (!should_shed()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    net::TcpStream stream;
    {
      std::lock_guard<std::mutex> lock(accept_mutex_);
      if (!running_.load(std::memory_order_relaxed)) return;
      if (!should_shed()) continue;  // gate reopened while waiting
      auto conn = listener_.accept(/*timeout_ms=*/50);
      if (!conn) {
        if (conn.status().code() == StatusCode::kTimeout) continue;
        return;  // listener closed
      }
      stream = std::move(conn.value());
    }
    shed_connection(std::move(stream));
  }
}

void SwalaServer::acceptor_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto conn = listener_.accept(/*timeout_ms=*/200);
    if (!conn) {
      if (conn.status().code() == StatusCode::kTimeout) continue;
      break;
    }
    net::TcpStream stream = std::move(conn.value());
    if (should_shed()) {
      shed_connection(std::move(stream));
      continue;
    }
    // Never block the acceptor on a full queue: a stalled worker pool must
    // show up as fast 503s at the edge, not as silent backlog growth.
    // (The acceptor is the only producer, so size() < depth means the push
    // below cannot block.)
    if (conn_queue_->size() >= options_.dispatch_queue_depth) {
      shed_connection(std::move(stream));
      continue;
    }
    if (!conn_queue_->push(std::move(stream))) break;  // shutting down
  }
}

void SwalaServer::queue_worker_loop() {
  while (auto stream = conn_queue_->pop()) {
    handle_connection(std::move(*stream), ctx_);
  }
}

}  // namespace swala::server
