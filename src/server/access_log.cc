#include "server/access_log.h"

#include "common/strings.h"

namespace swala::server {

AccessLog::~AccessLog() { close(); }

Status AccessLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    return Status(StatusCode::kIoError, "cannot open access log: " + path);
  }
  return Status::ok();
}

void AccessLog::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool AccessLog::is_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_ != nullptr;
}

std::string AccessLog::format(const AccessRecord& record) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "ts=%.6f \"%s %s %s\" %d %llu service=%.6f dyn=%d cache=%s",
                record.timestamp, record.method.c_str(), record.target.c_str(),
                record.version.c_str(), record.status,
                static_cast<unsigned long long>(record.bytes),
                record.service_seconds, record.dynamic ? 1 : 0,
                record.cache_state.empty() ? "-" : record.cache_state.c_str());
  return buf;
}

void AccessLog::log(const AccessRecord& record) {
  const std::string line = format(record);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

Result<workload::Trace> load_access_log_trace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status(StatusCode::kNotFound, "cannot open access log: " + path);
  }
  workload::Trace trace;
  char buf[2048];
  double first_ts = -1.0;
  while (std::fgets(buf, sizeof(buf), file) != nullptr) {
    AccessRecord record;
    if (!parse_access_line(buf, &record)) continue;
    if (first_ts < 0) first_ts = record.timestamp;
    workload::TraceRecord r;
    r.arrival_seconds = record.timestamp - first_ts;
    r.target = record.target;
    r.is_cgi = record.dynamic;
    r.service_seconds = record.service_seconds;
    r.response_bytes = record.bytes;
    trace.push_back(std::move(r));
  }
  std::fclose(file);
  return trace;
}

bool parse_access_line(std::string_view line, AccessRecord* out) {
  *out = AccessRecord{};
  line = trim(line);
  if (line.empty()) return false;

  // ts=...
  if (!starts_with(line, "ts=")) return false;
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  if (!parse_double(line.substr(3, sp1 - 3), &out->timestamp)) return false;

  // "METHOD target version"
  const std::size_t quote1 = line.find('"', sp1);
  if (quote1 == std::string_view::npos) return false;
  const std::size_t quote2 = line.find('"', quote1 + 1);
  if (quote2 == std::string_view::npos) return false;
  const auto request = split_trimmed(line.substr(quote1 + 1, quote2 - quote1 - 1), ' ');
  if (request.size() != 3) return false;
  out->method = request[0];
  out->target = request[1];
  out->version = request[2];

  // status bytes service= dyn= cache=
  const auto rest = split_trimmed(line.substr(quote2 + 1), ' ');
  if (rest.size() != 5) return false;
  std::uint64_t status = 0;
  if (!parse_u64(rest[0], &status) || status < 100 || status > 599) return false;
  out->status = static_cast<int>(status);
  if (!parse_u64(rest[1], &out->bytes)) return false;
  if (!starts_with(rest[2], "service=") ||
      !parse_double(std::string_view(rest[2]).substr(8), &out->service_seconds)) {
    return false;
  }
  if (rest[3] == "dyn=1") {
    out->dynamic = true;
  } else if (rest[3] == "dyn=0") {
    out->dynamic = false;
  } else {
    return false;
  }
  if (!starts_with(rest[4], "cache=")) return false;
  out->cache_state = std::string(std::string_view(rest[4]).substr(6));
  return true;
}

}  // namespace swala::server
