#include "server/reactor.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "http/message.h"

namespace swala::server {
namespace {

// epoll data cookies. Connection ids start above the reserved range and
// only ever grow, so a late readiness report or timer for a closed
// connection can never alias a new one (no fd-reuse ABA: events carry ids,
// not fds).
constexpr std::uint64_t kListenerData = 1;
constexpr std::uint64_t kWakeupData = 2;
constexpr std::uint64_t kFirstConnId = 16;

/// Jobs in flight are bounded by open connections, but the queue must never
/// block the event loop: dispatch uses try_push and sheds on overflow.
constexpr std::size_t kJobQueueDepth = 8192;

}  // namespace

EpollReactor::EpollReactor(const ServeContext* ctx, net::TcpListener* listener,
                           ReactorOptions options)
    : ctx_(ctx),
      listener_(listener),
      options_(options),
      clock_(ctx->clock != nullptr
                 ? ctx->clock
                 : static_cast<const Clock*>(RealClock::instance())),
      wheel_(from_millis(options_.timer_resolution_ms > 0
                             ? options_.timer_resolution_ms
                             : 50)),
      next_conn_id_(kFirstConnId),
      jobs_(kJobQueueDepth) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  if (options_.timer_resolution_ms <= 0) options_.timer_resolution_ms = 50;
}

EpollReactor::~EpollReactor() { stop(); }

Status EpollReactor::start() {
  if (started_.exchange(true)) return Status::ok();
  auto poller = net::Poller::create();
  if (!poller) return poller.status();
  poller_ = std::move(poller.value());
  auto wakeup = net::WakeupFd::create();
  if (!wakeup) return wakeup.status();
  wakeup_ = std::move(wakeup.value());
  if (auto st = listener_->set_nonblocking(true); !st.is_ok()) return st;
  if (auto st = poller_.add(listener_->raw_fd(), EPOLLIN, kListenerData);
      !st.is_ok()) {
    return st;
  }
  if (auto st = poller_.add(wakeup_.fd(), EPOLLIN, kWakeupData); !st.is_ok()) {
    return st;
  }
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  loop_thread_ = std::thread([this] { loop(); });
  return Status::ok();
}

void EpollReactor::begin_drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  wakeup_.signal();
}

void EpollReactor::stop() {
  if (!started_.load(std::memory_order_relaxed)) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Workers first: they finish queued jobs (each posting a completion and a
  // wakeup the loop keeps servicing), so every dispatched request still gets
  // its response during the flush below.
  jobs_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  wakeup_.signal();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void EpollReactor::loop() {
  net::PollEvent events[128];
  std::vector<std::uint64_t> fired;
  for (;;) {
    if (drain_requested_.load(std::memory_order_relaxed) && !drain_swept_) {
      drain_swept_ = true;
      accepting_ = false;
      // Closing the listener fd deregisters it from epoll and makes new
      // connects fail fast; idle keep-alive connections close immediately,
      // in-flight ones wind down with "Connection: close" (ctx->draining).
      listener_->close();
      sweep_idle(/*respond_mid_request=*/false);
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      if (stop_flush_until_ == 0) {
        stop_flush_until_ = clock_->now() + from_millis(options_.stop_flush_ms);
        accepting_ = false;
        if (listener_->valid()) listener_->close();
        // Mirror the threaded shutdown: a connection mid-request gets a 503
        // "server shutting down" answer, an idle one just closes.
        sweep_idle(/*respond_mid_request=*/true);
      }
      process_completions();
      bool busy;
      {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        busy = !completions_.empty();
      }
      if (!busy) {
        for (const auto& [id, conn] : conns_) {
          if (conn->state != Conn::State::kReading) {
            busy = true;
            break;
          }
        }
      }
      if (!busy || clock_->now() >= stop_flush_until_) break;
    }

    auto n = poller_.wait(events, 128, options_.timer_resolution_ms);
    if (!n) {
      SWALA_LOG(Error) << "reactor poll failed: " << n.status().to_string();
      break;
    }
    for (int i = 0; i < n.value(); ++i) {
      const net::PollEvent& ev = events[i];
      if (ev.data == kListenerData) {
        accept_ready();
        continue;
      }
      if (ev.data == kWakeupData) {
        wakeup_.drain();
        continue;
      }
      Conn* conn = find(ev.data);
      if (conn == nullptr) continue;  // closed earlier in this batch
      if ((ev.events & EPOLLERR) != 0) {
        close_conn(conn);
        continue;
      }
      switch (conn->state) {
        case Conn::State::kReading:
          drive_read(conn);
          break;
        case Conn::State::kWriting:
          if ((ev.events & (EPOLLOUT | EPOLLHUP)) != 0) drive_write(conn);
          break;
        case Conn::State::kExecuting:
          break;  // armed==0; stale report, the worker owns this connection
      }
    }
    process_completions();

    const TimeNs now = clock_->now();
    fired.clear();
    wheel_.advance(now, &fired);
    for (const std::uint64_t id : fired) handle_timer(id, now);
  }

  // Loop exit: close whatever is left so the active-connections gauge and
  // the fds are released even on an unclean stop.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    if (Conn* conn = find(id); conn != nullptr) close_conn(conn);
  }
}

void EpollReactor::accept_ready() {
  if (!accepting_) return;
  for (;;) {
    auto accepted = listener_->try_accept();
    if (!accepted) {
      // kWouldBlock: backlog empty. Anything else means the listener is
      // gone; stop accepting and let drain/stop clean up.
      if (accepted.status().code() != StatusCode::kWouldBlock) {
        accepting_ = false;
      }
      return;
    }
    net::TcpStream stream = std::move(accepted.value());
    if (should_shed()) {
      shed_new_connection(std::move(stream));
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->stream = std::move(stream);
    (void)conn->stream.set_no_delay(true);
    const TimeNs now = clock_->now();
    conn->last_activity = now;
    Conn* raw = conn.get();
    conns_.emplace(raw->id, std::move(conn));
    if (ctx_->counters != nullptr) {
      ctx_->counters->connections.fetch_add(1, std::memory_order_relaxed);
      ctx_->counters->active_connections.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    if (auto st = poller_.add(raw->stream.raw_fd(), EPOLLIN, raw->id);
        !st.is_ok()) {
      SWALA_LOG(Error) << "reactor: epoll add failed: " << st.to_string();
      close_conn(raw);
      continue;
    }
    raw->armed = EPOLLIN;
    schedule_read_timer(raw, now);
  }
}

bool EpollReactor::should_shed() {
  if (options_.max_connections == 0) return false;
  const std::uint64_t active =
      ctx_->counters != nullptr
          ? ctx_->counters->active_connections.load(std::memory_order_relaxed)
          : conns_.size();
  if (shedding_) {
    const std::uint64_t resume =
        options_.max_connections *
        static_cast<std::uint64_t>(std::max(0, options_.shed_resume_percent)) /
        100;
    if (active <= resume) {
      shedding_ = false;
      SWALA_LOG(Info) << "admission control: resumed at " << active
                      << " active connections";
      return false;
    }
    return true;
  }
  if (active >= options_.max_connections) {
    shedding_ = true;
    SWALA_LOG(Warn) << "admission control: shedding at " << active << "/"
                    << options_.max_connections << " active connections";
    return true;
  }
  return false;
}

void EpollReactor::shed_new_connection(net::TcpStream stream) {
  if (ctx_->counters != nullptr) {
    ctx_->counters->requests_shed.fetch_add(1, std::memory_order_relaxed);
  }
  http::Response resp = overload_response(503, "server at connection limit",
                                          ctx_->retry_after_seconds);
  // One non-blocking attempt: the 503 fits in a fresh socket buffer, and a
  // peer that can't even take that isn't worth a reactor state machine.
  (void)stream.write_some_vec(resp.serialize_head(), resp.body);
  // stream destructor closes the socket.
}

EpollReactor::Conn* EpollReactor::find(std::uint64_t id) {
  const auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void EpollReactor::close_conn(Conn* conn) {
  wheel_.cancel(conn->id);
  if (ctx_->counters != nullptr) {
    ctx_->counters->active_connections.fetch_sub(1, std::memory_order_relaxed);
  }
  // Closing the fd (Conn destructor) deregisters it from epoll implicitly.
  conns_.erase(conn->id);
}

void EpollReactor::drive_read(Conn* conn) {
  char buf[16 * 1024];
  for (;;) {
    auto n = conn->stream.read_nb(buf, sizeof(buf));
    if (!n) {
      if (n.status().code() == StatusCode::kWouldBlock) break;
      close_conn(conn);  // reset or hard error
      return;
    }
    if (n.value() == 0) {  // orderly peer close
      close_conn(conn);
      return;
    }
    const TimeNs now = clock_->now();
    conn->last_activity = now;
    const http::ParseState state = conn->parser.feed({buf, n.value()});
    // The per-request deadline arms at the *first byte* of a request (slow
    // loris: every byte resets the idle timer but cannot stretch the
    // request past its budget), exactly like the threaded handler.
    if (conn->deadline_at == 0 && ctx_->request_timeout_ms > 0 &&
        conn->parser.mid_request()) {
      conn->deadline = Deadline::after_ms(clock_, ctx_->request_timeout_ms);
      conn->deadline_at = now + from_millis(ctx_->request_timeout_ms);
    }
    if (state == http::ParseState::kDone) {
      dispatch(conn);
      return;
    }
    if (state == http::ParseState::kError) {
      respond_and_close(conn,
                        http::Response::error(conn->parser.error_status()));
      return;
    }
  }
  // Incomplete request and the socket ran dry: wait for more bytes.
  arm(conn, EPOLLIN);
  schedule_read_timer(conn, clock_->now());
}

void EpollReactor::dispatch(Conn* conn) {
  conn->state = Conn::State::kExecuting;
  wheel_.cancel(conn->id);
  // Stop readiness reports while a worker owns the request; level-triggered
  // EPOLLIN would otherwise spin the loop on bytes we are not reading.
  arm(conn, 0);
  Job job;
  job.conn_id = conn->id;
  job.served = conn->served;
  job.request = std::move(conn->parser.request());
  job.deadline = conn->deadline;
  if (!jobs_.try_push(std::move(job))) {
    // Worker pool hopelessly behind: shed rather than block the loop.
    if (ctx_->counters != nullptr) {
      ctx_->counters->requests_shed.fetch_add(1, std::memory_order_relaxed);
    }
    respond_and_close(conn, overload_response(503, "server busy",
                                              ctx_->retry_after_seconds));
  }
}

void EpollReactor::worker_loop() {
  while (auto job = jobs_.pop()) {
    const TimeNs handle_start = clock_->now();
    http::Response resp = handle_request(job->request, *ctx_, job->deadline);
    record_exchange(*ctx_, job->request, resp, handle_start, clock_);
    const bool keep = finalize_response(job->request, *ctx_, job->served, &resp);
    Completion done;
    done.conn_id = job->conn_id;
    done.head = resp.serialize_head();
    done.body = std::move(resp.body);
    done.keep = keep;
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(std::move(done));
    }
    wakeup_.signal();
  }
}

void EpollReactor::process_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (auto& done : batch) {
    Conn* conn = find(done.conn_id);
    if (conn == nullptr) continue;  // cut at its deadline while executing
    start_response(conn, std::move(done.head), std::move(done.body),
                   done.keep);
  }
}

void EpollReactor::start_response(Conn* conn, std::string head,
                                  std::string body, bool keep) {
  conn->state = Conn::State::kWriting;
  conn->head = std::move(head);
  conn->body = std::move(body);
  conn->head_off = 0;
  conn->body_off = 0;
  conn->keep = keep;
  // The response write shares the request budget (stalled-reader cut); with
  // no deadline the idle timeout caps it, matching the threaded model's
  // send timeout.
  TimeNs cut = conn->deadline_at;
  if (cut == 0 && ctx_->recv_timeout_ms > 0) {
    cut = clock_->now() + from_millis(ctx_->recv_timeout_ms);
  }
  conn->write_cut_at = cut;
  if (cut != 0) {
    wheel_.schedule(conn->id, cut);
  } else {
    wheel_.cancel(conn->id);
  }
  drive_write(conn);
}

void EpollReactor::respond_and_close(Conn* conn, const http::Response& resp) {
  // Error/overload responses carry "Connection: close" already (see
  // Response::error); version and Server header follow the threaded error
  // paths, which write the canned response as-is.
  start_response(conn, resp.serialize_head(), resp.body, /*keep=*/false);
}

void EpollReactor::drive_write(Conn* conn) {
  for (;;) {
    std::string_view head(conn->head);
    head.remove_prefix(conn->head_off);
    std::string_view body(conn->body);
    body.remove_prefix(conn->body_off);
    if (head.empty() && body.empty()) break;
    auto n = conn->stream.write_some_vec(head, body);
    if (!n) {
      if (n.status().code() == StatusCode::kWouldBlock) {
        arm(conn, EPOLLOUT);
        return;
      }
      close_conn(conn);  // peer reset or hard error mid-response
      return;
    }
    std::size_t wrote = n.value();
    const std::size_t from_head = std::min(wrote, head.size());
    conn->head_off += from_head;
    wrote -= from_head;
    conn->body_off += wrote;
    if (from_head == 0 && wrote == 0) {  // kernel took nothing; re-arm
      arm(conn, EPOLLOUT);
      return;
    }
  }

  // Response fully written.
  if (ctx_->counters != nullptr) {
    ctx_->counters->bytes_sent.fetch_add(conn->head.size() + conn->body.size(),
                                         std::memory_order_relaxed);
  }
  ++conn->served;
  wheel_.cancel(conn->id);
  if (!conn->keep) {
    close_conn(conn);
    return;
  }

  // Keep-alive: recycle for the next request on this connection.
  conn->state = Conn::State::kReading;
  conn->head.clear();
  conn->body.clear();
  conn->head_off = 0;
  conn->body_off = 0;
  conn->write_cut_at = 0;
  conn->deadline = Deadline();
  conn->deadline_at = 0;
  conn->parser.reset();
  const TimeNs now = clock_->now();
  conn->last_activity = now;
  // Pipelined bytes may already hold (part of) the next request.
  const http::ParseState state = conn->parser.pump();
  if (ctx_->request_timeout_ms > 0 && conn->parser.mid_request()) {
    conn->deadline = Deadline::after_ms(clock_, ctx_->request_timeout_ms);
    conn->deadline_at = now + from_millis(ctx_->request_timeout_ms);
  }
  if (state == http::ParseState::kDone) {
    dispatch(conn);
    return;
  }
  if (state == http::ParseState::kError) {
    respond_and_close(conn,
                      http::Response::error(conn->parser.error_status()));
    return;
  }
  arm(conn, EPOLLIN);
  schedule_read_timer(conn, now);
}

void EpollReactor::arm(Conn* conn, std::uint32_t events) {
  if (conn->armed == events) return;
  if (auto st = poller_.modify(conn->stream.raw_fd(), events, conn->id);
      !st.is_ok()) {
    SWALA_LOG(Error) << "reactor: epoll mod failed: " << st.to_string();
    close_conn(conn);
    return;
  }
  conn->armed = events;
}

void EpollReactor::schedule_read_timer(Conn* conn, TimeNs now) {
  // Idle timeout from the last byte; a mid-request deadline fires earlier
  // if it comes earlier.
  TimeNs when = 0;
  if (ctx_->recv_timeout_ms > 0) {
    when = conn->last_activity + from_millis(ctx_->recv_timeout_ms);
  }
  if (conn->deadline_at != 0 && (when == 0 || conn->deadline_at < when)) {
    when = conn->deadline_at;
  }
  if (when != 0) {
    wheel_.schedule(conn->id, when);
  } else {
    wheel_.cancel(conn->id);
  }
  (void)now;
}

void EpollReactor::handle_timer(std::uint64_t id, TimeNs now) {
  Conn* conn = find(id);
  if (conn == nullptr) return;  // closed; stale wheel entry
  switch (conn->state) {
    case Conn::State::kReading: {
      if (conn->deadline_at != 0 && now >= conn->deadline_at &&
          conn->parser.mid_request()) {
        // Slow loris: the request budget expired before the request did.
        if (ctx_->counters != nullptr) {
          ctx_->counters->deadline_exceeded.fetch_add(
              1, std::memory_order_relaxed);
        }
        respond_and_close(conn,
                          http::Response::error(408, "request deadline"));
        return;
      }
      if (ctx_->recv_timeout_ms > 0 &&
          now - conn->last_activity >= from_millis(ctx_->recv_timeout_ms)) {
        close_conn(conn);  // idle timeout (silent, like the threaded model)
        return;
      }
      schedule_read_timer(conn, now);  // fired early; re-arm the later edge
      break;
    }
    case Conn::State::kWriting: {
      if (conn->write_cut_at != 0 && now >= conn->write_cut_at) {
        // Stalled reader: the peer stopped draining our response. Count it
        // against the deadline only when a request budget was armed.
        if (conn->deadline_at != 0 && ctx_->counters != nullptr) {
          ctx_->counters->deadline_exceeded.fetch_add(
              1, std::memory_order_relaxed);
        }
        close_conn(conn);
        return;
      }
      if (conn->write_cut_at != 0) wheel_.schedule(conn->id, conn->write_cut_at);
      break;
    }
    case Conn::State::kExecuting:
      // The worker enforces the deadline (CGI kill, gate timeout); the
      // write-phase cut re-arms in start_response.
      break;
  }
}

void EpollReactor::sweep_idle(bool respond_mid_request) {
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    Conn* conn = find(id);
    if (conn == nullptr || conn->state != Conn::State::kReading) continue;
    if (conn->parser.mid_request()) {
      if (respond_mid_request) {
        respond_and_close(conn,
                          overload_response(503, "server shutting down",
                                            ctx_->retry_after_seconds));
      }
      // else: drain lets the in-flight request finish under its deadline.
    } else {
      close_conn(conn);
    }
  }
}

}  // namespace swala::server
