// Access logging. The paper's entire motivation study (§3, Table 1) came
// from analyzing a server's access log; a Swala deployment writes one in a
// format the workload library can load back (`workload::load_access_log`)
// so the same analysis runs on live traffic.
//
// Line format (one request per line):
//   ts=<epoch-seconds.frac> "<METHOD> <target> <version>" <status> <bytes>
//   service=<seconds> dyn=<0|1> cache=<miss|hit-local|hit-remote|->
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

#include "common/status.h"
#include "workload/trace.h"

namespace swala::server {

/// One logged request.
struct AccessRecord {
  double timestamp = 0.0;      ///< UNIX epoch seconds
  std::string method = "GET";
  std::string target;
  std::string version = "HTTP/1.0";
  int status = 200;
  std::uint64_t bytes = 0;
  double service_seconds = 0.0;
  bool dynamic = false;
  std::string cache_state = "-";
};

/// Thread-safe append-only log file.
class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens (appends to) the log file.
  Status open(const std::string& path);

  /// Appends one record; no-op when not open.
  void log(const AccessRecord& record);

  bool is_open() const;
  void close();

  /// Renders a record as its log line (exposed for tests/parsers).
  static std::string format(const AccessRecord& record);

 private:
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

/// Parses one log line; returns false on malformed input.
bool parse_access_line(std::string_view line, AccessRecord* out);

/// Loads an access log as a workload trace: arrivals become offsets from
/// the first entry, dynamic requests become CGI records. Malformed lines
/// are skipped (a crashing writer can truncate the last line). The result
/// feeds `workload::analyze_thresholds` — the paper's §3 study on your own
/// traffic.
Result<workload::Trace> load_access_log_trace(const std::string& path);

}  // namespace swala::server
