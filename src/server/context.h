// Request-handling core shared by every server flavour in this repo:
//   SwalaServer   — thread pool, cooperative cache (the paper's server)
//   MiniServer    — thread-per-connection, no cache (Enterprise stand-in)
//   ForkingServer — process-per-connection, no cache (NCSA HTTPd stand-in)
// The flavours differ only in concurrency architecture; the HTTP handling
// below is identical, which keeps the baseline comparisons honest.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "cgi/gate.h"
#include "cgi/registry.h"
#include "common/deadline.h"
#include "common/stats.h"
#include "core/manager.h"
#include "net/socket.h"
#include "server/access_log.h"

namespace swala::cluster {
class NodeGroup;
}

namespace swala::server {

/// Thread-safe response-time recorder (LatencyHistogram is not itself
/// thread-safe; request threads share this).
class LatencyRecorder {
 public:
  void add(double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.add(seconds);
  }

  LatencyHistogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }

 private:
  mutable std::mutex mutex_;
  LatencyHistogram histogram_;
};

/// Live counters exported by all server flavours.
struct ServerCounters {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> static_requests{0};
  std::atomic<std::uint64_t> dynamic_requests{0};
  std::atomic<std::uint64_t> cache_hits_local{0};
  std::atomic<std::uint64_t> cache_hits_remote{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  // ---- overload protection ----
  /// Requests/connections refused with a fast 503 (admission control at
  /// accept, full dispatch queue, or CGI gate timeout).
  std::atomic<std::uint64_t> requests_shed{0};
  /// Requests cut because their deadline expired (slow-loris 408, stalled
  /// response write, budget exhausted before execution).
  std::atomic<std::uint64_t> deadline_exceeded{0};
  /// Connections currently inside handle_connection (gauge, not monotonic).
  std::atomic<std::uint64_t> active_connections{0};
};

/// Plain-value snapshot of ServerCounters.
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t static_requests = 0;
  std::uint64_t dynamic_requests = 0;
  std::uint64_t cache_hits_local = 0;
  std::uint64_t cache_hits_remote = 0;
  std::uint64_t errors = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t active_connections = 0;
};

/// Everything a connection handler needs. Owned by the server object;
/// handlers borrow it.
struct ServeContext {
  std::string docroot;                         ///< empty = no static serving
  std::shared_ptr<cgi::HandlerRegistry> registry;  ///< may be null
  core::CacheManager* cache = nullptr;         ///< null = caching disabled
  /// When clustered, the node's group; /swala-status then reports per-peer
  /// health (circuit-breaker state, failures, probes) and cluster counters.
  cluster::NodeGroup* group = nullptr;
  /// Cluster-wide consistency oracle (see core/consistency.h). When set,
  /// GET /swala-admin/check-consistency?cluster=1 runs it and reports
  /// per-node drift; unset, ?cluster=1 is a 404 and only the local
  /// store↔directory check is available.
  std::function<core::ClusterConsistencyReport()> cluster_check;
  /// Graceful-decommission hook (wired by SwalaNode when clustered): stops
  /// new cache admissions, hands cached state + directory partition to ring
  /// successors and broadcasts kDecommission; returns a JSON summary.
  /// POST/GET /swala-admin/decommission runs it. Draining and process exit
  /// stay with the operator (SIGTERM, or SIGUSR2 in swalad).
  std::function<std::string()> decommission;
  const Clock* clock = nullptr;                ///< for CGI timing
  bool allow_keep_alive = true;
  /// Enables the built-in endpoints: GET /swala-status (JSON statistics),
  /// POST/GET /swala-admin/invalidate?pattern=<glob> (cluster-wide
  /// application-driven invalidation), and GET
  /// /swala-admin/check-consistency (store↔directory mirror cross-check;
  /// 200 consistent / 500 divergent; ?cluster=1 runs the cluster-wide
  /// oracle when cluster_check is wired).
  bool enable_admin = false;
  int recv_timeout_ms = 15000;
  std::size_t max_keep_alive_requests = 1000;
  ServerCounters* counters = nullptr;
  /// When set, handlers abandon idle keep-alive connections as soon as the
  /// flag goes false, so server shutdown never waits out recv_timeout_ms.
  const std::atomic<bool>* running = nullptr;
  /// Optional access log (see access_log.h); null = no logging.
  AccessLog* access_log = nullptr;
  /// Optional response-time recorder (reported by /swala-status).
  LatencyRecorder* latency = nullptr;

  // ---- overload protection ----
  /// Per-request budget in milliseconds, armed at the first byte of each
  /// request and covering parse, cache lookup, remote fetch, CGI queue
  /// wait, execution, and the response write. 0 = no deadline.
  int request_timeout_ms = 0;
  /// Caps concurrent CGI executions (fork storms); null = unlimited.
  /// Queue-wait counts against the request deadline.
  cgi::ExecGate* cgi_gate = nullptr;
  /// When set and true, the server is draining: responses carry
  /// "Connection: close" so in-flight keep-alive connections wind down.
  const std::atomic<bool>* draining = nullptr;
  /// Retry-After value (seconds) on 503 overload responses.
  int retry_after_seconds = 1;
  /// Connection-path model serving this context ("threads" | "epoll"),
  /// reported by /swala-status so operators can tell which io_model a node
  /// actually runs.
  const char* io_model = "threads";
};

/// Serves requests on `stream` until close / keep-alive exhaustion / error.
void handle_connection(net::TcpStream stream, const ServeContext& ctx);

/// Handles one parsed request; exposed for unit tests. The first form runs
/// with an unlimited deadline; the second threads the caller's per-request
/// budget through the cache lookup, remote fetch, CGI gate and execution.
http::Response handle_request(const http::Request& request,
                              const ServeContext& ctx);
http::Response handle_request(const http::Request& request,
                              const ServeContext& ctx,
                              const Deadline& deadline);

/// Builds a fast-fail overload response: `status` (usually 503) with
/// Retry-After and Connection: close, so clients back off and stop
/// pipelining into a suspect connection.
http::Response overload_response(int status, std::string_view reason,
                                 int retry_after_seconds);

/// Applies the per-exchange response hygiene shared by the threaded
/// connection handler and the epoll reactor's workers: response version,
/// Server header, the keep-alive decision (client intent, handler-forced
/// close, drain in progress, keep-alive budget with `served` exchanges
/// already done), and HEAD body suppression. Returns whether the connection
/// should be kept open afterwards.
bool finalize_response(const http::Request& request, const ServeContext& ctx,
                       std::size_t served, http::Response* resp);

/// Records one completed exchange in the latency histogram and access log
/// (both optional in `ctx`). `handle_start` is the clock reading taken just
/// before handle_request.
void record_exchange(const ServeContext& ctx, const http::Request& request,
                     const http::Response& resp, TimeNs handle_start,
                     const Clock* clock);

/// Snapshot helper.
ServerStats snapshot(const ServerCounters& counters);

}  // namespace swala::server
