// SwalaNode: assembles one complete node — HTTP server + cache manager +
// cluster group — from a configuration file. This is the public entry point
// a deployment would use; the examples build on it.
//
// Configuration format (INI; see common/config.h):
//
//   [server]
//   host = 127.0.0.1
//   port = 8080            ; 0 = ephemeral
//   threads = 16
//   io_model = threads     ; threads = one thread per connection (§4.1);
//                          ; epoll = event-driven reactor ('threads' then
//                          ; sizes the handler worker pool)
//   timer_resolution_ms = 50  ; reactor timer-wheel tick (epoll only)
//   docroot = ./www
//   listen_backlog = 128   ; listen(2) queue depth
//   ; ---- overload protection ----
//   max_connections = 0    ; shed (503) above this many active conns; 0 = off
//   shed_resume_percent = 75  ; stop shedding below this % of the cap
//   retry_after = 1        ; Retry-After seconds on 503 sheds
//   request_timeout_ms = 30000  ; per-request budget; 0 = unlimited
//   max_concurrent_cgi = 0 ; cap concurrent CGI forks; 0 = unlimited
//   dispatch_queue_depth = 1024 ; acceptor->worker queue (full = shed)
//   drain_timeout_ms = 5000     ; SIGTERM drain grace period
//
//   [cache]
//   enabled = true
//   max_entries = 2000
//   max_bytes = 0          ; 0 = unlimited
//   hot_bytes = 67108864   ; in-memory hot-blob cache budget (0 = disabled)
//   policy = lru           ; lru | lfu | fifo | size | gds
//   disk_dir =             ; empty = in-memory store
//   store = files          ; files = one file per entry (the paper's design)
//                          ; volume = log-structured single preallocated file
//   volume_bytes = 0       ; volume: total preallocated size (required, >0)
//   segment_bytes = 4194304    ; volume: compaction granularity
//   write_buffer_bytes = 262144  ; volume: flush-group target size
//   flush_interval_ms = 100      ; volume: max buffering delay (0 = per put)
//   state_file =           ; warm-restart manifest (needs disk_dir)
//   purge_interval = 2.0
//   checkpoint_interval = 10.0  ; manifest checkpoint cadence (needs state_file)
//   save_on_signal = true  ; persist the manifest on SIGTERM/SIGINT
//   negative_ttl = 1.0     ; seconds a failed CGI is remembered (0 = off)
//
//   [cacheability]
//   rule = /cgi-bin/* cache ttl=3600 min_exec=0.05
//   default = nocache
//
//   [cluster]
//   node_id = 0
//   member = 0 127.0.0.1 9000 9001   ; id host info_port data_port
//   member = 1 127.0.0.1 9010 9011
//   batch_max_messages = 64          ; directory updates per frame (1 = off)
//   batch_max_bytes = 262144         ; flush a batch at this encoded size
//   batch_linger_ms = 2              ; max wait for more updates to coalesce
//   directory_mode = replicated      ; replicated | partitioned | query
//   ring_vnodes = 64                 ; partitioned: virtual nodes per member
//   ring_seed = 1380535879           ; partitioned: placement seed ("RING")
//   query_timeout_ms = 300           ; per-probe cap (partitioned + query)
//   ; ---- dynamic membership ----
//   initial_active =                 ; ids active at start (empty = all);
//                                    ; a node absent from its own list must
//                                    ; join before cooperating
//   join_on_start = false            ; run the kJoin protocol after start()
//   join_timeout_ms = 3000           ; per-peer kJoin/kJoinAck ceiling
//   handoff_batch_bytes = 262144     ; decommission: max entry body shipped
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "cluster/group.h"
#include "common/config.h"
#include "core/manager.h"
#include "server/swala_server.h"

namespace swala::server {

class SwalaNode {
 public:
  /// Builds (but does not start) a node from configuration. The registry
  /// carries the CGI programs this node can run.
  static Result<std::unique_ptr<SwalaNode>> from_config(
      const Config& config, std::shared_ptr<cgi::HandlerRegistry> registry);

  ~SwalaNode();

  /// Starts group daemons (if clustered) and the HTTP server.
  Status start();
  void stop();

  /// Graceful drain: stop accepting, let in-flight requests finish (up to
  /// server.drain_timeout_ms). The SIGTERM path runs this before the
  /// manifest save, so the saved state reflects every completed request.
  /// Returns true when all connections finished in time.
  bool drain();

  /// Graceful decommission (idempotent): stop admitting new cache entries,
  /// hand every cached entry — and, in partitioned mode, this node's
  /// directory partition — to its ring successors, then broadcast
  /// kDecommission so peers deactivate this node without quarantining it.
  /// Does NOT drain or stop; callers sequence that (swalad's SIGUSR2 path
  /// runs decommission() → drain() → stop()).
  core::CacheManager::HandoffStats decommission();

  SwalaServer& http() { return *server_; }
  core::CacheManager* cache() { return manager_.get(); }
  cluster::NodeGroup* group() { return group_.get(); }

 private:
  SwalaNode() = default;

  /// Stand-alone nodes have no cluster purge daemon; this housekeeping
  /// thread drives purge_expired (and thereby manifest checkpointing) so a
  /// single-node deployment still expires entries and survives crashes.
  void housekeeping_loop();

  /// Registers this node so SIGTERM/SIGINT persist the manifest even when
  /// the embedding program installed no handlers of its own (saving happens
  /// on a watcher thread via a self-pipe; handlers stay async-signal-safe).
  void register_signal_save();

  std::unique_ptr<cluster::NodeGroup> group_;   // may be null (stand-alone)
  std::unique_ptr<core::CacheManager> manager_; // may be null (no caching)
  std::unique_ptr<SwalaServer> server_;
  std::string state_file_;  // warm-restart manifest; empty = disabled
  bool started_ = false;    // start() succeeded; gates the shutdown save
  bool save_on_signal_ = true;
  double purge_interval_seconds_ = 2.0;
  bool join_on_start_ = false;  // run join_cluster() right after start()
  std::size_t handoff_batch_bytes_ = 256 * 1024;

  std::mutex housekeeping_mutex_;
  std::condition_variable housekeeping_cv_;
  bool housekeeping_stop_ = false;  // guarded by housekeeping_mutex_
  std::thread housekeeping_thread_;
};

}  // namespace swala::server
