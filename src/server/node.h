// SwalaNode: assembles one complete node — HTTP server + cache manager +
// cluster group — from a configuration file. This is the public entry point
// a deployment would use; the examples build on it.
//
// Configuration format (INI; see common/config.h):
//
//   [server]
//   host = 127.0.0.1
//   port = 8080            ; 0 = ephemeral
//   threads = 16
//   docroot = ./www
//
//   [cache]
//   enabled = true
//   max_entries = 2000
//   max_bytes = 0          ; 0 = unlimited
//   policy = lru           ; lru | lfu | fifo | size | gds
//   disk_dir =             ; empty = in-memory store
//   state_file =           ; warm-restart manifest (needs disk_dir)
//   purge_interval = 2.0
//
//   [cacheability]
//   rule = /cgi-bin/* cache ttl=3600 min_exec=0.05
//   default = nocache
//
//   [cluster]
//   node_id = 0
//   member = 0 127.0.0.1 9000 9001   ; id host info_port data_port
//   member = 1 127.0.0.1 9010 9011
#pragma once

#include <memory>

#include "cluster/group.h"
#include "common/config.h"
#include "core/manager.h"
#include "server/swala_server.h"

namespace swala::server {

class SwalaNode {
 public:
  /// Builds (but does not start) a node from configuration. The registry
  /// carries the CGI programs this node can run.
  static Result<std::unique_ptr<SwalaNode>> from_config(
      const Config& config, std::shared_ptr<cgi::HandlerRegistry> registry);

  ~SwalaNode();

  /// Starts group daemons (if clustered) and the HTTP server.
  Status start();
  void stop();

  SwalaServer& http() { return *server_; }
  core::CacheManager* cache() { return manager_.get(); }
  cluster::NodeGroup* group() { return group_.get(); }

 private:
  SwalaNode() = default;

  std::unique_ptr<cluster::NodeGroup> group_;   // may be null (stand-alone)
  std::unique_ptr<core::CacheManager> manager_; // may be null (no caching)
  std::unique_ptr<SwalaServer> server_;
  std::string state_file_;  // warm-restart manifest; empty = disabled
};

}  // namespace swala::server
