// EpollReactor: the event-driven server core (server.io_model = epoll).
//
// The paper's §4.1 take-turns model pins one thread per keep-alive
// connection, which caps a node at a few hundred concurrent connections
// before admission control has to shed. The reactor replaces that
// connection path with a single non-blocking event loop that owns the
// listener and every connection fd; tens of thousands of idle keep-alive
// connections then cost one fd + ~one parser buffer each, no threads.
//
//   state machine per connection (driven by epoll readiness + timers):
//
//       accept ──> kReading ──(request complete)──> kExecuting
//                     ^                                  │ worker pool runs
//                     │ keep-alive                       │ handle_request
//                     │                                  v (eventfd wakeup)
//                    close <──(Connection: close)── kWriting
//
// CPU-bound / blocking work (CGI fork+exec via the ExecGate, disk store
// reads, single-flight waits) never runs on the loop: a completed request
// is handed to a small worker pool; the worker posts the serialized
// response to a completion queue and signals an eventfd the loop has
// registered, which re-arms the connection for writing.
//
// PR 5 overload semantics are preserved exactly, relocated to where the
// reactor naturally enforces them:
//   - admission control with hysteresis sheds inline at accept (the
//     dedicated shedder thread the threaded model needed is retired: the
//     loop is never pinned inside a connection, so it always reaches
//     accept);
//   - per-request deadlines arm at the first request byte and live on a
//     hashed timer wheel instead of SO_RCVTIMEO (slow-loris → 408);
//   - a stalled response write is cut when its deadline (or the idle-cap
//     fallback) fires on the same wheel;
//   - drain closes idle connections immediately and winds down in-flight
//     ones with "Connection: close".
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.h"
#include "http/parser.h"
#include "net/poller.h"
#include "server/context.h"
#include "server/timer_wheel.h"

namespace swala::server {

struct ReactorOptions {
  /// Worker pool executing handle_request (CGI, cache, disk). In epoll mode
  /// this is what server.threads configures.
  std::size_t worker_threads = 4;
  /// Admission control (same semantics as the threaded model): above this
  /// many open connections, new arrivals get a fast 503. 0 = unlimited.
  std::size_t max_connections = 0;
  int shed_resume_percent = 75;
  /// Timer wheel granularity; timers fire up to one tick late.
  int timer_resolution_ms = 50;
  /// Backstop for stop(): how long the loop keeps flushing in-flight
  /// responses after the workers have drained.
  int stop_flush_ms = 1000;
};

/// Event-driven connection path for SwalaServer. Owns the event-loop thread
/// and the worker pool; borrows the listener and the ServeContext (with its
/// counters, cache, registry, drain/running flags) from the server.
class EpollReactor {
 public:
  EpollReactor(const ServeContext* ctx, net::TcpListener* listener,
               ReactorOptions options);
  ~EpollReactor();

  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  Status start();

  /// Stop accepting and close idle connections; in-flight exchanges finish
  /// with "Connection: close" (ctx->draining must already be true). The
  /// caller watches ctx->counters->active_connections reach zero.
  void begin_drain();

  /// Drains workers, flushes in-flight responses briefly, joins the loop.
  /// Idempotent.
  void stop();

 private:
  struct Conn {
    std::uint64_t id = 0;
    net::TcpStream stream;
    http::RequestParser parser;
    enum class State { kReading, kExecuting, kWriting } state = State::kReading;
    std::uint32_t armed = 0;  ///< epoll events currently registered
    std::size_t served = 0;   ///< completed exchanges (keep-alive budget)
    // Per-request deadline (armed at first byte; kept for the write phase).
    Deadline deadline;
    TimeNs deadline_at = 0;      ///< absolute expiry; 0 = unlimited
    TimeNs last_activity = 0;    ///< last byte read (idle timeout base)
    TimeNs write_cut_at = 0;     ///< stalled-writer cut point (kWriting)
    // Response being written (serialized head + body with progress).
    std::string head;
    std::string body;
    std::size_t head_off = 0;
    std::size_t body_off = 0;
    bool keep = false;  ///< keep-alive after the current response
  };

  struct Job {
    std::uint64_t conn_id = 0;
    std::size_t served = 0;
    http::Request request;
    Deadline deadline;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::string head;
    std::string body;
    bool keep = false;
  };

  void loop();
  void worker_loop();

  void accept_ready();
  bool should_shed();
  void shed_new_connection(net::TcpStream stream);

  Conn* find(std::uint64_t id);
  void close_conn(Conn* conn);
  void drive_read(Conn* conn);
  void dispatch(Conn* conn);
  void start_response(Conn* conn, std::string head, std::string body,
                      bool keep);
  void respond_and_close(Conn* conn, const http::Response& resp);
  void drive_write(Conn* conn);
  void arm(Conn* conn, std::uint32_t events);
  void schedule_read_timer(Conn* conn, TimeNs now);
  void handle_timer(std::uint64_t id, TimeNs now);
  void process_completions();
  void sweep_idle(bool respond_mid_request);

  const ServeContext* ctx_;
  net::TcpListener* listener_;
  ReactorOptions options_;
  const Clock* clock_;

  net::Poller poller_;
  net::WakeupFd wakeup_;
  TimerWheel wheel_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_;

  BoundedQueue<Job> jobs_;
  std::mutex completions_mutex_;
  std::vector<Completion> completions_;  // guarded by completions_mutex_

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> drain_requested_{false};
  bool drain_swept_ = false;     // loop-thread only
  bool accepting_ = true;        // loop-thread only
  bool shedding_ = false;        // loop-thread only (hysteresis latch)
  TimeNs stop_flush_until_ = 0;  // loop-thread only

  std::vector<std::thread> workers_;
  std::thread loop_thread_;
};

}  // namespace swala::server
