// Hashed timing wheel for the epoll reactor's per-connection timers (idle
// keep-alive timeout, request deadline, stalled-writer cut). Tens of
// thousands of connections each carry one pending timer; a wheel gives O(1)
// schedule/cancel/reschedule where a heap would pay O(log n) per read-reset
// of the idle timer.
//
// Design: an id -> expiry map is authoritative; slot buckets are lazy hints.
// schedule() overwrites the map entry and drops the id into the bucket for
// its expiry tick. advance() walks the ticks since the last call; a bucket
// entry whose map expiry is in the past fires, one whose expiry moved (the
// timer was rescheduled, e.g. an idle timeout pushed out by traffic) is
// re-bucketed, and one with no map entry was cancelled and is skipped.
// Timers farther out than one wheel revolution simply go around again.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace swala::server {

class TimerWheel {
 public:
  /// `resolution` is the firing granularity (timers fire up to one tick
  /// late); `slot_count` trades memory for re-bucketing of long timers.
  explicit TimerWheel(TimeNs resolution = from_millis(50),
                      std::size_t slot_count = 512)
      : resolution_(resolution > 0 ? resolution : from_millis(50)),
        slots_(slot_count > 0 ? slot_count : 512) {}

  /// Schedules (or reschedules) timer `id` to fire at `when`. An expiry at
  /// or before the wheel's current tick is bucketed into the *next* tick —
  /// dropping it into its literal slot would delay it a full revolution,
  /// since advance() only visits slots for ticks it has not passed yet.
  void schedule(std::uint64_t id, TimeNs when) {
    when_[id] = when;
    TimeNs effective = when;
    if (last_tick_ != kUnstarted) {
      const TimeNs next = (last_tick_ + 1) * resolution_;
      if (effective < next) effective = next;
    }
    slots_[slot_of(effective)].push_back(id);
  }

  void cancel(std::uint64_t id) { when_.erase(id); }

  [[nodiscard]] bool empty() const { return when_.empty(); }
  [[nodiscard]] std::size_t pending() const { return when_.size(); }

  /// Collects every timer whose expiry is <= `now` into `fired` (appended)
  /// and removes it. Call with a monotonically non-decreasing `now`.
  void advance(TimeNs now, std::vector<std::uint64_t>* fired) {
    const std::int64_t tick = static_cast<std::int64_t>(now / resolution_);
    if (last_tick_ == kUnstarted) last_tick_ = tick - 1;
    if (tick <= last_tick_) return;
    // A gap longer than one revolution visits every slot exactly once.
    std::int64_t steps = tick - last_tick_;
    if (steps > static_cast<std::int64_t>(slots_.size())) {
      steps = static_cast<std::int64_t>(slots_.size());
    }
    for (std::int64_t t = tick - steps + 1; t <= tick; ++t) {
      auto& bucket = slots_[static_cast<std::size_t>(t) % slots_.size()];
      if (bucket.empty()) continue;
      std::vector<std::uint64_t> entries;
      entries.swap(bucket);
      for (const std::uint64_t id : entries) {
        const auto it = when_.find(id);
        if (it == when_.end()) continue;  // cancelled
        if (it->second <= now) {
          fired->push_back(id);
          when_.erase(it);
        } else {
          // Rescheduled later, or wrapped a revolution: re-bucket, clamped
          // past the tick being processed (its literal slot was just
          // swapped and will not be visited again for a revolution). The
          // swap above makes a same-slot re-push land in the fresh bucket,
          // so this cannot loop.
          const TimeNs next = (t + 1) * resolution_;
          slots_[slot_of(std::max(it->second, next))].push_back(id);
        }
      }
    }
    last_tick_ = tick;
  }

 private:
  static constexpr std::int64_t kUnstarted =
      std::numeric_limits<std::int64_t>::min();

  std::size_t slot_of(TimeNs when) const {
    return static_cast<std::size_t>(when / resolution_) % slots_.size();
  }

  TimeNs resolution_;
  std::int64_t last_tick_ = kUnstarted;
  std::unordered_map<std::uint64_t, TimeNs> when_;
  std::vector<std::vector<std::uint64_t>> slots_;
};

}  // namespace swala::server
