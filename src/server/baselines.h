// Baseline servers for the paper's comparisons (§5.1).
//
// The original experiments compared Swala against NCSA HTTPd 1.5.2 and
// Netscape Enterprise. Neither can be run here, so we substitute servers
// with the same *cost structure* (see DESIGN.md):
//
//   ForkingServer — forks a process per connection, reproducing the process
//                   model the paper blames for HTTPd's low performance.
//   MiniServer    — a lean pre-threaded server without caching, standing in
//                   for the tuned commercial threaded server (Enterprise).
//
// Both reuse the exact request-handling core in context.h, so measured
// differences come from the concurrency architecture only.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "server/context.h"

namespace swala::server {

struct BaselineOptions {
  net::InetAddress listen{"127.0.0.1", 0};
  std::string docroot;
  std::size_t threads = 16;  ///< MiniServer only
  bool allow_keep_alive = true;
  int recv_timeout_ms = 15000;
};

/// Thread-per-connection server, no cache (Enterprise stand-in).
class MiniServer {
 public:
  MiniServer(BaselineOptions options,
             std::shared_ptr<cgi::HandlerRegistry> registry);
  ~MiniServer();

  Status start();
  void stop();

  std::uint16_t port() const { return listener_.local_port(); }
  net::InetAddress address() const { return {"127.0.0.1", port()}; }
  ServerStats stats() const { return snapshot(counters_); }

 private:
  void accept_loop();

  BaselineOptions options_;
  std::shared_ptr<cgi::HandlerRegistry> registry_;
  ServeContext ctx_;
  ServerCounters counters_;
  net::TcpListener listener_;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// Process-per-connection server (NCSA HTTPd stand-in). The parent forks a
/// child per accepted connection; the child serves it and _exits. SIGCHLD
/// is set to SIG_IGN so children are auto-reaped.
///
/// NOTE: fork() in a multi-threaded bench process is safe here because the
/// child only touches the connection handler (no locks are held at fork
/// time in this server's own thread) and exits immediately after.
class ForkingServer {
 public:
  ForkingServer(BaselineOptions options,
                std::shared_ptr<cgi::HandlerRegistry> registry);
  ~ForkingServer();

  Status start();
  void stop();

  std::uint16_t port() const { return listener_.local_port(); }
  net::InetAddress address() const { return {"127.0.0.1", port()}; }

  /// Connections accepted by the parent (children keep their own counts).
  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();

  BaselineOptions options_;
  std::shared_ptr<cgi::HandlerRegistry> registry_;
  ServeContext ctx_;
  ServerCounters counters_;
  net::TcpListener listener_;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::atomic<std::uint64_t> accepted_{0};
};

}  // namespace swala::server
