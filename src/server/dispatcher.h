// Front-end request dispatcher.
//
// The paper's experiments distribute clients across nodes from the client
// side ("every thread launches requests to a single server node") — the
// standard 1998 alternative being a load-balancing front end (the paper
// cites SWEB [2] and IBM's scalable server [7]). This dispatcher completes
// the deployment story: one address clients connect to, requests forwarded
// to the Swala nodes round-robin or by least in-flight connections, with
// failover when a backend is down.
//
// Forwarding is plain HTTP proxying: the dispatcher rewrites nothing but
// adds a Via header; cooperative caching below is unaffected (any node can
// serve any request — that is the whole point of the shared cache).
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "http/message.h"
#include "net/socket.h"

namespace swala::server {

enum class DispatchStrategy {
  kRoundRobin,
  kLeastConnections,  ///< fewest in-flight forwards
};

struct DispatcherOptions {
  net::InetAddress listen{"127.0.0.1", 0};
  std::size_t threads = 8;
  DispatchStrategy strategy = DispatchStrategy::kRoundRobin;
  int backend_timeout_ms = 30000;
  /// How long a *client* connection may sit idle between requests before
  /// the dispatcher closes it. Distinct from backend_timeout_ms (how long a
  /// forward may take): a patient backend must not entitle a silent client
  /// to park a dispatcher thread for the same 30s.
  int client_idle_timeout_ms = 15000;
  /// How many distinct backends to try before shedding the request (503).
  std::size_t max_attempts = 2;
  /// listen(2) backlog for the front-end socket (it fronts every node, so
  /// it sees the aggregate connection burst).
  int listen_backlog = 128;
  /// Admission control: above this many concurrent client connections, new
  /// arrivals get a fast 503 + Retry-After. 0 = unlimited.
  std::size_t max_connections = 0;
  /// Retry-After (seconds) on 503 shed responses.
  int retry_after_seconds = 1;
};

struct DispatcherStats {
  std::uint64_t requests = 0;
  std::uint64_t forward_failures = 0;  ///< attempts that failed over
  std::uint64_t unavailable = 0;       ///< requests answered 503 (no backend)
  std::uint64_t requests_shed = 0;     ///< connections refused at the door
  std::uint64_t active_connections = 0;  ///< gauge
  std::vector<std::uint64_t> per_backend;
};

class Dispatcher {
 public:
  Dispatcher(DispatcherOptions options, std::vector<net::InetAddress> backends);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  Status start();
  void stop();

  std::uint16_t port() const { return listener_.local_port(); }
  net::InetAddress address() const { return {"127.0.0.1", port()}; }

  DispatcherStats stats() const;

 private:
  void worker_loop();
  void handle_connection(net::TcpStream stream);

  /// Picks the next backend to try, excluding already-failed indices.
  std::size_t pick_backend(const std::vector<std::size_t>& exclude);

  DispatcherOptions options_;
  std::vector<net::InetAddress> backends_;

  net::TcpListener listener_;
  std::mutex accept_mutex_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> round_robin_{0};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> in_flight_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> forwarded_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> forward_failures_{0};
  std::atomic<std::uint64_t> unavailable_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::uint64_t> active_connections_{0};
};

}  // namespace swala::server
