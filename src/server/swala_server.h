// SwalaServer: the paper's HTTP module. A pool of request threads "take
// turns listening on the main port for incoming connections" (§4.1); each
// thread owns its connection from parse to completion, running the cache
// flow of Figure 2 for dynamic requests.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "server/context.h"

namespace swala::server {

class EpollReactor;

/// How connections reach the request threads (§4.1 design choice).
enum class AcceptModel {
  /// The paper's model: request threads take turns in accept() under a
  /// mutex; the accepting thread then owns the connection end-to-end.
  kTakeTurns,
  /// The alternative: a dedicated acceptor thread pushes connections onto
  /// a bounded queue the request threads pop from.
  kAcceptorQueue,
};

/// Connection-path I/O model (`server.io_model` in swala.conf).
enum class IoModel {
  /// The paper's model: one (pooled) thread owns each connection from
  /// accept to close. Portable, simple, caps out at ~request_threads
  /// concurrent keep-alive connections before admission control sheds.
  kThreads,
  /// Non-blocking epoll reactor (see server/reactor.h): one event loop owns
  /// every connection fd, a worker pool runs the request handlers, and tens
  /// of thousands of idle keep-alive connections cost one fd each.
  kEpoll,
};

struct SwalaServerOptions {
  net::InetAddress listen{"127.0.0.1", 0};
  std::size_t request_threads = 16;
  AcceptModel accept_model = AcceptModel::kTakeTurns;
  /// threads: one thread per connection (the paper's §4.1 model).
  /// epoll: event-driven reactor; request_threads sizes the worker pool
  /// that runs handlers (CGI, cache, disk), not the connection count.
  IoModel io_model = IoModel::kThreads;
  /// Reactor timer-wheel granularity (epoll only); deadlines and idle
  /// timeouts fire up to one tick late.
  int timer_resolution_ms = 50;
  std::string docroot;
  bool allow_keep_alive = true;
  /// Exposes /swala-status and /swala-admin/invalidate.
  bool enable_admin = false;
  /// Path of the access log (empty = no logging); see access_log.h.
  std::string access_log_path;
  int recv_timeout_ms = 15000;
  /// listen(2) backlog. Bursty benchmark loads overflow the historical
  /// default of 128 and show up as client connect failures, not server
  /// errors — raise this before raising request_threads.
  int listen_backlog = 128;

  // ---- overload protection ----
  /// Admission control: above this many concurrently active connections,
  /// new arrivals are shed with a fast 503 + Retry-After instead of being
  /// queued behind saturated request threads. 0 = unlimited.
  std::size_t max_connections = 0;
  /// Hysteresis: once shedding starts it continues until active
  /// connections fall to this percentage of max_connections, so the server
  /// does not flap at the boundary under a sustained burst.
  int shed_resume_percent = 75;
  /// Retry-After (seconds) on overload responses.
  int retry_after_seconds = 1;
  /// Per-request deadline covering parse through response write; 0 = none.
  int request_timeout_ms = 0;
  /// Capacity of the acceptor→worker queue (kAcceptorQueue model). A full
  /// queue sheds, it never blocks the acceptor.
  std::size_t dispatch_queue_depth = 1024;
  /// Caps concurrent CGI executions; 0 = unlimited. Queue-wait counts
  /// against the request deadline.
  std::size_t max_concurrent_cgi = 0;
  /// How long drain() waits for in-flight connections before giving up.
  int drain_timeout_ms = 5000;
};

class SwalaServer {
 public:
  /// `registry` supplies the CGI programs; `cache` may be null (caching
  /// disabled — the paper's "Swala no-cache" configuration).
  SwalaServer(SwalaServerOptions options,
              std::shared_ptr<cgi::HandlerRegistry> registry,
              core::CacheManager* cache = nullptr,
              const Clock* clock = RealClock::instance());
  ~SwalaServer();

  SwalaServer(const SwalaServer&) = delete;
  SwalaServer& operator=(const SwalaServer&) = delete;

  /// Binds the port and launches the request-thread pool.
  Status start();

  /// Stops accepting, joins all request threads. Idempotent.
  void stop();

  /// Graceful drain: stop accepting, mark responses "Connection: close",
  /// and wait up to `options.drain_timeout_ms` for in-flight connections
  /// to finish. Returns true when the server drained fully in time.
  /// Call before stop(); stop() afterwards only reaps threads.
  bool drain();

  /// True once drain() has started (reported by /swala-status).
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Bound port (after start()).
  std::uint16_t port() const { return listener_.local_port(); }
  net::InetAddress address() const { return {"127.0.0.1", port()}; }

  ServerStats stats() const { return snapshot(counters_); }
  core::CacheManager* cache() const { return ctx_.cache; }

  /// Wires the cluster group so /swala-status reports per-peer health.
  /// Call before start() (the request threads read ctx_ unsynchronized).
  void set_group(cluster::NodeGroup* group) { ctx_.group = group; }

  /// Wires the cluster-wide consistency oracle behind
  /// /swala-admin/check-consistency?cluster=1. The callable must be safe to
  /// run from a request thread. Call before start().
  void set_cluster_check(
      std::function<core::ClusterConsistencyReport()> check) {
    ctx_.cluster_check = std::move(check);
  }

  /// Wires the graceful-decommission hook behind
  /// POST/GET /swala-admin/decommission (see ServeContext::decommission).
  /// Call before start().
  void set_decommission_hook(std::function<std::string()> hook) {
    ctx_.decommission = std::move(hook);
  }

  /// Response-time distribution (request handling, excluding socket I/O).
  LatencyHistogram latency() const { return latency_.snapshot(); }

 private:
  void request_thread_loop();
  void acceptor_loop();
  void queue_worker_loop();
  void shed_loop();

  /// Admission decision with hysteresis (see shed_resume_percent).
  bool should_shed();

  /// Writes a 503 + Retry-After + Connection: close and closes the stream.
  void shed_connection(net::TcpStream stream);

  SwalaServerOptions options_;
  std::shared_ptr<cgi::HandlerRegistry> registry_;
  ServeContext ctx_;
  ServerCounters counters_;
  AccessLog access_log_;
  LatencyRecorder latency_;
  std::unique_ptr<cgi::ExecGate> cgi_gate_;

  net::TcpListener listener_;
  std::mutex accept_mutex_;  ///< request threads take turns accepting
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shedding_{false};  ///< hysteresis state
  std::vector<std::thread> threads_;
  std::thread acceptor_;  ///< kAcceptorQueue only
  /// kTakeTurns only: when every request thread is tied up in a long
  /// keep-alive connection, nobody sits in accept() and overflow arrivals
  /// would wait out the backlog in silence. This thread accepts and sheds
  /// them with a fast 503 while the admission gate is closed.
  std::thread shedder_;
  std::unique_ptr<BoundedQueue<net::TcpStream>> conn_queue_;
  /// io_model = epoll: the event-driven connection path. Owns the loop and
  /// worker threads; threads_/shedder_/acceptor_ stay empty.
  std::unique_ptr<EpollReactor> reactor_;
};

}  // namespace swala::server
