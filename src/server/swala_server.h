// SwalaServer: the paper's HTTP module. A pool of request threads "take
// turns listening on the main port for incoming connections" (§4.1); each
// thread owns its connection from parse to completion, running the cache
// flow of Figure 2 for dynamic requests.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "server/context.h"

namespace swala::server {

/// How connections reach the request threads (§4.1 design choice).
enum class AcceptModel {
  /// The paper's model: request threads take turns in accept() under a
  /// mutex; the accepting thread then owns the connection end-to-end.
  kTakeTurns,
  /// The alternative: a dedicated acceptor thread pushes connections onto
  /// a bounded queue the request threads pop from.
  kAcceptorQueue,
};

struct SwalaServerOptions {
  net::InetAddress listen{"127.0.0.1", 0};
  std::size_t request_threads = 16;
  AcceptModel accept_model = AcceptModel::kTakeTurns;
  std::string docroot;
  bool allow_keep_alive = true;
  /// Exposes /swala-status and /swala-admin/invalidate.
  bool enable_admin = false;
  /// Path of the access log (empty = no logging); see access_log.h.
  std::string access_log_path;
  int recv_timeout_ms = 15000;
  /// listen(2) backlog. Bursty benchmark loads overflow the historical
  /// default of 128 and show up as client connect failures, not server
  /// errors — raise this before raising request_threads.
  int listen_backlog = 128;
};

class SwalaServer {
 public:
  /// `registry` supplies the CGI programs; `cache` may be null (caching
  /// disabled — the paper's "Swala no-cache" configuration).
  SwalaServer(SwalaServerOptions options,
              std::shared_ptr<cgi::HandlerRegistry> registry,
              core::CacheManager* cache = nullptr,
              const Clock* clock = RealClock::instance());
  ~SwalaServer();

  SwalaServer(const SwalaServer&) = delete;
  SwalaServer& operator=(const SwalaServer&) = delete;

  /// Binds the port and launches the request-thread pool.
  Status start();

  /// Stops accepting, joins all request threads. Idempotent.
  void stop();

  /// Bound port (after start()).
  std::uint16_t port() const { return listener_.local_port(); }
  net::InetAddress address() const { return {"127.0.0.1", port()}; }

  ServerStats stats() const { return snapshot(counters_); }
  core::CacheManager* cache() const { return ctx_.cache; }

  /// Wires the cluster group so /swala-status reports per-peer health.
  /// Call before start() (the request threads read ctx_ unsynchronized).
  void set_group(cluster::NodeGroup* group) { ctx_.group = group; }

  /// Response-time distribution (request handling, excluding socket I/O).
  LatencyHistogram latency() const { return latency_.snapshot(); }

 private:
  void request_thread_loop();
  void acceptor_loop();
  void queue_worker_loop();

  SwalaServerOptions options_;
  std::shared_ptr<cgi::HandlerRegistry> registry_;
  ServeContext ctx_;
  ServerCounters counters_;
  AccessLog access_log_;
  LatencyRecorder latency_;

  net::TcpListener listener_;
  std::mutex accept_mutex_;  ///< request threads take turns accepting
  std::atomic<bool> running_{false};
  std::vector<std::thread> threads_;
  std::thread acceptor_;  ///< kAcceptorQueue only
  std::unique_ptr<BoundedQueue<net::TcpStream>> conn_queue_;
};

}  // namespace swala::server
