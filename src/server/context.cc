#include "server/context.h"

#include <algorithm>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "cluster/group.h"
#include "common/logging.h"
#include "common/strings.h"
#include "http/date.h"
#include "http/mime.h"
#include "http/parser.h"

namespace swala::server {
namespace {

constexpr std::string_view kServerName = "Swala/1.0";

void count(ServerCounters* c, std::atomic<std::uint64_t> ServerCounters::*field) {
  if (c != nullptr) (c->*field).fetch_add(1, std::memory_order_relaxed);
}

/// Memory-mapped static file serving (§4: "We use memory-mapped I/O
/// whenever possible to minimize the number of system calls and eliminate
/// double-buffering"). The response head and the mapped body are written
/// straight to the socket without copying into a Response.
struct MappedFile {
  void* addr = MAP_FAILED;
  std::size_t size = 0;

  ~MappedFile() {
    if (addr != MAP_FAILED) ::munmap(addr, size);
  }

  std::string_view view() const {
    return {static_cast<const char*>(addr), size};
  }
};

/// Resolves a decoded request path under the docroot. parse_uri already
/// removed dot segments; reject any residue defensively.
Result<std::string> resolve_static_path(const std::string& docroot,
                                        const std::string& path) {
  if (path.find("..") != std::string::npos) {
    return Status(StatusCode::kPermissionDenied, "path traversal");
  }
  std::string full = docroot;
  if (!full.empty() && full.back() == '/') full.pop_back();
  full += path;
  if (!full.empty() && full.back() == '/') full += "index.html";
  return full;
}

http::Response dynamic_response(std::string body, std::string content_type,
                                int status, std::string_view cache_state) {
  http::Response resp = http::Response::make(status, std::move(body),
                                             content_type);
  resp.headers.set("X-Swala-Cache", cache_state);
  return resp;
}

/// Executes a CGI handler through the Figure-2 cache flow, under the
/// request's deadline and the CGI concurrency gate.
http::Response run_dynamic(const http::Request& request,
                           const cgi::CgiHandlerPtr& handler,
                           const ServeContext& ctx,
                           const Deadline& deadline) {
  count(ctx.counters, &ServerCounters::dynamic_requests);

  core::RuleDecision rule;
  bool leader = false;  // single-flight: this request owns the execution
  if (ctx.cache != nullptr) {
    auto lookup = ctx.cache->lookup(request.method, request.uri, deadline);
    if (lookup.outcome == core::LookupOutcome::kHit) {
      if (lookup.remote) {
        count(ctx.counters, &ServerCounters::cache_hits_remote);
      } else {
        count(ctx.counters, &ServerCounters::cache_hits_local);
      }
      const char* state = lookup.coalesced ? "hit-coalesced"
                          : lookup.remote  ? "hit-remote"
                                           : "hit-local";
      return dynamic_response(std::move(lookup.result.data),
                              lookup.result.meta.content_type,
                              lookup.result.meta.http_status, state);
    }
    if (lookup.outcome == core::LookupOutcome::kFailedFast) {
      // Negative-cached, coalesced onto a leader that failed, or deadline
      // expired waiting: fail fast instead of piling on.
      count(ctx.counters, &ServerCounters::errors);
      http::Response resp = overload_response(
          lookup.fail_status, lookup.fail_reason, ctx.retry_after_seconds);
      resp.headers.set("X-Swala-Cache", "failed-fast");
      return resp;
    }
    rule = lookup.rule;
    leader = lookup.outcome == core::LookupOutcome::kMissMustExecute;
  }
  // The leader MUST release its waiters on every exit path below, either
  // via complete() or via fail().
  const auto bail = [&](int status, const std::string& reason,
                        bool remember) {
    if (leader) {
      ctx.cache->fail(request.method, request.uri, rule, status, reason,
                      remember);
    }
  };

  if (deadline.expired()) {
    count(ctx.counters, &ServerCounters::deadline_exceeded);
    bail(503, "deadline expired before execution", /*remember=*/false);
    return overload_response(503, "deadline expired",
                             ctx.retry_after_seconds);
  }

  // CGI concurrency gate: a fork storm degrades everyone; queue here (the
  // wait counts against the deadline) and shed if no slot frees in time.
  cgi::ExecSlot slot(ctx.cgi_gate, deadline);
  if (!slot.acquired()) {
    count(ctx.counters, &ServerCounters::requests_shed);
    bail(503, "CGI concurrency gate timeout", /*remember=*/false);
    return overload_response(503, "server busy", ctx.retry_after_seconds);
  }

  // Miss or uncacheable: execute the CGI and time it.
  const Clock* clock = ctx.clock != nullptr
                           ? ctx.clock
                           : static_cast<const Clock*>(RealClock::instance());
  const TimeNs start = clock->now();
  auto output = handler->run(request, deadline);
  const double exec_seconds = to_seconds(clock->now() - start);

  if (!output) {
    count(ctx.counters, &ServerCounters::errors);
    bail(500, output.status().to_string(), /*remember=*/true);
    return http::Response::error(500, output.status().to_string());
  }

  if (ctx.cache != nullptr) {
    // complete() releases single-flight waiters (success or failure) and
    // negative-caches failed executions; the leader obligation ends here.
    ctx.cache->complete(request.method, request.uri, rule, output.value(),
                        exec_seconds);
  }
  if (!output.value().success) {
    count(ctx.counters, &ServerCounters::errors);
  }
  return dynamic_response(std::move(output.value().body),
                          output.value().content_type,
                          output.value().http_status, "miss");
}

http::Response serve_static(const http::Request& request,
                            const ServeContext& ctx) {
  count(ctx.counters, &ServerCounters::static_requests);
  if (ctx.docroot.empty()) return http::Response::error(404);

  auto full = resolve_static_path(ctx.docroot, request.uri.path);
  if (!full) return http::Response::error(403);

  const int fd = ::open(full.value().c_str(), O_RDONLY);
  if (fd < 0) return http::Response::error(404, request.uri.path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return http::Response::error(404, request.uri.path);
  }

  // Conditional GET: If-Modified-Since lets 1990s-era clients and proxies
  // revalidate cheaply with a 304.
  if (const auto ims = request.headers.get("If-Modified-Since")) {
    const auto since = http::parse_http_date(*ims);
    if (since && st.st_mtime <= *since) {
      ::close(fd);
      http::Response not_modified;
      not_modified.status = 304;
      not_modified.headers.set("Last-Modified",
                               http::format_http_date(st.st_mtime));
      return not_modified;
    }
  }

  http::Response resp;
  resp.status = 200;
  resp.headers.set("Content-Type", http::mime_type_for_path(full.value()));
  resp.headers.set("Content-Length", std::to_string(st.st_size));
  resp.headers.set("Last-Modified", http::format_http_date(st.st_mtime));
  if (request.method != http::Method::kHead && st.st_size > 0) {
    MappedFile map;
    map.size = static_cast<std::size_t>(st.st_size);
    map.addr = ::mmap(nullptr, map.size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map.addr == MAP_FAILED) {
      ::close(fd);
      return http::Response::error(500, "mmap failed");
    }
    resp.body.assign(map.view());
  }
  ::close(fd);
  return resp;
}

std::string json_u64(std::string_view name, std::uint64_t value,
                     bool last = false) {
  std::string out = "  \"";
  out += name;
  out += "\": ";
  out += std::to_string(value);
  if (!last) out += ",";
  out += "\n";
  return out;
}

/// GET /swala-status: live statistics as JSON.
http::Response serve_status(const ServeContext& ctx) {
  std::string body = "{\n";
  body += "  \"io_model\": \"";
  body += ctx.io_model != nullptr ? ctx.io_model : "threads";
  body += "\",\n";
  if (ctx.counters != nullptr) {
    const ServerStats s = snapshot(*ctx.counters);
    body += json_u64("connections", s.connections);
    body += json_u64("requests", s.requests);
    body += json_u64("static_requests", s.static_requests);
    body += json_u64("dynamic_requests", s.dynamic_requests);
    body += json_u64("errors", s.errors);
    body += json_u64("bytes_sent", s.bytes_sent);
    body += json_u64("requests_shed", s.requests_shed);
    body += json_u64("deadline_exceeded", s.deadline_exceeded);
    body += json_u64("active_connections", s.active_connections);
  }
  body += json_u64("draining",
                   ctx.draining != nullptr &&
                           ctx.draining->load(std::memory_order_relaxed)
                       ? 1
                       : 0);
  if (ctx.cgi_gate != nullptr) {
    const cgi::ExecGateStats g = ctx.cgi_gate->stats();
    body += json_u64("cgi_gate_capacity", ctx.cgi_gate->capacity());
    body += json_u64("cgi_active", g.active);
    body += json_u64("cgi_waiting", g.waiting);
    body += json_u64("cgi_queue_waits", g.queue_waits);
    body += json_u64("cgi_queue_timeouts", g.queue_timeouts);
  }
  if (ctx.latency != nullptr) {
    const LatencyHistogram hist = ctx.latency->snapshot();
    body += json_u64("response_count", hist.count());
    body += json_u64("response_mean_us",
                     static_cast<std::uint64_t>(hist.mean() * 1e6));
    body += json_u64("response_p50_us",
                     static_cast<std::uint64_t>(hist.percentile(50) * 1e6));
    body += json_u64("response_p95_us",
                     static_cast<std::uint64_t>(hist.percentile(95) * 1e6));
    body += json_u64("response_p99_us",
                     static_cast<std::uint64_t>(hist.percentile(99) * 1e6));
  }
  if (ctx.group != nullptr) {
    const cluster::GroupStats g = ctx.group->stats();
    body += json_u64("cluster_remote_fetches", g.remote_fetches);
    body += json_u64("cluster_send_failures", g.send_failures);
    body += json_u64("cluster_send_retries", g.send_retries);
    body += json_u64("cluster_peer_failures", g.peer_failures);
    body += json_u64("cluster_messages_dropped", g.messages_dropped);
    body += json_u64("cluster_probes_sent", g.probes_sent);
    body += json_u64("cluster_resyncs_requested", g.resyncs_requested);
    body += json_u64("cluster_resyncs_served", g.resyncs_served);
    body += json_u64("cluster_frames_sent", g.frames_sent);
    body += json_u64("cluster_batched_broadcasts", g.batched_broadcasts);
    body += json_u64("cluster_owner_updates_sent", g.owner_updates_sent);
    body += json_u64("cluster_queries_sent", g.queries_sent);
    body += json_u64("cluster_query_hits", g.query_hits);
    body += json_u64("cluster_queries_served", g.queries_served);
    body += json_u64("cluster_anti_entropy_rounds", g.anti_entropy_rounds);
    body += json_u64("cluster_digests_sent", g.digests_sent);
    body += json_u64("cluster_digest_repairs", g.digest_repairs);
    body += json_u64("cluster_inv_syncs_pulled", g.inv_syncs_pulled);
    body += json_u64("cluster_inv_syncs_served", g.inv_syncs_served);
    body += json_u64("cluster_joins_sent", g.joins_sent);
    body += json_u64("cluster_joins_served", g.joins_served);
    body += json_u64("cluster_decommissions_observed",
                     g.decommissions_observed);
    body += json_u64("cluster_handoff_frames_sent", g.handoff_frames_sent);
    body += json_u64("cluster_handoffs_adopted", g.handoffs_adopted);
    body += "  \"cluster_peers\": [";
    const auto peers = ctx.group->peer_health();
    for (std::size_t i = 0; i < peers.size(); ++i) {
      const auto& p = peers[i];
      if (i != 0) body += ",";
      body += "\n    {\"id\": " + std::to_string(p.id);
      body += ", \"state\": \"";
      body += cluster::peer_state_name(p.state);
      body += "\", \"consecutive_failures\": " +
              std::to_string(p.consecutive_failures);
      body += ", \"total_failures\": " + std::to_string(p.total_failures);
      body += ", \"messages_dropped\": " + std::to_string(p.messages_dropped);
      body += ", \"probes_sent\": " + std::to_string(p.probes_sent);
      body += ", \"outbound_backlog\": " + std::to_string(p.outbound_backlog);
      body += "}";
    }
    body += peers.empty() ? "],\n" : "\n  ],\n";
  }
  if (ctx.cache != nullptr) {
    const core::ManagerStats c = ctx.cache->stats();
    body += json_u64("cache_lookups", c.lookups);
    body += json_u64("cache_local_hits", c.local_hits);
    body += json_u64("cache_remote_hits", c.remote_hits);
    body += json_u64("cache_misses", c.misses);
    body += json_u64("cache_inserts", c.inserts);
    body += json_u64("cache_false_hits", c.false_hits);
    body += json_u64("cache_false_misses", c.false_misses);
    body += json_u64("cache_invalidations", c.invalidations);
    body += json_u64("cache_fallback_executions", c.fallback_executions);
    body += json_u64("cache_coalesced_misses", c.coalesced_misses);
    body += json_u64("cache_coalesce_timeouts", c.coalesce_timeouts);
    body += json_u64("cache_failed_fast", c.failed_fast);
    body += json_u64("inv_epoch_gaps_repaired", c.inv_epoch_gaps_repaired);
    body += json_u64("stale_serves_prevented", c.stale_serves_prevented);
    body += json_u64("inv_overflow_purges", c.inv_overflow_purges);
    body += "  \"directory_mode\": \"";
    body += core::directory_mode_name(ctx.cache->directory_mode());
    body += "\",\n";
    body += json_u64("membership_epoch", ctx.cache->membership_epoch());
    body += json_u64("membership_transitions", c.membership_transitions);
    body += json_u64("cluster_handoff_records_sent", c.handoff_records_sent);
    body += json_u64("cache_remote_dir_lookups", c.remote_dir_lookups);
    body += json_u64("cache_remote_dir_hits", c.remote_dir_hits);
    body += json_u64("cache_peer_queries", c.peer_queries);
    body += json_u64("cache_peer_query_hits", c.peer_query_hits);
    // Durability: disk health, checkpoint progress and the startup scrub's
    // findings, so an operator (or the crash-restart CI job) can see whether
    // the node came back clean and whether the disk is still trusted.
    const core::ScrubReport scrub = ctx.cache->last_scrub();
    body += "  \"durability\": {\n";
    body += "  " + json_u64("disk_errors", c.disk_errors);
    body += "  " + json_u64("store_degraded", c.store_degraded);
    body += "  " + json_u64("degraded_skips", c.degraded_skips);
    body += "  " + json_u64("checkpoints", c.checkpoints);
    body += "  " + json_u64("checkpoint_failures", c.checkpoint_failures);
    body += "  " + json_u64("scrub_adopted", scrub.adopted);
    body += "  " + json_u64("scrub_quarantined", scrub.quarantined);
    body += "  " + json_u64("scrub_orphans_removed", scrub.orphans_removed);
    body += "  " + json_u64("scrub_temps_removed", scrub.temps_removed);
    // Backend-level counters: erase failures (both backends) and the
    // volume store's flush/compaction/recovery progress.
    const core::StorageCounters sc = ctx.cache->storage_counters();
    body += "  \"store_backend\": \"";
    body += sc.backend;
    body += "\",\n";
    body += "  " + json_u64("erase_errors", sc.erase_errors);
    body += "  " + json_u64("volume_flushes", sc.flushes);
    body += "  " + json_u64("volume_flushed_records", sc.flushed_records);
    body += "  " + json_u64("volume_compactions", sc.compactions);
    body += "  " + json_u64("volume_compacted_records", sc.compacted_records);
    body += "  " + json_u64("volume_corrupt_records_skipped",
                            sc.corrupt_records_skipped);
    body += "  " + json_u64("volume_torn_tail_truncated",
                            sc.torn_tail_truncated);
    body += "  " + json_u64("volume_index_mismatches", sc.index_mismatches);
    body += "  " + json_u64("volume_segments_total", sc.segments_total);
    body += "  " + json_u64("volume_segments_free", sc.segments_free);
    body += "  " + json_u64("volume_dead_bytes", sc.dead_bytes, true);
    body += "  },\n";
    body += json_u64("cache_entries", ctx.cache->store().entry_count());
    body += json_u64("cache_bytes", ctx.cache->store().bytes_used());
    const core::StoreStats st = ctx.cache->store().stats();
    body += json_u64("cache_hot_hits", st.hot_hits);
    body += json_u64("cache_hot_misses", st.hot_misses);
    body += json_u64("cache_hot_bytes", st.hot_bytes);
    body += json_u64("cache_pinned_entries", st.pinned_entries, true);
  } else {
    body += json_u64("cache_enabled", 0, true);
  }
  body += "}\n";
  return http::Response::make(200, std::move(body), "application/json");
}

/// /swala-admin/invalidate?pattern=<glob>: cluster-wide invalidation.
http::Response serve_invalidate(const http::Request& request,
                                const ServeContext& ctx) {
  if (ctx.cache == nullptr) {
    return http::Response::error(404, "caching disabled");
  }
  std::string pattern;
  for (const auto& [key, value] : request.uri.query_params()) {
    if (key == "pattern") pattern = value;
  }
  if (pattern.empty()) {
    return http::Response::error(400, "missing ?pattern=<glob>");
  }
  const std::size_t removed = ctx.cache->invalidate(pattern);
  return http::Response::make(
      200, "{\n  \"removed\": " + std::to_string(removed) + "\n}\n",
      "application/json");
}

/// /swala-admin/check-consistency: store↔directory mirror cross-check.
/// 200 when consistent, 500 with the divergent key counts otherwise, so a
/// probe (or a human with curl) can alarm on invariant violations live.
/// With ?cluster=1 (and a wired cluster_check) it runs the global oracle
/// instead: every node's local invariant plus cross-node directory drift,
/// with per-pair missing/stale counts in the body.
http::Response serve_cluster_consistency(const ServeContext& ctx) {
  if (!ctx.cluster_check) {
    return http::Response::error(404, "no cluster oracle wired");
  }
  const core::ClusterConsistencyReport report = ctx.cluster_check();
  std::string body = "{\n";
  body += std::string("  \"consistent\": ") +
          (report.consistent() ? "true" : "false") + ",\n";
  body += "  \"nodes\": [";
  for (std::size_t i = 0; i < report.per_node.size(); ++i) {
    const auto& n = report.per_node[i];
    if (i != 0) body += ",";
    body += "\n    {\"node\": " + std::to_string(i);
    body += std::string(", \"consistent\": ") +
            (n.consistent() ? "true" : "false");
    body += ", \"store_entries\": " + std::to_string(n.store_entries);
    body += ", \"directory_entries\": " + std::to_string(n.directory_entries);
    body += ", \"missing_in_directory\": " +
            std::to_string(n.missing_in_directory.size());
    body += ", \"stale_in_directory\": " +
            std::to_string(n.stale_in_directory.size());
    body += "}";
  }
  body += report.per_node.empty() ? "],\n" : "\n  ],\n";
  // Cross-node drift: every (viewer, subject) pair whose directory view of
  // the subject diverges from the subject's actual store. `stale` is the
  // stale-serve hazard the anti-entropy layer repairs.
  body += "  \"drift\": [";
  for (std::size_t i = 0; i < report.drift.size(); ++i) {
    const auto& d = report.drift[i];
    if (i != 0) body += ",";
    body += "\n    {\"viewer\": " + std::to_string(d.viewer);
    body += ", \"subject\": " + std::to_string(d.subject);
    body += ", \"missing\": " + std::to_string(d.missing.size());
    body += ", \"stale\": " + std::to_string(d.stale.size());
    body += "}";
  }
  body += report.drift.empty() ? "]\n" : "\n  ]\n";
  body += "}\n";
  return http::Response::make(report.consistent() ? 200 : 500,
                              std::move(body), "application/json");
}

/// /swala-admin/decommission: graceful leave. Runs the SwalaNode hook
/// (stop admissions → hand off state → broadcast kDecommission) and reports
/// what was shipped. Drain/exit is the operator's next step, never this
/// request's: draining from inside a request would wait on itself.
http::Response serve_decommission(const ServeContext& ctx) {
  if (!ctx.decommission) {
    return http::Response::error(404, "no decommission hook wired");
  }
  return http::Response::make(200, ctx.decommission(), "application/json");
}

http::Response serve_check_consistency(const http::Request& request,
                                       const ServeContext& ctx) {
  for (const auto& [key, value] : request.uri.query_params()) {
    if (key == "cluster" && value == "1") {
      return serve_cluster_consistency(ctx);
    }
  }
  if (ctx.cache == nullptr) {
    return http::Response::error(404, "caching disabled");
  }
  const core::ConsistencyReport report = ctx.cache->debug_check_consistency();
  std::string body = "{\n";
  body += std::string("  \"consistent\": ") +
          (report.consistent() ? "true" : "false") + ",\n";
  body += json_u64("store_entries", report.store_entries);
  body += json_u64("directory_entries", report.directory_entries);
  body += json_u64("missing_in_directory", report.missing_in_directory.size());
  body += json_u64("stale_in_directory", report.stale_in_directory.size());
  body += json_u64("commit_sequence", ctx.cache->commit_sequence(), true);
  body += "}\n";
  return http::Response::make(report.consistent() ? 200 : 500,
                              std::move(body), "application/json");
}

}  // namespace

http::Response overload_response(int status, std::string_view reason,
                                 int retry_after_seconds) {
  http::Response resp = http::Response::error(status, reason);
  if (retry_after_seconds > 0) {
    resp.headers.set("Retry-After", std::to_string(retry_after_seconds));
  }
  return resp;
}

http::Response handle_request(const http::Request& request,
                              const ServeContext& ctx) {
  return handle_request(request, ctx, Deadline());
}

bool finalize_response(const http::Request& request, const ServeContext& ctx,
                       std::size_t served, http::Response* resp) {
  bool keep = ctx.allow_keep_alive && request.keep_alive() &&
              served + 1 < ctx.max_keep_alive_requests;
  resp->version = request.version;
  resp->headers.set("Server", kServerName);
  // A handler that set "Connection: close" (errors, overload sheds) wins
  // over keep-alive, as does a drain in progress: in-flight keep-alive
  // connections wind down one response at a time.
  if (const auto conn = resp->headers.get("Connection");
      conn.has_value() && *conn == "close") {
    keep = false;
  }
  if (ctx.draining != nullptr &&
      ctx.draining->load(std::memory_order_relaxed)) {
    keep = false;
  }
  resp->headers.set("Connection", keep ? "keep-alive" : "close");
  if (request.method == http::Method::kHead) resp->body.clear();
  return keep;
}

void record_exchange(const ServeContext& ctx, const http::Request& request,
                     const http::Response& resp, TimeNs handle_start,
                     const Clock* clock) {
  if (ctx.latency != nullptr) {
    ctx.latency->add(to_seconds(clock->now() - handle_start));
  }
  if (ctx.access_log != nullptr && ctx.access_log->is_open()) {
    AccessRecord record;
    record.timestamp =
        static_cast<double>(std::time(nullptr));  // wall-clock epoch
    record.method = http::method_name(request.method);
    record.target = request.target;
    record.version = http::version_name(request.version);
    record.status = resp.status;
    record.bytes = resp.body.size();
    record.service_seconds = to_seconds(clock->now() - handle_start);
    const auto cache_state = resp.headers.get("X-Swala-Cache");
    record.dynamic = cache_state.has_value();
    record.cache_state = cache_state ? std::string(*cache_state) : "-";
    ctx.access_log->log(record);
  }
}

http::Response handle_request(const http::Request& request,
                              const ServeContext& ctx,
                              const Deadline& deadline) {
  count(ctx.counters, &ServerCounters::requests);

  if (request.method != http::Method::kGet &&
      request.method != http::Method::kHead &&
      request.method != http::Method::kPost) {
    return http::Response::error(405);
  }

  if (ctx.enable_admin) {
    if (request.uri.path == "/swala-status") return serve_status(ctx);
    if (request.uri.path == "/swala-admin/invalidate") {
      return serve_invalidate(request, ctx);
    }
    if (request.uri.path == "/swala-admin/check-consistency") {
      return serve_check_consistency(request, ctx);
    }
    if (request.uri.path == "/swala-admin/decommission") {
      return serve_decommission(ctx);
    }
  }

  cgi::CgiHandlerPtr handler;
  if (ctx.registry != nullptr) handler = ctx.registry->find(request.uri.path);
  if (handler != nullptr) return run_dynamic(request, handler, ctx, deadline);
  return serve_static(request, ctx);
}

void handle_connection(net::TcpStream stream, const ServeContext& ctx) {
  count(ctx.counters, &ServerCounters::connections);
  if (ctx.counters != nullptr) {
    ctx.counters->active_connections.fetch_add(1, std::memory_order_relaxed);
  }
  // Gauge decrement on every exit path (there are many returns below).
  struct ActiveGuard {
    ServerCounters* c;
    ~ActiveGuard() {
      if (c != nullptr) {
        c->active_connections.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  } active_guard{ctx.counters};

  (void)stream.set_no_delay(true);
  // Read in short slices so an idle connection notices server shutdown
  // without waiting out the full idle timeout.
  constexpr int kSliceMs = 250;
  (void)stream.set_recv_timeout(std::min(ctx.recv_timeout_ms, kSliceMs));
  (void)stream.set_send_timeout(ctx.recv_timeout_ms);

  const auto shutting_down = [&ctx] {
    return ctx.running != nullptr &&
           !ctx.running->load(std::memory_order_relaxed);
  };

  const Clock* clock = ctx.clock != nullptr
                           ? ctx.clock
                           : static_cast<const Clock*>(RealClock::instance());

  http::RequestParser parser;
  char buf[16 * 1024];
  std::size_t served = 0;

  while (served < ctx.max_keep_alive_requests) {
    // Consume already-buffered pipelined bytes before reading the socket.
    http::ParseState state = parser.pump();
    // The per-request deadline arms at the *first byte* of a request, not
    // at connection idle: a client dribbling one header byte per slice
    // (slow loris) keeps resetting the idle timeout but cannot stretch the
    // request past its budget.
    Deadline deadline;
    const auto arm_deadline = [&] {
      if (deadline.unlimited() && ctx.request_timeout_ms > 0 &&
          parser.mid_request()) {
        deadline = Deadline::after_ms(clock, ctx.request_timeout_ms);
      }
    };
    arm_deadline();
    int idle_ms = 0;
    while (state == http::ParseState::kNeedMore) {
      if (deadline.expired()) {
        count(ctx.counters, &ServerCounters::deadline_exceeded);
        const auto resp = http::Response::error(408, "request deadline");
        (void)stream.write_vec(resp.serialize_head(), resp.body);
        return;
      }
      auto n = stream.read_some(buf, sizeof(buf));
      if (!n) {
        if (n.status().code() != StatusCode::kTimeout) return;
        idle_ms += kSliceMs;
        if (shutting_down()) {
          // Server stopping. A connection that already sent part of a
          // request deserves an answer, not a silent abandon: tell it the
          // server is going away and that the connection is done. An idle
          // keep-alive connection just closes.
          if (parser.mid_request()) {
            http::Response resp = overload_response(
                503, "server shutting down", ctx.retry_after_seconds);
            (void)stream.write_vec(resp.serialize_head(), resp.body);
          }
          return;
        }
        if (idle_ms >= ctx.recv_timeout_ms) return;
        continue;
      }
      if (n.value() == 0) return;  // peer closed
      idle_ms = 0;
      state = parser.feed({buf, n.value()});
      arm_deadline();
    }
    if (state == http::ParseState::kError) {
      const auto resp = http::Response::error(parser.error_status());
      (void)stream.write_vec(resp.serialize_head(), resp.body);
      return;
    }

    http::Request& request = parser.request();

    const TimeNs handle_start = clock->now();
    http::Response resp = handle_request(request, ctx, deadline);
    record_exchange(ctx, request, resp, handle_start, clock);
    const bool keep = finalize_response(request, ctx, served, &resp);

    // The response write shares the request budget: a client that stops
    // reading (zero receive window) blocks the thread for at most the
    // remaining deadline, not the full idle timeout.
    (void)stream.set_send_timeout(deadline.unlimited()
                                      ? ctx.recv_timeout_ms
                                      : deadline.budget_ms(ctx.recv_timeout_ms));

    // Vectored write: the head is small and freshly built, the body can be
    // large (a cached blob) — gluing them into one string would copy the
    // body once per response.
    const std::string head = resp.serialize_head();
    if (!stream.write_vec(head, resp.body).is_ok()) {
      if (deadline.expired()) {
        count(ctx.counters, &ServerCounters::deadline_exceeded);
      }
      return;
    }
    if (ctx.counters != nullptr) {
      ctx.counters->bytes_sent.fetch_add(head.size() + resp.body.size(),
                                         std::memory_order_relaxed);
    }
    ++served;
    if (!keep) return;
    parser.reset();
  }
}

ServerStats snapshot(const ServerCounters& counters) {
  ServerStats s;
  s.connections = counters.connections.load(std::memory_order_relaxed);
  s.requests = counters.requests.load(std::memory_order_relaxed);
  s.static_requests = counters.static_requests.load(std::memory_order_relaxed);
  s.dynamic_requests = counters.dynamic_requests.load(std::memory_order_relaxed);
  s.cache_hits_local = counters.cache_hits_local.load(std::memory_order_relaxed);
  s.cache_hits_remote = counters.cache_hits_remote.load(std::memory_order_relaxed);
  s.errors = counters.errors.load(std::memory_order_relaxed);
  s.bytes_sent = counters.bytes_sent.load(std::memory_order_relaxed);
  s.requests_shed = counters.requests_shed.load(std::memory_order_relaxed);
  s.deadline_exceeded =
      counters.deadline_exceeded.load(std::memory_order_relaxed);
  s.active_connections =
      counters.active_connections.load(std::memory_order_relaxed);
  return s;
}

}  // namespace swala::server
