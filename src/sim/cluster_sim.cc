#include "sim/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>

#include "cluster/message.h"
#include "http/uri.h"

namespace swala::sim {
namespace {

/// Directory traffic shared by every node's bus (one per cluster). Frames
/// and bytes are counted at send time, fault-injected legs included —
/// traffic offered to the network, as a packet capture would see it.
struct SimTraffic {
  std::uint64_t update_frames = 0;
  std::uint64_t update_bytes = 0;
  std::uint64_t query_frames = 0;
  std::uint64_t query_bytes = 0;
  // Membership-churn accounting (see SimReport).
  std::uint64_t transition_frames = 0;
  std::uint64_t transition_bytes = 0;
  std::uint64_t handoff_frames = 0;
  std::uint64_t handoff_bytes = 0;
  std::uint64_t handoffs_adopted = 0;
  /// While set, update legs count as transition traffic instead of regular
  /// directory updates (the driver raises it around member_joined /
  /// member_left / handoff_state, whose forwarding rides the same bus).
  bool in_transition = false;
};

/// CooperationBus over the event engine: broadcasts arrive after a
/// propagation delay; remote fetches read the owner's store immediately
/// (the latency is charged to the request's timeline by the node model).
class SimBus final : public core::CooperationBus {
 public:
  SimBus(SimEngine* engine, core::NodeId self, const SimCosts* costs,
         cluster::FaultInjector* faults, SimTraffic* traffic)
      : engine_(engine),
        self_(self),
        costs_(costs),
        faults_(faults),
        traffic_(traffic) {}

  void wire(std::vector<std::unique_ptr<core::CacheManager>>* managers) {
    managers_ = managers;
  }

  /// Virtual latency accrued by synchronous directory probes during the
  /// current lookup; issue_next consumes it and charges it to the request's
  /// timeline (the probes themselves read peer state instantaneously).
  double take_pending_latency() {
    const double lat = pending_latency_;
    pending_latency_ = 0.0;
    return lat;
  }

  void broadcast_insert(const core::EntryMeta& meta) override {
    count_update_legs(cluster::Message::insert(self_, meta), member_legs());
    for (std::size_t peer = 0; peer < managers_->size(); ++peer) {
      if (peer == self_ || !peer_is_member(peer)) continue;
      double delay = costs_->directory_update_delay;
      if (!broadcast_survives(peer, cluster::MsgType::kInsert, &delay)) continue;
      engine_->schedule_in(delay, [this, peer, meta] {
        (*managers_)[peer]->on_peer_insert(meta);
      });
    }
  }

  void broadcast_erase(core::NodeId owner, const std::string& key,
                       std::uint64_t version) override {
    count_update_legs(cluster::Message::erase(self_, key, version),
                      member_legs());
    for (std::size_t peer = 0; peer < managers_->size(); ++peer) {
      if (peer == self_ || !peer_is_member(peer)) continue;
      double delay = costs_->directory_update_delay;
      if (!broadcast_survives(peer, cluster::MsgType::kErase, &delay)) continue;
      engine_->schedule_in(delay, [this, peer, owner, key, version] {
        (*managers_)[peer]->on_peer_erase(owner, key, version);
      });
    }
  }

  void broadcast_invalidate(const std::string& pattern) override {
    broadcast_invalidate(pattern, 0);
  }

  void broadcast_invalidate(const std::string& pattern,
                            std::uint64_t epoch) override {
    count_update_legs(cluster::Message::invalidate(self_, pattern, epoch),
                      member_legs());
    const core::NodeId origin = self_;
    for (std::size_t peer = 0; peer < managers_->size(); ++peer) {
      if (peer == self_ || !peer_is_member(peer)) continue;
      double delay = costs_->directory_update_delay;
      const int deliveries =
          broadcast_deliveries(peer, cluster::MsgType::kInvalidate, &delay);
      for (int copy = 0; copy < deliveries; ++copy) {
        engine_->schedule_in(delay, [this, peer, pattern, origin, epoch] {
          (*managers_)[peer]->on_peer_invalidate(pattern, origin, epoch);
        });
      }
    }
  }

  void send_owner_insert(core::NodeId ring_owner,
                         const core::EntryMeta& meta) override {
    if (ring_owner >= managers_->size() || ring_owner == self_) return;
    count_update_legs(cluster::Message::owner_insert(self_, meta), 1);
    double delay = costs_->directory_update_delay;
    if (!broadcast_survives(ring_owner, cluster::MsgType::kOwnerUpdate,
                            &delay)) {
      return;
    }
    engine_->schedule_in(delay, [this, ring_owner, meta] {
      (*managers_)[ring_owner]->on_peer_insert(meta);
    });
  }

  void send_owner_erase(core::NodeId ring_owner, core::NodeId cache_node,
                        const std::string& key,
                        std::uint64_t version) override {
    if (ring_owner >= managers_->size() || ring_owner == self_) return;
    count_update_legs(
        cluster::Message::owner_erase(self_, cache_node, key, version), 1);
    double delay = costs_->directory_update_delay;
    if (!broadcast_survives(ring_owner, cluster::MsgType::kOwnerUpdate,
                            &delay)) {
      return;
    }
    engine_->schedule_in(delay, [this, ring_owner, cache_node, key, version] {
      (*managers_)[ring_owner]->on_peer_erase(cache_node, key, version);
    });
  }

  Result<core::EntryMeta> lookup_at_owner(core::NodeId ring_owner,
                                          const std::string& key,
                                          int budget_ms) override {
    (void)budget_ms;  // virtual time: the probe either answers or faults
    if (ring_owner >= managers_->size()) {
      return Status(StatusCode::kInvalidArgument, "bad ring owner");
    }
    pending_latency_ += costs_->query_latency;
    auto answer = probe(ring_owner, key);
    if (!answer.first) {
      return Status(StatusCode::kTimeout,
                    "simulated owner-lookup timeout (fault injection)");
    }
    if (!answer.second) {
      return Status(StatusCode::kNotFound, "owner knows of no cached copy");
    }
    return *answer.second;
  }

  Result<core::EntryMeta> query_peers(const std::string& key,
                                      int budget_ms) override {
    (void)budget_ms;
    // One multicast round: every peer is probed "in parallel", so the
    // request pays query_latency once; frames are counted per probed peer
    // (the sweep stops early on the first hit, as the TCP group does).
    pending_latency_ += costs_->query_latency;
    bool every_peer_answered = true;
    for (std::size_t peer = 0; peer < managers_->size(); ++peer) {
      if (peer == self_ || !peer_is_member(peer)) continue;
      auto answer = probe(static_cast<core::NodeId>(peer), key);
      if (!answer.first) {
        every_peer_answered = false;
        continue;
      }
      if (answer.second) return *answer.second;
    }
    if (every_peer_answered) {
      return Status(StatusCode::kNotFound, "no peer caches this key");
    }
    return Status(StatusCode::kTimeout,
                  "query budget exhausted without a hit");
  }

  Result<core::CachedResult> fetch_remote(core::NodeId owner,
                                          const std::string& key) override {
    if (owner >= managers_->size()) {
      return Status(StatusCode::kInvalidArgument, "bad owner");
    }
    if (faults_ != nullptr) {
      const auto fault = faults_->decide(owner, cluster::MsgType::kFetchReq);
      switch (fault.kind) {
        case cluster::FaultKind::kNone:
        case cluster::FaultKind::kDelay:  // latency is the node model's job
        case cluster::FaultKind::kDuplicate:  // request/response: no-op
          break;
        case cluster::FaultKind::kDrop:
        case cluster::FaultKind::kTruncate:
        case cluster::FaultKind::kBlackhole:
          // The request (or its response) never arrives; the requester's
          // deadline expires and the manager falls back to local execution.
          return Status(StatusCode::kTimeout,
                        "simulated fetch deadline (fault injection)");
      }
    }
    return (*managers_)[owner]->serve_peer_fetch(key);
  }

  void send_handoff(core::NodeId successor, const core::EntryMeta& meta,
                    const std::string& body) override {
    if (successor >= managers_->size() || successor == self_) return;
    if (traffic_ != nullptr) {
      traffic_->handoff_frames += 1;
      traffic_->handoff_bytes +=
          cluster::encode_message(
              cluster::Message::insert_handoff(self_, meta, body))
              .size();
    }
    double delay = costs_->directory_update_delay;
    if (!broadcast_survives(successor, cluster::MsgType::kInsert, &delay)) {
      return;  // a lost handoff costs one future re-execution, not data
    }
    engine_->schedule_in(delay, [this, successor, meta, body] {
      if ((*managers_)[successor]->adopt_entry(meta, body) &&
          traffic_ != nullptr) {
        traffic_->handoffs_adopted += 1;
      }
    });
  }

 private:
  /// Peers outside the sender's membership view get no traffic (the TCP
  /// group drops frames to inactive slots at the sender).
  bool peer_is_member(std::size_t peer) const {
    return (*managers_)[self_]->is_member(static_cast<core::NodeId>(peer));
  }

  /// Broadcast fan-out under the current membership view.
  std::size_t member_legs() const {
    std::size_t legs = 0;
    for (std::size_t peer = 0; peer < managers_->size(); ++peer) {
      if (peer != self_ && peer_is_member(peer)) ++legs;
    }
    return legs;
  }

  /// Counts `legs` copies of an update frame as offered directory traffic
  /// (or as membership-transition traffic while the driver migrates state).
  void count_update_legs(const cluster::Message& msg, std::size_t legs) {
    if (traffic_ == nullptr || legs == 0) return;
    const std::size_t bytes = cluster::encode_message(msg).size();
    if (traffic_->in_transition) {
      traffic_->transition_frames += legs;
      traffic_->transition_bytes += legs * bytes;
    } else {
      traffic_->update_frames += legs;
      traffic_->update_bytes += legs * bytes;
    }
  }

  /// One kQuery/kQueryHit exchange against `peer`'s directory. Returns
  /// {answered, hit}: `answered` is false when fault injection eats the
  /// request or the response (the requester times out); `hit` carries the
  /// peer's directory answer. Traffic counts the request frame always and
  /// the response frame only when one comes back.
  std::pair<bool, std::optional<core::EntryMeta>> probe(
      core::NodeId peer, const std::string& key) {
    if (traffic_ != nullptr) {
      traffic_->query_frames += 1;
      traffic_->query_bytes +=
          cluster::encode_message(cluster::Message::query(self_, key)).size();
    }
    if (faults_ != nullptr) {
      const auto fault = faults_->decide(peer, cluster::MsgType::kQuery);
      switch (fault.kind) {
        case cluster::FaultKind::kNone:
        case cluster::FaultKind::kDuplicate:  // request/response: no-op
          break;
        case cluster::FaultKind::kDelay:
          pending_latency_ += fault.delay_ms / 1000.0;
          break;
        case cluster::FaultKind::kDrop:
        case cluster::FaultKind::kTruncate:
        case cluster::FaultKind::kBlackhole:
          return {false, std::nullopt};
      }
    }
    auto answer = (*managers_)[peer]->answer_query(key);
    if (traffic_ != nullptr) {
      const cluster::Message resp =
          answer ? cluster::Message::query_hit(peer, *answer)
                 : cluster::Message::query_miss(peer);
      traffic_->query_frames += 1;
      traffic_->query_bytes += cluster::encode_message(resp).size();
    }
    return {true, std::move(answer)};
  }

  /// Consults the injector for one simulated broadcast leg. Returns how
  /// many copies arrive: 0 when the update is lost (drop/truncate/
  /// blackhole), 2 for a kDuplicate replay, 1 otherwise; kDelay stretches
  /// the propagation latency instead.
  int broadcast_deliveries(std::size_t peer, cluster::MsgType type,
                           double* delay) {
    if (faults_ == nullptr) return 1;
    const auto fault =
        faults_->decide(static_cast<core::NodeId>(peer), type);
    switch (fault.kind) {
      case cluster::FaultKind::kNone:
        return 1;
      case cluster::FaultKind::kDelay:
        *delay += fault.delay_ms / 1000.0;
        return 1;
      case cluster::FaultKind::kDrop:
      case cluster::FaultKind::kTruncate:
      case cluster::FaultKind::kBlackhole:
        return 0;
      case cluster::FaultKind::kDuplicate:
        return 2;
    }
    return 1;
  }

  bool broadcast_survives(std::size_t peer, cluster::MsgType type,
                          double* delay) {
    return broadcast_deliveries(peer, type, delay) > 0;
  }

  SimEngine* engine_;
  core::NodeId self_;
  const SimCosts* costs_;
  cluster::FaultInjector* faults_;
  SimTraffic* traffic_;
  std::vector<std::unique_ptr<core::CacheManager>>* managers_ = nullptr;
  double pending_latency_ = 0.0;
};

/// Per-node working-set tracker for the optional memory model.
struct NodeMemory {
  std::unordered_set<std::string> touched;
  std::uint64_t working_set_bytes = 0;

  void touch(const std::string& target, std::uint64_t bytes) {
    if (touched.insert(target).second) working_set_bytes += bytes;
  }

  /// Service multiplier given the node's memory size (1.0 = no pressure).
  double pressure(std::uint64_t memory_bytes, double slope) const {
    if (memory_bytes == 0 || working_set_bytes <= memory_bytes) return 1.0;
    const double ratio = static_cast<double>(working_set_bytes) /
                         static_cast<double>(memory_bytes);
    return 1.0 + slope * (ratio - 1.0);
  }
};

struct SimState {
  SimEngine engine;
  SimTraffic traffic;
  std::vector<std::unique_ptr<SimBus>> buses;
  std::vector<std::unique_ptr<core::CacheManager>> managers;
  std::vector<std::unique_ptr<FcfsResource>> cpus;
  std::vector<NodeMemory> memory;

  // Client streams: each owns a slice of the trace.
  struct Stream {
    std::vector<const workload::TraceRecord*> requests;
    std::size_t next = 0;
    std::size_t node = 0;
  };
  std::vector<Stream> streams;

  LatencyHistogram response_times;
  std::uint64_t completed = 0;
  const SimConfig* config = nullptr;

  // ---- membership churn (see SimConfig::join_node et al.) ----
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
  std::vector<char> member;  ///< harness view of the active set
  std::size_t join_threshold = kNever;          ///< completed-count trigger
  std::size_t decommission_threshold = kNever;  ///< completed-count trigger
  std::uint64_t membership_transitions = 0;
  std::vector<std::string> decommissioned_keys;
};

/// Issues stream `s`'s next request; reschedules itself on completion.
void issue_next(SimState* st, std::size_t s);

/// Closes every member's dual-read window once a transition's migration
/// traffic has settled.
void close_transition_windows(SimState* st) {
  for (std::size_t i = 0; i < st->managers.size(); ++i) {
    if (st->member[i]) st->managers[i]->finish_ring_transition();
  }
}

/// Join under load: every member admits the joiner — partitioned mode
/// forwards only the remapped directory slice via the bus, replicated mode
/// seeds the joiner with a full directory push — then the joiner adopts the
/// cluster view (the kJoinAck step).
void do_join(SimState* st) {
  const core::NodeId j = st->config->join_node;
  core::NodeId responder = core::kInvalidNode;
  st->traffic.in_transition = true;
  for (std::size_t o = 0; o < st->managers.size(); ++o) {
    if (o == j || !st->member[o]) continue;
    if (responder == core::kInvalidNode) {
      responder = static_cast<core::NodeId>(o);
    }
    st->managers[o]->member_joined(j);
    if (st->config->directory_mode == core::DirectoryMode::kReplicated) {
      for (const auto& meta : st->managers[o]->store().resident_metas()) {
        st->traffic.transition_frames += 1;
        st->traffic.transition_bytes +=
            cluster::encode_message(
                cluster::Message::insert(static_cast<core::NodeId>(o), meta))
                .size();
        st->engine.schedule_in(st->config->costs.directory_update_delay,
                               [st, j, meta] {
                                 st->managers[j]->on_peer_insert(meta);
                               });
      }
    }
  }
  st->member[j] = 1;
  if (responder != core::kInvalidNode) {
    // kJoinAck: the joiner adopts the cluster view and re-announces its
    // stand-alone residents (counted as transition traffic).
    st->managers[j]->adopt_membership(
        st->managers[responder]->membership_epoch(),
        st->managers[responder]->active_members());
  }
  st->traffic.in_transition = false;
  st->membership_transitions += 1;
  st->engine.schedule_in(0.5, [st] { close_transition_windows(st); });
}

/// Graceful decommission under load: the leaver stops admitting entries,
/// ships its cached state to ring successors over the handoff channel,
/// peers drop it without quarantine, and its client streams repin to the
/// next active member (the load balancer stops routing to it).
void do_decommission(SimState* st) {
  const core::NodeId d = st->config->decommission_node;
  core::CacheManager* leaver = st->managers[d].get();
  for (const auto& meta : leaver->store().resident_metas()) {
    st->decommissioned_keys.push_back(meta.key);
  }
  std::sort(st->decommissioned_keys.begin(), st->decommissioned_keys.end());
  leaver->begin_decommission();
  st->traffic.in_transition = true;
  leaver->handoff_state(st->config->handoff_batch_bytes);
  for (std::size_t o = 0; o < st->managers.size(); ++o) {
    if (o == d || !st->member[o]) continue;
    st->managers[o]->member_left(d);
  }
  st->traffic.in_transition = false;
  st->member[d] = 0;
  st->membership_transitions += 1;
  std::size_t next = d;
  for (std::size_t step = 1; step <= st->managers.size(); ++step) {
    const std::size_t cand = (d + step) % st->managers.size();
    if (st->member[cand]) {
      next = cand;
      break;
    }
  }
  if (next != d) {
    for (auto& stream : st->streams) {
      if (stream.node == d) stream.node = next;
    }
  }
  st->engine.schedule_in(0.5, [st] { close_transition_windows(st); });
}

void maybe_churn(SimState* st) {
  if (st->completed >= st->join_threshold) {
    st->join_threshold = SimState::kNever;
    do_join(st);
  }
  if (st->completed >= st->decommission_threshold) {
    st->decommission_threshold = SimState::kNever;
    do_decommission(st);
  }
}

void finish_request(SimState* st, std::size_t s, double issued_at) {
  st->response_times.add(st->engine.now() - issued_at);
  ++st->completed;
  st->streams[s].next++;
  maybe_churn(st);
  issue_next(st, s);
}

void issue_next(SimState* st, std::size_t s) {
  auto& stream = st->streams[s];
  if (stream.next >= stream.requests.size()) return;  // stream drained

  const workload::TraceRecord& r = *stream.requests[stream.next];
  const std::size_t node = stream.node;
  core::CacheManager* manager = st->managers.empty()
                                    ? nullptr
                                    : st->managers[node].get();
  FcfsResource& cpu = *st->cpus[node];
  const SimCosts& costs = st->config->costs;
  const double issued_at = st->engine.now();

  // Optional memory model: track this node's working set and derive the
  // thrash multiplier applied to its CPU-bound work.
  NodeMemory& mem = st->memory[node];
  mem.touch(r.target, r.response_bytes);
  const double pressure =
      mem.pressure(costs.node_memory_bytes, costs.thrash_slope);

  http::Uri uri;
  if (!http::parse_uri(r.target, &uri)) {
    // Malformed trace entry: consume a minimal parse cost and move on.
    cpu.submit(costs.per_request_overhead,
               [st, s, issued_at] { finish_request(st, s, issued_at); });
    return;
  }

  if (!r.is_cgi || manager == nullptr) {
    // Static file or caching disabled entirely: plain execution.
    const double service =
        pressure * (costs.per_request_overhead + r.service_seconds +
                    (r.is_cgi ? costs.cgi_startup : 0.0));
    cpu.submit(service,
               [st, s, issued_at] { finish_request(st, s, issued_at); });
    return;
  }

  // Figure-2 flow. The lookup (and any remote data transfer) happens now;
  // time costs are charged via the CPU queue / latency events.
  auto lookup = manager->lookup(http::Method::kGet, uri);

  // Directory probes (partitioned owner lookups, query-mode sweeps) run
  // synchronously inside lookup() but their round trips are virtual-time
  // latency: delay this request's CPU work by the accrued amount. The CPU
  // stays free for other streams while the probe is in flight.
  const double probe_lat =
      st->buses.empty() ? 0.0 : st->buses[node]->take_pending_latency();
  auto submit = [st, node, probe_lat](double service,
                                      std::function<void()> done) {
    FcfsResource* queue = st->cpus[node].get();
    if (probe_lat > 0.0) {
      st->engine.schedule_in(probe_lat,
                             [queue, service, done = std::move(done)]() mutable {
                               queue->submit(service, std::move(done));
                             });
    } else {
      queue->submit(service, std::move(done));
    }
  };

  switch (lookup.outcome) {
    case core::LookupOutcome::kHit:
      if (lookup.remote) {
        // Requester-side CPU, then the network round trip to the owner.
        submit(pressure * (costs.per_request_overhead + costs.remote_fetch_cpu),
               [st, s, issued_at, &costs] {
                 st->engine.schedule_in(
                     costs.remote_fetch_latency,
                     [st, s, issued_at] { finish_request(st, s, issued_at); });
               });
      } else {
        submit(pressure * (costs.per_request_overhead + costs.local_fetch_cpu),
               [st, s, issued_at] { finish_request(st, s, issued_at); });
      }
      return;

    case core::LookupOutcome::kUncacheable:
    case core::LookupOutcome::kMissMustExecute: {
      const bool cacheable = lookup.outcome == core::LookupOutcome::kMissMustExecute;
      const double service =
          pressure * (costs.per_request_overhead + costs.cgi_startup +
                      r.service_seconds + (cacheable ? costs.insert_cpu : 0.0));
      const core::RuleDecision rule = lookup.rule;
      const double exec_seconds = r.service_seconds;
      const workload::TraceRecord* record = &r;
      submit(service, [st, s, issued_at, manager, rule, exec_seconds,
                       record, uri] {
        if (rule.cacheable) {
          // Execution finished *now*: insert and broadcast at this moment,
          // which is what opens the false-miss window for concurrent
          // identical requests elsewhere.
          cgi::CgiOutput output;
          output.success = true;
          output.http_status = 200;
          output.body.resize(record->response_bytes, 'x');
          manager->complete(http::Method::kGet, uri, rule, output, exec_seconds);
        }
        finish_request(st, s, issued_at);
      });
      return;
    }
  }
}

}  // namespace

SimReport run_cluster_sim(const workload::Trace& trace, const SimConfig& config) {
  SimState st;
  st.config = &config;

  const std::size_t n = std::max<std::size_t>(1, config.nodes);

  // Membership churn setup: stage the joiner outside the active set and
  // convert the trigger fractions into completed-request thresholds.
  st.member.assign(n, 1);
  const bool churn_capable = config.caching && config.cooperative && n > 1;
  const auto trigger_at = [&trace](double fraction) {
    const auto at =
        static_cast<std::size_t>(fraction * static_cast<double>(trace.size()));
    return std::max<std::size_t>(1, at);
  };
  if (churn_capable && config.join_node != core::kInvalidNode &&
      config.join_node < n) {
    st.member[config.join_node] = 0;
    st.join_threshold = trigger_at(config.join_after_fraction);
  }
  if (churn_capable && config.decommission_node != core::kInvalidNode &&
      config.decommission_node < n &&
      config.decommission_node != config.join_node) {
    st.decommission_threshold = trigger_at(config.decommission_after_fraction);
  }
  std::vector<core::NodeId> initial_members;
  if (st.join_threshold != SimState::kNever) {
    for (std::size_t i = 0; i < n; ++i) {
      if (st.member[i]) initial_members.push_back(static_cast<core::NodeId>(i));
    }
  }

  // Build the cost-model-aware cooperation fabric over real managers.
  if (config.caching) {
    const std::size_t dir_nodes = config.cooperative ? n : 1;
    for (std::size_t i = 0; i < n; ++i) {
      st.buses.push_back(std::make_unique<SimBus>(
          &st.engine, static_cast<core::NodeId>(config.cooperative ? i : 0),
          &config.costs, config.faults, &st.traffic));
    }
    for (std::size_t i = 0; i < n; ++i) {
      core::ManagerOptions mo;
      mo.limits = config.limits;
      mo.policy = config.policy;
      mo.directory_mode = config.cooperative ? config.directory_mode
                                             : core::DirectoryMode::kReplicated;
      mo.ring_seed = config.ring_seed;
      mo.ring_vnodes = config.ring_vnodes;
      mo.initial_members = initial_members;
      core::RuleDecision decision;
      decision.cacheable = true;
      decision.ttl_seconds = config.ttl_seconds;
      decision.min_exec_seconds = config.min_exec_seconds;
      mo.rules.add_rule("/cgi-bin/*", decision);
      st.managers.push_back(std::make_unique<core::CacheManager>(
          static_cast<core::NodeId>(config.cooperative ? i : 0), dir_nodes,
          std::move(mo), st.engine.clock(),
          config.cooperative ? st.buses[i].get() : nullptr));
    }
    if (config.cooperative) {
      for (auto& bus : st.buses) bus->wire(&st.managers);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    st.cpus.push_back(std::make_unique<FcfsResource>(&st.engine));
  }
  st.memory.resize(n);

  if (config.open_loop) {
    // Open loop: one single-request "stream" per trace record, fired at the
    // record's arrival time, routed round-robin across nodes.
    st.streams.resize(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      st.streams[i].node = i % n;
      st.streams[i].requests.push_back(&trace[i]);
      st.engine.schedule_at(trace[i].arrival_seconds,
                            [&st, i] { issue_next(&st, i); });
    }
  } else {
    // Closed loop: partition the trace round-robin over the client
    // streams; pin stream s to node s % n.
    const std::size_t streams = std::max<std::size_t>(1, config.client_streams);
    st.streams.resize(streams);
    for (std::size_t s = 0; s < streams; ++s) st.streams[s].node = s % n;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      st.streams[i % streams].requests.push_back(&trace[i]);
    }
    for (std::size_t s = 0; s < streams; ++s) {
      st.engine.schedule_at(0.0, [&st, s] { issue_next(&st, s); });
    }
  }
  st.engine.run();

  SimReport report;
  report.sim_seconds = st.engine.now();
  report.response_times = st.response_times;
  report.requests_completed = st.completed;
  for (std::size_t i = 0; i < st.managers.size(); ++i) {
    const auto stats = st.managers[i]->stats();
    report.per_node.push_back(stats);
    report.cache.lookups += stats.lookups;
    report.cache.uncacheable += stats.uncacheable;
    report.cache.local_hits += stats.local_hits;
    report.cache.remote_hits += stats.remote_hits;
    report.cache.misses += stats.misses;
    report.cache.inserts += stats.inserts;
    report.cache.below_threshold += stats.below_threshold;
    report.cache.failed_exec += stats.failed_exec;
    report.cache.false_hits += stats.false_hits;
    report.cache.false_misses += stats.false_misses;
    report.cache.evictions_broadcast += stats.evictions_broadcast;
    report.cache.fallback_executions += stats.fallback_executions;
    report.cache.remote_dir_lookups += stats.remote_dir_lookups;
    report.cache.remote_dir_hits += stats.remote_dir_hits;
    report.cache.peer_queries += stats.peer_queries;
    report.cache.peer_query_hits += stats.peer_query_hits;
  }
  report.dir_update_frames = st.traffic.update_frames;
  report.dir_update_bytes = st.traffic.update_bytes;
  report.dir_query_frames = st.traffic.query_frames;
  report.dir_query_bytes = st.traffic.query_bytes;
  report.membership_transitions = st.membership_transitions;
  report.handoff_frames = st.traffic.handoff_frames;
  report.handoff_bytes = st.traffic.handoff_bytes;
  report.handoffs_adopted = st.traffic.handoffs_adopted;
  report.transition_frames = st.traffic.transition_frames;
  report.transition_bytes = st.traffic.transition_bytes;
  report.decommissioned_keys = std::move(st.decommissioned_keys);
  if (st.membership_transitions > 0) {
    std::vector<const core::CacheManager*> nodes;
    for (std::size_t i = 0; i < st.managers.size(); ++i) {
      nodes.push_back(st.member[i] ? st.managers[i].get() : nullptr);
    }
    const auto oracle = core::check_cluster_consistency(nodes);
    report.churn_consistent = oracle.consistent();
    if (!report.churn_consistent) report.churn_report = oracle.to_string();
  }
  for (const auto& manager : st.managers) {
    std::vector<std::string> keys;
    for (const auto& meta : manager->store().resident_metas()) {
      keys.push_back(meta.key);
    }
    std::sort(keys.begin(), keys.end());
    report.node_keys.push_back(std::move(keys));
  }
  for (std::size_t i = 0; i < st.cpus.size(); ++i) {
    report.cpu_utilization.push_back(
        st.cpus[i]->utilization(report.sim_seconds));
  }
  return report;
}

}  // namespace swala::sim
