// FCFS single-server resource (one node's CPU). Work is queued in arrival
// order; the completion callback fires when the job's service finishes.
#pragma once

#include <algorithm>

#include "sim/engine.h"

namespace swala::sim {

class FcfsResource {
 public:
  explicit FcfsResource(SimEngine* engine) : engine_(engine) {}

  /// Enqueues a job needing `service_seconds`; `done` fires at completion.
  void submit(double service_seconds, SimEngine::Callback done) {
    const double start = std::max(engine_->now(), busy_until_);
    busy_until_ = start + service_seconds;
    busy_seconds_ += service_seconds;
    ++jobs_;
    engine_->schedule_at(busy_until_, std::move(done));
  }

  /// Time at which the currently queued work drains.
  double busy_until() const { return busy_until_; }

  /// Total service time processed (for utilization).
  double busy_seconds() const { return busy_seconds_; }
  std::uint64_t jobs() const { return jobs_; }

  double utilization(double elapsed) const {
    return elapsed > 0 ? busy_seconds_ / elapsed : 0.0;
  }

 private:
  SimEngine* engine_;
  double busy_until_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint64_t jobs_ = 0;
};

}  // namespace swala::sim
