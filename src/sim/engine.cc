#include "sim/engine.h"

#include <cassert>
#include <utility>

namespace swala::sim {

void SimEngine::schedule_at(double t, Callback fn) {
  if (t < now_) t = now_;  // clamp; events cannot fire in the past
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void SimEngine::advance_to(double t) {
  now_ = t;
  clock_.set(from_seconds(t));
}

void SimEngine::run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the callback must be moved out
    // before pop, so copy the POD fields and const_cast the functor.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    advance_to(event.time);
    ++processed_;
    event.fn();
  }
}

void SimEngine::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    advance_to(event.time);
    ++processed_;
    event.fn();
  }
  if (now_ < t_end) advance_to(t_end);
}

}  // namespace swala::sim
