// Deterministic discrete-event engine. Single-threaded: events fire in
// timestamp order (FIFO within a timestamp). A ManualClock mirrors virtual
// time so the production cache/directory code (which takes a Clock*) runs
// unmodified inside the simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

#include "common/clock.h"

namespace swala::sim {

class SimEngine {
 public:
  using Callback = std::function<void()>;

  SimEngine() = default;

  /// Current virtual time in seconds.
  double now() const { return now_; }

  /// Clock view of virtual time for cache code.
  const Clock* clock() const { return &clock_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void schedule_at(double t, Callback fn);

  /// Schedules `fn` `dt` seconds from now (dt >= 0).
  void schedule_in(double dt, Callback fn) { schedule_at(now_ + dt, std::move(fn)); }

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with time <= `t_end`; leaves later events queued.
  void run_until(double t_end);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< FIFO tie-break
    Callback fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void advance_to(double t);

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  ManualClock clock_;
};

}  // namespace swala::sim
