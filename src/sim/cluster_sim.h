// Simulated Swala cluster: N nodes, each with an FCFS CPU and a *real*
// CacheManager (memory-backed store, real directory, real rules), connected
// by a simulated cooperation bus that delays directory broadcasts by a
// configurable propagation latency — which is exactly what produces the
// paper's false misses and false hits (§4.2).
//
// Closed-loop clients replay a trace: each client stream is pinned to one
// server node (as in §5.2: "every thread launches requests to a single
// server node") and issues its next request as soon as the previous one
// completes.
//
// Used by: Figure 4 (multi-node response times), Table 3 (insert/broadcast
// overhead), Tables 5 & 6 (stand-alone vs cooperative hit ratios).
#pragma once

#include <memory>
#include <vector>

#include "cluster/transport.h"
#include "common/stats.h"
#include "core/manager.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "workload/trace.h"

namespace swala::sim {

/// Cost model, calibrated from the paper's published single-node numbers
/// (Figure 3 and §5.1); see EXPERIMENTS.md for the derivation.
struct SimCosts {
  double cgi_startup = 0.010;          ///< fork/exec overhead added to a CGI miss
  double local_fetch_cpu = 0.004;      ///< serving a hit from the local disk cache
  double remote_fetch_cpu = 0.004;     ///< requester-side cost of a remote fetch
  double remote_fetch_latency = 0.012; ///< network round trip to the owner
  double insert_cpu = 0.001;           ///< cache insert + broadcast enqueue
  double directory_update_delay = 0.003;  ///< broadcast propagation latency
  double per_request_overhead = 0.002; ///< parse/connection handling
  /// Round trip for one directory probe (partitioned owner lookup, or the
  /// query-mode kQuery sweep — the sweep is one multicast round, so it is
  /// charged once, not per peer).
  double query_latency = 0.012;

  /// Optional memory model (off when node_memory_bytes == 0). The paper's
  /// testbed had 64-128 MB nodes, and its measured 8-node speedup was ~9x —
  /// *superlinear*, because splitting the working set across nodes lifted
  /// each node out of buffer-cache thrashing. When enabled, a node whose
  /// working set (distinct response bytes served) exceeds its memory pays a
  /// service-time multiplier that grows with the overflow ratio:
  ///   multiplier = 1 + thrash_slope * max(0, working_set/memory - 1)
  std::uint64_t node_memory_bytes = 0;
  double thrash_slope = 1.0;
};

struct SimConfig {
  std::size_t nodes = 1;
  std::size_t client_streams = 16;  ///< concurrent closed-loop streams
  /// Open-loop replay: requests fire at their trace arrival times (round-
  /// robin across nodes) instead of as closed-loop streams. Use for what-if
  /// analysis over imported real logs, where the arrival process is part of
  /// the data. `client_streams` is ignored in this mode.
  bool open_loop = false;
  bool caching = true;
  bool cooperative = true;  ///< false = stand-alone caches (no bus)
  core::StoreLimits limits{2000, 0};
  core::PolicyKind policy = core::PolicyKind::kLru;
  double min_exec_seconds = 0.0;  ///< insert threshold
  double ttl_seconds = 0.0;       ///< 0 = never expire
  /// Directory cooperation scheme (cooperative mode only); the head-to-head
  /// knob for bench/ablation_directory_modes.
  core::DirectoryMode directory_mode = core::DirectoryMode::kReplicated;
  std::uint64_t ring_seed = HashRing::kDefaultSeed;  ///< partitioned placement
  std::size_t ring_vnodes = HashRing::kDefaultVnodes;
  SimCosts costs;
  /// Optional fault hook shared with the real transport (not owned). The
  /// simulated bus consults it per peer/message exactly like the TCP layer:
  /// drop/truncate/blackhole on a broadcast loses the directory update;
  /// any of those on a FETCH_REQ fails the fetch (→ local fallback, counted
  /// in fallback_executions); kDelay adds delay_ms of virtual latency to a
  /// broadcast's propagation. Same rules, same seed → same scenario as the
  /// wire transport, but under virtual time.
  cluster::FaultInjector* faults = nullptr;

  // ---- membership churn under load (cooperative mode only) ----
  /// When set (≠ kInvalidNode), this node starts *outside* the active set —
  /// its pinned client streams serve stand-alone — and runs the join
  /// protocol once `join_after_fraction` of the trace has completed: every
  /// member admits it (partitioned mode forwards only the remapped
  /// directory slice, replicated mode seeds it with a full push), then the
  /// joiner adopts the cluster view.
  core::NodeId join_node = core::kInvalidNode;
  double join_after_fraction = 0.25;
  /// When set, this node leaves gracefully once
  /// `decommission_after_fraction` of the trace has completed: it stops
  /// admitting entries, ships its cached state to ring successors over the
  /// handoff channel, peers drop it without quarantine, and its client
  /// streams repin to the next active member.
  core::NodeId decommission_node = core::kInvalidNode;
  double decommission_after_fraction = 0.5;
  /// Decommission handoff: entry bodies larger than this are not shipped
  /// (0 = no cap). Mirrors cluster.handoff_batch_bytes.
  std::uint64_t handoff_batch_bytes = 256 * 1024;
};

/// Outcome of one simulation run.
struct SimReport {
  double sim_seconds = 0.0;          ///< virtual makespan
  LatencyHistogram response_times;   ///< per-request response times
  core::ManagerStats cache;          ///< aggregated across nodes
  std::vector<core::ManagerStats> per_node;
  std::vector<double> cpu_utilization;
  std::uint64_t requests_completed = 0;

  // ---- directory traffic (real encoded wire sizes, summed over legs) ----
  /// Insert/erase/invalidate propagation: broadcast legs in replicated
  /// mode, unicast kOwnerUpdate frames in partitioned mode, zero in query
  /// mode.
  std::uint64_t dir_update_frames = 0;
  std::uint64_t dir_update_bytes = 0;
  /// Miss-time probes: kQuery/kQueryHit exchanges (both directions).
  std::uint64_t dir_query_frames = 0;
  std::uint64_t dir_query_bytes = 0;

  /// Final resident cache keys per node, sorted (mode-parity checks).
  std::vector<std::vector<std::string>> node_keys;

  // ---- membership churn (join/decommission under load) ----
  std::uint64_t membership_transitions = 0;  ///< joins + leaves applied
  /// Decommission handoff channel: entries shipped to ring successors.
  std::uint64_t handoff_frames = 0;
  std::uint64_t handoff_bytes = 0;
  std::uint64_t handoffs_adopted = 0;  ///< shipped entries successors kept
  /// Directory traffic caused by membership transitions (remapped-slice
  /// forwarding, joiner seeding, post-leave re-announcements) — the cost a
  /// static cluster never pays. The ablation compares it against a full
  /// resync (every resident entry re-announced).
  std::uint64_t transition_frames = 0;
  std::uint64_t transition_bytes = 0;
  /// The leaver's resident keys at decommission time, sorted. The
  /// zero-loss check verifies each survives in some remaining node's
  /// node_keys (with TTL 0 nothing may silently vanish).
  std::vector<std::string> decommissioned_keys;
  /// Post-churn cluster oracle over the final active membership (true when
  /// no churn was configured). `churn_report` holds the oracle's rendered
  /// findings when inconsistent (empty otherwise) — for diagnostics.
  bool churn_consistent = true;
  std::string churn_report;

  double mean_response() const { return response_times.mean(); }
  double throughput() const {
    return sim_seconds > 0 ? static_cast<double>(requests_completed) / sim_seconds
                           : 0.0;
  }
};

/// Replays `trace` against a simulated cluster. Deterministic.
SimReport run_cluster_sim(const workload::Trace& trace, const SimConfig& config);

}  // namespace swala::sim
