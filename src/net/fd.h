// RAII wrapper for POSIX file descriptors.
#pragma once

#include <atomic>

namespace swala::net {

/// Owns a file descriptor; closes it on destruction. Move-only.
///
/// The descriptor is stored atomically because the repo's shutdown idiom
/// closes a listener/connection fd from one thread (stop()) while another
/// thread is blocked on it in accept()/read() — the syscall then fails with
/// EBADF and the loop exits. The close itself is how those threads are
/// woken, so the cross-thread access is by design; the atomic makes the
/// fd read/write itself well-defined under that idiom.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const { return fd_.load(std::memory_order_acquire); }
  [[nodiscard]] bool valid() const { return get() >= 0; }

  /// Releases ownership without closing.
  int release() { return fd_.exchange(-1, std::memory_order_acq_rel); }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  std::atomic<int> fd_{-1};
};

}  // namespace swala::net
