// RAII wrapper for POSIX file descriptors.
#pragma once

#include <utility>

namespace swala::net {

/// Owns a file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

}  // namespace swala::net
