#include "net/poller.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/eventfd.h>
#include <unistd.h>

namespace swala::net {
namespace {

Status errno_status(StatusCode code, const char* what) {
  return Status(code, std::string(what) + ": " + std::strerror(errno));
}

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<Poller> Poller::create() {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) return errno_status(StatusCode::kIoError, "epoll_create1");
  Poller p;
  p.epfd_ = UniqueFd(fd);
  return p;
}

Status Poller::add(int fd, std::uint32_t events, std::uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return errno_status(StatusCode::kIoError, "epoll_ctl ADD");
  }
  return Status::ok();
}

Status Poller::modify(int fd, std::uint32_t events, std::uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return errno_status(StatusCode::kIoError, "epoll_ctl MOD");
  }
  return Status::ok();
}

Status Poller::remove(int fd) {
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return errno_status(StatusCode::kIoError, "epoll_ctl DEL");
  }
  return Status::ok();
}

Result<int> Poller::wait(PollEvent* out, int max_events, int timeout_ms) {
  epoll_event evs[128];
  if (max_events > 128) max_events = 128;
  const std::int64_t start = timeout_ms >= 0 ? steady_now_ms() : 0;
  int remaining = timeout_ms;
  for (;;) {
    const int n = ::epoll_wait(epfd_.get(), evs, max_events, remaining);
    if (n >= 0) {
      for (int i = 0; i < n; ++i) {
        out[i].data = evs[i].data.u64;
        out[i].events = evs[i].events;
      }
      return n;
    }
    if (errno != EINTR) return errno_status(StatusCode::kIoError, "epoll_wait");
    if (timeout_ms >= 0) {
      const std::int64_t elapsed = steady_now_ms() - start;
      if (elapsed >= timeout_ms) return 0;
      remaining = static_cast<int>(timeout_ms - elapsed);
    }
  }
}

Result<WakeupFd> WakeupFd::create() {
  const int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd < 0) return errno_status(StatusCode::kIoError, "eventfd");
  WakeupFd w;
  w.fd_ = UniqueFd(fd);
  return w;
}

void WakeupFd::signal() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t rc = ::write(fd_.get(), &one, sizeof(one));
  (void)rc;
}

void WakeupFd::drain() {
  std::uint64_t value = 0;
  while (::read(fd_.get(), &value, sizeof(value)) > 0) {
  }
}

}  // namespace swala::net
