#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace swala::net {
namespace {

Status errno_status(StatusCode code, const std::string& what) {
  return Status(code, what + ": " + std::strerror(errno));
}

// Every socket is close-on-exec: CGI children fork+exec with the parent's
// fd table, and an inherited listening socket would keep the port bound
// after the server dies (blocking a crash-restart) and hold client
// connections open past their response.
void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

Result<sockaddr_in> make_sockaddr(const InetAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument,
                  "bad IPv4 address: " + addr.host);
  }
  return sa;
}

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status set_fd_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_status(StatusCode::kIoError, "F_GETFL");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) {
    return errno_status(StatusCode::kIoError, "F_SETFL");
  }
  return Status::ok();
}

}  // namespace

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  // EINTR must not restart the full timeout: repeated signals would extend
  // the wait unboundedly (and blow through request deadlines). Recompute
  // the remaining time from a monotonic start before every re-poll.
  const std::int64_t start = timeout_ms >= 0 ? steady_now_ms() : 0;
  int remaining = timeout_ms;
  for (;;) {
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
    if (timeout_ms >= 0) {
      const std::int64_t elapsed = steady_now_ms() - start;
      if (elapsed >= timeout_ms) return false;
      remaining = static_cast<int>(timeout_ms - elapsed);
    }
  }
}

Result<TcpStream> TcpStream::connect(const InetAddress& addr, int timeout_ms) {
  auto sa = make_sockaddr(addr);
  if (!sa) return sa.status();

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status(StatusCode::kIoError, "socket");
  set_cloexec(fd.get());

  if (timeout_ms <= 0) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa.value()),
                  sizeof(sockaddr_in)) != 0) {
      return errno_status(StatusCode::kUnavailable, "connect " + addr.to_string());
    }
    return TcpStream(std::move(fd));
  }

  // Non-blocking connect with poll-based timeout.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa.value()),
                     sizeof(sockaddr_in));
  if (rc != 0 && errno != EINPROGRESS) {
    return errno_status(StatusCode::kUnavailable, "connect " + addr.to_string());
  }
  if (rc != 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    // Same EINTR discipline as wait_readable: re-poll with the remaining
    // time, never the full original timeout.
    const std::int64_t start = steady_now_ms();
    int remaining = timeout_ms;
    for (;;) {
      rc = ::poll(&pfd, 1, remaining);
      if (rc > 0) break;
      if (rc == 0) {
        return Status(StatusCode::kTimeout,
                      "connect timeout to " + addr.to_string());
      }
      if (errno != EINTR) return errno_status(StatusCode::kIoError, "poll");
      const std::int64_t elapsed = steady_now_ms() - start;
      if (elapsed >= timeout_ms) {
        return Status(StatusCode::kTimeout,
                      "connect timeout to " + addr.to_string());
      }
      remaining = static_cast<int>(timeout_ms - elapsed);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      errno = err;
      return errno_status(StatusCode::kUnavailable, "connect " + addr.to_string());
    }
  }
  ::fcntl(fd.get(), F_SETFL, flags);  // back to blocking
  return TcpStream(std::move(fd));
}

Status TcpStream::set_no_delay(bool on) {
  const int v = on ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0) {
    return errno_status(StatusCode::kIoError, "TCP_NODELAY");
  }
  return Status::ok();
}

namespace {
Status set_timeout(int fd, int optname, int timeout_ms) {
  // 0 = unlimited, matching Deadline's "0 disables" idiom. Negative values
  // are clamped to unlimited as well: a negative timeval is EINVAL on Linux
  // and a silent sign-wrapped tv_sec elsewhere, neither of which anyone
  // asked for.
  if (timeout_ms < 0) timeout_ms = 0;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return errno_status(StatusCode::kIoError, "SO_*TIMEO");
  }
  return Status::ok();
}
}  // namespace

Status TcpStream::set_recv_timeout(int timeout_ms) {
  recv_timeout_ms_ = timeout_ms < 0 ? 0 : timeout_ms;
  return set_timeout(fd_.get(), SO_RCVTIMEO, timeout_ms);
}

Status TcpStream::set_send_timeout(int timeout_ms) {
  send_timeout_ms_ = timeout_ms < 0 ? 0 : timeout_ms;
  return set_timeout(fd_.get(), SO_SNDTIMEO, timeout_ms);
}

Status TcpStream::set_nonblocking(bool on) {
  return set_fd_nonblocking(fd_.get(), on);
}

Result<std::size_t> TcpStream::read_some(char* buf, std::size_t len) {
  // SO_RCVTIMEO restarts in full on every recv() call, so an EINTR retry
  // loop alone would let a signal storm stretch one logical read far past
  // its budget. Bound the total against the configured timeout.
  const std::int64_t start = recv_timeout_ms_ > 0 ? steady_now_ms() : 0;
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), buf, len, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) {
      if (recv_timeout_ms_ > 0 &&
          steady_now_ms() - start >= recv_timeout_ms_) {
        return Status(StatusCode::kTimeout, "recv timeout");
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(StatusCode::kTimeout, "recv timeout");
    }
    if (errno == ECONNRESET || errno == EPIPE) {
      return Status(StatusCode::kClosed, "connection reset by peer");
    }
    return errno_status(StatusCode::kIoError, "recv");
  }
}

Result<std::size_t> TcpStream::read_nb(char* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), buf, len, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(StatusCode::kWouldBlock, "read would block");
    }
    if (errno == ECONNRESET || errno == EPIPE) {
      return Status(StatusCode::kClosed, "connection reset by peer");
    }
    return errno_status(StatusCode::kIoError, "recv");
  }
}

Status TcpStream::read_exact(char* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    auto n = read_some(buf + got, len - got);
    if (!n) return n.status();
    if (n.value() == 0) {
      return Status(StatusCode::kClosed, "peer closed during read_exact");
    }
    got += n.value();
  }
  return Status::ok();
}

Status TcpStream::write_all(std::string_view data) {
  const std::int64_t start = send_timeout_ms_ > 0 ? steady_now_ms() : 0;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_.get(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        // Same EINTR audit as read_some: SO_SNDTIMEO restarts per call.
        if (send_timeout_ms_ > 0 &&
            steady_now_ms() - start >= send_timeout_ms_) {
          return Status(StatusCode::kTimeout, "send timeout");
        }
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status(StatusCode::kTimeout, "send timeout");
      }
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status(StatusCode::kClosed, "connection reset by peer");
      }
      return errno_status(StatusCode::kIoError, "send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status TcpStream::write_vec(std::string_view head, std::string_view body) {
  // sendmsg rather than writev: writev has no MSG_NOSIGNAL, and a peer
  // reset mid-response must surface as kClosed, not kill the process.
  const std::int64_t start = send_timeout_ms_ > 0 ? steady_now_ms() : 0;
  iovec iov[2];
  iov[0] = {const_cast<char*>(head.data()), head.size()};
  iov[1] = {const_cast<char*>(body.data()), body.size()};
  std::size_t idx = head.empty() ? 1 : 0;
  std::size_t count = 2;
  if (body.empty()) count = 1;
  while (idx < count) {
    msghdr msg{};
    msg.msg_iov = &iov[idx];
    msg.msg_iovlen = count - idx;
    const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        if (send_timeout_ms_ > 0 &&
            steady_now_ms() - start >= send_timeout_ms_) {
          return Status(StatusCode::kTimeout, "send timeout");
        }
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status(StatusCode::kTimeout, "send timeout");
      }
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status(StatusCode::kClosed, "connection reset by peer");
      }
      return errno_status(StatusCode::kIoError, "sendmsg");
    }
    // Advance the iovecs past the bytes the kernel took (partial writes
    // happen under send timeouts and small socket buffers).
    std::size_t taken = static_cast<std::size_t>(n);
    while (idx < count && taken >= iov[idx].iov_len) {
      taken -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count && taken > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + taken;
      iov[idx].iov_len -= taken;
    }
  }
  return Status::ok();
}

Result<std::size_t> TcpStream::write_some_vec(std::string_view head,
                                              std::string_view body) {
  iovec iov[2];
  std::size_t count = 0;
  if (!head.empty()) {
    iov[count++] = {const_cast<char*>(head.data()), head.size()};
  }
  if (!body.empty()) {
    iov[count++] = {const_cast<char*>(body.data()), body.size()};
  }
  if (count == 0) return std::size_t{0};
  for (;;) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(StatusCode::kWouldBlock, "write would block");
    }
    if (errno == ECONNRESET || errno == EPIPE) {
      return Status(StatusCode::kClosed, "connection reset by peer");
    }
    return errno_status(StatusCode::kIoError, "sendmsg");
  }
}

Status TcpStream::shutdown_write() {
  if (::shutdown(fd_.get(), SHUT_WR) != 0) {
    return errno_status(StatusCode::kIoError, "shutdown");
  }
  return Status::ok();
}

Result<TcpListener> TcpListener::listen(const InetAddress& addr, int backlog) {
  auto sa = make_sockaddr(addr);
  if (!sa) return sa.status();

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status(StatusCode::kIoError, "socket");
  set_cloexec(fd.get());

  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa.value()),
             sizeof(sockaddr_in)) != 0) {
    return errno_status(StatusCode::kIoError, "bind " + addr.to_string());
  }
  if (::listen(fd.get(), backlog) != 0) {
    return errno_status(StatusCode::kIoError, "listen");
  }

  TcpListener listener;
  // Discover the actual port (needed when binding port 0).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return errno_status(StatusCode::kIoError, "getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  listener.fd_ = std::move(fd);
  return listener;
}

Result<TcpStream> TcpListener::accept(int timeout_ms) {
  if (!fd_.valid()) return Status(StatusCode::kClosed, "listener closed");
  if (timeout_ms >= 0 && !wait_readable(fd_.get(), timeout_ms)) {
    return Status(StatusCode::kTimeout, "accept timeout");
  }
  for (;;) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) {
      set_cloexec(client);
      return TcpStream(UniqueFd(client));
    }
    if (errno == EINTR) continue;
    if (errno == EBADF || errno == EINVAL) {
      return Status(StatusCode::kClosed, "listener closed");
    }
    return errno_status(StatusCode::kIoError, "accept");
  }
}

Result<TcpStream> TcpListener::try_accept() {
  if (!fd_.valid()) return Status(StatusCode::kClosed, "listener closed");
  for (;;) {
    const int client =
        ::accept4(fd_.get(), nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (client >= 0) return TcpStream(UniqueFd(client));
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(StatusCode::kWouldBlock, "no pending connection");
    }
    if (errno == EBADF || errno == EINVAL) {
      return Status(StatusCode::kClosed, "listener closed");
    }
    return errno_status(StatusCode::kIoError, "accept");
  }
}

Status TcpListener::set_nonblocking(bool on) {
  return set_fd_nonblocking(fd_.get(), on);
}

}  // namespace swala::net
