// TCP sockets — the transport under both the HTTP server and the
// inter-node cluster protocol. IPv4 only (the original Swala testbed was an
// IPv4 Ethernet LAN; nothing here needs more).
//
// Streams are blocking with SO_*TIMEO timeouts by default (the thread-per-
// connection servers); set_nonblocking() plus the *_nb / write_some_vec
// calls serve the epoll reactor, which must never park a thread in a
// syscall on behalf of one connection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/fd.h"

namespace swala::net {

/// IPv4 address + port.
struct InetAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }

  bool operator==(const InetAddress&) const = default;
};

/// A connected TCP stream. Move-only; closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(UniqueFd fd) : fd_(std::move(fd)) {}

  /// Connects with a timeout (milliseconds; <=0 means OS default blocking).
  /// The timeout is measured against a monotonic start, so signals that
  /// interrupt the internal poll never extend it.
  static Result<TcpStream> connect(const InetAddress& addr,
                                   int timeout_ms = 5000);

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] int raw_fd() const { return fd_.get(); }

  /// Disables Nagle; important for the small cluster-protocol messages.
  Status set_no_delay(bool on);

  /// SO_RCVTIMEO / SO_SNDTIMEO in milliseconds. 0 means unlimited (the same
  /// idiom as Deadline: 0 disables the budget, it never means "already
  /// expired"); negative values are clamped to unlimited rather than handed
  /// to setsockopt as a negative timeval (EINVAL). The configured value is
  /// remembered so the read/write retry loops can bound the *total* time of
  /// an operation even when signals (EINTR) restart the syscall with a
  /// fresh kernel timeout.
  Status set_recv_timeout(int timeout_ms);
  Status set_send_timeout(int timeout_ms);

  /// O_NONBLOCK. After this, prefer read_nb()/write_some_vec(); the
  /// blocking-style calls would spin EAGAIN into kTimeout.
  Status set_nonblocking(bool on);

  /// Reads at most `len` bytes. Returns 0 on orderly peer close.
  Result<std::size_t> read_some(char* buf, std::size_t len);

  /// Non-blocking read: like read_some but EAGAIN yields kWouldBlock
  /// (re-arm the fd in the poller) instead of kTimeout.
  Result<std::size_t> read_nb(char* buf, std::size_t len);

  /// Reads exactly `len` bytes or fails (kClosed on early EOF).
  Status read_exact(char* buf, std::size_t len);

  /// Writes the entire buffer or fails.
  Status write_all(std::string_view data);

  /// Writes `head` then `body` as one vectored write (sendmsg), so a
  /// response goes out without concatenating header and body into a fresh
  /// buffer. Either view may be empty. Same failure contract as write_all.
  Status write_vec(std::string_view head, std::string_view body);

  /// One vectored write attempt for non-blocking fds: returns the number of
  /// bytes the kernel accepted (possibly 0 across both views), kWouldBlock
  /// when the socket buffer is full, kClosed on peer reset. The caller
  /// advances its own offsets and re-arms EPOLLOUT on kWouldBlock.
  Result<std::size_t> write_some_vec(std::string_view head,
                                     std::string_view body);

  /// Half-close of the write side (signals EOF to the peer).
  Status shutdown_write();

  void close() { fd_.reset(); }

 private:
  UniqueFd fd_;
  // Configured SO_*TIMEO values (0 = unlimited), kept so the retry loops can
  // enforce the budget across EINTR restarts.
  int recv_timeout_ms_ = 0;
  int send_timeout_ms_ = 0;
};

/// A listening TCP socket.
class TcpListener {
 public:
  /// Binds and listens. Port 0 picks an ephemeral port (see `local_port`).
  static Result<TcpListener> listen(const InetAddress& addr, int backlog = 128);

  /// Accepts one connection; blocks up to `timeout_ms` (-1 = forever).
  /// Returns kTimeout if nothing arrived, kClosed if the listener was shut.
  Result<TcpStream> accept(int timeout_ms = -1);

  /// Non-blocking accept for the reactor: the returned stream is already
  /// non-blocking and close-on-exec. kWouldBlock when the backlog is empty,
  /// kClosed when the listener was shut.
  Result<TcpStream> try_accept();

  /// O_NONBLOCK on the listening socket (reactor mode).
  Status set_nonblocking(bool on);

  [[nodiscard]] int raw_fd() const { return fd_.get(); }
  [[nodiscard]] std::uint16_t local_port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  void close() { fd_.reset(); }

 private:
  UniqueFd fd_;
  std::uint16_t port_ = 0;
};

/// Waits until `fd` is readable; true on readable, false on timeout.
/// `timeout_ms` < 0 waits forever. Signals that interrupt the poll re-enter
/// it with the *remaining* time (recomputed from a monotonic start), so a
/// signal storm cannot stretch the wait past its budget.
bool wait_readable(int fd, int timeout_ms);

}  // namespace swala::net
