// Blocking TCP sockets with timeouts — the transport under both the HTTP
// server and the inter-node cluster protocol. IPv4 only (the original Swala
// testbed was an IPv4 Ethernet LAN; nothing here needs more).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/fd.h"

namespace swala::net {

/// IPv4 address + port.
struct InetAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }

  bool operator==(const InetAddress&) const = default;
};

/// A connected TCP stream. Move-only; closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(UniqueFd fd) : fd_(std::move(fd)) {}

  /// Connects with a timeout (milliseconds; <=0 means OS default blocking).
  static Result<TcpStream> connect(const InetAddress& addr,
                                   int timeout_ms = 5000);

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] int raw_fd() const { return fd_.get(); }

  /// Disables Nagle; important for the small cluster-protocol messages.
  Status set_no_delay(bool on);

  /// SO_RCVTIMEO / SO_SNDTIMEO in milliseconds (0 = no timeout).
  Status set_recv_timeout(int timeout_ms);
  Status set_send_timeout(int timeout_ms);

  /// Reads at most `len` bytes. Returns 0 on orderly peer close.
  Result<std::size_t> read_some(char* buf, std::size_t len);

  /// Reads exactly `len` bytes or fails (kClosed on early EOF).
  Status read_exact(char* buf, std::size_t len);

  /// Writes the entire buffer or fails.
  Status write_all(std::string_view data);

  /// Writes `head` then `body` as one vectored write (sendmsg), so a
  /// response goes out without concatenating header and body into a fresh
  /// buffer. Either view may be empty. Same failure contract as write_all.
  Status write_vec(std::string_view head, std::string_view body);

  /// Half-close of the write side (signals EOF to the peer).
  Status shutdown_write();

  void close() { fd_.reset(); }

 private:
  UniqueFd fd_;
};

/// A listening TCP socket.
class TcpListener {
 public:
  /// Binds and listens. Port 0 picks an ephemeral port (see `local_port`).
  static Result<TcpListener> listen(const InetAddress& addr, int backlog = 128);

  /// Accepts one connection; blocks up to `timeout_ms` (-1 = forever).
  /// Returns kTimeout if nothing arrived, kClosed if the listener was shut.
  Result<TcpStream> accept(int timeout_ms = -1);

  [[nodiscard]] std::uint16_t local_port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  void close() { fd_.reset(); }

 private:
  UniqueFd fd_;
  std::uint16_t port_ = 0;
};

/// Waits until `fd` is readable; true on readable, false on timeout.
bool wait_readable(int fd, int timeout_ms);

}  // namespace swala::net
