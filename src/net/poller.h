// Readiness notification for the epoll reactor: a thin RAII wrapper over
// epoll(7) plus an eventfd-based cross-thread wakeup. Linux-only, like the
// reactor itself (the thread-per-connection servers remain portable).
#pragma once

#include <sys/epoll.h>

#include <cstdint>

#include "common/status.h"
#include "net/fd.h"

namespace swala::net {

/// One readiness event: the registered 64-bit cookie plus the EPOLL* bits.
struct PollEvent {
  std::uint64_t data = 0;
  std::uint32_t events = 0;
};

/// Level-triggered epoll instance. Not thread-safe: the owning event loop
/// is the only caller (cross-thread wakeups go through WakeupFd).
class Poller {
 public:
  static Result<Poller> create();

  Poller() = default;

  [[nodiscard]] bool valid() const { return epfd_.valid(); }

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...); readiness reports
  /// carry `data` back. Closing a registered fd deregisters it implicitly.
  Status add(int fd, std::uint32_t events, std::uint64_t data);
  Status modify(int fd, std::uint32_t events, std::uint64_t data);
  Status remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and fills `out` with up to
  /// `max_events` readiness reports; returns how many. EINTR re-enters the
  /// wait with the remaining time.
  Result<int> wait(PollEvent* out, int max_events, int timeout_ms);

 private:
  UniqueFd epfd_;
};

/// Cross-thread wakeup for an event loop parked in Poller::wait. Writers
/// (worker threads posting completions, stop()/drain() control calls) call
/// signal(); the loop registers fd() for EPOLLIN and drains on readiness.
/// Backed by eventfd(2): one fd, counter semantics, never blocks a writer.
class WakeupFd {
 public:
  static Result<WakeupFd> create();

  WakeupFd() = default;

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] int fd() const { return fd_.get(); }

  /// Async-signal-safe and callable from any thread.
  void signal();

  /// Consumes pending signals (call on EPOLLIN to stop level-triggered
  /// re-reporting).
  void drain();

 private:
  UniqueFd fd_;
};

}  // namespace swala::net
