#include "net/fd.h"

#include <unistd.h>

namespace swala::net {

void UniqueFd::reset(int fd) {
  const int old = fd_.exchange(fd, std::memory_order_acq_rel);
  if (old >= 0 && old != fd) ::close(old);
}

}  // namespace swala::net
