#include "net/fd.h"

#include <unistd.h>

namespace swala::net {

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

}  // namespace swala::net
