// Table 4 — "Response time overhead of replicated directory maintenance."
//
// The paper simulates a full 8-node group with one real node plus a
// pseudo-server program that streams directory-update messages at a
// configurable rate (UPS = updates per second), while the node serves 180
// uncacheable ~1 s requests. The question: does applying remote directory
// updates slow down request handling? (Paper's answer: no.)
//
// Real substrate: a genuine Swala node (8-member group, 7 inert peers) and
// a pseudo-server pumping INSERT messages into its info port over TCP.
// Request service time is scaled 1 s -> 20 ms, and UPS rates are scaled up
// correspondingly so the pressure per request matches and exceeds the
// paper's.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "cluster/framing.h"
#include "cluster/group.h"
#include "http/client.h"
#include "server/swala_server.h"

using namespace swala;

namespace {

constexpr int kRequests = 60;
constexpr double kServiceSeconds = 0.020;

std::shared_ptr<cgi::HandlerRegistry> make_registry() {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  cgi::ScriptedOptions options;
  options.mode = cgi::ComputeMode::kSleep;
  options.service_seconds = kServiceSeconds;
  registry->mount("/cgi-bin/", std::make_shared<cgi::ScriptedCgi>(options));
  return registry;
}

/// The pseudo-server: pumps INSERT updates into `info_addr` at `ups`
/// updates/second until `stop` is set. Returns the number sent.
std::uint64_t run_update_pump(const net::InetAddress& info_addr, double ups,
                              const std::atomic<bool>& stop) {
  auto conn = net::TcpStream::connect(info_addr, 2000);
  if (!conn) return 0;
  net::TcpStream stream = std::move(conn.value());
  (void)stream.set_no_delay(true);
  if (!cluster::write_message(stream, cluster::Message::hello(1)).is_ok()) {
    return 0;
  }

  std::uint64_t sent = 0;
  const auto start = std::chrono::steady_clock::now();
  while (!stop.load(std::memory_order_relaxed)) {
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const auto due = static_cast<std::uint64_t>(elapsed * ups);
    if (sent >= due) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    core::EntryMeta meta;
    meta.key = "GET /cgi-bin/pseudo?u=" + std::to_string(sent);
    meta.owner = static_cast<core::NodeId>(1 + sent % 7);
    meta.size_bytes = 2048;
    meta.cost_seconds = 1.0;
    meta.version = 1;
    if (!cluster::write_message(stream,
                                cluster::Message::insert(meta.owner, meta))
             .is_ok()) {
      break;
    }
    ++sent;
  }
  return sent;
}

}  // namespace

int main() {
  bench::banner("Table 4", "replicated-directory update overhead (UPS sweep)");
  bench::note("real substrate: pseudo-server pumps updates over TCP");

  TablePrinter table({"UPS", "mean response (s)", "increase (s)",
                      "updates applied"});
  double base = 0.0;
  for (const double ups : {0.0, 100.0, 500.0, 2000.0, 10000.0}) {
    // One real node in an 8-member group; the 7 peers never initiate.
    auto members = cluster::loopback_members(8);
    cluster::NodeGroup group(0, members);
    if (!group.start().is_ok()) return 1;
    core::ManagerOptions mo;
    mo.limits = {1000000, 0};
    core::RuleDecision rule;
    rule.cacheable = true;
    mo.rules.add_rule("/cgi-bin/cached/*", rule);  // test requests are NOT under this
    core::CacheManager manager(0, 8, std::move(mo), RealClock::instance(),
                               &group);
    group.attach(&manager);

    server::SwalaServerOptions so;
    so.request_threads = 4;
    server::SwalaServer server(so, make_registry(), &manager);
    if (!server.start().is_ok()) return 1;

    std::atomic<bool> stop{false};
    std::uint64_t sent = 0;
    std::thread pump;
    if (ups > 0) {
      pump = std::thread([&] {
        sent = run_update_pump({"127.0.0.1", group.info_port()}, ups, stop);
      });
    }

    const RealClock& clock = *RealClock::instance();
    OnlineStats stats;
    {
      // Scoped so the connection closes before server.stop().
      http::HttpClient client(server.address());
      for (int i = 0; i < kRequests; ++i) {
        const TimeNs start = clock.now();
        auto resp = client.get("/cgi-bin/work?i=" + std::to_string(i));
        if (resp && resp.value().status == 200) {
          stats.add(to_seconds(clock.now() - start));
        }
      }
    }

    stop = true;
    if (pump.joinable()) pump.join();
    const auto applied = group.stats().updates_received;
    server.stop();
    group.stop();

    if (ups == 0.0) base = stats.mean();
    table.add_row({fmt_double(ups, 0), fmt_double(stats.mean(), 5),
                   fmt_double(stats.mean() - base, 5), std::to_string(applied)});
    std::printf("  measured UPS=%.0f...\n", ups);
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Paper's shape: the increase column stays insignificant even at high\n"
      "update rates — applying remote directory updates touches only the\n"
      "sender's table under a per-table write lock and never blocks the\n"
      "request threads' lookups for long.\n");
  return 0;
}
