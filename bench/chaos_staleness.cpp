// Bench — staleness repair cost/latency sweep for the anti-entropy layer.
//
// After invalidate(P) at time t, a peer whose kInvalidate frame was lost
// keeps serving the stale entry until something repairs it. This bench runs
// the deterministic chaos harness (src/chaos) over a grid of
//   kInvalidate drop rate x anti-entropy digest interval (0 = disabled)
// on the scripted drop-storm scenario and reports, per cell: whether the
// bounded-staleness oracle passed, how many epoch gaps the repair layer
// closed, and what the repair layer cost in frames/bytes (kDigest +
// kInvSync/kInvSyncResp + resync pushes, real encoded wire sizes). The
// headline trade: smaller intervals bound staleness tighter but send more
// digest frames; interval 0 reproduces stale-serve-until-TTL under loss.
//
// Human-readable table goes to stderr; stdout is machine-readable JSON
// (the BENCH_PR8.json trajectory and CI's bench-smoke gate):
//   chaos_staleness [--smoke]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "chaos/chaos.h"

using namespace swala;

namespace {

struct Cell {
  double drop = 0.0;      // P(drop) for node 0 -> node 2 kInvalidate
  double interval = 0.0;  // anti-entropy digest cadence (s); 0 = off
  chaos::ChaosVerdict verdict;
};

/// The PR's acceptance scenario, parameterized: three nodes each cache one
/// key under a shared namespace; node 0's kInvalidate frames to node 2 are
/// dropped with probability `drop`; node 0 invalidates the namespace at
/// t=1. Duration scales with the interval so the tail always has room for
/// at least two full repair rounds.
chaos::ChaosSchedule sweep_schedule(double drop, double interval) {
  chaos::ChaosSchedule s;
  s.nodes = 3;
  s.seed = 7;
  s.anti_entropy_interval_seconds = interval;
  s.slack_seconds = 0.5;
  s.duration_seconds = 4.0 + 2.0 * interval;
  auto act = [](double t, chaos::ActionKind kind, core::NodeId node,
                std::string key) {
    chaos::ChaosAction a;
    a.at_seconds = t;
    a.kind = kind;
    a.node = node;
    a.key_or_pattern = std::move(key);
    return a;
  };
  s.actions.push_back(act(0.1, chaos::ActionKind::kInsert, 0, "/cgi-bin/acc/a"));
  s.actions.push_back(act(0.15, chaos::ActionKind::kInsert, 1, "/cgi-bin/acc/b"));
  s.actions.push_back(act(0.2, chaos::ActionKind::kInsert, 2, "/cgi-bin/acc/c"));
  if (drop > 0.0) {
    chaos::ChaosAction storm =
        act(0.5, chaos::ActionKind::kAddFault, 0, "");
    storm.rule.peer = 2;
    storm.rule.type = cluster::MsgType::kInvalidate;
    storm.rule.kind = cluster::FaultKind::kDrop;
    storm.rule.probability = drop;
    s.actions.push_back(storm);
  }
  s.actions.push_back(
      act(1.0, chaos::ActionKind::kInvalidate, 0, "GET /cgi-bin/acc/*"));
  return s;
}

void emit_cell_json(const Cell& cell, bool last) {
  const auto& v = cell.verdict;
  std::printf(
      "    {\"drop\": %.2f, \"interval_s\": %.2f,\n"
      "     \"passed\": %s, \"violations\": %zu, \"stale_windows\": %zu,\n"
      "     \"gaps_repaired\": %llu, \"stale_serves_prevented\": %llu,\n"
      "     \"anti_entropy_rounds\": %llu,\n"
      "     \"repair_frames\": %llu, \"repair_bytes\": %llu}%s\n",
      cell.drop, cell.interval, v.passed ? "true" : "false",
      v.violations.size(), v.staleness_windows.size(),
      static_cast<unsigned long long>(v.gaps_repaired),
      static_cast<unsigned long long>(v.stale_serves_prevented),
      static_cast<unsigned long long>(v.anti_entropy_rounds),
      static_cast<unsigned long long>(v.repair_frames),
      static_cast<unsigned long long>(v.repair_bytes), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::fprintf(stderr,
               "Chaos staleness sweep — drop rate x anti-entropy interval%s\n",
               smoke ? " (smoke)" : "");

  // interval 0 = repair layer off (the stale-serve-until-TTL baseline).
  const std::vector<double> intervals =
      smoke ? std::vector<double>{0.0, 1.0}
            : std::vector<double>{0.0, 0.5, 1.0, 2.0};
  const std::vector<double> drops = smoke ? std::vector<double>{0.0, 1.0}
                                          : std::vector<double>{0.0, 0.5, 1.0};

  TablePrinter table({"drop", "interval (s)", "passed", "gaps fixed",
                      "rounds", "repair frames", "repair bytes"});
  std::vector<Cell> cells;
  for (const double drop : drops) {
    for (const double interval : intervals) {
      Cell cell;
      cell.drop = drop;
      cell.interval = interval;
      cell.verdict = chaos::run_sim_chaos(sweep_schedule(drop, interval));
      table.add_row({fmt_double(drop, 2), fmt_double(interval, 1),
                     cell.verdict.passed ? "yes" : "NO",
                     std::to_string(cell.verdict.gaps_repaired),
                     std::to_string(cell.verdict.anti_entropy_rounds),
                     std::to_string(cell.verdict.repair_frames),
                     std::to_string(cell.verdict.repair_bytes)});
      cells.push_back(std::move(cell));
    }
  }
  std::fprintf(stderr, "\n%s\n", table.render().c_str());

  // ---- JSON (stdout) ----
  std::printf("{\n");
  std::printf(
      "  \"description\": \"Bounded-staleness repair sweep over the "
      "deterministic chaos harness: kInvalidate drop rate (node 0 -> node 2) "
      "x anti-entropy digest interval on the scripted drop-storm scenario. "
      "passed = the bounded-staleness + final-consistency oracle held; "
      "repair frames/bytes are the layer's wire cost (kDigest, kInvSync, "
      "kInvSyncResp, resync pushes; real encoded sizes). interval_s = 0 "
      "disables the repair layer and reproduces stale-serve-until-TTL under "
      "loss.\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    emit_cell_json(cells[i], i + 1 == cells.size());
  }
  std::printf("  ],\n");

  // The PR's acceptance pair as a machine-checkable gate: at 100% drop the
  // repair layer must close the gap within one round (oracle passes), and
  // the interval-0 baseline must demonstrably fail. With no loss, the
  // repair layer must never fire a gap repair (its steady-state cost is
  // digest frames only).
  const Cell* repaired = nullptr;   // drop 1.0, smallest nonzero interval
  const Cell* baseline = nullptr;   // drop 1.0, interval 0
  const Cell* clean = nullptr;      // drop 0, smallest nonzero interval
  for (const auto& c : cells) {
    if (c.drop == 1.0 && c.interval > 0.0 &&
        (repaired == nullptr || c.interval < repaired->interval)) {
      repaired = &c;
    }
    if (c.drop == 1.0 && c.interval == 0.0) baseline = &c;
    if (c.drop == 0.0 && c.interval > 0.0 &&
        (clean == nullptr || c.interval < clean->interval)) {
      clean = &c;
    }
  }
  if (repaired != nullptr && baseline != nullptr && clean != nullptr) {
    std::printf("  \"gate\": {\n");
    std::printf("    \"repaired_interval_s\": %.2f,\n", repaired->interval);
    std::printf("    \"repaired_passed\": %s,\n",
                repaired->verdict.passed ? "true" : "false");
    std::printf("    \"repaired_gaps\": %llu,\n",
                static_cast<unsigned long long>(
                    repaired->verdict.gaps_repaired));
    std::printf("    \"baseline_passed\": %s,\n",
                baseline->verdict.passed ? "true" : "false");
    std::printf("    \"baseline_gaps\": %llu,\n",
                static_cast<unsigned long long>(
                    baseline->verdict.gaps_repaired));
    std::printf("    \"clean_gaps\": %llu,\n",
                static_cast<unsigned long long>(clean->verdict.gaps_repaired));
    std::printf("    \"clean_repair_frames\": %llu\n",
                static_cast<unsigned long long>(
                    clean->verdict.repair_frames));
    std::printf("  }\n");
  } else {
    std::printf("  \"gate\": null\n");
  }
  std::printf("}\n");
  return 0;
}
