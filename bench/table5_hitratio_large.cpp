// Table 5 — "Cache hit ratios, stand-alone and cooperative caching, cache
// size 2000."
//
// With 2000 entries per node, even a single node can hold every result; the
// cooperative advantage is purely that once one node caches a request, no
// other node ever executes it again (barring false misses). The paper finds
// cooperative caching at 97.5-99.4 % of the theoretical hit bound, while
// stand-alone caching falls toward ~50 % as nodes are added (each node must
// re-execute what its siblings already cached).
#include "bench/hitratio_common.h"

int main() {
  swala::bench::run_hitratio_experiment("Table 5", 2000);
  std::printf(
      "Paper's shape: coop stays near the upper bound at every group size\n"
      "(97.5-99.4 %%); stand-alone degrades as nodes are added because the\n"
      "same entry must be recomputed and stored on every node that sees it.\n");
  return 0;
}
