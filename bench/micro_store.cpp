// Storage-backend micro-benchmarks: the files-vs-volume comparison behind
// BENCH_PR9.json. Two machine-readable modes, one JSON object per line:
//
//   micro_store --insert_throughput --store=files|volume
//               [--entries=N] [--value_bytes=B] [--volume_bytes=V]
//     Inserts N values of B bytes into a fresh backend and reports
//     inserts/sec. The files backend pays open+write+fsync+rename per
//     entry; the volume aggregates a flush group and fsyncs once.
//
//   micro_store --restart_scrub --store=files|volume
//               [--entries=N] [--value_bytes=B] [--volume_bytes=V]
//     Populates N entries, tears the backend down with the data retained,
//     then times a cold restart: backend construction (the volume's
//     sequential recovery walk), adoption of every entry, and the scrub.
//
// The CI bench-smoke job gates on the volume being faster than the files
// backend at inserts and on the restart scrub finishing in bounded time.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "core/storage.h"
#include "core/volume.h"

using namespace swala;

namespace {

std::uint64_t flag_u64(int argc, char** argv, std::string_view name,
                       std::uint64_t fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
        arg[name.size()] == '=') {
      return std::strtoull(arg.substr(name.size() + 1).data(), nullptr, 10);
    }
  }
  return fallback;
}

std::string flag_str(int argc, char** argv, std::string_view name,
                     std::string fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
        arg[name.size()] == '=') {
      return std::string(arg.substr(name.size() + 1));
    }
  }
  return fallback;
}

struct BenchConfig {
  std::string store;          // "files" | "volume"
  std::string dir;
  std::uint64_t entries;
  std::uint64_t value_bytes;
  std::uint64_t volume_bytes;  // volume only; sized automatically if 0
};

std::unique_ptr<core::StorageBackend> make_backend(const BenchConfig& cfg) {
  if (cfg.store == "volume") {
    core::VolumeOptions vo;
    vo.volume_bytes = cfg.volume_bytes;
    return std::make_unique<core::VolumeBackend>(cfg.dir, vo);
  }
  return std::make_unique<core::DiskBackend>(cfg.dir);
}

BenchConfig parse_config(int argc, char** argv) {
  BenchConfig cfg;
  cfg.store = flag_str(argc, argv, "--store", "files");
  cfg.entries = flag_u64(argc, argv, "--entries", 100000);
  cfg.value_bytes = flag_u64(argc, argv, "--value_bytes", 512);
  cfg.volume_bytes = flag_u64(argc, argv, "--volume_bytes", 0);
  if (cfg.volume_bytes == 0) {
    // Room for the payloads, record headers, and compaction headroom.
    cfg.volume_bytes =
        cfg.entries * (cfg.value_bytes + 64) * 2 + (64u << 20);
  }
  if (cfg.store != "files" && cfg.store != "volume") {
    std::fprintf(stderr, "unknown --store=%s\n", cfg.store.c_str());
    std::exit(1);
  }
  char dir_template[] = "/tmp/swala-bench-store-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  cfg.dir = dir_template;
  return cfg;
}

std::uint64_t key_hash_for(std::uint64_t i) {
  return fnv1a64("GET /cgi-bin/q?i=" + std::to_string(i));
}

/// Fills the backend; aborts on any put failure. Returns the ids in order.
std::vector<core::StorageId> populate(core::StorageBackend& backend,
                                      const BenchConfig& cfg) {
  const std::string value(cfg.value_bytes, 'x');
  std::vector<core::StorageId> ids;
  ids.reserve(cfg.entries);
  for (std::uint64_t i = 0; i < cfg.entries; ++i) {
    auto put = backend.put(value, key_hash_for(i));
    if (!put.is_ok()) {
      std::fprintf(stderr, "put %llu failed: %s\n",
                   static_cast<unsigned long long>(i),
                   put.status().to_string().c_str());
      std::exit(1);
    }
    ids.push_back(put.value());
  }
  return ids;
}

int run_insert_throughput(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv);
  {
    auto backend = make_backend(cfg);
    if (!backend->init_status().is_ok()) {
      std::fprintf(stderr, "init failed: %s\n",
                   backend->init_status().to_string().c_str());
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    populate(*backend, cfg);
    if (auto st = backend->sync(); !st.is_ok()) {
      std::fprintf(stderr, "sync failed: %s\n", st.to_string().c_str());
      return 1;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const auto counters = backend->counters();
    std::printf(
        "{\"bench\": \"insert_throughput\", \"store\": \"%s\", "
        "\"entries\": %llu, \"value_bytes\": %llu, "
        "\"elapsed_seconds\": %.3f, \"inserts_per_second\": %.0f, "
        "\"flushes\": %llu}\n",
        cfg.store.c_str(), static_cast<unsigned long long>(cfg.entries),
        static_cast<unsigned long long>(cfg.value_bytes), elapsed,
        elapsed > 0 ? static_cast<double>(cfg.entries) / elapsed : 0.0,
        static_cast<unsigned long long>(counters.flushes));
  }
  std::filesystem::remove_all(cfg.dir);
  return 0;
}

int run_restart_scrub(int argc, char** argv) {
  const BenchConfig cfg = parse_config(argc, argv);
  std::vector<core::StorageId> ids;
  {
    auto backend = make_backend(cfg);
    if (!backend->init_status().is_ok()) {
      std::fprintf(stderr, "init failed: %s\n",
                   backend->init_status().to_string().c_str());
      return 1;
    }
    ids = populate(*backend, cfg);
    if (auto st = backend->sync(); !st.is_ok()) {
      std::fprintf(stderr, "sync failed: %s\n", st.to_string().c_str());
      return 1;
    }
    backend->set_retain_on_destruction(true);
  }

  // Cold restart: construction runs the volume's recovery walk (the files
  // backend defers its per-entry opens to adopt), then the manifest-driven
  // adoption and the final scrub.
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t adopted = 0;
  core::ScrubReport report;
  {
    auto backend = make_backend(cfg);
    if (!backend->init_status().is_ok()) {
      std::fprintf(stderr, "restart init failed: %s\n",
                   backend->init_status().to_string().c_str());
      return 1;
    }
    for (std::uint64_t i = 0; i < ids.size(); ++i) {
      if (backend->adopt(ids[i], cfg.value_bytes, key_hash_for(i)).is_ok()) {
        ++adopted;
      }
    }
    report = backend->scrub();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "{\"bench\": \"restart_scrub\", \"store\": \"%s\", "
      "\"entries\": %llu, \"value_bytes\": %llu, "
      "\"restart_seconds\": %.3f, \"adopted\": %llu, "
      "\"quarantined\": %llu, \"orphans_removed\": %llu}\n",
      cfg.store.c_str(), static_cast<unsigned long long>(cfg.entries),
      static_cast<unsigned long long>(cfg.value_bytes), elapsed,
      static_cast<unsigned long long>(adopted),
      static_cast<unsigned long long>(report.quarantined),
      static_cast<unsigned long long>(report.orphans_removed));
  if (adopted != cfg.entries) {
    std::fprintf(stderr, "lost entries: adopted %llu of %llu\n",
                 static_cast<unsigned long long>(adopted),
                 static_cast<unsigned long long>(cfg.entries));
    return 1;
  }
  std::filesystem::remove_all(cfg.dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--insert_throughput") return run_insert_throughput(argc, argv);
    if (arg == "--restart_scrub") return run_restart_scrub(argc, argv);
  }
  std::fprintf(stderr,
               "usage: micro_store --insert_throughput|--restart_scrub "
               "[--store=files|volume] [--entries=N] [--value_bytes=B] "
               "[--volume_bytes=V]\n");
  return 1;
}
