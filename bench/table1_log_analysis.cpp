// Table 1 — "Potential time saving by caching CGI."
//
// The paper analyzes the ADL access log (69,337 analyzable requests, Sep-Oct
// 1997): for each caching threshold it reports the number of long requests,
// repeats, distinct cache entries needed, and the service time saved.
// We run the identical analysis over the calibrated synthetic ADL trace
// (see DESIGN.md for the substitution argument).
#include "bench/bench_util.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"

using namespace swala;

int main() {
  bench::banner("Table 1", "potential time saving by caching CGI results");

  workload::AdlOptions options;  // defaults are calibrated to the paper
  const auto trace = workload::synthesize_adl_trace(options);
  const auto summary = workload::summarize(trace);

  std::printf("\nSynthetic ADL log: %zu requests, %zu CGI (%.1f%%)\n",
              summary.total_requests, summary.cgi_requests,
              100.0 * summary.cgi_requests / summary.total_requests);
  std::printf("mean file fetch %.3f s | mean CGI %.2f s | longest %.1f s\n",
              summary.mean_file_service, summary.mean_cgi_service,
              summary.max_service);
  std::printf("total service time %.0f s, CGI share %.1f%%\n",
              summary.total_service_seconds,
              100.0 * summary.cgi_service_seconds /
                  summary.total_service_seconds);
  std::printf("(paper: 69,337 requests, 41.3%% CGI, 0.03 s / 1.6 s means,\n"
              " 46,156 s total, CGI share 97%%)\n\n");

  TablePrinter table({"threshold (s)", "# long reqs", "total repeats",
                      "# uniq repeats", "time saved (s)", "saved %"});
  for (const auto& row :
       workload::analyze_thresholds(trace, {0.5, 1.0, 2.0, 4.0})) {
    table.add_row({fmt_double(row.threshold_seconds, 1),
                   std::to_string(row.long_requests),
                   std::to_string(row.total_repeats),
                   std::to_string(row.unique_repeated),
                   fmt_double(row.time_saved_seconds, 0),
                   fmt_double(row.saved_percent, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Paper's published reference points at the 1 s threshold:\n"
              "  189 unique entries -> 2,899 hits -> 13,241 s saved (~29%% of\n"
              "  total service time). The synthetic trace reproduces the\n"
              "  signature: a few hundred hot entries capture ~30%% of all\n"
              "  service time, and the saving decays slowly with threshold.\n");
  return 0;
}
