// Table 3 — "Response time overhead of insertion and information broadcast."
//
// The paper sends 180 unique cacheable requests (each ~1 s of CPU) to one
// node of a 2..8-node group and compares the mean response time with
// caching off vs cooperative caching on: every request is then a miss +
// insert + broadcast, so the difference isolates that overhead. The paper
// finds it insignificant and independent of group size.
//
// This is the real substrate (loopback TCP cluster). Service times are
// scaled from 1 s to 20 ms so the whole sweep stays within bench budget;
// the *absolute* overhead per request is what matters and is unscaled.
#include "bench/bench_util.h"
#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "cluster/local_cluster.h"
#include "http/client.h"
#include "server/swala_server.h"

using namespace swala;

namespace {

constexpr int kRequests = 60;
constexpr double kServiceSeconds = 0.020;  // scaled from the paper's 1 s

std::shared_ptr<cgi::HandlerRegistry> make_registry() {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  cgi::ScriptedOptions options;
  options.mode = cgi::ComputeMode::kSleep;
  options.service_seconds = kServiceSeconds;
  options.output_bytes = 2048;
  registry->mount("/cgi-bin/", std::make_shared<cgi::ScriptedCgi>(options));
  return registry;
}

core::ManagerOptions cache_all(core::NodeId) {
  core::ManagerOptions options;
  options.limits = {100000, 0};
  core::RuleDecision rule;
  rule.cacheable = true;
  options.rules.add_rule("/cgi-bin/*", rule);
  return options;
}

/// Mean response of `kRequests` unique requests against node 0 of an
/// `nodes`-wide group. `cache` toggles the cooperative cache.
double run_one(std::size_t nodes, bool cache, int salt) {
  cluster::LocalCluster cluster(nodes, cache_all);
  server::SwalaServerOptions options;
  options.request_threads = 4;
  server::SwalaServer server(options, make_registry(),
                             cache ? &cluster.manager(0) : nullptr);
  if (!server.start().is_ok()) return -1;

  const RealClock& clock = *RealClock::instance();
  OnlineStats stats;
  {
    // Scoped so the connection closes before server.stop(); otherwise the
    // request thread sits in its recv timeout waiting for the next
    // keep-alive request.
    http::HttpClient client(server.address());
    for (int i = 0; i < kRequests; ++i) {
      const std::string target = "/cgi-bin/unique?salt=" +
                                 std::to_string(salt) +
                                 "&i=" + std::to_string(i);
      const TimeNs start = clock.now();
      auto resp = client.get(target);
      if (resp && resp.value().status == 200) {
        stats.add(to_seconds(clock.now() - start));
      }
    }
  }
  server.stop();
  cluster.stop();
  return stats.mean();
}

}  // namespace

int main() {
  bench::banner("Table 3", "insert + broadcast overhead vs group size");
  bench::note("real loopback cluster; service time scaled 1 s -> 20 ms");

  TablePrinter table({"# nodes", "no cache (s)", "coop cache (s)",
                      "increase (s)"});
  int salt = 0;
  for (const std::size_t nodes : {2, 3, 4, 5, 6, 7, 8}) {
    const double without = run_one(nodes, false, ++salt);
    const double with_cache = run_one(nodes, true, ++salt);
    table.add_row({std::to_string(nodes), fmt_double(without, 5),
                   fmt_double(with_cache, 5),
                   fmt_double(with_cache - without, 5)});
    std::printf("  measured %zu node(s)...\n", nodes);
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Paper's shape: the increase column is negligible relative to the\n"
      "request service time and does not grow with the number of nodes\n"
      "(the broadcast is asynchronous; the request thread only enqueues).\n");
  return 0;
}
