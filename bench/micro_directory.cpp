// Ablation (§4.2) — directory locking granularity.
//
// The paper weighs three locking strategies for the replicated directory
// and picks per-table read/write locks: whole-directory locking causes
// "unacceptable lock contention", per-entry locking costs "a significant
// number of locks and unlocks" per lookup. This benchmark reproduces that
// argument: lookup throughput under concurrent readers + a writer, for all
// three modes, plus the lock-acquisition counts per lookup.
// Besides the locking ablation, `--batch_bench` measures broadcast
// amortization over a real two-node loopback cluster: a 1000-insert burst is
// broadcast from node 0 to node 1 and the number of transport frames the
// sender actually wrote is reported as JSON (the BENCH_PR4.json trajectory
// and the CI bench-smoke job consume it):
//   micro_directory --batch_bench [--inserts=1000]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>

#include "cluster/group.h"
#include "common/clock.h"
#include "core/directory.h"

using namespace swala;

namespace {

ManualClock g_clock(0);

core::CacheDirectory* make_directory(core::LockingMode mode) {
  static constexpr std::size_t kNodes = 8;
  static constexpr int kEntriesPerNode = 500;
  auto* dir = new core::CacheDirectory(0, kNodes, mode);
  dir->set_clock(&g_clock);
  for (core::NodeId n = 0; n < kNodes; ++n) {
    for (int i = 0; i < kEntriesPerNode; ++i) {
      core::EntryMeta meta;
      meta.key = "GET /cgi-bin/n" + std::to_string(n) + "?i=" + std::to_string(i);
      meta.owner = n;
      meta.version = 1;
      dir->apply_insert(meta);
    }
  }
  return dir;
}

void lookup_loop(benchmark::State& state, core::CacheDirectory* dir) {
  // Mixed workload per the paper: mostly lookups (some missing most tables,
  // hitting the last), occasional touch writes from thread 0.
  std::uint64_t i = 0;
  for (auto _ : state) {
    const core::NodeId n = static_cast<core::NodeId>(i % 8);
    const std::string key =
        "GET /cgi-bin/n" + std::to_string(n) + "?i=" + std::to_string(i % 500);
    benchmark::DoNotOptimize(dir->lookup(key));
    if (state.thread_index() == 0 && i % 16 == 0) {
      dir->apply_touch(n, key, static_cast<TimeNs>(i));
    }
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DirectoryLookup_WholeDirectory(benchmark::State& state) {
  static core::CacheDirectory* dir =
      make_directory(core::LockingMode::kWholeDirectory);
  lookup_loop(state, dir);
}
void BM_DirectoryLookup_PerTable(benchmark::State& state) {
  static core::CacheDirectory* dir =
      make_directory(core::LockingMode::kPerTable);
  lookup_loop(state, dir);
}
void BM_DirectoryLookup_PerEntry(benchmark::State& state) {
  static core::CacheDirectory* dir =
      make_directory(core::LockingMode::kPerEntry);
  lookup_loop(state, dir);
}
void BM_DirectoryLookup_MultiGranularity(benchmark::State& state) {
  static core::CacheDirectory* dir =
      make_directory(core::LockingMode::kMultiGranularity);
  lookup_loop(state, dir);
}

BENCHMARK(BM_DirectoryLookup_WholeDirectory)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_DirectoryLookup_PerTable)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_DirectoryLookup_PerEntry)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_DirectoryLookup_MultiGranularity)->Threads(1)->Threads(4)->Threads(8);

/// Reports lock acquisitions per miss-lookup for each mode (the paper's
/// per-entry objection is about exactly this number).
void BM_LockAcquisitionsPerLookup(benchmark::State& state) {
  const auto mode = static_cast<core::LockingMode>(state.range(0));
  core::CacheDirectory dir(0, 8, mode);
  dir.set_clock(&g_clock);
  for (core::NodeId n = 0; n < 8; ++n) {
    core::EntryMeta meta;
    meta.key = "GET /cgi-bin/k" + std::to_string(n);
    meta.owner = n;
    dir.apply_insert(meta);
  }
  const auto before = dir.stats().lock_acquisitions;
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.lookup("GET /cgi-bin/k7"));  // scans all tables
    ++lookups;
  }
  const auto after = dir.stats().lock_acquisitions;
  state.counters["locks_per_lookup"] =
      lookups ? static_cast<double>(after - before) / static_cast<double>(lookups)
              : 0.0;
}
BENCHMARK(BM_LockAcquisitionsPerLookup)
    ->Arg(static_cast<int>(core::LockingMode::kWholeDirectory))
    ->Arg(static_cast<int>(core::LockingMode::kPerTable))
    ->Arg(static_cast<int>(core::LockingMode::kPerEntry))
    ->Arg(static_cast<int>(core::LockingMode::kMultiGranularity));

// ---- broadcast batching mode (machine-readable JSON) ----

std::uint64_t flag_u64(int argc, char** argv, std::string_view name,
                       std::uint64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() > prefix.size() && arg.compare(0, prefix.size(), prefix) == 0) {
      return std::strtoull(arg.data() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

struct BurstResult {
  std::uint64_t frames_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t batched_broadcasts = 0;
};

/// Broadcasts `inserts` directory updates from node 0 to node 1 over real
/// loopback sockets and reports how many frames the sender wrote.
BurstResult run_burst(cluster::GroupOptions opts, std::uint64_t inserts) {
  auto members = cluster::loopback_members(2);
  cluster::NodeGroup a(0, members, opts);
  cluster::NodeGroup b(1, members, opts);
  if (!a.start().is_ok() || !b.start().is_ok()) {
    std::fprintf(stderr, "group start failed\n");
    std::exit(1);
  }
  members[0].info_addr.port = a.info_port();
  members[0].data_addr.port = a.data_port();
  members[1].info_addr.port = b.info_port();
  members[1].data_addr.port = b.data_port();
  a.set_members(members);
  b.set_members(members);

  for (std::uint64_t i = 0; i < inserts; ++i) {
    core::EntryMeta meta;
    meta.key = "GET /cgi-bin/burst?i=" + std::to_string(i);
    meta.owner = 0;
    meta.size_bytes = 2048;
    meta.version = i + 1;
    a.broadcast_insert(meta);
  }

  // Quiesce: the backlog must drain, the receiver must have applied the
  // whole burst (updates_received counts the HELLO greeting too), and the
  // sender-side frame counter must have gone stable.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::uint64_t last_frames = 0;
  for (;;) {
    const auto stats = a.stats();
    if (a.outbound_backlog() == 0 &&
        b.stats().updates_received >= inserts &&
        stats.frames_sent == last_frames && stats.frames_sent != 0) {
      break;
    }
    last_frames = stats.frames_sent;
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "burst did not quiesce\n");
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  BurstResult result;
  const auto stats = a.stats();
  result.frames_sent = stats.frames_sent;
  result.batched_broadcasts = stats.batched_broadcasts;
  result.updates_received = b.stats().updates_received;
  a.stop();
  b.stop();
  return result;
}

int run_batch_bench(int argc, char** argv) {
  const std::uint64_t inserts = flag_u64(argc, argv, "--inserts", 1000);

  cluster::GroupOptions unbatched;
  unbatched.batch_max_messages = 1;
  const BurstResult off = run_burst(unbatched, inserts);

  cluster::GroupOptions batched;
  batched.batch_max_messages = 64;
  const BurstResult on = run_burst(batched, inserts);

  std::printf(
      "{\"bench\": \"batch_bench\", \"inserts\": %llu, "
      "\"frames_sent_unbatched\": %llu, \"updates_received_unbatched\": %llu, "
      "\"frames_sent_batched\": %llu, \"updates_received_batched\": %llu, "
      "\"batched_broadcasts\": %llu}\n",
      static_cast<unsigned long long>(inserts),
      static_cast<unsigned long long>(off.frames_sent),
      static_cast<unsigned long long>(off.updates_received),
      static_cast<unsigned long long>(on.frames_sent),
      static_cast<unsigned long long>(on.updates_received),
      static_cast<unsigned long long>(on.batched_broadcasts));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--batch_bench") {
      return run_batch_bench(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
