// Ablation (§4.2) — directory locking granularity.
//
// The paper weighs three locking strategies for the replicated directory
// and picks per-table read/write locks: whole-directory locking causes
// "unacceptable lock contention", per-entry locking costs "a significant
// number of locks and unlocks" per lookup. This benchmark reproduces that
// argument: lookup throughput under concurrent readers + a writer, for all
// three modes, plus the lock-acquisition counts per lookup.
#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "core/directory.h"

using namespace swala;

namespace {

ManualClock g_clock(0);

core::CacheDirectory* make_directory(core::LockingMode mode) {
  static constexpr std::size_t kNodes = 8;
  static constexpr int kEntriesPerNode = 500;
  auto* dir = new core::CacheDirectory(0, kNodes, mode);
  dir->set_clock(&g_clock);
  for (core::NodeId n = 0; n < kNodes; ++n) {
    for (int i = 0; i < kEntriesPerNode; ++i) {
      core::EntryMeta meta;
      meta.key = "GET /cgi-bin/n" + std::to_string(n) + "?i=" + std::to_string(i);
      meta.owner = n;
      meta.version = 1;
      dir->apply_insert(meta);
    }
  }
  return dir;
}

void lookup_loop(benchmark::State& state, core::CacheDirectory* dir) {
  // Mixed workload per the paper: mostly lookups (some missing most tables,
  // hitting the last), occasional touch writes from thread 0.
  std::uint64_t i = 0;
  for (auto _ : state) {
    const core::NodeId n = static_cast<core::NodeId>(i % 8);
    const std::string key =
        "GET /cgi-bin/n" + std::to_string(n) + "?i=" + std::to_string(i % 500);
    benchmark::DoNotOptimize(dir->lookup(key));
    if (state.thread_index() == 0 && i % 16 == 0) {
      dir->apply_touch(n, key, static_cast<TimeNs>(i));
    }
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DirectoryLookup_WholeDirectory(benchmark::State& state) {
  static core::CacheDirectory* dir =
      make_directory(core::LockingMode::kWholeDirectory);
  lookup_loop(state, dir);
}
void BM_DirectoryLookup_PerTable(benchmark::State& state) {
  static core::CacheDirectory* dir =
      make_directory(core::LockingMode::kPerTable);
  lookup_loop(state, dir);
}
void BM_DirectoryLookup_PerEntry(benchmark::State& state) {
  static core::CacheDirectory* dir =
      make_directory(core::LockingMode::kPerEntry);
  lookup_loop(state, dir);
}
void BM_DirectoryLookup_MultiGranularity(benchmark::State& state) {
  static core::CacheDirectory* dir =
      make_directory(core::LockingMode::kMultiGranularity);
  lookup_loop(state, dir);
}

BENCHMARK(BM_DirectoryLookup_WholeDirectory)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_DirectoryLookup_PerTable)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_DirectoryLookup_PerEntry)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_DirectoryLookup_MultiGranularity)->Threads(1)->Threads(4)->Threads(8);

/// Reports lock acquisitions per miss-lookup for each mode (the paper's
/// per-entry objection is about exactly this number).
void BM_LockAcquisitionsPerLookup(benchmark::State& state) {
  const auto mode = static_cast<core::LockingMode>(state.range(0));
  core::CacheDirectory dir(0, 8, mode);
  dir.set_clock(&g_clock);
  for (core::NodeId n = 0; n < 8; ++n) {
    core::EntryMeta meta;
    meta.key = "GET /cgi-bin/k" + std::to_string(n);
    meta.owner = n;
    dir.apply_insert(meta);
  }
  const auto before = dir.stats().lock_acquisitions;
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.lookup("GET /cgi-bin/k7"));  // scans all tables
    ++lookups;
  }
  const auto after = dir.stats().lock_acquisitions;
  state.counters["locks_per_lookup"] =
      lookups ? static_cast<double>(after - before) / static_cast<double>(lookups)
              : 0.0;
}
BENCHMARK(BM_LockAcquisitionsPerLookup)
    ->Arg(static_cast<int>(core::LockingMode::kWholeDirectory))
    ->Arg(static_cast<int>(core::LockingMode::kPerTable))
    ->Arg(static_cast<int>(core::LockingMode::kPerEntry))
    ->Arg(static_cast<int>(core::LockingMode::kMultiGranularity));

}  // namespace

BENCHMARK_MAIN();
