// Ablation — reproducing the paper's *superlinear* speedup.
//
// Figure 4's text reports "with eight nodes, the average speedup is about
// nine" — more than 8x on 8 nodes. On the 64-128 MB Ultras of the testbed,
// a single node's working set (images, CGI binaries, cached results)
// overflowed the buffer cache; splitting the workload across nodes shrank
// each node's working set below its memory and removed the thrashing, so
// per-node service times *improved* as the cluster grew.
//
// The simulator's optional memory model captures this: with
// `node_memory_bytes` set so one node's working set overflows ~2x, the
// measured speedup at 8 nodes exceeds 8; with the model off it is linear.
#include <unordered_map>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"

using namespace swala;

namespace {

double mean_response(const workload::Trace& trace, std::size_t nodes,
                     std::uint64_t node_memory) {
  sim::SimConfig config;
  config.nodes = nodes;
  config.client_streams = 16;
  config.limits = {2000, 0};
  config.min_exec_seconds = 1.0;
  config.costs.node_memory_bytes = node_memory;
  config.costs.thrash_slope = 1.0;
  return sim::run_cluster_sim(trace, config).mean_response();
}

}  // namespace

int main() {
  bench::banner("Ablation", "memory pressure and superlinear speedup");

  workload::AdlOptions options;
  options.total_requests = 30000;
  const auto trace = workload::synthesize_adl_trace(options);

  // Size node memory at ~45 % of the full working set: one node thrashes,
  // three or more nodes fit comfortably.
  std::uint64_t total_bytes = 0;
  {
    std::uint64_t counted = 0;
    std::unordered_map<std::string, std::uint64_t> distinct;
    for (const auto& r : trace) distinct.emplace(r.target, r.response_bytes);
    for (const auto& [t, b] : distinct) counted += b;
    total_bytes = counted;
  }
  const std::uint64_t node_memory = total_bytes * 45 / 100;
  std::printf("\nworking set %s, per-node memory %s\n\n",
              format_bytes(total_bytes).c_str(),
              format_bytes(node_memory).c_str());

  TablePrinter table({"# nodes", "no mem model (s)", "speedup",
                      "with mem model (s)", "speedup"});
  double base_flat = 0.0;
  double base_mem = 0.0;
  for (const std::size_t nodes : {1, 2, 4, 6, 8}) {
    const double flat = mean_response(trace, nodes, 0);
    const double constrained = mean_response(trace, nodes, node_memory);
    if (nodes == 1) {
      base_flat = flat;
      base_mem = constrained;
    }
    table.add_row({std::to_string(nodes), fmt_double(flat, 3),
                   fmt_double(base_flat / flat, 2), fmt_double(constrained, 3),
                   fmt_double(base_mem / constrained, 2)});
    std::printf("  simulated %zu node(s)...\n", nodes);
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "With the CPU-only model the speedup is linear (the left pair); with\n"
      "memory pressure on 1997-sized nodes the 8-node speedup exceeds 8 —\n"
      "the paper's ~9x. Cooperative caching gets the credit in the paper's\n"
      "deployment for the same reason it helps here: it removes redundant\n"
      "work from nodes that have none to spare.\n");
  return 0;
}
