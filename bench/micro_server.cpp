// Micro-benchmark — connection scaling of the server's io_model.
//
// The paper's thread-per-connection design (§4.1) holds at most
// request_threads concurrent keep-alive connections before admission control
// sheds; the epoll reactor holds tens of thousands on one loop thread. This
// bench opens N idle keep-alive connections, verifies the server's live
// gauge reaches N, then measures request latency (mean / p99) of probe
// requests served while the N connections stay parked.
//
//   micro_server                          human-readable scaling ladder
//   micro_server --conn_scaling
//       --connections=10000 --probes=2000 single JSON datapoint (CI smoke)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "http/client.h"
#include "server/swala_server.h"

using namespace swala;

namespace {

/// Raises RLIMIT_NOFILE toward `want`; returns the resulting soft limit.
/// Containers commonly cap the hard limit (no CAP_SYS_RESOURCE), so the
/// client ends of the herd live in a forked child with its own fd table —
/// each process then only needs N descriptors, not 2N.
rlim_t raise_fd_limit(rlim_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur >= want) return lim.rlim_cur;
  rlimit raised = lim;
  raised.rlim_cur = want;
  if (raised.rlim_max < want) raised.rlim_max = want;  // root may raise it
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return raised.rlim_cur;
  raised.rlim_max = lim.rlim_max;  // fallback: soft up to the capped hard
  raised.rlim_cur = std::min<rlim_t>(want, lim.rlim_max);
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return raised.rlim_cur;
  return lim.rlim_cur;
}

/// Child-process body: opens `connections` keep-alive connections to `addr`,
/// reports how many it holds on `status_fd`, then parks until the parent
/// closes `ctrl_fd` (EOF) and exits without ever sending a request.
[[noreturn]] void hold_connections(const net::InetAddress& addr,
                                   std::size_t connections, int status_fd,
                                   int ctrl_fd) {
  std::vector<net::TcpStream> held;
  held.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    auto conn = net::TcpStream::connect(addr, 5000);
    if (!conn.is_ok()) break;
    held.push_back(std::move(conn.value()));
  }
  const std::uint64_t count = held.size();
  (void)!::write(status_fd, &count, sizeof(count));
  ::close(status_fd);
  char byte;
  while (::read(ctrl_fd, &byte, 1) > 0) {
  }
  ::_exit(0);
}

struct ScalingPoint {
  std::size_t requested = 0;   ///< connections asked for
  std::size_t held = 0;        ///< connections actually connected
  std::size_t gauge = 0;       ///< server's active_connections at steady state
  double probe_mean_us = 0;
  double probe_p99_us = 0;
  double probe_rps = 0;
  std::size_t probes = 0;
};

std::string make_docroot() {
  const std::string dir = "/tmp/swala_bench_server";
  ::system(("mkdir -p " + dir).c_str());
  FILE* f = ::fopen((dir + "/probe.html").c_str(), "w");
  if (f != nullptr) {
    std::fputs("<html>probe</html>", f);
    std::fclose(f);
  }
  return dir;
}

/// Holds `connections` idle keep-alive connections against a fresh epoll
/// server, then serves `probes` sequential requests on one more connection.
bool measure(std::size_t connections, std::size_t probes, ScalingPoint* out) {
  server::SwalaServerOptions opts;
  opts.io_model = server::IoModel::kEpoll;
  opts.request_threads = 4;
  opts.listen_backlog = 1024;
  opts.recv_timeout_ms = 120000;  // parked connections must stay parked
  opts.docroot = make_docroot();
  server::SwalaServer server(opts, nullptr);
  if (!server.start().is_ok()) return false;

  out->requested = connections;
  int status_pipe[2];  // child -> parent: held-connection count
  int ctrl_pipe[2];    // parent -> child: EOF means "hang up and exit"
  if (::pipe(status_pipe) != 0 || ::pipe(ctrl_pipe) != 0) return false;
  const pid_t holder = ::fork();
  if (holder < 0) return false;
  if (holder == 0) {
    ::close(status_pipe[0]);
    ::close(ctrl_pipe[1]);
    hold_connections(server.address(), connections, status_pipe[1],
                     ctrl_pipe[0]);
  }
  ::close(status_pipe[1]);
  ::close(ctrl_pipe[0]);
  std::uint64_t held = 0;
  if (::read(status_pipe[0], &held, sizeof(held)) != sizeof(held)) held = 0;
  ::close(status_pipe[0]);
  out->held = held;

  // Wait for the reactor to accept the whole herd into the live gauge.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().active_connections < held &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  out->gauge = server.stats().active_connections;

  http::HttpClient probe(server.address(), 5000);
  LatencyHistogram latency;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < probes; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = probe.get("/probe.html");
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.is_ok() || r.value().status != 200) {
      std::fprintf(stderr, "probe %zu failed\n", i);
      server.stop();
      return false;
    }
    latency.add(std::chrono::duration<double>(t1 - t0).count());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out->probes = probes;
  out->probe_mean_us = latency.mean() * 1e6;
  out->probe_p99_us = latency.percentile(99) * 1e6;
  out->probe_rps = elapsed > 0 ? static_cast<double>(probes) / elapsed : 0.0;

  ::close(ctrl_pipe[1]);  // hang up the herd before stop: reap, don't flush
  int wstatus = 0;
  ::waitpid(holder, &wstatus, 0);
  server.stop();
  return true;
}

int run_conn_scaling(int argc, char** argv) {
  std::size_t connections = 10000;
  std::size_t probes = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--connections=", 0) == 0) {
      connections = static_cast<std::size_t>(
          std::strtoull(arg.data() + 14, nullptr, 10));
    } else if (arg.rfind("--probes=", 0) == 0) {
      probes = static_cast<std::size_t>(
          std::strtoull(arg.data() + 9, nullptr, 10));
    }
  }
  const rlim_t fd_limit = raise_fd_limit(connections + 4096);
  if (fd_limit < connections + 64) {
    std::fprintf(stderr, "fd limit %llu too low for %zu connections\n",
                 static_cast<unsigned long long>(fd_limit), connections);
    return 1;
  }
  ScalingPoint point;
  if (!measure(connections, probes, &point)) return 1;
  std::printf(
      "{\"bench\": \"conn_scaling\", \"io_model\": \"epoll\", "
      "\"connections_requested\": %zu, \"connections_held\": %zu, "
      "\"active_connections\": %zu, \"probes\": %zu, "
      "\"probe_mean_us\": %.1f, \"probe_p99_us\": %.1f, "
      "\"probe_rps\": %.0f}\n",
      point.requested, point.held, point.gauge, point.probes,
      point.probe_mean_us, point.probe_p99_us, point.probe_rps);
  return point.held == point.requested && point.gauge >= point.held ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--conn_scaling") {
      return run_conn_scaling(argc, argv);
    }
  }

  bench::banner("Micro", "connection scaling: epoll reactor vs thread pool");
  bench::note(
      "thread-per-connection holds at most request_threads keep-alive "
      "connections;\nthe ladder below parks N idle connections on the "
      "reactor and probes through them.");
  raise_fd_limit(64 * 1024);

  TablePrinter table({"held conns", "gauge", "probe mean (us)",
                      "probe p99 (us)", "probe req/s"});
  for (const std::size_t n : {100UL, 1000UL, 10000UL}) {
    ScalingPoint point;
    if (!measure(n, 2000, &point)) {
      std::fprintf(stderr, "measurement at %zu connections failed\n", n);
      return 1;
    }
    table.add_row({std::to_string(point.held), std::to_string(point.gauge),
                   fmt_double(point.probe_mean_us, 1),
                   fmt_double(point.probe_p99_us, 1),
                   fmt_double(point.probe_rps, 0)});
    std::printf("  measured %zu connection(s)...\n", n);
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Latency should stay flat as held connections grow: parked\n"
      "connections cost the reactor one epoll registration each, not a\n"
      "thread. A rising p99 means readiness scans or timer work is\n"
      "leaking into the request path.\n");
  return 0;
}
