// Ablation — Swala's replicated directory vs. hash-partitioned ownership.
//
// Swala lets *whichever node executed a request* own the cached result and
// replicates a directory so everyone can find it. The design that later
// became ubiquitous (memcached, groupcache, CDN edges) instead assigns each
// key a home node by hashing: no directory, no broadcasts — but every
// access to a remote-homed key pays a network hop, even on the node that
// just computed it.
//
// This bench runs both designs over the same engine, cost model, per-node
// caches and workload, and compares hit ratios, response times and control
// traffic — making the trade-off the paper's design implies measurable.
#include <unordered_map>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "core/store.h"
#include "sim/cluster_sim.h"
#include "sim/resource.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"

using namespace swala;

namespace {

struct PartitionedReport {
  double mean_response = 0.0;
  std::uint64_t local_hits = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t network_messages = 0;  ///< remote lookups + result transfers
};

/// Hash-partitioned cooperative cache over the same engine and cost model.
PartitionedReport run_partitioned(const workload::Trace& trace,
                                  std::size_t nodes, std::uint64_t capacity,
                                  const sim::SimCosts& costs) {
  sim::SimEngine engine;
  std::vector<std::unique_ptr<core::CacheStore>> stores;
  std::vector<std::unique_ptr<sim::FcfsResource>> cpus;
  for (std::size_t i = 0; i < nodes; ++i) {
    stores.push_back(std::make_unique<core::CacheStore>(
        core::StoreLimits{capacity, 0}, core::PolicyKind::kLru,
        std::make_unique<core::MemoryBackend>(), engine.clock(),
        static_cast<core::NodeId>(i)));
    cpus.push_back(std::make_unique<sim::FcfsResource>(&engine));
  }

  struct Stream {
    std::vector<const workload::TraceRecord*> requests;
    std::size_t next = 0;
    std::size_t node = 0;
  };
  // Mirror run_cluster_sim's routing: one stream per node.
  std::vector<Stream> streams(nodes);
  for (std::size_t s = 0; s < nodes; ++s) streams[s].node = s;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    streams[i % nodes].requests.push_back(&trace[i]);
  }

  PartitionedReport report;
  OnlineStats responses;

  std::function<void(std::size_t)> issue = [&](std::size_t s) {
    auto& stream = streams[s];
    if (stream.next >= stream.requests.size()) return;
    const workload::TraceRecord& r = *stream.requests[stream.next];
    const std::size_t at = stream.node;
    const double issued = engine.now();

    auto finish = [&, s, issued] {
      responses.add(engine.now() - issued);
      ++streams[s].next;
      issue(s);
    };

    if (!r.is_cgi) {
      cpus[at]->submit(costs.per_request_overhead + r.service_seconds, finish);
      return;
    }

    const std::string key = "GET " + r.target;
    const std::size_t home =
        static_cast<std::size_t>(fnv1a64(key) % nodes);

    if (home == at) {
      if (stores[at]->fetch(key)) {
        ++report.local_hits;
        cpus[at]->submit(costs.per_request_overhead + costs.local_fetch_cpu,
                         finish);
        return;
      }
      ++report.misses;
      cpus[at]->submit(
          costs.per_request_overhead + costs.cgi_startup + r.service_seconds +
              costs.insert_cpu,
          [&, key, &r_ref = r, at, finish] {
            std::vector<core::EntryMeta> evicted;
            (void)stores[at]->insert(core::CacheKey{key},
                                     std::string(r_ref.response_bytes, 'x'),
                                     r_ref.service_seconds, 0, "text/html",
                                     200, &evicted);
            finish();
          });
      return;
    }

    // Remote-homed key: one network message for the lookup either way.
    ++report.network_messages;
    if (stores[home]->fetch(key)) {
      ++report.remote_hits;
      cpus[at]->submit(costs.per_request_overhead + costs.remote_fetch_cpu,
                       [&, finish] {
                         engine.schedule_in(costs.remote_fetch_latency, finish);
                       });
      return;
    }
    // Miss at the home node: execute here, then ship the result home
    // (one more message); this node keeps no copy (groupcache-style).
    ++report.misses;
    ++report.network_messages;
    cpus[at]->submit(
        costs.per_request_overhead + costs.cgi_startup + r.service_seconds +
            costs.insert_cpu,
        [&, key, &r_ref = r, home, finish] {
          engine.schedule_in(costs.remote_fetch_latency, [&, key, home,
                                                          bytes = r_ref.response_bytes,
                                                          cost = r_ref.service_seconds,
                                                          finish] {
            std::vector<core::EntryMeta> evicted;
            (void)stores[home]->insert(core::CacheKey{key},
                                       std::string(bytes, 'x'), cost, 0,
                                       "text/html", 200, &evicted);
            finish();
          });
        });
  };

  for (std::size_t s = 0; s < nodes; ++s) {
    engine.schedule_at(0.0, [&issue, s] { issue(s); });
  }
  engine.run();
  report.mean_response = responses.mean();
  return report;
}

}  // namespace

int main() {
  bench::banner("Ablation",
                "replicated directory (Swala) vs hash partitioning");

  const auto trace = workload::synthesize_request_mix(1600, 1122, 1.0, 5399);
  const auto upper = workload::hit_upper_bound(trace);
  std::printf("\n1600 requests / 1122 unique (bound %zu), cache 2000/node\n\n",
              upper);

  TablePrinter table({"# nodes", "swala hits", "swala resp (s)",
                      "swala msgs", "part. hits", "part. resp (s)",
                      "part. msgs"});
  for (const std::size_t nodes : {2, 4, 8}) {
    sim::SimConfig config;
    config.nodes = nodes;
    config.client_streams = nodes;
    config.limits = {2000, 0};
    const auto swala_report = sim::run_cluster_sim(trace, config);
    // Swala control traffic: every insert/erase broadcast goes to N-1
    // peers, plus one message per remote fetch.
    const std::uint64_t swala_msgs =
        (swala_report.cache.inserts + swala_report.cache.evictions_broadcast) *
            (nodes - 1) +
        swala_report.cache.remote_hits + swala_report.cache.false_hits;

    const auto part =
        run_partitioned(trace, nodes, 2000, config.costs);

    table.add_row({std::to_string(nodes),
                   std::to_string(swala_report.cache.hits()),
                   fmt_double(swala_report.mean_response(), 3),
                   std::to_string(swala_msgs),
                   std::to_string(part.local_hits + part.remote_hits),
                   fmt_double(part.mean_response, 3),
                   std::to_string(part.network_messages)});
    std::printf("  simulated %zu node(s), both designs...\n", nodes);
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "The trade: hash partitioning needs no directory and no broadcasts\n"
      "(its message count is per-access, Swala's per-insert), never caches\n"
      "a key twice, and is immune to false misses — but roughly (N-1)/N of\n"
      "all cache hits pay a network hop, where Swala serves everything a\n"
      "node produced itself at local-fetch cost. On 1998 LANs with 1-second\n"
      "CGIs both win big over no caching; Swala's choice minimizes hit\n"
      "latency, the later designs minimized metadata and memory overhead.\n");
  return 0;
}
