// Ablation (§4.1) — connection dispatch model.
//
// The paper's request threads "take turns listening on the main port"; the
// textbook alternative is a dedicated acceptor thread feeding a connection
// queue. Both are implemented behind SwalaServerOptions::accept_model; this
// bench drives an accept-heavy workload (connection per request, tiny
// responses) through both and compares throughput and latency.
#include "bench/bench_util.h"
#include "cgi/registry.h"
#include "server/swala_server.h"
#include "workload/webstone.h"

using namespace swala;

namespace {

workload::LoadResult drive(const net::InetAddress& addr, std::size_t clients) {
  workload::LoadOptions options;
  options.clients = clients;
  options.requests_per_client = 150;
  options.keep_alive = false;  // every request pays an accept
  return workload::run_load(addr, options,
                            [](Rng&, std::size_t) { return "/tiny.html"; });
}

}  // namespace

int main() {
  bench::banner("Ablation", "accept model: take-turns vs acceptor+queue");

  const std::string docroot = "/tmp/swala_bench_accept";
  ::system(("mkdir -p " + docroot).c_str());
  {
    FILE* f = fopen((docroot + "/tiny.html").c_str(), "w");
    if (f == nullptr) return 1;
    fputs("<html>tiny</html>", f);
    fclose(f);
  }
  auto registry = std::make_shared<cgi::HandlerRegistry>();

  TablePrinter table({"# clients", "take-turns (req/s)", "mean (us)",
                      "acceptor+queue (req/s)", "mean (us)"});
  for (const std::size_t clients : {1, 8, 24}) {
    double turns_rps = 0, turns_mean = 0, queue_rps = 0, queue_mean = 0;
    {
      server::SwalaServerOptions options;
      options.docroot = docroot;
      options.accept_model = server::AcceptModel::kTakeTurns;
      server::SwalaServer server(options, registry, nullptr);
      if (!server.start().is_ok()) return 1;
      const auto result = drive(server.address(), clients);
      turns_rps = result.throughput_rps();
      turns_mean = result.latency.mean() * 1e6;
      server.stop();
    }
    {
      server::SwalaServerOptions options;
      options.docroot = docroot;
      options.accept_model = server::AcceptModel::kAcceptorQueue;
      server::SwalaServer server(options, registry, nullptr);
      if (!server.start().is_ok()) return 1;
      const auto result = drive(server.address(), clients);
      queue_rps = result.throughput_rps();
      queue_mean = result.latency.mean() * 1e6;
      server.stop();
    }
    table.add_row({std::to_string(clients), fmt_double(turns_rps, 0),
                   fmt_double(turns_mean, 1), fmt_double(queue_rps, 0),
                   fmt_double(queue_mean, 1)});
    std::printf("  measured %zu client(s)...\n", clients);
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Take-turns avoids the queue handoff (one fewer context switch per\n"
      "connection) at the cost of serializing accepts behind a mutex; with\n"
      "short-lived 1998-style connections the models are close, which is\n"
      "why the simpler take-turns design was a reasonable choice.\n");
  return 0;
}
