// Figure 3 — "Null-CGI request response time comparison."
//
// 24 simultaneous clients repeatedly request the paper's nullcgi (a CGI
// program that does no work, <100 bytes of output) against five
// configurations:
//   Enterprise stand-in (MiniServer + fork/exec CGI)
//   HTTPd stand-in      (ForkingServer + fork/exec CGI)
//   Swala, no cache     (fork/exec CGI per request)
//   Swala, remote fetch (two nodes; cache warmed on node A, load on node B)
//   Swala, local fetch  (cache warmed and loaded on the same node)
// This measures the fork/exec call overhead that caching eliminates, and
// the extra cost of a remote vs local cache fetch.
//
// Usage: fig3_nullcgi [path-to-nullcgi]   (defaults to ./nullcgi, then the
// build-tree path compiled in).
#include "bench/bench_util.h"
#include "cgi/process.h"
#include "cgi/registry.h"
#include "cluster/local_cluster.h"
#include "http/client.h"
#include "server/baselines.h"
#include "server/swala_server.h"
#include "workload/webstone.h"

#ifndef SWALA_NULLCGI_PATH
#define SWALA_NULLCGI_PATH "./nullcgi"
#endif

using namespace swala;

namespace {

constexpr int kClients = 24;
constexpr int kRequestsPerClient = 30;

std::shared_ptr<cgi::HandlerRegistry> null_registry(const std::string& path) {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  registry->mount("/cgi-bin/null", std::make_shared<cgi::ProcessCgi>(path));
  return registry;
}

core::ManagerOptions cache_all(core::NodeId) {
  core::ManagerOptions options;
  options.limits = {100, 0};
  core::RuleDecision rule;
  rule.cacheable = true;  // no min_exec: even the null CGI is cached
  options.rules.add_rule("/cgi-bin/*", rule);
  return options;
}

double drive(const net::InetAddress& addr) {
  workload::LoadOptions options;
  options.clients = kClients;
  options.requests_per_client = kRequestsPerClient;
  options.keep_alive = false;
  auto result = workload::run_load(
      addr, options, [](Rng&, std::size_t) { return "/cgi-bin/null"; });
  return result.latency.mean();
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Figure 3", "null-CGI response time, 24 concurrent clients");
  const std::string nullcgi = argc > 1 ? argv[1] : SWALA_NULLCGI_PATH;

  TablePrinter table({"configuration", "mean response (s)"});

  {  // Enterprise stand-in: threaded server, CGI executed every time.
    server::BaselineOptions options;
    server::MiniServer server(options, null_registry(nullcgi));
    if (!server.start().is_ok()) return 1;
    table.add_row({"Enterprise (threaded, no cache)",
                   fmt_double(drive(server.address()), 5)});
    server.stop();
    std::printf("  Enterprise stand-in done\n");
  }

  {  // HTTPd stand-in: a fork per connection plus a fork per CGI.
    server::BaselineOptions options;
    server::ForkingServer server(options, null_registry(nullcgi));
    if (!server.start().is_ok()) return 1;
    table.add_row({"HTTPd (forking, no cache)",
                   fmt_double(drive(server.address()), 5)});
    server.stop();
    std::printf("  HTTPd stand-in done\n");
  }

  {  // Swala with caching disabled.
    server::SwalaServerOptions options;
    options.request_threads = 24;
    server::SwalaServer server(options, null_registry(nullcgi), nullptr);
    if (!server.start().is_ok()) return 1;
    table.add_row({"Swala, no cache", fmt_double(drive(server.address()), 5)});
    server.stop();
    std::printf("  Swala no-cache done\n");
  }

  {  // Swala remote fetch: warm node 0, load node 1.
    cluster::LocalCluster cluster(2, cache_all);
    server::SwalaServerOptions options;
    options.request_threads = 24;
    server::SwalaServer node0(options, null_registry(nullcgi),
                              &cluster.manager(0));
    server::SwalaServer node1(options, null_registry(nullcgi),
                              &cluster.manager(1));
    if (!node0.start().is_ok() || !node1.start().is_ok()) return 1;

    http::HttpClient warm(node0.address());
    auto prime = warm.get("/cgi-bin/null");
    if (!prime) return 1;
    // Wait for the insert broadcast to reach node 1.
    for (int i = 0; i < 200; ++i) {
      if (cluster.manager(1).directory().lookup("GET /cgi-bin/null")) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    table.add_row(
        {"Swala, remote cache fetch", fmt_double(drive(node1.address()), 5)});
    const auto stats = cluster.manager(1).stats();
    if (stats.remote_hits < kClients * kRequestsPerClient) {
      std::printf("  (warning: only %llu of %d requests were remote hits)\n",
                  static_cast<unsigned long long>(stats.remote_hits),
                  kClients * kRequestsPerClient);
    }
    node0.stop();
    node1.stop();
    std::printf("  Swala remote-fetch done\n");
  }

  {  // Swala local fetch.
    core::CacheManager manager(0, 1, cache_all(0), RealClock::instance());
    server::SwalaServerOptions options;
    options.request_threads = 24;
    server::SwalaServer server(options, null_registry(nullcgi), &manager);
    if (!server.start().is_ok()) return 1;
    http::HttpClient warm(server.address());
    if (!warm.get("/cgi-bin/null")) return 1;
    table.add_row(
        {"Swala, local cache fetch", fmt_double(drive(server.address()), 5)});
    server.stop();
    std::printf("  Swala local-fetch done\n");
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Paper's shape (24 clients, heavy load): Swala-no-cache is comparable\n"
      "to HTTPd and faster than Enterprise; a local fetch is far cheaper\n"
      "than executing even a null CGI; remote fetch adds only a small,\n"
      "size-independent increment over local fetch.\n");
  return 0;
}
