// Ablation — directory cooperation schemes head-to-head at scale.
//
// Swala replicates its cache directory: every insert broadcasts to all
// N-1 peers, so directory traffic grows O(n) per insert and the design
// stops scaling somewhere in the tens of nodes. This bench runs the same
// engine, cost model, caches and workload under the three cooperation
// schemes the codebase now supports:
//
//   replicated   the paper's design — broadcast every insert/erase
//   partitioned  consistent-hash ownership — one unicast kOwnerUpdate per
//                insert to the key's ring owner, lookups probe the owner
//   query        ICP-style — no directory state at all; a miss multicasts
//                a bounded kQuery sweep before executing locally
//
// and reports, per (mode, cluster size): hit ratio, mean response, and
// directory traffic split into *update* frames/bytes (insert/erase
// propagation — the part that must not grow with n) and *query*
// frames/bytes (miss-time probes — the price the stateless modes pay
// instead). Frames and bytes use real encoded wire sizes.
//
// Human-readable table goes to stderr; stdout is machine-readable JSON
// (the BENCH_PR7.json trajectory and CI's bench-smoke gate):
//   ablation_directory_modes [--smoke]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"

using namespace swala;

namespace {

struct Cell {
  std::string mode;
  std::size_t nodes = 0;
  sim::SimReport report;
};

const char* mode_name(core::DirectoryMode mode) {
  return core::directory_mode_name(mode);
}

double per_insert(std::uint64_t total, std::uint64_t inserts) {
  return inserts ? static_cast<double>(total) / static_cast<double>(inserts)
                 : 0.0;
}

double hit_ratio(const core::ManagerStats& cache) {
  return cache.lookups
             ? static_cast<double>(cache.hits()) /
                   static_cast<double>(cache.lookups)
             : 0.0;
}

Cell run_cell(const workload::Trace& trace, core::DirectoryMode mode,
              std::size_t nodes) {
  sim::SimConfig config;
  config.nodes = nodes;
  config.client_streams = nodes;  // one closed-loop stream per node (§5.2)
  config.limits = {2000, 0};
  config.directory_mode = mode;
  Cell cell;
  cell.mode = mode_name(mode);
  cell.nodes = nodes;
  cell.report = sim::run_cluster_sim(trace, config);
  return cell;
}

void emit_cell_json(const Cell& cell, bool last) {
  const auto& r = cell.report;
  std::printf(
      "    {\"mode\": \"%s\", \"nodes\": %zu, \"requests\": %llu,\n"
      "     \"hit_ratio\": %.4f, \"mean_response_s\": %.4f,\n"
      "     \"inserts\": %llu,\n"
      "     \"dir_update_frames\": %llu, \"dir_update_bytes\": %llu,\n"
      "     \"dir_query_frames\": %llu, \"dir_query_bytes\": %llu,\n"
      "     \"update_frames_per_insert\": %.3f,"
      " \"update_bytes_per_insert\": %.1f}%s\n",
      cell.mode.c_str(), cell.nodes,
      static_cast<unsigned long long>(r.requests_completed),
      hit_ratio(r.cache), r.mean_response(),
      static_cast<unsigned long long>(r.cache.inserts),
      static_cast<unsigned long long>(r.dir_update_frames),
      static_cast<unsigned long long>(r.dir_update_bytes),
      static_cast<unsigned long long>(r.dir_query_frames),
      static_cast<unsigned long long>(r.dir_query_bytes),
      per_insert(r.dir_update_frames, r.cache.inserts),
      per_insert(r.dir_update_bytes, r.cache.inserts), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::fprintf(stderr,
               "Ablation — replicated vs partitioned vs query directory "
               "cooperation%s\n",
               smoke ? " (smoke)" : "");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{8}
            : std::vector<std::size_t>{64, 128, 256, 512};
  constexpr core::DirectoryMode kModes[] = {core::DirectoryMode::kReplicated,
                                            core::DirectoryMode::kPartitioned,
                                            core::DirectoryMode::kQuery};

  TablePrinter table({"nodes", "mode", "hit ratio", "resp (s)", "upd fr/ins",
                      "upd B/ins", "query frames", "query bytes"});
  std::vector<Cell> cells;
  for (const std::size_t nodes : sizes) {
    // Calibrated ADL mix scaled with the cluster: ~48 requests per node,
    // ~70% unique keys, so every size has the same per-node load and a
    // comparable ceiling on the cooperative hit ratio.
    const std::size_t requests = 48 * nodes;
    const std::size_t unique = (requests * 7) / 10;
    const auto trace = workload::synthesize_request_mix(
        requests, unique, 1.0, 5399 + static_cast<unsigned>(nodes));
    for (const auto mode : kModes) {
      cells.push_back(run_cell(trace, mode, nodes));
      const Cell& c = cells.back();
      table.add_row(
          {std::to_string(c.nodes), c.mode,
           fmt_double(hit_ratio(c.report.cache), 3),
           fmt_double(c.report.mean_response(), 3),
           fmt_double(per_insert(c.report.dir_update_frames,
                                 c.report.cache.inserts), 2),
           fmt_double(per_insert(c.report.dir_update_bytes,
                                 c.report.cache.inserts), 1),
           std::to_string(c.report.dir_query_frames),
           std::to_string(c.report.dir_query_bytes)});
      std::fprintf(stderr, "  %zu nodes, %s: done\n", nodes, c.mode.c_str());
    }
  }
  std::fprintf(stderr, "\n%s\n", table.render().c_str());

  // ---- JSON (stdout) ----
  std::printf("{\n");
  std::printf(
      "  \"description\": \"Directory cooperation modes head-to-head over "
      "the calibrated-ADL simulator: replicated broadcast (the paper), "
      "consistent-hash partitioned ownership (kOwnerUpdate unicast), and "
      "ICP-style query-on-miss (no directory state). Update traffic is "
      "insert/erase propagation; query traffic is miss-time probes. "
      "Frames/bytes are real encoded wire sizes.\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    emit_cell_json(cells[i], i + 1 == cells.size());
  }
  std::printf("  ],\n");

  // Head-to-head gate at the largest size: the tentpole's claim is that
  // both new modes cut update traffic >= 10x at 256 nodes while staying
  // within 5 points of replicated's hit ratio.
  const std::size_t gate_nodes = sizes.back() == 512 ? 256 : sizes.back();
  const Cell* repl = nullptr;
  const Cell* part = nullptr;
  const Cell* query = nullptr;
  for (const auto& c : cells) {
    if (c.nodes != gate_nodes) continue;
    if (c.mode == "replicated") repl = &c;
    if (c.mode == "partitioned") part = &c;
    if (c.mode == "query") query = &c;
  }
  if (repl && part && query) {
    const double repl_fpi =
        per_insert(repl->report.dir_update_frames, repl->report.cache.inserts);
    const double repl_bpi =
        per_insert(repl->report.dir_update_bytes, repl->report.cache.inserts);
    const double part_fpi =
        per_insert(part->report.dir_update_frames, part->report.cache.inserts);
    const double part_bpi =
        per_insert(part->report.dir_update_bytes, part->report.cache.inserts);
    std::printf("  \"gate\": {\n");
    std::printf("    \"nodes\": %zu,\n", gate_nodes);
    std::printf("    \"replicated_update_frames_per_insert\": %.3f,\n",
                repl_fpi);
    std::printf("    \"partitioned_update_frames_per_insert\": %.3f,\n",
                part_fpi);
    std::printf("    \"query_update_frames\": %llu,\n",
                static_cast<unsigned long long>(
                    query->report.dir_update_frames));
    std::printf("    \"partitioned_frames_cut_x\": %.1f,\n",
                part_fpi > 0 ? repl_fpi / part_fpi : 0.0);
    std::printf("    \"partitioned_bytes_cut_x\": %.1f,\n",
                part_bpi > 0 ? repl_bpi / part_bpi : 0.0);
    std::printf("    \"replicated_hit_ratio\": %.4f,\n",
                hit_ratio(repl->report.cache));
    std::printf("    \"partitioned_hit_ratio\": %.4f,\n",
                hit_ratio(part->report.cache));
    std::printf("    \"query_hit_ratio\": %.4f\n",
                hit_ratio(query->report.cache));
    std::printf("  }\n");
  } else {
    std::printf("  \"gate\": null\n");
  }
  std::printf("}\n");
  return 0;
}
