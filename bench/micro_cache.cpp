// Micro-benchmarks (google-benchmark) for the hot operations on a request
// thread's critical path: cache store insert/fetch, replacement-policy
// bookkeeping, HTTP parsing, URI parsing, and wire-protocol codec.
#include <benchmark/benchmark.h>

#include "cluster/message.h"
#include "common/clock.h"
#include "core/store.h"
#include "http/parser.h"

using namespace swala;

namespace {

ManualClock g_clock(0);

void BM_StoreInsert(benchmark::State& state) {
  const auto policy = static_cast<core::PolicyKind>(state.range(0));
  core::CacheStore store({100000, 0}, policy,
                         std::make_unique<core::MemoryBackend>(), &g_clock, 0);
  const std::string data(2048, 'x');
  std::vector<core::EntryMeta> evicted;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto key =
        core::CacheKey::make("GET", "/cgi-bin/q?i=" + std::to_string(i++));
    benchmark::DoNotOptimize(
        store.insert(key, data, 1.0, 0, "text/html", 200, &evicted));
    evicted.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreInsert)
    ->Arg(static_cast<int>(core::PolicyKind::kLru))
    ->Arg(static_cast<int>(core::PolicyKind::kGreedyDualSize));

void BM_StoreInsertWithEviction(benchmark::State& state) {
  // Steady-state churn: a full cache where every insert evicts.
  core::CacheStore store({512, 0}, core::PolicyKind::kLru,
                         std::make_unique<core::MemoryBackend>(), &g_clock, 0);
  const std::string data(2048, 'x');
  std::vector<core::EntryMeta> evicted;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto key =
        core::CacheKey::make("GET", "/cgi-bin/q?i=" + std::to_string(i++));
    benchmark::DoNotOptimize(
        store.insert(key, data, 1.0, 0, "text/html", 200, &evicted));
    evicted.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreInsertWithEviction);

void BM_StoreFetchHit(benchmark::State& state) {
  core::CacheStore store({4096, 0}, core::PolicyKind::kLru,
                         std::make_unique<core::MemoryBackend>(), &g_clock, 0);
  const std::string data(2048, 'x');
  std::vector<core::EntryMeta> evicted;
  constexpr int kEntries = 1000;
  for (int i = 0; i < kEntries; ++i) {
    const auto key =
        core::CacheKey::make("GET", "/cgi-bin/q?i=" + std::to_string(i));
    (void)store.insert(key, data, 1.0, 0, "text/html", 200, &evicted);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "GET /cgi-bin/q?i=" + std::to_string(i++ % kEntries);
    benchmark::DoNotOptimize(store.fetch(key));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreFetchHit);

void BM_RequestParse(benchmark::State& state) {
  const std::string wire =
      "GET /cgi-bin/adl/query?session=browse&qid=1234 HTTP/1.1\r\n"
      "Host: swala.cs.ucsb.edu\r\n"
      "User-Agent: WebStone/2.0\r\n"
      "Accept: */*\r\n"
      "\r\n";
  for (auto _ : state) {
    http::RequestParser parser;
    benchmark::DoNotOptimize(parser.feed(wire));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_RequestParse);

void BM_UriParse(benchmark::State& state) {
  const std::string target = "/cgi-bin/adl/query?session=browse&qid=1234";
  for (auto _ : state) {
    http::Uri uri;
    benchmark::DoNotOptimize(http::parse_uri(target, &uri));
  }
}
BENCHMARK(BM_UriParse);

void BM_MessageEncodeInsert(benchmark::State& state) {
  core::EntryMeta meta;
  meta.key = "GET /cgi-bin/adl/query?session=browse&qid=1234";
  meta.owner = 3;
  meta.size_bytes = 4096;
  meta.cost_seconds = 1.5;
  meta.content_type = "text/html";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::encode_message(cluster::Message::insert(3, meta)));
  }
}
BENCHMARK(BM_MessageEncodeInsert);

void BM_MessageDecodeInsert(benchmark::State& state) {
  core::EntryMeta meta;
  meta.key = "GET /cgi-bin/adl/query?session=browse&qid=1234";
  meta.owner = 3;
  const std::string frame =
      cluster::encode_message(cluster::Message::insert(3, meta));
  const std::string_view payload = std::string_view(frame).substr(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::decode_message(payload));
  }
}
BENCHMARK(BM_MessageDecodeInsert);

}  // namespace

BENCHMARK_MAIN();
