// Micro-benchmarks (google-benchmark) for the hot operations on a request
// thread's critical path: cache store insert/fetch, replacement-policy
// bookkeeping, HTTP parsing, URI parsing, and wire-protocol codec.
//
// Besides the google-benchmark suite, `--concurrent_hits` runs a
// multi-threaded steady-state hit benchmark against a disk-backed store and
// prints one machine-readable JSON object (the BENCH_PR4.json trajectory and
// the CI bench-smoke job consume it):
//   micro_cache --concurrent_hits [--threads=8] [--seconds=2]
//               [--entries=512] [--blob_bytes=8192] [--hot_bytes=N]
// --hot_bytes defaults to twice the working set; pass 0 to disable the
// hot-blob cache and measure the pure pinned-disk path.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

#include "cluster/message.h"
#include "common/clock.h"
#include "core/store.h"
#include "http/parser.h"

using namespace swala;

namespace {

ManualClock g_clock(0);

void BM_StoreInsert(benchmark::State& state) {
  const auto policy = static_cast<core::PolicyKind>(state.range(0));
  core::CacheStore store({100000, 0}, policy,
                         std::make_unique<core::MemoryBackend>(), &g_clock, 0);
  const std::string data(2048, 'x');
  std::vector<core::EntryMeta> evicted;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto key =
        core::CacheKey::make("GET", "/cgi-bin/q?i=" + std::to_string(i++));
    benchmark::DoNotOptimize(
        store.insert(key, data, 1.0, 0, "text/html", 200, &evicted));
    evicted.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreInsert)
    ->Arg(static_cast<int>(core::PolicyKind::kLru))
    ->Arg(static_cast<int>(core::PolicyKind::kGreedyDualSize));

void BM_StoreInsertWithEviction(benchmark::State& state) {
  // Steady-state churn: a full cache where every insert evicts.
  core::CacheStore store({512, 0}, core::PolicyKind::kLru,
                         std::make_unique<core::MemoryBackend>(), &g_clock, 0);
  const std::string data(2048, 'x');
  std::vector<core::EntryMeta> evicted;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto key =
        core::CacheKey::make("GET", "/cgi-bin/q?i=" + std::to_string(i++));
    benchmark::DoNotOptimize(
        store.insert(key, data, 1.0, 0, "text/html", 200, &evicted));
    evicted.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreInsertWithEviction);

void BM_StoreFetchHit(benchmark::State& state) {
  core::CacheStore store({4096, 0}, core::PolicyKind::kLru,
                         std::make_unique<core::MemoryBackend>(), &g_clock, 0);
  const std::string data(2048, 'x');
  std::vector<core::EntryMeta> evicted;
  constexpr int kEntries = 1000;
  for (int i = 0; i < kEntries; ++i) {
    const auto key =
        core::CacheKey::make("GET", "/cgi-bin/q?i=" + std::to_string(i));
    (void)store.insert(key, data, 1.0, 0, "text/html", 200, &evicted);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "GET /cgi-bin/q?i=" + std::to_string(i++ % kEntries);
    benchmark::DoNotOptimize(store.fetch(key));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreFetchHit);

void BM_RequestParse(benchmark::State& state) {
  const std::string wire =
      "GET /cgi-bin/adl/query?session=browse&qid=1234 HTTP/1.1\r\n"
      "Host: swala.cs.ucsb.edu\r\n"
      "User-Agent: WebStone/2.0\r\n"
      "Accept: */*\r\n"
      "\r\n";
  for (auto _ : state) {
    http::RequestParser parser;
    benchmark::DoNotOptimize(parser.feed(wire));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_RequestParse);

void BM_UriParse(benchmark::State& state) {
  const std::string target = "/cgi-bin/adl/query?session=browse&qid=1234";
  for (auto _ : state) {
    http::Uri uri;
    benchmark::DoNotOptimize(http::parse_uri(target, &uri));
  }
}
BENCHMARK(BM_UriParse);

void BM_MessageEncodeInsert(benchmark::State& state) {
  core::EntryMeta meta;
  meta.key = "GET /cgi-bin/adl/query?session=browse&qid=1234";
  meta.owner = 3;
  meta.size_bytes = 4096;
  meta.cost_seconds = 1.5;
  meta.content_type = "text/html";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::encode_message(cluster::Message::insert(3, meta)));
  }
}
BENCHMARK(BM_MessageEncodeInsert);

void BM_MessageDecodeInsert(benchmark::State& state) {
  core::EntryMeta meta;
  meta.key = "GET /cgi-bin/adl/query?session=browse&qid=1234";
  meta.owner = 3;
  const std::string frame =
      cluster::encode_message(cluster::Message::insert(3, meta));
  const std::string_view payload = std::string_view(frame).substr(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::decode_message(payload));
  }
}
BENCHMARK(BM_MessageDecodeInsert);

// ---- multi-threaded concurrent-hit mode (machine-readable JSON) ----

std::uint64_t flag_u64(int argc, char** argv, std::string_view name,
                       std::uint64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() > prefix.size() && arg.compare(0, prefix.size(), prefix) == 0) {
      return std::strtoull(arg.data() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

int run_concurrent_hits(int argc, char** argv) {
  const std::size_t threads =
      static_cast<std::size_t>(flag_u64(argc, argv, "--threads", 8));
  const double seconds =
      static_cast<double>(flag_u64(argc, argv, "--seconds", 2));
  const std::size_t entries =
      static_cast<std::size_t>(flag_u64(argc, argv, "--entries", 512));
  const std::size_t blob_bytes =
      static_cast<std::size_t>(flag_u64(argc, argv, "--blob_bytes", 8192));
  const std::uint64_t hot_bytes = flag_u64(
      argc, argv, "--hot_bytes",
      static_cast<std::uint64_t>(entries) * blob_bytes * 2);

  char dir_template[] = "/tmp/swala-bench-cache-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string dir = dir_template;

  {
    core::StoreLimits limits;
    limits.max_entries = entries * 2;
    limits.max_bytes = 0;
    limits.hot_bytes = hot_bytes;
    core::CacheStore store(limits, core::PolicyKind::kLru,
                           std::make_unique<core::DiskBackend>(dir), &g_clock,
                           0);
    const std::string data(blob_bytes, 'x');
    std::vector<core::EntryMeta> evicted;
    for (std::size_t i = 0; i < entries; ++i) {
      const auto key =
          core::CacheKey::make("GET", "/cgi-bin/q?i=" + std::to_string(i));
      (void)store.insert(key, data, 1.0, 0, "text/html", 200, &evicted);
    }

    std::vector<std::string> keys;
    keys.reserve(entries);
    for (std::size_t i = 0; i < entries; ++i) {
      keys.push_back("GET /cgi-bin/q?i=" + std::to_string(i));
    }

    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> counts(threads, 0);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        std::uint64_t n = 0;
        // Offset start positions so the threads do not convoy on one key.
        std::size_t i = t * (entries / (threads ? threads : 1));
        while (!stop.load(std::memory_order_relaxed)) {
          auto hit = store.fetch(keys[i % entries]);
          if (!hit) std::abort();  // every fetch must hit in steady state
          ++n;
          ++i;
        }
        counts[t] = n;
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : pool) th.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    std::uint64_t total = 0;
    for (const auto n : counts) total += n;
    const auto stats = store.stats();

    std::printf(
        "{\"bench\": \"concurrent_hits\", \"threads\": %zu, \"entries\": %zu, "
        "\"blob_bytes\": %zu, \"hot_bytes\": %llu, \"elapsed_seconds\": %.3f, "
        "\"total_hits\": %llu, \"hits_per_second\": %.0f, "
        "\"hot_hits\": %llu, \"hot_misses\": %llu}\n",
        threads, entries, blob_bytes,
        static_cast<unsigned long long>(hot_bytes), elapsed,
        static_cast<unsigned long long>(total),
        elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0,
        static_cast<unsigned long long>(stats.hot_hits),
        static_cast<unsigned long long>(stats.hot_misses));
  }

  // Best-effort cleanup; the store's backend unlinks its own files.
  (void)::rmdir(dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--concurrent_hits") {
      return run_concurrent_hits(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
