// Ablation — membership churn under load (PR10 tentpole).
//
// A 64-node cluster serves the calibrated ADL mix while the membership
// changes underneath it: one node starts *outside* the active set and joins
// at 30% of the trace, another decommissions gracefully at 60%. The same
// scenario runs under all three directory cooperation schemes and is
// compared against a no-churn baseline of the same trace:
//
//   * hit-ratio retention — churn must cost at most a few points, because
//     a graceful leave hands its cached state to ring successors instead of
//     throwing it away, and a join migrates only the remapped key ranges.
//   * handoff + transition traffic vs a full resync — the targeted
//     migration must stay well below re-announcing every resident entry.
//   * zero committed-entry loss — every key resident on the leaver at
//     decommission time must survive on some remaining node.
//   * the post-churn consistency oracle over the final membership.
//
// Human-readable table goes to stderr; stdout is machine-readable JSON
// (CI's bench-smoke gate):
//   ablation_churn [--smoke]
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"

using namespace swala;

namespace {

struct ModeResult {
  std::string mode;
  sim::SimReport baseline;  ///< static membership, same trace
  sim::SimReport churn;     ///< one join + one decommission under load
  std::size_t committed = 0;  ///< leaver's resident entries at leave time
  std::size_t lost = 0;       ///< of those, missing from every survivor
};

double hit_ratio(const core::ManagerStats& cache) {
  return cache.lookups
             ? static_cast<double>(cache.hits()) /
                   static_cast<double>(cache.lookups)
             : 0.0;
}

ModeResult run_mode(const workload::Trace& trace, core::DirectoryMode mode,
                    std::size_t nodes) {
  sim::SimConfig config;
  config.nodes = nodes;
  config.client_streams = nodes;  // one closed-loop stream per node (§5.2)
  config.limits = {100000, 0};
  config.directory_mode = mode;

  ModeResult result;
  result.mode = core::directory_mode_name(mode);
  result.baseline = sim::run_cluster_sim(trace, config);

  // Churn: the highest id joins at 30%, node 0 leaves at 60%. Uncapped
  // handoff so the zero-loss check is exact.
  config.join_node = static_cast<core::NodeId>(nodes - 1);
  config.join_after_fraction = 0.3;
  config.decommission_node = 0;
  config.decommission_after_fraction = 0.6;
  config.handoff_batch_bytes = 0;
  result.churn = sim::run_cluster_sim(trace, config);

  // Zero-loss audit: every entry the leaver held must survive on some
  // remaining node (the leaver's own residual store does not count).
  std::unordered_set<std::string> survivors;
  for (std::size_t i = 1; i < result.churn.node_keys.size(); ++i) {
    for (const auto& key : result.churn.node_keys[i]) survivors.insert(key);
  }
  result.committed = result.churn.decommissioned_keys.size();
  for (const auto& key : result.churn.decommissioned_keys) {
    if (survivors.count(key) == 0) ++result.lost;
  }
  return result;
}

/// Frames a naive rebuild would send: every surviving resident entry
/// re-announced once. The targeted migration must stay well below this.
std::uint64_t full_resync_reference(const sim::SimReport& report) {
  std::uint64_t entries = 0;
  for (const auto& keys : report.node_keys) entries += keys.size();
  return entries;
}

void emit_mode_json(const ModeResult& r, bool last) {
  std::printf(
      "    {\"mode\": \"%s\",\n"
      "     \"baseline_hit_ratio\": %.4f, \"churn_hit_ratio\": %.4f,\n"
      "     \"membership_transitions\": %llu,\n"
      "     \"handoff_frames\": %llu, \"handoff_bytes\": %llu,"
      " \"handoffs_adopted\": %llu,\n"
      "     \"transition_frames\": %llu, \"transition_bytes\": %llu,\n"
      "     \"full_resync_frames_reference\": %llu,\n"
      "     \"committed_entries\": %zu, \"committed_lost\": %zu,\n"
      "     \"churn_consistent\": %s}%s\n",
      r.mode.c_str(), hit_ratio(r.baseline.cache), hit_ratio(r.churn.cache),
      static_cast<unsigned long long>(r.churn.membership_transitions),
      static_cast<unsigned long long>(r.churn.handoff_frames),
      static_cast<unsigned long long>(r.churn.handoff_bytes),
      static_cast<unsigned long long>(r.churn.handoffs_adopted),
      static_cast<unsigned long long>(r.churn.transition_frames),
      static_cast<unsigned long long>(r.churn.transition_bytes),
      static_cast<unsigned long long>(full_resync_reference(r.churn)),
      r.committed, r.lost, r.churn.churn_consistent ? "true" : "false",
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::size_t nodes = smoke ? 8 : 64;
  std::fprintf(stderr,
               "Ablation — membership churn under load (%zu nodes, one join "
               "+ one graceful decommission)%s\n",
               nodes, smoke ? " (smoke)" : "");

  // Same per-node load as the directory-mode ablation; ~60% unique keys so
  // the cooperative hit ratio has room to show retention.
  const std::size_t requests = 48 * nodes;
  const std::size_t unique = (requests * 6) / 10;
  const auto trace = workload::synthesize_request_mix(
      requests, unique, 1.0, 5399 + static_cast<unsigned>(nodes));

  constexpr core::DirectoryMode kModes[] = {core::DirectoryMode::kReplicated,
                                            core::DirectoryMode::kPartitioned,
                                            core::DirectoryMode::kQuery};

  TablePrinter table({"mode", "hit (base)", "hit (churn)", "drop (pts)",
                      "handoff fr", "transition fr", "resync ref", "lost",
                      "oracle"});
  std::vector<ModeResult> results;
  for (const auto mode : kModes) {
    results.push_back(run_mode(trace, mode, nodes));
    const ModeResult& r = results.back();
    table.add_row(
        {r.mode, fmt_double(hit_ratio(r.baseline.cache), 3),
         fmt_double(hit_ratio(r.churn.cache), 3),
         fmt_double(100.0 * (hit_ratio(r.baseline.cache) -
                             hit_ratio(r.churn.cache)), 1),
         std::to_string(r.churn.handoff_frames),
         std::to_string(r.churn.transition_frames),
         std::to_string(full_resync_reference(r.churn)),
         std::to_string(r.lost),
         r.churn.churn_consistent ? "pass" : "FAIL"});
    std::fprintf(stderr, "  %s: done\n", r.mode.c_str());
    if (!r.churn.churn_consistent) {
      std::fprintf(stderr, "  %s oracle findings:\n%s", r.mode.c_str(),
                   r.churn.churn_report.c_str());
    }
  }
  std::fprintf(stderr, "\n%s\n", table.render().c_str());

  // ---- JSON (stdout) ----
  std::printf("{\n");
  std::printf(
      "  \"description\": \"Membership churn under load: one staged join "
      "and one graceful decommission against a %zu-node cluster replaying "
      "the calibrated ADL mix, under all three directory modes. Retention "
      "compares the churn run's hit ratio to a static-membership baseline; "
      "handoff/transition traffic (real encoded frame sizes) is compared "
      "against a full re-announce of every resident entry; the zero-loss "
      "audit requires every entry the leaver held to survive on a "
      "remaining node.\",\n",
      nodes);
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"nodes\": %zu,\n", nodes);
  std::printf("  \"modes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    emit_mode_json(results[i], i + 1 == results.size());
  }
  std::printf("  ],\n");

  // Gate summary: the CI bench-smoke job asserts on these.
  double max_drop = 0.0;
  std::size_t total_lost = 0;
  bool all_consistent = true;
  bool all_transitions = true;
  for (const auto& r : results) {
    const double drop =
        hit_ratio(r.baseline.cache) - hit_ratio(r.churn.cache);
    if (drop > max_drop) max_drop = drop;
    total_lost += r.lost;
    all_consistent = all_consistent && r.churn.churn_consistent;
    all_transitions = all_transitions && r.churn.membership_transitions == 2;
  }
  const ModeResult& part = results[1];
  const std::uint64_t part_migration =
      part.churn.handoff_frames + part.churn.transition_frames;
  std::printf("  \"gate\": {\n");
  std::printf("    \"max_hit_ratio_drop\": %.4f,\n", max_drop);
  std::printf("    \"total_committed_lost\": %zu,\n", total_lost);
  std::printf("    \"all_modes_consistent\": %s,\n",
              all_consistent ? "true" : "false");
  std::printf("    \"all_modes_two_transitions\": %s,\n",
              all_transitions ? "true" : "false");
  std::printf("    \"partitioned_migration_frames\": %llu,\n",
              static_cast<unsigned long long>(part_migration));
  std::printf("    \"partitioned_handoffs_adopted\": %llu,\n",
              static_cast<unsigned long long>(part.churn.handoffs_adopted));
  std::printf("    \"full_resync_frames_reference\": %llu\n",
              static_cast<unsigned long long>(
                  full_resync_reference(part.churn)));
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
