// Table 2 — "File fetch average response time in seconds measured using
// WebStone."
//
// The paper drives NCSA HTTPd, Netscape Enterprise and Swala with WebStone's
// standard file mix at increasing client counts. Neither 1998 binary is
// available, so we substitute cost-structure-faithful baselines (DESIGN.md):
//   HTTPd      -> ForkingServer (process per connection)
//   Enterprise -> MiniServer (threaded, no cache)
//   Swala      -> SwalaServer (request-thread pool)
// All three share the same HTTP handling code, so the measured differences
// isolate the concurrency architecture — the variable the paper's Table 2
// is about. Expectation: Swala ≈ MiniServer, both well ahead of the forking
// server, with the gap growing with concurrency.
#include <filesystem>

#include "bench/bench_util.h"
#include "cgi/registry.h"
#include "server/baselines.h"
#include "server/swala_server.h"
#include "workload/webstone.h"

using namespace swala;

namespace {

struct Row {
  int clients;
  double httpd;
  double enterprise;
  double swala;
};

workload::LoadResult drive(const net::InetAddress& addr, int clients) {
  workload::LoadOptions options;
  options.clients = static_cast<std::size_t>(clients);
  options.requests_per_client = 40;
  options.keep_alive = false;  // WebStone-era HTTP: connection per request
  options.seed = 1998;
  return workload::run_webstone_load(addr, options);
}

}  // namespace

int main() {
  bench::banner("Table 2", "file-fetch mean response time (WebStone mix)");
  bench::note(
      "baselines are stand-ins with the originals' cost structure "
      "(ForkingServer=HTTPd, MiniServer=Enterprise); see DESIGN.md");

  const std::string docroot = "/tmp/swala_bench_webstone";
  std::filesystem::remove_all(docroot);
  auto files = workload::make_webstone_docroot(docroot);
  if (!files) {
    std::fprintf(stderr, "docroot setup failed: %s\n",
                 files.status().to_string().c_str());
    return 1;
  }

  auto registry = std::make_shared<cgi::HandlerRegistry>();  // static only
  std::vector<Row> rows;
  for (const int clients : {2, 4, 8, 16, 24}) {
    Row row{clients, 0, 0, 0};
    {
      server::BaselineOptions options;
      options.docroot = docroot;
      server::ForkingServer httpd(options, registry);
      if (!httpd.start().is_ok()) return 1;
      row.httpd = drive(httpd.address(), clients).latency.mean();
      httpd.stop();
    }
    {
      server::BaselineOptions options;
      options.docroot = docroot;
      server::MiniServer enterprise(options, registry);
      if (!enterprise.start().is_ok()) return 1;
      row.enterprise = drive(enterprise.address(), clients).latency.mean();
      enterprise.stop();
    }
    {
      server::SwalaServerOptions options;
      options.docroot = docroot;
      options.request_threads = 16;
      server::SwalaServer swala(options, registry, nullptr);
      if (!swala.start().is_ok()) return 1;
      row.swala = drive(swala.address(), clients).latency.mean();
      swala.stop();
    }
    rows.push_back(row);
    std::printf("  measured %d clients...\n", clients);
  }

  std::printf("\nMean response time per request (seconds):\n");
  TablePrinter table({"# clients", "HTTPd (forking)", "Enterprise (threaded)",
                      "Swala", "Swala vs HTTPd"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.clients), fmt_double(row.httpd, 5),
                   fmt_double(row.enterprise, 5), fmt_double(row.swala, 5),
                   fmt_double(row.httpd / row.swala, 1) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper's shape: Swala 2-7x faster than HTTPd; Enterprise\n"
              "slightly faster at low client counts, slightly slower at\n"
              "high counts.\n");
  return 0;
}
