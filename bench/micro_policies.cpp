// Ablation (§3) — replacement-policy comparison.
//
// The paper implements five replacement methods in Swala and notes that
// "more advanced replacement methods can alleviate some of the problem" of
// threshold selection by keeping the most valuable requests (execution
// time, frequency, recency, size) cached. This sweep replays the ADL-like
// trace through every policy at several cache sizes and reports the hits
// and the execution time the cache saved.
#include "bench/bench_util.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"

using namespace swala;

int main() {
  bench::banner("Ablation", "five replacement policies x cache sizes");

  workload::AdlOptions options;
  options.total_requests = 30000;
  const auto trace = workload::synthesize_adl_trace(options);
  const auto upper = workload::hit_upper_bound(trace);
  std::printf("\ntrace: %zu requests, hit upper bound %zu\n\n", trace.size(),
              upper);

  const core::PolicyKind kPolicies[] = {
      core::PolicyKind::kLru, core::PolicyKind::kLfu, core::PolicyKind::kFifo,
      core::PolicyKind::kSize, core::PolicyKind::kGreedyDualSize};

  for (const std::uint64_t entries : {50u, 200u, 800u}) {
    sim::SimConfig nocache;
    nocache.nodes = 2;
    nocache.client_streams = 8;
    nocache.caching = false;
    const auto base = sim::run_cluster_sim(trace, nocache);

    std::printf("cache size %llu entries/node, 2 nodes:\n",
                static_cast<unsigned long long>(entries));
    TablePrinter table({"policy", "hits", "% of bound", "mean resp (s)",
                        "sim time saved (s)"});
    for (const auto policy : kPolicies) {
      sim::SimConfig config = nocache;
      config.caching = true;
      config.limits = {entries, 0};
      config.policy = policy;
      const auto report = sim::run_cluster_sim(trace, config);
      table.add_row(
          {core::policy_name(policy), std::to_string(report.cache.hits()),
           fmt_double(100.0 * static_cast<double>(report.cache.hits()) /
                          static_cast<double>(upper),
                      1),
           fmt_double(report.mean_response(), 3),
           fmt_double(base.sim_seconds - report.sim_seconds, 0)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "Cost-aware GreedyDual-Size dominates at small sizes: it keeps the\n"
      "expensive spatial queries (the ones worth the most saved seconds)\n"
      "while LRU/FIFO treat a 100 s query and a 0.1 s query identically.\n");
  return 0;
}
