// Shared helpers for the experiment harnesses: paper-style table output and
// a banner that ties each binary to the table/figure it reproduces.
#pragma once

#include <cstdio>
#include <string>

#include "common/stats.h"

namespace swala::bench {

inline void banner(const char* experiment_id, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("Paper: Cooperative Caching of Dynamic Content on a Distributed\n");
  std::printf("       Web Server (Holmedahl, Smith, Yang; HPDC 1998)\n");
  std::printf("==============================================================\n");
}

inline void note(const char* text) { std::printf("NOTE: %s\n", text); }

}  // namespace swala::bench
