// Shared driver for Tables 5 and 6: stand-alone vs cooperative hit ratios
// on the §5.3 workload (1600 requests, 1122 unique) across group sizes.
#pragma once

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"

namespace swala::bench {

inline void run_hitratio_experiment(const char* experiment_id,
                                    std::uint64_t cache_entries) {
  char description[128];
  std::snprintf(description, sizeof(description),
                "hit ratios, stand-alone vs cooperative, cache size %llu",
                static_cast<unsigned long long>(cache_entries));
  banner(experiment_id, description);

  // The paper's workload: 1,600 requests, 1,122 unique.
  const auto trace = workload::synthesize_request_mix(1600, 1122, 1.0, /*seed=*/5399);
  const auto upper = workload::hit_upper_bound(trace);
  std::printf("\n1600 requests, 1122 unique -> hit upper bound %zu\n\n", upper);

  TablePrinter table({"# nodes", "stand-alone hits", "coop hits",
                      "stand-alone %", "coop %", "false misses"});
  for (const std::size_t nodes : {1, 2, 4, 6, 8}) {
    sim::SimConfig config;
    config.nodes = nodes;
    config.client_streams = nodes;  // one closed-loop client per node
    config.limits = {cache_entries, 0};
    config.min_exec_seconds = 0.0;

    sim::SimConfig standalone = config;
    standalone.cooperative = false;

    const auto coop = sim::run_cluster_sim(trace, config);
    const auto stand = sim::run_cluster_sim(trace, standalone);

    const auto pct = [&](std::uint64_t hits) {
      return fmt_double(100.0 * static_cast<double>(hits) /
                            static_cast<double>(upper),
                        1);
    };
    table.add_row({std::to_string(nodes),
                   nodes == 1 ? "n/a" : std::to_string(stand.cache.hits()),
                   std::to_string(coop.cache.hits()),
                   nodes == 1 ? "n/a" : pct(stand.cache.hits()),
                   pct(coop.cache.hits()),
                   std::to_string(coop.cache.false_misses)});
    std::printf("  simulated %zu node(s)...\n", nodes);
  }
  std::printf("\n%s\n", table.render().c_str());
}

}  // namespace swala::bench
