// Micro-measurement — remote-fetch latency, pooled vs per-fetch connections.
//
// The 1998 Swala opened a TCP connection per remote cache fetch; this
// implementation adds a per-peer connection pool (GroupOptions::
// fetch_pool_size, 0 = original behaviour). This bench quantifies what the
// pool buys on the data channel that Figure 3's remote-fetch overhead
// travels through.
#include "bench/bench_util.h"
#include "cluster/local_cluster.h"
#include "common/stats.h"

using namespace swala;

namespace {

core::ManagerOptions cache_all(core::NodeId) {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision rule;
  rule.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", rule);
  return mo;
}

double measure(std::size_t pool_size, std::size_t fetches) {
  cluster::GroupOptions go;
  go.fetch_pool_size = pool_size;
  cluster::LocalCluster cluster(2, cache_all, RealClock::instance(), go);

  // Seed one entry at node 0.
  http::Uri uri;
  if (!http::parse_uri("/cgi-bin/payload", &uri)) return -1;
  auto lookup = cluster.manager(0).lookup(http::Method::kGet, uri);
  cgi::CgiOutput out;
  out.success = true;
  out.body = std::string(4096, 'd');
  cluster.manager(0).complete(http::Method::kGet, uri, lookup.rule, out, 1.0);

  const RealClock& clock = *RealClock::instance();
  OnlineStats stats;
  for (std::size_t i = 0; i < fetches; ++i) {
    const TimeNs start = clock.now();
    auto fetched = cluster.group(1).fetch_remote(0, "GET /cgi-bin/payload");
    if (!fetched) return -1;
    stats.add(to_seconds(clock.now() - start));
  }
  return stats.mean();
}

}  // namespace

int main() {
  bench::banner("Micro", "remote fetch: pooled vs per-fetch connections");
  constexpr std::size_t kFetches = 2000;

  const double unpooled = measure(/*pool_size=*/0, kFetches);
  const double pooled = measure(/*pool_size=*/4, kFetches);
  if (unpooled < 0 || pooled < 0) {
    std::fprintf(stderr, "measurement failed\n");
    return 1;
  }

  TablePrinter table({"mode", "mean fetch (us)", "speedup"});
  table.add_row({"connection per fetch (paper)",
                 fmt_double(unpooled * 1e6, 1), "1.0x"});
  table.add_row({"pooled connections", fmt_double(pooled * 1e6, 1),
                 fmt_double(unpooled / pooled, 1) + "x"});
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "4 KiB payload over loopback, %zu fetches per mode. The pool removes\n"
      "the TCP handshake from every fetch; on a real LAN (where the paper's\n"
      "remote-fetch premium lived) the absolute saving is larger still.\n",
      kFetches);
  return 0;
}
