// Ablation (§3) — choosing the caching threshold.
//
// "If we cache too many short requests, we risk having a working set that
// exceeds our cache size, resulting in thrashing ... if we only cache very
// long requests, we will not realize as much of the benefit. The threshold
// needs to be selected carefully, based on the system workload."
//
// This sweep makes the trade-off measurable: for several insert thresholds
// (min_exec) and cache sizes, replay the ADL-like workload and report the
// inserts, hits, evictions and total saved execution time.
#include "bench/bench_util.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"

using namespace swala;

int main() {
  bench::banner("Ablation", "insert threshold vs cache size (§3 trade-off)");

  workload::AdlOptions options;
  options.total_requests = 30000;
  const auto trace = workload::synthesize_adl_trace(options);

  sim::SimConfig base;
  base.nodes = 2;
  base.client_streams = 8;
  base.policy = core::PolicyKind::kLru;

  sim::SimConfig nocache = base;
  nocache.caching = false;
  const auto baseline = sim::run_cluster_sim(trace, nocache);
  std::printf("\nbaseline (no cache): mean response %.3f s, makespan %.0f s\n\n",
              baseline.mean_response(), baseline.sim_seconds);

  for (const std::uint64_t entries : {50u, 500u}) {
    std::printf("cache size %llu entries/node:\n",
                static_cast<unsigned long long>(entries));
    TablePrinter table({"threshold (s)", "inserts", "hits", "evictions",
                        "mean resp (s)", "saved vs nocache (s)"});
    for (const double threshold : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      sim::SimConfig config = base;
      config.limits = {entries, 0};
      config.min_exec_seconds = threshold;
      const auto report = sim::run_cluster_sim(trace, config);
      table.add_row({fmt_double(threshold, 2),
                     std::to_string(report.cache.inserts),
                     std::to_string(report.cache.hits()),
                     std::to_string(report.cache.evictions_broadcast),
                     fmt_double(report.mean_response(), 3),
                     fmt_double(baseline.sim_seconds - report.sim_seconds, 0)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "Reading the table: at a small cache, low thresholds flood the cache\n"
      "with short requests (high inserts + evictions, lower saved time);\n"
      "high thresholds under-use it. The optimum moves down as the cache\n"
      "grows — exactly the workload-dependent tuning §3 describes.\n");
  return 0;
}
