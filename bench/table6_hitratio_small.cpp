// Table 6 — "Cache hit ratios, stand-alone and cooperative caching, cache
// size 20."
//
// With only 20 entries per node the caches thrash; the cooperative group
// aggregates its members' capacity (8 x 20 = 160 entries, still under 15 %
// of the 1,122 unique requests) and reaches over 70 % of the hit bound,
// where stand-alone caching stays under 40 %.
#include "bench/hitratio_common.h"

int main() {
  swala::bench::run_hitratio_experiment("Table 6", 20);
  std::printf(
      "Paper's shape: coop climbs steeply with group size (28.7 %% at one\n"
      "node to 73.6 %% at eight) because each added node contributes its\n"
      "capacity to a single logical cache; stand-alone plateaus below 40 %%.\n");
  return 0;
}
