// Figure 4 — "Multi-node performance of Swala with and without caching."
//
// The paper replays a synthetic workload with the same repetition and
// temporal locality as the ADL log (two clients x eight threads) against
// 1..8 server nodes, with cooperative caching on and off. Parallel speedup
// cannot be measured honestly on one core, so this experiment runs on the
// discrete-event cluster simulator, which reuses the production cache /
// directory code and a cost model calibrated from the paper's single-node
// measurements (see EXPERIMENTS.md).
#include "bench/bench_util.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"

using namespace swala;

int main() {
  bench::banner("Figure 4", "multi-node mean response, caching on vs off");
  bench::note("simulated substrate (single-core host); see DESIGN.md");

  workload::AdlOptions trace_options;  // the §5.2 ADL-derived workload
  const auto trace = workload::synthesize_adl_trace(trace_options);

  TablePrinter table({"# nodes", "no cache (s)", "coop cache (s)", "decrease %",
                      "speedup (no cache)", "speedup (coop)", "remote hits"});
  double base_nocache = 0.0;
  double base_coop = 0.0;
  for (const std::size_t nodes : {1, 2, 3, 4, 5, 6, 7, 8}) {
    sim::SimConfig config;
    config.nodes = nodes;
    config.client_streams = 16;  // 2 clients x 8 threads (§5.2)
    config.limits = {2000, 0};
    config.min_exec_seconds = 1.0;  // the runtime-defined insert threshold

    sim::SimConfig nocache = config;
    nocache.caching = false;

    const auto without = sim::run_cluster_sim(trace, nocache);
    const auto with_cache = sim::run_cluster_sim(trace, config);

    if (nodes == 1) {
      base_nocache = without.mean_response();
      base_coop = with_cache.mean_response();
    }
    table.add_row(
        {std::to_string(nodes), fmt_double(without.mean_response(), 3),
         fmt_double(with_cache.mean_response(), 3),
         fmt_double(100.0 * (without.mean_response() -
                             with_cache.mean_response()) /
                        without.mean_response(),
                    1),
         fmt_double(base_nocache / without.mean_response(), 2),
         fmt_double(base_coop / with_cache.mean_response(), 2),
         std::to_string(with_cache.cache.remote_hits)});
    std::printf("  simulated %zu node(s)...\n", nodes);
  }

  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "Paper's shape: cooperative caching yields a consistently lower mean\n"
      "response time (about 25%% at 8 nodes), and response time scales\n"
      "down steadily as nodes are added (paper reports ~9x at 8 nodes —\n"
      "superlinear on their memory-constrained Ultras; the simulator's CPU\n"
      "model gives the linear component).\n");
  return 0;
}
