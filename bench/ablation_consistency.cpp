// Ablation (§4.2) — the price of weak inter-node consistency.
//
// Swala's directory updates are asynchronous broadcasts; the window between
// a node caching/dropping an entry and its peers learning about it produces
// false misses (redundant executions) and false hits (fetches of deleted
// entries). The paper argues both are rare and cheap. This sweep scales the
// directory propagation delay across four orders of magnitude and measures
// the false-miss/false-hit rates and their response-time cost on the §5.3
// workload — quantifying how much headroom the asynchronous design has
// before a two-phase-commit-style strong protocol could ever pay off.
#include "bench/bench_util.h"
#include "sim/cluster_sim.h"
#include "workload/adl_synth.h"
#include "workload/analyzer.h"

using namespace swala;

int main() {
  bench::banner("Ablation", "directory propagation delay vs false misses");

  const auto trace = workload::synthesize_request_mix(1600, 1122, 1.0, 5399);
  const auto upper = workload::hit_upper_bound(trace);
  std::printf("\n1600 requests / 1122 unique, hit bound %zu, 8 nodes\n\n",
              upper);

  TablePrinter table({"propagation delay (s)", "hits", "% of bound",
                      "false misses", "false hits", "mean resp (s)"});
  for (const double delay : {0.0, 0.001, 0.003, 0.01, 0.1, 1.0, 10.0}) {
    sim::SimConfig config;
    config.nodes = 8;
    config.client_streams = 8;
    config.limits = {2000, 0};
    config.costs.directory_update_delay = delay;
    const auto report = sim::run_cluster_sim(trace, config);
    table.add_row(
        {fmt_double(delay, 3), std::to_string(report.cache.hits()),
         fmt_double(100.0 * static_cast<double>(report.cache.hits()) /
                        static_cast<double>(upper),
                    1),
         std::to_string(report.cache.false_misses),
         std::to_string(report.cache.false_hits),
         fmt_double(report.mean_response(), 3)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "At LAN-scale delays (1-10 ms) the asynchronous protocol loses almost\n"
      "nothing to an ideal instantaneous directory; only delays comparable\n"
      "to the request service time (>=1 s) erode the hit ratio — which is\n"
      "why the paper's weak-consistency design is the right trade (§4.2).\n");
  return 0;
}
