// Tests for cache warm restart: manifest save/load across store instances,
// timestamp rebasing, data-file retention and adoption, corruption
// tolerance, and manager-level restore with directory repopulation and
// peer re-broadcast.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/clock.h"
#include "core/manager.h"

namespace swala::core {
namespace {

const std::string kDir = "/tmp/swala_persist_test";
const std::string kManifest = kDir + "/manifest.txt";

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override { std::filesystem::remove_all(kDir); }

  std::unique_ptr<CacheStore> make_store(const Clock* clock) {
    return std::make_unique<CacheStore>(StoreLimits{100, 0}, PolicyKind::kLru,
                                        std::make_unique<DiskBackend>(kDir),
                                        clock, /*owner=*/0);
  }

  CacheKey key(const std::string& target) {
    return CacheKey::make("GET", target);
  }
};

TEST_F(PersistenceTest, RoundtripAcrossInstances) {
  ManualClock first_clock(from_seconds(100.0));
  {
    auto store = make_store(&first_clock);
    std::vector<EntryMeta> evicted;
    ASSERT_TRUE(store
                    ->insert(key("/a"), "alpha-data", 2.5, 0,
                             "text/html; charset=utf-8", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store
                    ->insert(key("/b"), "beta-data", 0.7, /*ttl=*/600.0,
                             "application/json", 201, &evicted)
                    .is_ok());
    ASSERT_TRUE(store->fetch(key("/a").text).has_value());  // bump stats
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }  // store destroyed; files must survive (retention marked)

  // A new process: different clock epoch entirely.
  ManualClock second_clock(from_seconds(5.0));
  auto store = make_store(&second_clock);
  auto restored = store->load_manifest(kManifest);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 2u);
  EXPECT_EQ(store->entry_count(), 2u);
  EXPECT_EQ(store->bytes_used(), 10u + 9u);

  auto a = store->fetch(key("/a").text);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->data, "alpha-data");
  EXPECT_EQ(a->meta.content_type, "text/html; charset=utf-8");
  EXPECT_DOUBLE_EQ(a->meta.cost_seconds, 2.5);
  EXPECT_EQ(a->meta.access_count, 2u);  // 1 before save + this fetch
  EXPECT_EQ(a->meta.expire_time, 0);

  auto b = store->fetch(key("/b").text);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->meta.http_status, 201);
  // TTL rebased against the new clock: expires ~600 s from now.
  const double remaining = to_seconds(b->meta.expire_time - second_clock.now());
  EXPECT_NEAR(remaining, 600.0, 1.0);
}

TEST_F(PersistenceTest, ExpiredEntriesNotSaved) {
  ManualClock clock(from_seconds(100.0));
  auto store = make_store(&clock);
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store->insert(key("/ttl"), "d", 1.0, 5.0, "t", 200, &evicted)
                  .is_ok());
  clock.advance(from_seconds(10.0));  // now expired
  ASSERT_TRUE(store->save_manifest(kManifest).is_ok());

  auto fresh = make_store(&clock);
  auto restored = fresh->load_manifest(kManifest);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), 0u);
}

TEST_F(PersistenceTest, MissingDataFileSkipped) {
  ManualClock clock(from_seconds(100.0));
  {
    auto store = make_store(&clock);
    std::vector<EntryMeta> evicted;
    ASSERT_TRUE(store->insert(key("/keep"), "kkk", 1.0, 0, "t", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store->insert(key("/lose"), "lll", 1.0, 0, "t", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }
  // Sabotage: delete one data file.
  std::size_t removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kDir)) {
    if (entry.path().filename() == "manifest.txt") continue;
    if (removed == 0) {
      std::filesystem::remove(entry.path());
      ++removed;
    }
  }
  ASSERT_EQ(removed, 1u);

  auto store = make_store(&clock);
  auto restored = store->load_manifest(kManifest);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), 1u) << "one entry lost, one restored";
}

TEST_F(PersistenceTest, CorruptManifestLinesSkipped) {
  ManualClock clock(from_seconds(100.0));
  {
    auto store = make_store(&clock);
    std::vector<EntryMeta> evicted;
    ASSERT_TRUE(store->insert(key("/ok"), "data", 1.0, 0, "t", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }
  // Inject garbage between the header line and the entries.
  std::string contents;
  {
    std::ifstream in(kManifest);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto header_end = contents.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  {
    std::ofstream out(kManifest);
    out << contents.substr(0, header_end + 1) << "GARBAGE LINE\n"
        << contents.substr(header_end + 1);
  }
  auto store = make_store(&clock);
  auto restored = store->load_manifest(kManifest);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), 1u);
}

TEST_F(PersistenceTest, NewerManifestVersionRefused) {
  ManualClock clock(from_seconds(100.0));
  {
    auto store = make_store(&clock);
    std::vector<EntryMeta> evicted;
    ASSERT_TRUE(store->insert(key("/a"), "data", 1.0, 0, "t", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }
  // Rewrite the header to claim a future format version.
  std::string contents;
  {
    std::ifstream in(kManifest);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto header_end = contents.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  {
    std::ofstream out(kManifest);
    out << "swala-manifest " << (kManifestFormatVersion + 1) << "\n"
        << contents.substr(header_end + 1);
  }
  auto store = make_store(&clock);
  auto restored = store->load_manifest(kManifest);
  ASSERT_FALSE(restored.is_ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store->entry_count(), 0u);
  // The data files must be left untouched: the newer deployment that wrote
  // this manifest may still want them after a roll-forward.
  std::size_t cache_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kDir)) {
    if (entry.path().extension() == ".cache") ++cache_files;
  }
  EXPECT_EQ(cache_files, 1u);
}

TEST_F(PersistenceTest, ManifestMissingHeaderRejected) {
  ManualClock clock(from_seconds(100.0));
  {
    auto store = make_store(&clock);
    std::vector<EntryMeta> evicted;
    ASSERT_TRUE(store->insert(key("/a"), "data", 1.0, 0, "t", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }
  // Strip the header line entirely (e.g. a pre-versioning manifest).
  std::string contents;
  {
    std::ifstream in(kManifest);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto header_end = contents.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  {
    std::ofstream out(kManifest);
    out << contents.substr(header_end + 1);
  }
  auto store = make_store(&clock);
  auto restored = store->load_manifest(kManifest);
  ASSERT_FALSE(restored.is_ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorrupt);
}

TEST_F(PersistenceTest, ManifestTruncatedMidLineSkipsTornEntry) {
  ManualClock clock(from_seconds(100.0));
  {
    auto store = make_store(&clock);
    std::vector<EntryMeta> evicted;
    ASSERT_TRUE(store->insert(key("/keep"), "kept-data", 1.0, 0, "t", 200,
                              &evicted)
                    .is_ok());
    ASSERT_TRUE(store
                    ->insert(key("/torn-entry-with-a-long-key"), "torn-data",
                             1.0, 0, "t", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }
  // Truncate the manifest in the middle of its final line's key. The line
  // still parses, but the half key hashes differently from the one bound
  // into the cache file's header, so the adopt is refused — a torn manifest
  // can never resurrect an entry under the wrong key.
  std::string contents;
  {
    std::ifstream in(kManifest);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_EQ(contents.back(), '\n');
  // Entry order in the manifest is unspecified; figure out which key's line
  // comes last (and therefore gets torn).
  const auto last_newline = contents.find_last_of('\n', contents.size() - 2);
  ASSERT_NE(last_newline, std::string::npos);
  const std::string last_line = contents.substr(last_newline + 1);
  const std::string torn_key =
      last_line.find("/torn-entry-with-a-long-key") != std::string::npos
          ? key("/torn-entry-with-a-long-key").text
          : key("/keep").text;
  const std::string surviving_key =
      torn_key == key("/keep").text ? key("/torn-entry-with-a-long-key").text
                                    : key("/keep").text;
  contents.resize(contents.size() - 5);
  {
    std::ofstream out(kManifest, std::ios::trunc);
    out << contents;
  }
  auto store = make_store(&clock);
  auto restored = store->load_manifest(kManifest);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 1u);
  EXPECT_TRUE(store->fetch(surviving_key).has_value());
  EXPECT_FALSE(store->fetch(torn_key).has_value());
}

TEST_F(PersistenceTest, ExpiredEntryFilesScrubbedAfterRestart) {
  // Regression: save_manifest skips expired entries, but with retention on,
  // their data files used to leak on disk forever. The startup scrub must
  // collect them as orphans.
  ManualClock clock(from_seconds(100.0));
  {
    auto store = make_store(&clock);
    std::vector<EntryMeta> evicted;
    ASSERT_TRUE(store->insert(key("/keep"), "kkk", 1.0, 0, "t", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store
                    ->insert(key("/expired"), "eee", 1.0, /*ttl=*/5.0, "t", 200,
                             &evicted)
                    .is_ok());
    clock.advance(from_seconds(10.0));  // /expired is now stale
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }  // retention on: both cache files survive, but only /keep is referenced

  std::size_t cache_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kDir)) {
    if (entry.path().extension() == ".cache") ++cache_files;
  }
  ASSERT_EQ(cache_files, 2u) << "expired entry's file should still be on disk";

  auto store = make_store(&clock);
  auto restored = store->load_manifest(kManifest);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), 1u);
  const ScrubReport report = store->scrub_backend();
  EXPECT_EQ(report.adopted, 1u);
  EXPECT_EQ(report.orphans_removed, 1u);

  cache_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kDir)) {
    if (entry.path().extension() == ".cache") ++cache_files;
  }
  EXPECT_EQ(cache_files, 1u) << "orphaned file must be gone after scrub";
}

TEST_F(PersistenceTest, ZeroLengthCacheFileQuarantined) {
  ManualClock clock(from_seconds(100.0));
  std::string victim_path;
  {
    auto store = make_store(&clock);
    std::vector<EntryMeta> evicted;
    ASSERT_TRUE(store->insert(key("/zero"), "zzz", 1.0, 0, "t", 200, &evicted)
                    .is_ok());
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }
  for (const auto& entry : std::filesystem::directory_iterator(kDir)) {
    if (entry.path().extension() == ".cache") victim_path = entry.path();
  }
  ASSERT_FALSE(victim_path.empty());
  std::filesystem::resize_file(victim_path, 0);

  auto store = make_store(&clock);
  auto restored = store->load_manifest(kManifest);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), 0u);
  EXPECT_FALSE(std::filesystem::exists(victim_path));
  EXPECT_TRUE(std::filesystem::exists(victim_path + ".corrupt"));
}

TEST_F(PersistenceTest, MissingManifestIsError) {
  ManualClock clock(0);
  auto store = make_store(&clock);
  EXPECT_FALSE(store->load_manifest("/tmp/swala_no_such_manifest").is_ok());
}

TEST_F(PersistenceTest, NewInsertsDoNotCollideWithAdoptedIds) {
  ManualClock clock(from_seconds(100.0));
  {
    auto store = make_store(&clock);
    std::vector<EntryMeta> evicted;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store
                      ->insert(key("/n" + std::to_string(i)), "data", 1.0, 0,
                               "t", 200, &evicted)
                      .is_ok());
    }
    ASSERT_TRUE(store->save_manifest(kManifest).is_ok());
  }
  auto store = make_store(&clock);
  ASSERT_TRUE(store->load_manifest(kManifest).is_ok());
  // New inserts must pick fresh storage ids, not overwrite adopted files.
  std::vector<EntryMeta> evicted;
  ASSERT_TRUE(store->insert(key("/new"), "new-data", 1.0, 0, "t", 200,
                            &evicted)
                  .is_ok());
  for (int i = 0; i < 5; ++i) {
    auto hit = store->fetch(key("/n" + std::to_string(i)).text);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data, "data");
  }
  EXPECT_EQ(store->fetch(key("/new").text)->data, "new-data");
}

TEST_F(PersistenceTest, ManagerRestoreRepopulatesDirectoryAndBroadcasts) {
  class RecordingBus : public CooperationBus {
   public:
    void broadcast_insert(const EntryMeta& meta) override {
      inserts.push_back(meta.key);
    }
    void broadcast_erase(NodeId, const std::string&, std::uint64_t) override {}
    Result<CachedResult> fetch_remote(NodeId, const std::string&) override {
      return Status(StatusCode::kNotFound, "n/a");
    }
    std::vector<std::string> inserts;
  };

  ManualClock clock(from_seconds(100.0));
  ManagerOptions mo;
  mo.limits = {100, 0};
  mo.disk_dir = kDir;
  RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);

  {
    CacheManager manager(0, 2, mo, &clock);
    http::Uri uri;
    ASSERT_TRUE(http::parse_uri("/cgi-bin/warm?q=1", &uri));
    auto lookup = manager.lookup(http::Method::kGet, uri);
    cgi::CgiOutput out;
    out.success = true;
    out.body = "warm-body";
    manager.complete(http::Method::kGet, uri, lookup.rule, out, 1.5);
    ASSERT_TRUE(manager.save_state(kManifest).is_ok());
  }

  RecordingBus bus;
  CacheManager manager(0, 2, mo, &clock, &bus);
  auto restored = manager.restore_state(kManifest);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 1u);
  EXPECT_TRUE(manager.directory().lookup("GET /cgi-bin/warm?q=1").has_value());
  ASSERT_EQ(bus.inserts.size(), 1u);
  EXPECT_EQ(bus.inserts[0], "GET /cgi-bin/warm?q=1");

  // And the restored entry actually serves.
  http::Uri uri;
  ASSERT_TRUE(http::parse_uri("/cgi-bin/warm?q=1", &uri));
  auto hit = manager.lookup(http::Method::kGet, uri);
  ASSERT_EQ(hit.outcome, LookupOutcome::kHit);
  EXPECT_EQ(hit.result.data, "warm-body");
}

}  // namespace
}  // namespace swala::core
