// Second-wave edge-case tests for swala_common: glob verified against a
// reference implementation, histogram extremes, config introspection,
// queue/pool corners.
#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "common/hash.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/strings.h"

namespace swala {
namespace {

// ---- glob vs a simple recursive reference ----

bool glob_reference(std::string_view p, std::string_view t) {
  if (p.empty()) return t.empty();
  if (p.front() == '*') {
    for (std::size_t skip = 0; skip <= t.size(); ++skip) {
      if (glob_reference(p.substr(1), t.substr(skip))) return true;
    }
    return false;
  }
  if (t.empty()) return false;
  if (p.front() == '?' || p.front() == t.front()) {
    return glob_reference(p.substr(1), t.substr(1));
  }
  return false;
}

TEST(GlobPropertyTest, AgreesWithReference) {
  Rng rng(271828);
  const char alphabet[] = "ab*?/";
  for (int round = 0; round < 5000; ++round) {
    std::string pattern, text;
    const auto plen = static_cast<std::size_t>(rng.uniform_int(0, 8));
    const auto tlen = static_cast<std::size_t>(rng.uniform_int(0, 10));
    for (std::size_t i = 0; i < plen; ++i) {
      pattern.push_back(alphabet[rng.uniform_int(0, 4)]);
    }
    for (std::size_t i = 0; i < tlen; ++i) {
      text.push_back(alphabet[rng.uniform_int(0, 1)]);  // only 'a','b'
    }
    EXPECT_EQ(glob_match(pattern, text), glob_reference(pattern, text))
        << "pattern='" << pattern << "' text='" << text << "'";
  }
}

TEST(GlobTest, EmptyPatternMatchesOnlyEmpty) {
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(GlobTest, PathologicalStarsTerminate) {
  // The iterative matcher must not blow up on many stars.
  const std::string pattern(50, '*');
  const std::string text(200, 'a');
  EXPECT_TRUE(glob_match(pattern, text));
  EXPECT_FALSE(glob_match(pattern + "b", text));
}

// ---- histogram extremes ----

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, ExtremeValuesClampToBuckets) {
  LatencyHistogram h;
  h.add(1e-15);  // below the smallest bucket
  h.add(1e9);    // above the largest
  h.add(-5.0);   // negative clamps to zero
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GE(h.percentile(100), 0.0);
}

TEST(LatencyHistogramTest, PercentileArgumentClamped) {
  LatencyHistogram h;
  h.add(0.5);
  EXPECT_GT(h.percentile(-10), 0.0);
  EXPECT_GT(h.percentile(250), 0.0);
}

TEST(OnlineStatsTest, EmptyAccessors) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
  // Three columns rendered even though the row had one cell.
  EXPECT_EQ(std::count(out.begin(), out.end(), '|') % 4, 0);
}

// ---- config introspection ----

TEST(ConfigTest, SectionsInFirstAppearanceOrder) {
  auto cfg = Config::parse("[z]\nx=1\n[a]\ny=2\n[z]\nw=3\n");
  ASSERT_TRUE(cfg.is_ok());
  const auto sections = cfg.value().sections();
  ASSERT_EQ(sections.size(), 3u);  // "", "z", "a"
  EXPECT_EQ(sections[0], "");
  EXPECT_EQ(sections[1], "z");
  EXPECT_EQ(sections[2], "a");
}

TEST(ConfigTest, EntriesPreserveFileOrder) {
  auto cfg = Config::parse("[s]\nb = 2\na = 1\nb = 3\n");
  ASSERT_TRUE(cfg.is_ok());
  const auto entries = cfg.value().entries("s");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (std::pair<std::string, std::string>{"b", "2"}));
  EXPECT_EQ(entries[1], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(entries[2], (std::pair<std::string, std::string>{"b", "3"}));
}

TEST(ConfigTest, ProgrammaticSetAppends) {
  Config cfg;
  cfg.set("s", "k", "v1");
  cfg.set("s", "k", "v2");
  EXPECT_EQ(cfg.get_string("s", "k"), "v2");
  EXPECT_EQ(cfg.get_all("s", "k").size(), 2u);
}

TEST(ConfigTest, ValueWithEqualsSign) {
  auto cfg = Config::parse("rule = /x cache ttl=60\n");
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_string("", "rule"), "/x cache ttl=60");
}

// ---- queue corners ----

TEST(BoundedQueueTest, TryPopEmpty) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.try_pop(), std::nullopt);
  q.push(9);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.try_pop(), 9);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(5));
  auto out = q.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 5);
}

// ---- rng ----

TEST(RngTest, ShuffleIsPermutationAndDeterministic) {
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> a = v, b = v;
  Rng r1(5), r2(5);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b) << "same seed, same shuffle";
  EXPECT_NE(a, v) << "50 elements almost surely move";
  std::set<int> seen(a.begin(), a.end());
  EXPECT_EQ(seen.size(), 50u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(HashTest, DistinctKeysSample) {
  // Not a collision-resistance claim; a smoke check that realistic cache
  // keys spread.
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    hashes.insert(fnv1a64("GET /cgi-bin/q?id=" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

}  // namespace
}  // namespace swala
