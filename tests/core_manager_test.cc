// Tests for CacheManager: the Figure-2 control flow, threshold and failure
// handling, cooperation through a fake bus, false-hit fallback and
// false-miss detection, purge broadcasting.
#include <gtest/gtest.h>

#include <map>

#include "common/clock.h"
#include "core/manager.h"

namespace swala::core {
namespace {

/// In-memory CooperationBus that records broadcasts and serves fetches from
/// a scripted table.
class FakeBus : public CooperationBus {
 public:
  void broadcast_insert(const EntryMeta& meta) override {
    inserts.push_back(meta);
  }
  void broadcast_erase(NodeId owner, const std::string& key,
                       std::uint64_t version) override {
    erases.push_back({owner, key, version});
  }
  Result<CachedResult> fetch_remote(NodeId owner,
                                    const std::string& key) override {
    ++fetches;
    const auto it = remote_data.find(key);
    if (it == remote_data.end()) {
      return Status(StatusCode::kNotFound, "gone");
    }
    CachedResult r;
    r.meta.key = key;
    r.meta.owner = owner;
    r.meta.content_type = "text/html";
    r.meta.http_status = 200;
    r.data = it->second;
    return r;
  }

  struct Erase {
    NodeId owner;
    std::string key;
    std::uint64_t version;
  };
  std::vector<EntryMeta> inserts;
  std::vector<Erase> erases;
  std::map<std::string, std::string> remote_data;
  int fetches = 0;
};

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(const std::string& body) {
  cgi::CgiOutput out;
  out.success = true;
  out.http_status = 200;
  out.body = body;
  return out;
}

ManagerOptions default_options() {
  ManagerOptions mo;
  mo.limits = {100, 0};
  RuleDecision d;
  d.cacheable = true;
  d.min_exec_seconds = 0.5;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

class ManagerTest : public ::testing::Test {
 protected:
  ManualClock clock_{from_seconds(50.0)};
};

TEST_F(ManagerTest, UncacheablePathClassified) {
  CacheManager manager(0, 1, default_options(), &clock_);
  const auto result = manager.lookup(http::Method::kGet, uri_of("/static/a"));
  EXPECT_EQ(result.outcome, LookupOutcome::kUncacheable);
  EXPECT_EQ(manager.stats().uncacheable, 1u);
}

TEST_F(ManagerTest, MissThenInsertThenHit) {
  CacheManager manager(0, 1, default_options(), &clock_);
  const auto uri = uri_of("/cgi-bin/q?x=1");

  auto first = manager.lookup(http::Method::kGet, uri);
  ASSERT_EQ(first.outcome, LookupOutcome::kMissMustExecute);

  manager.complete(http::Method::kGet, uri, first.rule, ok_output("RESULT"),
                   /*exec_seconds=*/1.2);
  EXPECT_EQ(manager.stats().inserts, 1u);

  auto second = manager.lookup(http::Method::kGet, uri);
  ASSERT_EQ(second.outcome, LookupOutcome::kHit);
  EXPECT_FALSE(second.remote);
  EXPECT_EQ(second.result.data, "RESULT");
  EXPECT_EQ(manager.stats().local_hits, 1u);
}

TEST_F(ManagerTest, BelowThresholdNotCached) {
  CacheManager manager(0, 1, default_options(), &clock_);
  const auto uri = uri_of("/cgi-bin/fast");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("x"),
                   /*exec_seconds=*/0.1);  // < 0.5 threshold
  EXPECT_EQ(manager.stats().inserts, 0u);
  EXPECT_EQ(manager.stats().below_threshold, 1u);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri).outcome,
            LookupOutcome::kMissMustExecute);
}

TEST_F(ManagerTest, FailedExecutionNotCached) {
  CacheManager manager(0, 1, default_options(), &clock_);
  const auto uri = uri_of("/cgi-bin/broken");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  cgi::CgiOutput bad;
  bad.success = false;
  bad.http_status = 500;
  manager.complete(http::Method::kGet, uri, lookup.rule, bad, 2.0);
  EXPECT_EQ(manager.stats().inserts, 0u);
  EXPECT_EQ(manager.stats().failed_exec, 1u);
}

TEST_F(ManagerTest, ErrorStatusNotCached) {
  CacheManager manager(0, 1, default_options(), &clock_);
  const auto uri = uri_of("/cgi-bin/notfound");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  cgi::CgiOutput out = ok_output("nope");
  out.http_status = 404;
  manager.complete(http::Method::kGet, uri, lookup.rule, out, 2.0);
  EXPECT_EQ(manager.stats().inserts, 0u);
}

TEST_F(ManagerTest, MethodDistinguishesKeys) {
  CacheManager manager(0, 1, default_options(), &clock_);
  const auto uri = uri_of("/cgi-bin/q");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("g"), 1.0);
  // POST of the same target must not hit the GET entry.
  EXPECT_EQ(manager.lookup(http::Method::kPost, uri).outcome,
            LookupOutcome::kMissMustExecute);
}

TEST_F(ManagerTest, InsertBroadcastsToBus) {
  FakeBus bus;
  CacheManager manager(0, 3, default_options(), &clock_, &bus);
  const auto uri = uri_of("/cgi-bin/b");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("data"), 1.0);
  ASSERT_EQ(bus.inserts.size(), 1u);
  EXPECT_EQ(bus.inserts[0].key, "GET /cgi-bin/b");
  EXPECT_EQ(bus.inserts[0].owner, 0u);
}

TEST_F(ManagerTest, RemoteHitThroughBus) {
  FakeBus bus;
  CacheManager manager(0, 2, default_options(), &clock_, &bus);
  // Peer 1 announces an entry; the directory now points at node 1.
  EntryMeta peer_meta;
  peer_meta.key = "GET /cgi-bin/remote";
  peer_meta.owner = 1;
  peer_meta.version = 1;
  manager.on_peer_insert(peer_meta);
  bus.remote_data["GET /cgi-bin/remote"] = "REMOTE-BODY";

  auto result = manager.lookup(http::Method::kGet, uri_of("/cgi-bin/remote"));
  ASSERT_EQ(result.outcome, LookupOutcome::kHit);
  EXPECT_TRUE(result.remote);
  EXPECT_EQ(result.owner, 1u);
  EXPECT_EQ(result.result.data, "REMOTE-BODY");
  EXPECT_EQ(manager.stats().remote_hits, 1u);
  EXPECT_EQ(bus.fetches, 1);
}

TEST_F(ManagerTest, FalseHitFallsBackToExecution) {
  FakeBus bus;
  CacheManager manager(0, 2, default_options(), &clock_, &bus);
  EntryMeta peer_meta;
  peer_meta.key = "GET /cgi-bin/gone";
  peer_meta.owner = 1;
  manager.on_peer_insert(peer_meta);
  // bus.remote_data intentionally empty: the owner already evicted it.

  auto result = manager.lookup(http::Method::kGet, uri_of("/cgi-bin/gone"));
  EXPECT_EQ(result.outcome, LookupOutcome::kMissMustExecute);
  EXPECT_EQ(manager.stats().false_hits, 1u);
  // The stale directory entry was cleaned: next lookup is a plain miss.
  auto again = manager.lookup(http::Method::kGet, uri_of("/cgi-bin/gone"));
  EXPECT_EQ(again.outcome, LookupOutcome::kMissMustExecute);
  EXPECT_EQ(bus.fetches, 1) << "no second remote fetch after cleanup";
}

TEST_F(ManagerTest, FalseMissDetected) {
  FakeBus bus;
  CacheManager manager(0, 2, default_options(), &clock_, &bus);
  const auto uri = uri_of("/cgi-bin/dup");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("mine"), 1.0);
  // Peer 1 executed the same request concurrently (its INSERT arrives late).
  EntryMeta peer_meta;
  peer_meta.key = "GET /cgi-bin/dup";
  peer_meta.owner = 1;
  manager.on_peer_insert(peer_meta);
  EXPECT_EQ(manager.stats().false_misses, 1u);
}

TEST_F(ManagerTest, OwnBroadcastEchoIgnored) {
  FakeBus bus;
  CacheManager manager(0, 2, default_options(), &clock_, &bus);
  EntryMeta own;
  own.key = "GET /cgi-bin/self";
  own.owner = 0;
  manager.on_peer_insert(own);
  EXPECT_EQ(manager.stats().false_misses, 0u);
  EXPECT_EQ(manager.directory().table_size(0), 0u);
}

TEST_F(ManagerTest, EvictionBroadcastsErase) {
  FakeBus bus;
  ManagerOptions mo = default_options();
  mo.limits = {2, 0};
  CacheManager manager(0, 2, std::move(mo), &clock_, &bus);
  for (int i = 0; i < 3; ++i) {
    const auto uri = uri_of("/cgi-bin/e" + std::to_string(i));
    auto lookup = manager.lookup(http::Method::kGet, uri);
    manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("d"), 1.0);
  }
  ASSERT_EQ(bus.erases.size(), 1u);
  EXPECT_EQ(bus.erases[0].key, "GET /cgi-bin/e0");
  EXPECT_EQ(manager.stats().evictions_broadcast, 1u);
  // The evicted key is gone from the directory too.
  EXPECT_FALSE(manager.directory().lookup("GET /cgi-bin/e0").has_value());
}

TEST_F(ManagerTest, PurgeBroadcastsExpiry) {
  FakeBus bus;
  ManagerOptions mo = default_options();
  RuleDecision d;
  d.cacheable = true;
  d.ttl_seconds = 5.0;
  mo.rules = CacheabilityRules();
  mo.rules.add_rule("/cgi-bin/*", d);
  CacheManager manager(0, 2, std::move(mo), &clock_, &bus);

  const auto uri = uri_of("/cgi-bin/ttl");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("d"), 1.0);
  EXPECT_EQ(manager.purge_expired(), 0u);
  clock_.advance(from_seconds(10.0));
  EXPECT_EQ(manager.purge_expired(), 1u);
  ASSERT_EQ(bus.erases.size(), 1u);
  EXPECT_EQ(bus.erases[0].key, "GET /cgi-bin/ttl");
}

TEST_F(ManagerTest, ServePeerFetch) {
  CacheManager manager(0, 1, default_options(), &clock_);
  const auto uri = uri_of("/cgi-bin/served");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output("body"), 1.0);

  auto served = manager.serve_peer_fetch("GET /cgi-bin/served");
  ASSERT_TRUE(served.is_ok());
  EXPECT_EQ(served.value().data, "body");

  auto missing = manager.serve_peer_fetch("GET /cgi-bin/never");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(ManagerTest, PeerEraseUpdatesDirectory) {
  FakeBus bus;
  CacheManager manager(0, 2, default_options(), &clock_, &bus);
  EntryMeta peer_meta;
  peer_meta.key = "GET /cgi-bin/p";
  peer_meta.owner = 1;
  peer_meta.version = 1;
  manager.on_peer_insert(peer_meta);
  EXPECT_TRUE(manager.directory().lookup("GET /cgi-bin/p").has_value());
  manager.on_peer_erase(1, "GET /cgi-bin/p", 1);
  EXPECT_FALSE(manager.directory().lookup("GET /cgi-bin/p").has_value());
}

TEST_F(ManagerTest, KeyForCanonicalizes) {
  const auto key = CacheManager::key_for(http::Method::kGet,
                                         uri_of("/cgi-bin/a%20b?x=%201"));
  EXPECT_EQ(key.text, "GET /cgi-bin/a b?x=%201");
}

}  // namespace
}  // namespace swala::core
