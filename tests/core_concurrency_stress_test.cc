// Concurrency stress harness for the store↔directory commit protocol.
//
// The seed code published store and directory changes as two independent
// steps, so concurrent complete/invalidate/purge churn could interleave
// between them and leave the directory self-table out of step with the
// store (the ClusterSoakTest failure: 12 directory entries vs 11 stored).
// These tests drive exactly that churn with seeded RNG threads and assert
// the mirror invariant after every phase, plus deterministic regressions
// for the eviction-victim version race and the injected-desync detector.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/consistency.h"
#include "core/manager.h"
#include "core/storage.h"

namespace swala::core {
namespace {

/// Records every broadcast so the adversarial-ordering tests can replay
/// them to a second manager in the order of their choosing.
class RecordingBus : public CooperationBus {
 public:
  void broadcast_insert(const EntryMeta& meta) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inserts.push_back(meta);
  }
  void broadcast_erase(NodeId owner, const std::string& key,
                       std::uint64_t version) override {
    std::lock_guard<std::mutex> lock(mutex_);
    erases.push_back({owner, key, version});
  }
  Result<CachedResult> fetch_remote(NodeId, const std::string& key) override {
    return Status(StatusCode::kNotFound, "not scripted: " + key);
  }

  struct Erase {
    NodeId owner;
    std::string key;
    std::uint64_t version;
  };
  std::mutex mutex_;
  std::vector<EntryMeta> inserts;
  std::vector<Erase> erases;
};

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(std::size_t bytes) {
  cgi::CgiOutput out;
  out.success = true;
  out.http_status = 200;
  out.body = std::string(bytes, 'z');
  return out;
}

ManagerOptions churn_options(std::uint64_t max_entries) {
  ManagerOptions mo;
  mo.limits = {max_entries, 0};  // small: constant eviction
  RuleDecision ttl_rule;
  ttl_rule.cacheable = true;
  ttl_rule.ttl_seconds = 0.05;  // expires mid-run: purge + retire paths fire
  mo.rules.add_rule("/cgi-bin/ttl/*", ttl_rule);
  RuleDecision plain;
  plain.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", plain);
  return mo;
}

/// One churn phase: `threads` seeded workers hammer a small key space with
/// lookup/complete, exact and glob invalidations, and purge ticks.
void run_churn_phase(CacheManager& manager, int threads, int ops,
                     std::uint64_t phase_seed) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&manager, ops, phase_seed, t] {
      Rng rng(phase_seed * 977 + static_cast<std::uint64_t>(t));
      for (int op = 0; op < ops; ++op) {
        const int dice = static_cast<int>(rng.uniform_int(0, 99));
        const std::string k = std::to_string(rng.uniform_int(0, 40));
        if (dice < 80) {
          const bool ttl = dice < 10;
          const auto uri = uri_of(std::string("/cgi-bin/") +
                                  (ttl ? "ttl/" : "") + "q?k=" + k);
          auto lookup = manager.lookup(http::Method::kGet, uri);
          if (lookup.outcome == LookupOutcome::kMissMustExecute) {
            manager.complete(http::Method::kGet, uri, lookup.rule,
                             ok_output(32 + static_cast<std::size_t>(
                                                rng.uniform_int(0, 128))),
                             1.0);
          }
        } else if (dice < 90) {
          manager.invalidate("GET /cgi-bin/q?k=" + k);
        } else if (dice < 95) {
          manager.invalidate("GET /cgi-bin/*k=" + k + "*");
        } else {
          manager.purge_expired();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

// The regression for the seed soak-test race: insert (complete) racing
// invalidate/purge on overlapping keys. Under the two-step seed publication
// an invalidation could erase store+directory between a complete's store
// insert and its directory insert, leaving a stale directory entry. The
// mirror must hold after every phase, on every seed.
TEST(CommitProtocolStress, MixedChurnKeepsMirrorAfterEveryPhase) {
  CacheManager manager(0, 1, churn_options(16), RealClock::instance());
  for (std::uint64_t phase = 0; phase < 3; ++phase) {
    run_churn_phase(manager, /*threads=*/4, /*ops=*/400, /*phase_seed=*/phase);
    const auto report = manager.debug_check_consistency();
    EXPECT_TRUE(report.consistent())
        << "phase " << phase << ": " << report.to_string();
    EXPECT_EQ(manager.directory().table_size(0), manager.store().entry_count())
        << "phase " << phase;
    EXPECT_LE(manager.store().entry_count(), 16u) << "phase " << phase;
  }
  EXPECT_GT(manager.stats().inserts, 0u);
  EXPECT_GT(manager.stats().invalidations, 0u);
  EXPECT_GT(manager.commit_sequence(), 0u);
}

// Same churn against a clustered manager (broadcasts enqueued under the
// commit mutex through a recording bus): the mirror invariant must be
// unaffected by the bus, and every broadcast erase must carry the version
// of an entry that was actually committed.
TEST(CommitProtocolStress, EvictionChurnKeepsMirrorWithBus) {
  RecordingBus bus;
  CacheManager manager(0, 2, churn_options(8), RealClock::instance(), &bus);
  for (std::uint64_t phase = 0; phase < 2; ++phase) {
    run_churn_phase(manager, /*threads=*/4, /*ops=*/300,
                    /*phase_seed=*/100 + phase);
    const auto report = manager.debug_check_consistency();
    EXPECT_TRUE(report.consistent())
        << "phase " << phase << ": " << report.to_string();
  }
  EXPECT_GT(manager.stats().evictions_broadcast, 0u);
  EXPECT_EQ(bus.inserts.size(), manager.stats().inserts);
}

// Deterministic regression for the eviction-victim version race: a victim's
// erase used to be broadcast with a version read outside the commit
// section, and per-key versions restarted at 1 after an erase, so a stale
// erase could kill a re-inserted entry in peer directories. Versions must
// now be monotonic across erase→re-insert, and a peer applying the stale
// erase after the newer insert must keep the entry.
TEST(EvictionVersionRegression, ReinsertSurvivesStaleEraseBroadcast) {
  RecordingBus bus;
  ManagerOptions mo = churn_options(/*max_entries=*/1);  // every insert evicts
  CacheManager owner(0, 2, mo, RealClock::instance(), &bus);

  const auto key_a = uri_of("/cgi-bin/q?k=a");
  const auto key_b = uri_of("/cgi-bin/q?k=b");
  auto rule = owner.lookup(http::Method::kGet, key_a).rule;

  owner.complete(http::Method::kGet, key_a, rule, ok_output(8), 1.0);
  owner.complete(http::Method::kGet, key_b, rule, ok_output(8), 1.0);  // evicts a
  owner.complete(http::Method::kGet, key_a, rule, ok_output(8), 1.0);  // evicts b, re-inserts a

  ASSERT_EQ(bus.inserts.size(), 3u);
  ASSERT_EQ(bus.erases.size(), 2u);
  ASSERT_EQ(bus.erases[0].key, "GET /cgi-bin/q?k=a");
  const std::uint64_t stale_version = bus.erases[0].version;
  const EntryMeta& reinsert = bus.inserts[2];
  ASSERT_EQ(reinsert.key, "GET /cgi-bin/q?k=a");

  // The store-wide monotonic counter is the fix's core: the re-insert must
  // outrank the eviction it follows (the seed gave both version 1).
  EXPECT_GT(reinsert.version, stale_version);

  // A peer that sees the newer insert and then the stale erase (delayed or
  // replayed delivery) must keep the entry.
  CacheManager peer(1, 2, churn_options(16), RealClock::instance());
  peer.on_peer_insert(reinsert);
  peer.on_peer_erase(0, reinsert.key, stale_version);
  EXPECT_TRUE(peer.directory().lookup_at(0, reinsert.key).has_value())
      << "stale erase (v" << stale_version << ") killed newer insert (v"
      << reinsert.version << ")";
}

// The checker itself: a desync injected behind the manager's back must be
// reported, in both directions, and a healthy composition must be clean.
TEST(DebugConsistencyCheck, CatchesInjectedDesync) {
  ManualClock clock(from_seconds(10.0));
  CacheStore store({16, 0}, PolicyKind::kLru,
                   std::make_unique<MemoryBackend>(), &clock, /*owner=*/0);
  CacheDirectory directory(/*self=*/0, /*num_nodes=*/2);
  directory.set_clock(&clock);

  EXPECT_TRUE(check_store_directory_consistency(store, directory).consistent());

  // Store-only entry: missing from the directory.
  std::vector<EntryMeta> evicted;
  auto meta = store.insert(CacheKey::make("GET", "/cgi-bin/only-store"),
                           "data", 1.0, 0, "text/html", 200, &evicted);
  ASSERT_TRUE(meta.is_ok());
  auto report = check_store_directory_consistency(store, directory);
  EXPECT_FALSE(report.consistent());
  ASSERT_EQ(report.missing_in_directory.size(), 1u);
  EXPECT_EQ(report.missing_in_directory[0], "GET /cgi-bin/only-store");
  EXPECT_TRUE(report.stale_in_directory.empty());

  // Mirror it, then add a directory-only entry: stale.
  directory.apply_insert(meta.value());
  EXPECT_TRUE(check_store_directory_consistency(store, directory).consistent());
  EntryMeta ghost = meta.value();
  ghost.key = "GET /cgi-bin/only-directory";
  directory.apply_insert(ghost);
  report = check_store_directory_consistency(store, directory);
  EXPECT_FALSE(report.consistent());
  ASSERT_EQ(report.stale_in_directory.size(), 1u);
  EXPECT_EQ(report.stale_in_directory[0], "GET /cgi-bin/only-directory");
  EXPECT_NE(report.to_string().find("stale_in_directory"), std::string::npos);
}

// Manager-level detector: clean after real traffic, loud after an injected
// desync (the same probe the admin endpoint runs).
TEST(DebugConsistencyCheck, ManagerDetectsInjectedDesync) {
  CacheManager manager(0, 1, churn_options(16), RealClock::instance());
  const auto uri = uri_of("/cgi-bin/q?k=1");
  auto lookup = manager.lookup(http::Method::kGet, uri);
  manager.complete(http::Method::kGet, uri, lookup.rule, ok_output(8), 1.0);
  EXPECT_TRUE(manager.debug_check_consistency().consistent());

  const_cast<CacheStore&>(manager.store()).erase("GET /cgi-bin/q?k=1");
  const auto report = manager.debug_check_consistency();
  EXPECT_FALSE(report.consistent());
  EXPECT_EQ(report.stale_in_directory.size(), 1u);
}

// ---- pin/refcount: get-while-evict ----

/// A filesystem whose open() of cache files can be made to park the caller.
/// The reader thread announces it is inside open(); the test then erases the
/// entry while the reader holds its pin, and only afterwards lets the open
/// proceed — a deterministic version of the fetch-vs-evict race.
class BlockingFsOps final : public FsOps {
 public:
  int open(const char* path, int flags, int mode) override {
    if (armed_.load(std::memory_order_acquire) &&
        std::string_view(path).find(".cache") != std::string_view::npos) {
      std::unique_lock<std::mutex> lock(mutex_);
      in_open_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    }
    return FsOps::real()->open(path, flags, mode);
  }

  void arm() { armed_.store(true, std::memory_order_release); }

  void wait_until_blocked() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return in_open_; });
  }

  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::atomic<bool> armed_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool in_open_ = false;    // guarded by mutex_
  bool released_ = false;   // guarded by mutex_
};

// Eviction/erase must never unlink a file a concurrent fetch is reading:
// the reader's pin keeps the storage alive, the erase only dooms it, and
// the unlink happens when the last pin drops. The seed code did the read
// under the store mutex, which serialized instead of racing — with the
// mutex now metadata-only, this is the race that pins exist to close.
TEST(PinnedReadRace, EraseWhileReaderPinnedKeepsFileUntilReaderDone) {
  const std::string dir = "/tmp/swala_pin_race_test";
  std::filesystem::remove_all(dir);
  BlockingFsOps fs;
  auto backend = std::make_unique<DiskBackend>(dir, &fs);
  DiskBackend* disk = backend.get();
  ManualClock clock(from_seconds(1.0));
  StoreLimits limits;
  limits.max_entries = 16;
  limits.hot_bytes = 0;  // force every fetch down the pinned-disk path
  CacheStore store(limits, PolicyKind::kLru, std::move(backend), &clock,
                   /*owner=*/0);

  std::vector<EntryMeta> evicted;
  const std::string payload(4096, 'p');
  auto meta = store.insert(CacheKey::make("GET", "/cgi-bin/pinned"), payload,
                           1.0, 0, "text/html", 200, &evicted);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  const std::string path = disk->path_for(1);  // first put gets id 1
  ASSERT_EQ(::access(path.c_str(), F_OK), 0) << path;

  fs.arm();
  std::optional<CachedResult> read;
  std::thread reader([&] { read = store.fetch("GET /cgi-bin/pinned"); });
  fs.wait_until_blocked();  // reader holds its pin, parked inside open()

  // Erase while the reader is mid-read: the entry leaves the store...
  ASSERT_TRUE(store.erase("GET /cgi-bin/pinned").has_value());
  EXPECT_FALSE(store.contains("GET /cgi-bin/pinned"));
  EXPECT_EQ(store.stats().pinned_entries, 1u);
  // ...but the pinned file must survive until the reader lets go.
  EXPECT_EQ(::access(path.c_str(), F_OK), 0)
      << "erase unlinked a file a reader was still fetching";

  fs.release();
  reader.join();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->data, payload);
  // Last pin dropped inside the reader: the doomed storage is gone now.
  EXPECT_NE(::access(path.c_str(), F_OK), 0)
      << "doomed storage leaked after the last pin dropped";
  EXPECT_EQ(store.stats().pinned_entries, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace swala::core
