// Tests for the built-in admin endpoints: /swala-status statistics and
// /swala-admin/invalidate (application-driven invalidation over HTTP).
#include <gtest/gtest.h>

#include "cgi/registry.h"
#include "cgi/scripted.h"
#include "cluster/local_cluster.h"
#include "http/client.h"
#include "server/swala_server.h"

namespace swala::server {
namespace {

core::ManagerOptions cache_options() {
  core::ManagerOptions mo;
  mo.limits = {100, 0};
  core::RuleDecision d;
  d.cacheable = true;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

std::shared_ptr<cgi::HandlerRegistry> make_registry() {
  auto registry = std::make_shared<cgi::HandlerRegistry>();
  registry->mount("/cgi-bin/",
                  std::make_shared<cgi::ScriptedCgi>(cgi::ScriptedOptions{}));
  return registry;
}

class AdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_ = std::make_unique<core::CacheManager>(
        0, 1, cache_options(), RealClock::instance());
    SwalaServerOptions options;
    options.request_threads = 2;
    options.enable_admin = true;
    server_ = std::make_unique<SwalaServer>(options, make_registry(),
                                            manager_.get());
    ASSERT_TRUE(server_->start().is_ok());
    client_ = std::make_unique<http::HttpClient>(server_->address());
  }

  void TearDown() override {
    client_.reset();
    server_->stop();
  }

  std::unique_ptr<core::CacheManager> manager_;
  std::unique_ptr<SwalaServer> server_;
  std::unique_ptr<http::HttpClient> client_;
};

TEST_F(AdminTest, StatusReportsCounters) {
  ASSERT_TRUE(client_->get("/cgi-bin/x?a=1").is_ok());
  ASSERT_TRUE(client_->get("/cgi-bin/x?a=1").is_ok());  // hit

  auto status = client_->get("/swala-status");
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().status, 200);
  EXPECT_EQ(status.value().headers.get("Content-Type"), "application/json");
  const std::string& body = status.value().body;
  EXPECT_NE(body.find("\"cache_local_hits\": 1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"cache_inserts\": 1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"cache_entries\": 1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"dynamic_requests\": 2"), std::string::npos) << body;
}

TEST_F(AdminTest, StatusReportsLatencyPercentiles) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client_->get("/cgi-bin/x?i=" + std::to_string(i)).is_ok());
  }
  auto status = client_->get("/swala-status");
  ASSERT_TRUE(status.is_ok());
  const std::string& body = status.value().body;
  EXPECT_NE(body.find("\"response_count\": 20"), std::string::npos) << body;
  EXPECT_NE(body.find("\"response_p50_us\":"), std::string::npos);
  EXPECT_NE(body.find("\"response_p99_us\":"), std::string::npos);

  // By now the status request itself has completed too: 20 CGI + 1 status.
  const auto hist = server_->latency();
  EXPECT_EQ(hist.count(), 21u);
}

TEST_F(AdminTest, InvalidateEndpointRemovesEntries) {
  ASSERT_TRUE(client_->get("/cgi-bin/report?q=1").is_ok());
  ASSERT_TRUE(client_->get("/cgi-bin/report?q=2").is_ok());
  ASSERT_TRUE(client_->get("/cgi-bin/keep?q=1").is_ok());
  ASSERT_EQ(manager_->store().entry_count(), 3u);

  // The pattern matches full cache keys; '*' covers "GET " prefix too.
  auto resp = client_->get("/swala-admin/invalidate?pattern=*%2Fcgi-bin%2Freport*");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_NE(resp.value().body.find("\"removed\": 2"), std::string::npos)
      << resp.value().body;
  EXPECT_EQ(manager_->store().entry_count(), 1u);

  // The next request for an invalidated target re-executes.
  auto again = client_->get("/cgi-bin/report?q=1");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().headers.get("X-Swala-Cache"), "miss");
}

TEST_F(AdminTest, CheckConsistencyEndpointReportsMirror) {
  ASSERT_TRUE(client_->get("/cgi-bin/report?q=1").is_ok());
  ASSERT_TRUE(client_->get("/cgi-bin/report?q=2").is_ok());

  auto resp = client_->get("/swala-admin/check-consistency");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().status, 200);
  const std::string& body = resp.value().body;
  EXPECT_NE(body.find("\"consistent\": true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"store_entries\": 2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"directory_entries\": 2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"commit_sequence\": 2"), std::string::npos) << body;

  // An injected desync (store mutated behind the manager's back) flips the
  // endpoint to 500.
  const_cast<core::CacheStore&>(manager_->store()).erase("GET /cgi-bin/report?q=1");
  auto broken = client_->get("/swala-admin/check-consistency");
  ASSERT_TRUE(broken.is_ok());
  EXPECT_EQ(broken.value().status, 500);
  EXPECT_NE(broken.value().body.find("\"consistent\": false"),
            std::string::npos)
      << broken.value().body;
  EXPECT_NE(broken.value().body.find("\"stale_in_directory\": 1"),
            std::string::npos)
      << broken.value().body;
}

TEST_F(AdminTest, InvalidateWithoutPatternIs400) {
  auto resp = client_->get("/swala-admin/invalidate");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().status, 400);
}

// A clustered node's /swala-status must expose the failure-model state:
// cluster counters, the fallback stat, and per-peer breaker health.
TEST(AdminClusterTest, StatusReportsPeerHealth) {
  cluster::LocalCluster cluster(
      2, [](core::NodeId) { return cache_options(); });

  SwalaServerOptions options;
  options.request_threads = 2;
  options.enable_admin = true;
  SwalaServer server(options, make_registry(), &cluster.manager(0));
  server.set_group(&cluster.group(0));
  ASSERT_TRUE(server.start().is_ok());

  http::HttpClient client(server.address());
  auto status = client.get("/swala-status");
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().status, 200);
  const std::string& body = status.value().body;
  EXPECT_NE(body.find("\"cluster_remote_fetches\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"cluster_probes_sent\":"), std::string::npos);
  EXPECT_NE(body.find("\"cluster_resyncs_requested\":"), std::string::npos);
  EXPECT_NE(body.find("\"cache_fallback_executions\":"), std::string::npos);
  EXPECT_NE(body.find("\"cluster_peers\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"state\": \"healthy\""), std::string::npos) << body;
  server.stop();
}

// /swala-admin/check-consistency?cluster=1 runs the global oracle over the
// whole LocalCluster: per-node store↔directory mirrors plus cross-node
// directory drift, 200/500 by the combined verdict.
TEST(AdminClusterTest, ClusterConsistencyEndpointRunsGlobalOracle) {
  cluster::LocalCluster cluster(
      2, [](core::NodeId) { return cache_options(); });

  SwalaServerOptions options;
  options.request_threads = 2;
  options.enable_admin = true;
  SwalaServer server(options, make_registry(), &cluster.manager(0));
  server.set_group(&cluster.group(0));
  server.set_cluster_check(
      [&cluster] { return cluster.check_cluster_consistency(); });
  ASSERT_TRUE(server.start().is_ok());

  http::HttpClient client(server.address());
  // Populate node 0 through the server; the insert broadcast reaches node 1.
  ASSERT_TRUE(client.get("/cgi-bin/report?q=1").is_ok());
  ASSERT_TRUE(cluster.quiesce());

  auto resp = client.get("/swala-admin/check-consistency?cluster=1");
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().status, 200);
  const std::string& body = resp.value().body;
  EXPECT_NE(body.find("\"consistent\": true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"nodes\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"drift\": ["), std::string::npos) << body;

  // Erase node 0's entry behind the managers' backs: node 0's self-mirror
  // breaks, and node 1's table still advertises the key — the oracle must
  // flip the endpoint to 500 and surface the cross-node stale count.
  const_cast<core::CacheStore&>(cluster.manager(0).store())
      .erase("GET /cgi-bin/report?q=1");
  auto broken = client.get("/swala-admin/check-consistency?cluster=1");
  ASSERT_TRUE(broken.is_ok());
  EXPECT_EQ(broken.value().status, 500);
  EXPECT_NE(broken.value().body.find("\"consistent\": false"),
            std::string::npos)
      << broken.value().body;
  EXPECT_NE(broken.value().body.find("\"stale\": 1"), std::string::npos)
      << broken.value().body;
  server.stop();
}

TEST(AdminClusterTest, ClusterConsistencyWithoutOracleIs404) {
  auto manager = std::make_unique<core::CacheManager>(
      0, 1, cache_options(), RealClock::instance());
  SwalaServerOptions options;
  options.request_threads = 2;
  options.enable_admin = true;
  SwalaServer server(options, make_registry(), manager.get());
  ASSERT_TRUE(server.start().is_ok());
  {
    http::HttpClient client(server.address());
    auto resp = client.get("/swala-admin/check-consistency?cluster=1");
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(resp.value().status, 404);
    // The single-node check still answers without the oracle.
    auto local = client.get("/swala-admin/check-consistency");
    ASSERT_TRUE(local.is_ok());
    EXPECT_EQ(local.value().status, 200);
  }
  server.stop();
}

TEST(AdminDisabledTest, EndpointsInvisibleByDefault) {
  SwalaServerOptions options;
  options.request_threads = 2;
  SwalaServer server(options, make_registry(), nullptr);
  ASSERT_TRUE(server.start().is_ok());
  {
    http::HttpClient client(server.address());
    auto resp = client.get("/swala-status");
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(resp.value().status, 404);
  }
  server.stop();
}

TEST(AdminNoCacheTest, InvalidateWithoutCacheIs404) {
  SwalaServerOptions options;
  options.request_threads = 2;
  options.enable_admin = true;
  SwalaServer server(options, make_registry(), nullptr);
  ASSERT_TRUE(server.start().is_ok());
  {
    http::HttpClient client(server.address());
    auto resp = client.get("/swala-admin/invalidate?pattern=*");
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(resp.value().status, 404);
    // Status still works, reporting cache disabled.
    auto status = client.get("/swala-status");
    ASSERT_TRUE(status.is_ok());
    EXPECT_NE(status.value().body.find("\"cache_enabled\": 0"),
              std::string::npos);
  }
  server.stop();
}

}  // namespace
}  // namespace swala::server
