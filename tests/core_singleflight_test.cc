// The cache-side half of overload protection: Deadline arithmetic, the CGI
// concurrency gate, single-flight miss coalescing, and the negative cache.
// (The server-side half — admission control, slow-loris cuts, drain — lives
// in server_overload_test.cc.)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cgi/gate.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "core/manager.h"

namespace swala::core {
namespace {

http::Uri uri_of(const std::string& target) {
  http::Uri uri;
  EXPECT_TRUE(http::parse_uri(target, &uri));
  return uri;
}

cgi::CgiOutput ok_output(const std::string& body) {
  cgi::CgiOutput out;
  out.success = true;
  out.http_status = 200;
  out.body = body;
  return out;
}

ManagerOptions flight_options(double negative_ttl = 0.0,
                              double min_exec = 0.0) {
  ManagerOptions mo;
  mo.limits = {100, 0};
  mo.negative_ttl_seconds = negative_ttl;
  RuleDecision d;
  d.cacheable = true;
  d.min_exec_seconds = min_exec;
  mo.rules.add_rule("/cgi-bin/*", d);
  return mo;
}

// ---- Deadline ----

TEST(DeadlineTest, DefaultIsUnlimited) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.budget_ms(250), 250);
}

TEST(DeadlineTest, ExpiresWhenClockPasses) {
  ManualClock clock(from_seconds(10.0));
  const auto d = Deadline::after_ms(&clock, 100);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_LE(d.remaining_ms(), 100);
  clock.advance(from_millis(150));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
  // Even expired, the socket-timeout helper never returns 0: to setsockopt,
  // 0 means "no timeout", which would invert the semantics.
  EXPECT_EQ(d.budget_ms(500), 1);
}

TEST(DeadlineTest, NonPositiveBudgetMeansDisabled) {
  ManualClock clock;
  EXPECT_TRUE(Deadline::after_ms(&clock, 0).unlimited());
  EXPECT_TRUE(Deadline::after_ms(&clock, -5).unlimited());
  EXPECT_TRUE(Deadline::after_ms(nullptr, 100).unlimited());
}

TEST(DeadlineTest, BudgetCapsAtRemaining) {
  ManualClock clock;
  const auto d = Deadline::after_ms(&clock, 1000);
  EXPECT_EQ(d.budget_ms(200), 200);    // cap smaller than the budget
  EXPECT_EQ(d.budget_ms(5000), 1000);  // budget smaller than the cap
  EXPECT_EQ(d.budget_ms(0), 1000);     // 0 = "whatever remains"
}

// ---- ExecGate ----

TEST(ExecGateTest, ZeroCapacityIsUnlimited) {
  cgi::ExecGate gate(0);
  EXPECT_TRUE(gate.acquire(Deadline()).is_ok());
  gate.release();
  EXPECT_EQ(gate.stats().queue_waits, 0u);
}

TEST(ExecGateTest, QueuedAcquireProceedsOnRelease) {
  cgi::ExecGate gate(1);
  ASSERT_TRUE(gate.acquire(Deadline()).is_ok());
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    EXPECT_TRUE(gate.acquire(Deadline()).is_ok());
    got.store(true);
    gate.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(got.load());
  gate.release();
  waiter.join();
  EXPECT_TRUE(got.load());
  const auto s = gate.stats();
  EXPECT_EQ(s.queue_waits, 1u);
  EXPECT_EQ(s.active, 0u);
  EXPECT_EQ(s.waiting, 0u);
}

TEST(ExecGateTest, QueueWaitTimesOutAtDeadline) {
  ManualClock clock;
  cgi::ExecGate gate(1);
  ASSERT_TRUE(gate.acquire(Deadline()).is_ok());
  const auto d = Deadline::after_ms(&clock, 100);
  std::thread waiter([&gate, d] {
    EXPECT_EQ(gate.acquire(d).code(), StatusCode::kTimeout);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  clock.advance(from_millis(200));  // virtual time only; the slice poll sees it
  waiter.join();
  EXPECT_EQ(gate.stats().queue_timeouts, 1u);
  gate.release();
  EXPECT_EQ(gate.stats().active, 0u);
}

TEST(ExecGateTest, ExecSlotReleasesOnDestruction) {
  cgi::ExecGate gate(1);
  {
    cgi::ExecSlot slot(&gate, Deadline());
    EXPECT_TRUE(slot.acquired());
    EXPECT_EQ(gate.stats().active, 1u);
  }
  EXPECT_EQ(gate.stats().active, 0u);
  const cgi::ExecSlot null_slot(nullptr, Deadline());
  EXPECT_TRUE(null_slot.acquired());  // no gate configured = unlimited
}

// ---- single-flight miss coalescing ----

class SingleFlightTest : public ::testing::Test {
 protected:
  ManualClock clock_{from_seconds(100.0)};
};

TEST_F(SingleFlightTest, WaitersShareOneExecutionEvenBelowThreshold) {
  // min_exec 0.5 but the leader reports 0.1s: the result is NOT cached, yet
  // every waiter must still receive the leader's output (publish happens
  // before the below-threshold early return).
  CacheManager manager(0, 1, flight_options(0.0, /*min_exec=*/0.5), &clock_);
  const auto uri = uri_of("/cgi-bin/slow?x=1");

  const auto leader = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(leader.outcome, LookupOutcome::kMissMustExecute);

  constexpr int kWaiters = 6;
  std::atomic<int> arrived{0};
  std::atomic<int> coalesced{0};
  std::atomic<int> stragglers{0};
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      const auto r = manager.lookup(http::Method::kGet, uri, Deadline());
      if (r.outcome == LookupOutcome::kHit && r.coalesced) {
        EXPECT_EQ(r.result.data, "payload");
        EXPECT_EQ(r.result.meta.http_status, 200);
        EXPECT_EQ(r.result.meta.owner, 0u);
        coalesced.fetch_add(1);
      } else if (r.outcome == LookupOutcome::kMissMustExecute) {
        // Scheduled in after the leader published (nothing was cached below
        // threshold), so it became a fresh leader; discharge the obligation.
        stragglers.fetch_add(1);
        manager.fail(http::Method::kGet, uri, r.rule, 503, "straggler",
                     /*remember=*/false);
      } else {
        // A straggler that coalesced onto another straggler's 503 above.
        stragglers.fetch_add(1);
        EXPECT_EQ(r.outcome, LookupOutcome::kFailedFast);
      }
    });
  }
  while (arrived.load() < kWaiters) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  manager.complete(http::Method::kGet, uri, leader.rule, ok_output("payload"),
                   /*exec_seconds=*/0.1);
  for (auto& t : threads) t.join();

  const auto stats = manager.stats();
  EXPECT_GE(coalesced.load(), 1);
  EXPECT_EQ(coalesced.load() + stragglers.load(), kWaiters);
  EXPECT_GE(stats.coalesced_misses, static_cast<std::uint64_t>(coalesced.load()));
  EXPECT_GE(stats.below_threshold, 1u);
  EXPECT_EQ(stats.inserts, 0u);  // below threshold: nothing was cached
}

TEST_F(SingleFlightTest, CompletedLeaderResultIsCachedForLaterLookups) {
  CacheManager manager(0, 1, flight_options(), &clock_);
  const auto uri = uri_of("/cgi-bin/report?q=7");
  const auto leader = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(leader.outcome, LookupOutcome::kMissMustExecute);
  manager.complete(http::Method::kGet, uri, leader.rule, ok_output("cached"),
                   1.0);
  const auto hit = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(hit.outcome, LookupOutcome::kHit);
  EXPECT_FALSE(hit.coalesced);
  EXPECT_EQ(hit.result.data, "cached");
  EXPECT_EQ(manager.stats().inserts, 1u);
}

TEST_F(SingleFlightTest, LeaderFailurePropagatesToWaiters) {
  // Long negative TTL: even a waiter scheduled in after the failure was
  // published fails fast via the negative cache, with the same status.
  CacheManager manager(0, 1, flight_options(/*negative_ttl=*/30.0), &clock_);
  const auto uri = uri_of("/cgi-bin/broken");
  const auto leader = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(leader.outcome, LookupOutcome::kMissMustExecute);

  constexpr int kWaiters = 4;
  std::atomic<int> arrived{0};
  std::atomic<int> failed_fast{0};
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      const auto r = manager.lookup(http::Method::kGet, uri, Deadline());
      EXPECT_EQ(r.outcome, LookupOutcome::kFailedFast);
      EXPECT_EQ(r.fail_status, 500);
      if (r.outcome == LookupOutcome::kFailedFast) failed_fast.fetch_add(1);
    });
  }
  while (arrived.load() < kWaiters) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  manager.fail(http::Method::kGet, uri, leader.rule, 500, "exec blew up",
               /*remember=*/true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(failed_fast.load(), kWaiters);
  // The failure is remembered: an immediate retry never reaches the CGI.
  const auto retry = manager.lookup(http::Method::kGet, uri, Deadline());
  EXPECT_EQ(retry.outcome, LookupOutcome::kFailedFast);
  EXPECT_EQ(retry.fail_status, 500);
  const auto stats = manager.stats();
  EXPECT_GE(stats.failed_fast, 1u);
  EXPECT_GE(stats.failed_exec, 1u);
}

TEST_F(SingleFlightTest, NegativeCacheExpiresAfterTtl) {
  CacheManager manager(0, 1, flight_options(/*negative_ttl=*/1.0), &clock_);
  const auto uri = uri_of("/cgi-bin/flaky");
  const auto leader = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(leader.outcome, LookupOutcome::kMissMustExecute);
  manager.fail(http::Method::kGet, uri, leader.rule, 502, "boom",
               /*remember=*/true);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri, Deadline()).outcome,
            LookupOutcome::kFailedFast);

  clock_.advance(from_seconds(2.0));
  const auto retry = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(retry.outcome, LookupOutcome::kMissMustExecute);
  manager.complete(http::Method::kGet, uri, retry.rule,
                   ok_output("recovered"), 1.0);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri, Deadline()).outcome,
            LookupOutcome::kHit);
}

TEST_F(SingleFlightTest, OverloadBailoutIsNotRemembered) {
  CacheManager manager(0, 1, flight_options(/*negative_ttl=*/30.0), &clock_);
  const auto uri = uri_of("/cgi-bin/q");
  auto r = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(r.outcome, LookupOutcome::kMissMustExecute);
  // remember=false is the overload idiom (gate timeout, deadline bail-out):
  // the CGI itself is fine, so the key must not be poisoned.
  manager.fail(http::Method::kGet, uri, r.rule, 503, "gate timeout",
               /*remember=*/false);
  r = manager.lookup(http::Method::kGet, uri, Deadline());
  EXPECT_EQ(r.outcome, LookupOutcome::kMissMustExecute);
  manager.fail(http::Method::kGet, uri, r.rule, 503, "cleanup",
               /*remember=*/false);
  EXPECT_EQ(manager.stats().failed_fast, 0u);
}

TEST_F(SingleFlightTest, PlainLookupBypassesSingleFlightAndNegativeCache) {
  CacheManager manager(0, 1, flight_options(/*negative_ttl=*/30.0), &clock_);
  const auto uri = uri_of("/cgi-bin/legacy");
  const auto leader = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(leader.outcome, LookupOutcome::kMissMustExecute);
  // Legacy two-argument lookup never coalesces: it would block callers that
  // are not obliged to call complete()/fail() (simulator, older tests).
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri).outcome,
            LookupOutcome::kMissMustExecute);
  manager.fail(http::Method::kGet, uri, leader.rule, 500, "boom",
               /*remember=*/true);
  // ... and it ignores the negative cache; only the deadline path fails fast.
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri).outcome,
            LookupOutcome::kMissMustExecute);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri, Deadline()).outcome,
            LookupOutcome::kFailedFast);
}

TEST_F(SingleFlightTest, WaiterDeadlineExpiresWhileLeaderRuns) {
  CacheManager manager(0, 1, flight_options(), &clock_);
  const auto uri = uri_of("/cgi-bin/slow");
  const auto leader = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(leader.outcome, LookupOutcome::kMissMustExecute);

  // Deadline created before the thread starts, so the advance below expires
  // it no matter how the thread is scheduled.
  const auto waiter_deadline = Deadline::after_ms(&clock_, 100);
  std::thread waiter([&manager, &uri, waiter_deadline] {
    const auto r = manager.lookup(http::Method::kGet, uri, waiter_deadline);
    EXPECT_EQ(r.outcome, LookupOutcome::kFailedFast);
    EXPECT_EQ(r.fail_status, 503);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  clock_.advance(from_millis(200));
  waiter.join();
  EXPECT_EQ(manager.stats().coalesce_timeouts, 1u);

  // The leader is unaffected and still publishes a usable result.
  manager.complete(http::Method::kGet, uri, leader.rule, ok_output("late"),
                   1.0);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri, Deadline()).outcome,
            LookupOutcome::kHit);
}

TEST_F(SingleFlightTest, DistinctKeysDoNotBlockEachOther) {
  CacheManager manager(0, 1, flight_options(), &clock_);
  const auto a = uri_of("/cgi-bin/a");
  const auto b = uri_of("/cgi-bin/b");
  const auto la = manager.lookup(http::Method::kGet, a, Deadline());
  ASSERT_EQ(la.outcome, LookupOutcome::kMissMustExecute);
  // With key a in flight, key b must classify immediately on this same
  // thread (it would deadlock the test otherwise).
  const auto lb = manager.lookup(http::Method::kGet, b, Deadline());
  ASSERT_EQ(lb.outcome, LookupOutcome::kMissMustExecute);
  manager.complete(http::Method::kGet, a, la.rule, ok_output("A"), 1.0);
  manager.complete(http::Method::kGet, b, lb.rule, ok_output("B"), 1.0);
  EXPECT_EQ(manager.lookup(http::Method::kGet, a, Deadline()).result.data,
            "A");
  EXPECT_EQ(manager.lookup(http::Method::kGet, b, Deadline()).result.data,
            "B");
}

TEST_F(SingleFlightTest, InsertedResultComposesWithHotBlobCache) {
  ManagerOptions mo = flight_options();
  mo.limits = {100, 0, /*hot_bytes=*/1 << 20};
  CacheManager manager(0, 1, mo, &clock_);
  const auto uri = uri_of("/cgi-bin/hot");
  const auto leader = manager.lookup(http::Method::kGet, uri, Deadline());
  ASSERT_EQ(leader.outcome, LookupOutcome::kMissMustExecute);
  manager.complete(http::Method::kGet, uri, leader.rule, ok_output("blob"),
                   1.0);
  // Two hits: whichever of insert/first-fetch primes the hot cache, the
  // second fetch must be served from it.
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri, Deadline()).outcome,
            LookupOutcome::kHit);
  EXPECT_EQ(manager.lookup(http::Method::kGet, uri, Deadline()).outcome,
            LookupOutcome::kHit);
  EXPECT_GE(manager.store().stats().hot_hits, 1u);
}

}  // namespace
}  // namespace swala::core
